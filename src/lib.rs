//! # POM — Physical Oscillator Model for Supercomputing
//!
//! This facade crate re-exports the complete toolkit reproducing Afzal,
//! Hager & Wellein, *"Physical Oscillator Model for Supercomputing"*
//! (SC 2023, arXiv:2310.05701).
//!
//! A parallel program running on a cluster is modeled as a system of coupled
//! oscillators: each MPI process is an oscillator whose phase advances by 2π
//! per compute–communicate cycle, coupled to its communication partners
//! through a sparse topology matrix and an interaction potential. Two
//! potentials distinguish *resource-scalable* programs (which resynchronize
//! after disturbances) from *resource-bottlenecked* programs (which
//! spontaneously desynchronize into a computational wavefront).
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`ode`] | explicit ODE/DDE solvers: Euler, Heun, RK4, Dormand–Prince 5(4) with dense output, delay-equation support |
//! | [`topology`] | sparse topology matrices `T_ij`: rings/chains with distance sets, grids, all-to-all, κ computation, cluster hierarchy |
//! | [`noise`] | deterministic PRNG and the paper's noise terms: local jitter ζᵢ(t), interaction delays τᵢⱼ(t), one-off injections |
//! | [`core`] | the model itself: interaction potentials, Eq. (2) right-hand side, observables, simulation driver, Fig. 2 presets |
//! | [`kernels`] | node-level performance model of the paper's test codes: PISOLVER, STREAM triad, slow Schönauer triad |
//! | [`mpisim`] | discrete-event MPI cluster simulator: eager/rendezvous point-to-point, memory-bandwidth contention, ITAC-like traces |
//! | [`analysis`] | idle-wave detection and speed fits, de/resynchronization metrics, linear stability, statistics |
//! | [`sweep`] | parallel scenario-campaign engine: declarative TOML/JSON sweeps, deterministic per-point seeding, streaming JSONL/CSV results, resume |
//! | [`serve`] | campaign daemon: HTTP/JSON job API over the sweep engine — submit, poll, stream, cancel, resume; crash-safe spool |
//! | [`obs`] | observability: metrics registry with Prometheus text exposition, span timers, structured JSONL events |
//! | [`viz`] | circle diagrams, phase/potential timelines, trace Gantt charts (ASCII/SVG/CSV) |
//!
//! ## Quick start
//!
//! ```
//! use pom::core::{PomBuilder, Potential, InitialCondition};
//! use pom::topology::Topology;
//!
//! // 16 processes, next-neighbor communication, scalable code.
//! let model = PomBuilder::new(16)
//!     .topology(Topology::ring(16, &[-1, 1]))
//!     .potential(Potential::tanh())
//!     .compute_time(1.0)
//!     .comm_time(0.1)
//!     .build()
//!     .unwrap();
//!
//! let run = model
//!     .simulate(InitialCondition::RandomSpread { amplitude: 1.0, seed: 7 }, 50.0)
//!     .unwrap();
//!
//! // A scalable (tanh-coupled) program resynchronizes: order parameter → 1.
//! assert!(run.final_order_parameter() > 0.99);
//! ```

pub use pom_analysis as analysis;
pub use pom_core as core;
pub use pom_kernels as kernels;
pub use pom_mpisim as mpisim;
pub use pom_noise as noise;
pub use pom_obs as obs;
pub use pom_ode as ode;
pub use pom_serve as serve;
pub use pom_sweep as sweep;
pub use pom_topology as topology;
pub use pom_viz as viz;

/// Library version string (matches the workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
