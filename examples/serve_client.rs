//! The campaign daemon end to end, in one process: boot `pom-serve`,
//! talk to it over real HTTP exactly as a remote client (or `curl`)
//! would, and walk a job through its whole lifecycle — submit, poll,
//! cancel, resume, stream.
//!
//! ```bash
//! cargo run --release --example serve_client
//! ```
//!
//! The same traffic from a shell, against `pom serve`:
//!
//! ```bash
//! pom serve addr=127.0.0.1:7700 spool=/tmp/pom-spool &
//! curl -s -X POST --data-binary @examples/specs/sigma_sweep.toml \
//!      http://127.0.0.1:7700/jobs
//! curl -s http://127.0.0.1:7700/jobs/j1
//! curl -sN http://127.0.0.1:7700/jobs/j1/rows?follow=1
//! curl -s -X POST http://127.0.0.1:7700/shutdown
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pom::serve::{ServeConfig, Server};

/// One HTTP/1.1 request; the daemon closes the connection per response.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: pom\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// The response body (ignoring chunk framing — fine for a demo printout).
fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map_or(response, |(_, body)| body)
}

fn main() {
    // An embedded daemon on a random port with a throwaway spool. In
    // production this is `pom serve` in its own process; everything
    // below is plain sockets either way.
    let spool = std::env::temp_dir().join(format!("pom-serve-demo-{}", std::process::id()));
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        spool: spool.clone(),
        threads: 0, // one worker per core
        ..ServeConfig::default()
    })
    .expect("start daemon");
    let addr = server.addr();
    println!("daemon listening on http://{addr}\n");

    // Submit the repo's example campaign: the exact bytes `pom sweep`
    // would read from disk, POSTed instead.
    let spec = std::fs::read_to_string("examples/specs/sigma_sweep.toml")
        .expect("run from the repository root");
    let created = http(addr, "POST", "/jobs", &spec);
    println!("POST /jobs →\n  {}\n", body_of(&created).trim());

    // Poll while it runs; each status is a point-granular snapshot.
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(120));
        let status = http(addr, "GET", "/jobs/j1", "");
        println!("GET /jobs/j1 →\n  {}\n", body_of(&status).trim());
    }

    // Cancel mid-campaign … the partial results stay durable …
    let cancelled = http(addr, "POST", "/jobs/j1/cancel", "");
    println!("POST /jobs/j1/cancel →\n  {}\n", body_of(&cancelled).trim());
    // Wait for in-flight points to settle (resume answers 409 until then).
    while !body_of(&http(addr, "GET", "/jobs/j1", "")).contains("\"in_flight\":0") {
        std::thread::sleep(Duration::from_millis(30));
    }

    // … and resume picks up exactly the missing points. The final file is
    // bitwise identical to a never-interrupted run.
    let resumed = http(addr, "POST", "/jobs/j1/resume", "");
    println!("POST /jobs/j1/resume →\n  {}\n", body_of(&resumed).trim());

    // `follow=1` tails the JSONL stream until the job completes.
    let rows = http(addr, "GET", "/jobs/j1/rows?follow=1", "");
    // Skip the chunked-encoding size lines; keep the JSONL payload.
    let lines: Vec<&str> = body_of(&rows)
        .lines()
        .filter(|l| l.starts_with('{'))
        .collect();
    println!(
        "GET /jobs/j1/rows?follow=1 → {} lines; first and last:",
        lines.len()
    );
    if let (Some(first), Some(last)) = (lines.first(), lines.last()) {
        println!("  {first}");
        println!("  {last}\n");
    }

    let summary = server.stop(pom::serve::StopMode::Drain);
    println!(
        "daemon stopped: {} job(s), {} row(s) written",
        summary.jobs, summary.rows_written
    );
    let _ = std::fs::remove_dir_all(&spool);
}
