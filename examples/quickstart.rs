//! Quickstart: build an oscillator model, run it, and look at the
//! paper's three result views.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pom::core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom::topology::Topology;
use pom::viz::{ascii_chart, circle_ascii};

fn main() {
    // 16 MPI processes, next-neighbor communication, resource-scalable
    // code (tanh potential) — paper Eq. (2) with Eq. (3).
    let n = 16;
    let model = PomBuilder::new(n)
        .topology(Topology::ring(n, &[-1, 1]))
        .potential(Potential::tanh())
        .compute_time(0.9) // t_comp seconds per cycle
        .comm_time(0.1) // t_comm
        .normalization(Normalization::ByDegree)
        .build()
        .expect("valid model");

    println!(
        "model: N = {n}, ω = {:.3} rad/s, v_p = {:.3} (β·κ = {:.1})",
        model.omega(),
        model.params().coupling(),
        model.params().beta_kappa(),
    );

    // Start desynchronized and watch the system pull itself into sync —
    // the defining behavior of scalable programs (§5.2.1).
    let init = InitialCondition::RandomSpread {
        amplitude: 2.0,
        seed: 42,
    };
    let run = model
        .simulate_with(init, &SimOptions::new(60.0).samples(300))
        .expect("integration succeeds");

    println!("\ninitial phases (circle diagram, θ mod 2π):");
    print!("{}", circle_ascii(run.trajectory().state(0), 21));

    println!("\nfinal phases:");
    print!("{}", circle_ascii(run.trajectory().last().unwrap(), 21));

    print!(
        "\n{}",
        ascii_chart(
            "Kuramoto order parameter r(t) — 1 means synchronized",
            &run.order_parameter_series(),
            64,
            12,
        )
    );

    println!(
        "\nfinal r = {:.6}, final phase spread = {:.2e} rad",
        run.final_order_parameter(),
        run.final_phase_spread()
    );
    assert!(
        run.final_order_parameter() > 0.99,
        "the swarm of fireflies must sync"
    );
    println!("⇒ resynchronized, as the paper predicts for scalable programs.");
}
