//! Idle waves on a 2-D Cartesian process grid.
//!
//! The paper's corner cases use 1-D chains, but Eq. (2) takes any topology
//! matrix. Domain-decomposed stencil codes exchange halos on a 2-D grid;
//! a one-off delay then spreads as a *diamond* (the ℓ¹ ball of the
//! 4-point stencil) instead of a 1-D front.
//!
//! ```bash
//! cargo run --release --example grid2d_waves
//! ```

use pom::analysis::model_wave_arrivals;
use pom::core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom::noise::{DelayEvent, OneOffDelays};
use pom::topology::Topology;

fn main() {
    let (nx, ny) = (12, 12);
    let n = nx * ny;
    let source = (6, 6);
    let source_rank = source.1 * nx + source.0;

    let mk = |inject: bool| {
        let mut b = PomBuilder::new(n)
            .topology(Topology::grid2d(nx, ny, true))
            .potential(Potential::tanh())
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(4.0)
            .normalization(Normalization::ByDegree);
        if inject {
            b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                rank: source_rank,
                t_start: 1.0,
                duration: 3.0,
                extra: 1.0,
            }]));
        }
        b.build()
            .unwrap()
            .simulate_with(
                InitialCondition::Synchronized,
                &SimOptions::new(30.0).samples(300),
            )
            .unwrap()
    };

    let pert = mk(true);
    let base = mk(false);
    let arrivals = model_wave_arrivals(&pert, &base, 0.05);

    // Render arrival times as a 2-D field.
    println!("wave arrival time on the {nx}×{ny} grid (source at {source:?}):\n");
    let t_max = arrivals
        .iter()
        .filter_map(|a| a.time)
        .fold(0.0f64, f64::max);
    for y in 0..ny {
        let row: String = (0..nx)
            .map(|x| {
                match arrivals[y * nx + x].time {
                    Some(t) => {
                        // Bucket into digits 0..9 by arrival time.
                        let d = (9.0 * t / t_max).round() as u32;
                        char::from_digit(d.min(9), 10).unwrap()
                    }
                    None => '.',
                }
            })
            .collect();
        println!("   {row}");
    }

    // The front is an ℓ¹ (Manhattan) ball: arrival time grows with the
    // Manhattan distance from the source.
    let manhattan = |r: usize| {
        let (x, y) = (r % nx, r / nx);
        let dx = (x as i64 - source.0 as i64)
            .unsigned_abs()
            .min((nx as i64 - (x as i64 - source.0 as i64).abs()) as u64);
        let dy = (y as i64 - source.1 as i64)
            .unsigned_abs()
            .min((ny as i64 - (y as i64 - source.1 as i64).abs()) as u64);
        dx + dy
    };
    let mut by_dist: Vec<Vec<f64>> = vec![Vec::new(); nx + ny];
    for a in &arrivals {
        if let Some(t) = a.time {
            by_dist[manhattan(a.rank) as usize].push(t);
        }
    }
    println!("\nmean arrival time by Manhattan distance:");
    let mut last = 0.0;
    let mut monotone = true;
    for (d, ts) in by_dist.iter().enumerate().take(7) {
        if ts.is_empty() {
            continue;
        }
        let mean = ts.iter().sum::<f64>() / ts.len() as f64;
        println!("   d = {d}: t ≈ {mean:.2} ({} ranks)", ts.len());
        monotone &= mean >= last;
        last = mean;
    }
    assert!(
        monotone,
        "the front must move outward in Manhattan distance"
    );
    println!("\n⇒ the idle wave spreads as a diamond through the 2-D dependency grid.");
}
