//! Desynchronization and computational wavefronts (paper §5.1.2, §5.2.2).
//!
//! Memory-bound (resource-bottlenecked) programs behave in the opposite
//! way of scalable ones: idle waves *decay* (contention slack absorbs the
//! delay), and the system settles into a persistently skewed state — the
//! computational wavefront. The oscillator model captures this with the
//! desynchronizing potential whose stable pairwise gap is `2σ/3`.
//!
//! ```bash
//! cargo run --release --example desync_wavefront
//! ```

use pom::analysis::{residual_spread, socket_offsets};
use pom::core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom::kernels::Kernel;
use pom::mpisim::{ProgramSpec, SimDelay, Simulator, WorkSpec};
use pom::topology::{ClusterSpec, Placement, Topology};
use pom::viz::circle_ascii;

fn main() {
    // --- simulator: STREAM triad on 4 Meggie sockets ---------------------
    let n = 40;
    let program = ProgramSpec::new(n, 60)
        .kernel(Kernel::stream_triad())
        .work(WorkSpec::TargetSeconds(1e-3))
        .message_bytes(4_000_000) // non-negligible comm lets the wavefront persist
        .inject(SimDelay {
            rank: 5,
            iteration: 5,
            extra_seconds: 5e-3,
        });
    let placement = Placement::packed(ClusterSpec::meggie(), n);
    let trace = Simulator::new(program, placement).unwrap().run().unwrap();

    println!("memory-bound run, iteration-start spread late in the run:");
    println!(
        "  mean spread over iterations 45..60: {:.3e} s",
        residual_spread(&trace, 45)
    );
    println!("\nper-socket offsets at iteration 55 (the wavefront, cf. Fig. 2b):");
    for (s, off) in socket_offsets(&trace, 10, 55).iter().enumerate() {
        let bar = "#".repeat((off / 5e-4).round() as usize);
        println!("  socket {s}: {off:.3e} s  {bar}");
    }

    // --- model: desync potential, the 2σ/3 law ---------------------------
    println!("\noscillator model, chain ±1, desync potential:");
    println!("{:>6} {:>12} {:>10}", "σ", "mean |gap|", "2σ/3");
    for sigma in [1.0, 2.0, 3.0] {
        let run = PomBuilder::new(16)
            .topology(Topology::chain(16, &[-1, 1]))
            .potential(Potential::desync(sigma))
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(4.0)
            .normalization(Normalization::ByDegree)
            .build()
            .unwrap()
            .simulate_with(
                InitialCondition::RandomSpread {
                    amplitude: 0.2,
                    seed: 9,
                },
                &SimOptions::new(300.0).samples(300),
            )
            .unwrap();
        let gaps = run.final_adjacent_differences();
        let mean_gap = gaps.iter().map(|g| g.abs()).sum::<f64>() / gaps.len() as f64;
        println!("{sigma:>6.1} {mean_gap:>12.4} {:>10.4}", 2.0 * sigma / 3.0);
        if (sigma - 3.0).abs() < 1e-9 {
            println!("\nfinal phases for σ = 3 (dots spread around the circle = desync):");
            print!("{}", circle_ascii(run.trajectory().last().unwrap(), 21));
        }
    }
    println!(
        "\nBottlenecked programs drift out of lockstep into a stable broken-\n\
         symmetry state; the model pins the gap at the first zero 2σ/3 (§5.2.2)."
    );
}
