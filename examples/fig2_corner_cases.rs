//! All four corner cases of paper Fig. 2: scalable vs. bottlenecked code
//! × next-neighbor (`d = ±1`) vs. wider (`d = ±1, −2`) communication,
//! each run on both the oscillator model and the MPI simulator.
//!
//! ```bash
//! cargo run --release --example fig2_corner_cases
//! ```

use pom::analysis::fig2_verdict;
use pom::core::{fig2_model, fig2_params, Fig2Panel, InitialCondition, SimOptions};
use pom::viz::circle_ascii;

fn main() {
    for panel in Fig2Panel::all() {
        println!("==============================================================");
        println!("{}", fig2_params(panel));

        // Asymptotic circle diagram of the model (the paper's insets).
        let model = fig2_model(panel, true).expect("preset builds");
        let run = model
            .simulate_with(
                InitialCondition::Synchronized,
                &SimOptions::new(120.0).samples(240),
            )
            .expect("model integrates");
        println!("model circle diagram at t = 120 (θ mod 2π):");
        print!("{}", circle_ascii(run.trajectory().last().unwrap(), 17));

        // Joint verdict (runs both substrates).
        let v = fig2_verdict(panel);
        println!(
            "model:     {:?} (residual spread {:.3} rad)",
            v.model, v.model_residual_spread
        );
        println!(
            "simulator: {:?} (residual spread {:.3e} s)",
            v.sim, v.sim_residual_spread
        );
        if let Some(s) = v.model_wave_speed {
            println!("model wave speed:     {s:.3} ranks/cycle");
        }
        if let Some(s) = v.sim_wave_speed {
            println!("simulator wave speed: {s:.1} ranks/s");
        }
        println!(
            "matches the paper's Fig. 2({}): {}",
            panel.letter(),
            if v.agrees() { "YES" } else { "NO" }
        );
    }
    println!("==============================================================");
    println!(
        "Scalable panels resynchronize; bottlenecked panels settle in a\n\
         desynchronized wavefront — on both the model and the simulated\n\
         cluster, as in the paper."
    );
}
