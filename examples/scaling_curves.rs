//! Per-socket bandwidth scaling of the paper's three micro-benchmarks —
//! the reproduction of Fig. 1(b), plus a live run of the actual kernels.
//!
//! ```bash
//! cargo run --release --example scaling_curves
//! ```

// Index-as-rank loops are intentional here (the index is the rank id).
#![allow(clippy::needless_range_loop)]

use pom::kernels::exec;
use pom::kernels::{saturation_point, scaling_curve, Kernel, SocketSpec};

fn main() {
    let socket = SocketSpec::meggie();
    println!(
        "Meggie socket: {} cores @ {:.1} GHz, {:.0} GB/s saturated bandwidth\n",
        socket.cores,
        socket.freq / 1e9,
        socket.mem_bw / 1e9
    );

    println!("memory bandwidth [MB/s] vs processes per socket (Fig. 1b):");
    println!(
        "{:>6} {:>12} {:>16} {:>10}",
        "procs", "STREAM", "slow Schönauer", "PISOLVER"
    );
    let kernels = Kernel::paper_kernels();
    let curves: Vec<_> = kernels
        .iter()
        .map(|k| scaling_curve(k, &socket, socket.cores))
        .collect();
    for p in 0..socket.cores {
        println!(
            "{:>6} {:>12.0} {:>16.0} {:>10.0}",
            p + 1,
            curves[0][p].aggregate_bw / 1e6,
            curves[1][p].aggregate_bw / 1e6,
            curves[2][p].aggregate_bw / 1e6,
        );
    }
    for k in &kernels {
        match saturation_point(k, &socket, 0.95) {
            Some(c) => println!("{} saturates at {c} cores", k.name),
            None => println!("{} never saturates (resource-scalable)", k.name),
        }
    }

    // Live micro-kernels: verify the *relative* in-core costs the model
    // assumes (the slow triad really is slower per element).
    println!("\nlive kernels (in-memory arrays, single thread):");
    let n = 1_000_000;
    let b = vec![1.1; n];
    let c = vec![2.2; n];
    let d = vec![3.3; n];
    let mut a = vec![0.0; n];

    let t0 = std::time::Instant::now();
    let mut sink = exec::stream_triad(&mut a, &b, &c, 1.5);
    let t_stream = t0.elapsed();

    let t0 = std::time::Instant::now();
    sink += exec::schoenauer_slow(&mut a, &b, &c, &d);
    let t_slow = t0.elapsed();

    let t0 = std::time::Instant::now();
    let pi = exec::pisolver(5_000_000);
    let t_pi = t0.elapsed();

    println!("  STREAM triad sweep ({n} elements): {t_stream:?}  (checksum {sink:.1})");
    println!("  slow Schönauer sweep:              {t_slow:?}");
    println!("  PISOLVER (5M steps):               {t_pi:?}  (π ≈ {pi:.9})");
    println!(
        "  slow/stream per-element cost ratio: {:.1}×",
        t_slow.as_secs_f64() / t_stream.as_secs_f64()
    );
}
