//! Idle-wave propagation (paper §5.1): inject a one-off delay on rank 5
//! and watch it ripple through the program, on both substrates:
//!
//! * the **MPI simulator** — the delayed rank's neighbors stall in their
//!   `MPI_Waitall`, their neighbors stall one iteration later, …; the
//!   wave is visible as a diagonal band of waiting in the trace Gantt;
//! * the **oscillator model** — the same front moves through the phases.
//!
//! ```bash
//! cargo run --release --example idle_wave
//! ```

use pom::analysis::{model_wave_arrivals, sim_wave_arrivals, wave_speed_fit};
use pom::core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom::mpisim::{idle_wave_run, IdleWaveConfig};
use pom::noise::{DelayEvent, OneOffDelays};
use pom::topology::Topology;
use pom::viz::gantt_ascii;

fn main() {
    // --- simulator side -------------------------------------------------
    let cfg = IdleWaveConfig {
        n_ranks: 24,
        iterations: 26,
        ..IdleWaveConfig::default() // rank 5, eager, d = ±1, 5× delay
    };
    let (perturbed, baseline) = idle_wave_run(&cfg).expect("simulation runs");

    println!("MPI trace with injected delay (rank rows, '█' compute, '·' waiting):\n");
    print!("{}", gantt_ascii(&perturbed, 100));

    let arrivals = sim_wave_arrivals(&perturbed, &baseline, 2e-3);
    println!("\nwave arrival iteration per rank:");
    for a in &arrivals {
        let mark = match a.iteration {
            Some(k) => format!("iteration {k}"),
            None => "not reached".to_string(),
        };
        println!("  rank {:>2}: {mark}", a.rank);
    }
    let speed = wave_speed_fit(&arrivals, cfg.delay_rank, 10);
    if let Some(s) = speed.mean_speed() {
        println!(
            "\nsimulator wave speed ≈ {s:.1} ranks/s ≈ {:.2} ranks/iteration",
            s * cfg.t_comp
        );
    }

    // --- model side ------------------------------------------------------
    let n = 24;
    let mk = |inject: bool| {
        let mut b = PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(Potential::tanh())
            .compute_time(0.9)
            .comm_time(0.1)
            .normalization(Normalization::ByDegree);
        if inject {
            b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                rank: 5,
                t_start: 5.0,
                duration: 5.0,
                extra: 1.0, // doubles the cycle while active
            }]));
        }
        b.build()
            .unwrap()
            .simulate_with(
                InitialCondition::Synchronized,
                &SimOptions::new(60.0).samples(600),
            )
            .unwrap()
    };
    let pert = mk(true);
    let base = mk(false);
    let arrivals = model_wave_arrivals(&pert, &base, 0.05);
    let speed = wave_speed_fit(&arrivals, 5, 7);
    println!("\noscillator-model front arrivals (time of first 0.05 rad deviation):");
    for a in arrivals.iter().take(14) {
        match a.time {
            Some(t) => println!("  oscillator {:>2}: t = {t:.2}", a.rank),
            None => println!("  oscillator {:>2}: not reached", a.rank),
        }
    }
    if let Some(s) = speed.mean_speed() {
        println!("\nmodel wave speed ≈ {s:.2} oscillators per cycle time");
    }
    println!(
        "\nThe delay ripples outward on both substrates — the analogy the\n\
         paper builds the physical oscillator model on (§5.1)."
    );
}
