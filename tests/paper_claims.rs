//! Integration tests pinning the paper's quantitative claims across
//! crates (model + solver + topology + analysis together).

use pom::analysis::{model_wave_arrivals, wave_speed_fit};
use pom::core::{stability, InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom::noise::{DelayEvent, OneOffDelays};
use pom::topology::{kappa_for, Topology, WaitMode};

/// §5.2.2: "the phase differences settle at the first zero of the
/// potential, which is at 2σ/3" — across a range of σ.
#[test]
fn two_thirds_sigma_law_holds_across_sigmas() {
    for &sigma in &[0.5, 1.0, 2.0, 4.0] {
        let n = 12;
        let run = PomBuilder::new(n)
            .topology(Topology::chain(n, &[-1, 1]))
            .potential(Potential::desync(sigma))
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(4.0)
            .normalization(Normalization::ByDegree)
            .build()
            .unwrap()
            .simulate_with(
                InitialCondition::RandomSpread {
                    amplitude: 0.1 * sigma,
                    seed: 17,
                },
                &SimOptions::new(400.0).samples(200),
            )
            .unwrap();
        let gaps = run.final_adjacent_differences();
        for (i, g) in gaps.iter().enumerate() {
            assert!(
                (g.abs() - 2.0 * sigma / 3.0).abs() < 0.03 * sigma,
                "σ = {sigma}, pair {i}: |gap| = {}",
                g.abs()
            );
        }
    }
}

/// §5.1.1: wave speed grows monotonically with βκ; βκ ≈ 0 gives free,
/// undisturbed processes.
#[test]
fn wave_speed_monotone_in_beta_kappa() {
    let n = 32;
    let run = |vp: f64, inject: bool| {
        let mut b = PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(vp)
            .normalization(Normalization::ByDegree);
        if inject {
            b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                rank: 5,
                t_start: 2.0,
                duration: 3.0,
                extra: 1.0,
            }]));
        }
        b.build()
            .unwrap()
            .simulate_with(
                InitialCondition::Synchronized,
                &SimOptions::new(60.0).samples(600),
            )
            .unwrap()
    };
    let speed_for = |vp: f64| {
        let arrivals = model_wave_arrivals(&run(vp, true), &run(vp, false), 0.05);
        wave_speed_fit(&arrivals, 5, 9).mean_speed()
    };
    let speeds: Vec<f64> = [1.0, 2.0, 4.0]
        .iter()
        .map(|&vp| speed_for(vp).expect("wave detected"))
        .collect();
    assert!(
        speeds[1] > speeds[0] && speeds[2] > speeds[1],
        "speeds {speeds:?}"
    );

    // βκ ≈ 0: no coupling — the disturbance never leaves the source.
    let arrivals = model_wave_arrivals(&run(0.0, true), &run(0.0, false), 0.05);
    assert!(arrivals[5].time.is_some(), "source itself is disturbed");
    for a in arrivals.iter().filter(|a| a.rank != 5) {
        assert!(
            a.time.is_none(),
            "rank {} disturbed without coupling",
            a.rank
        );
    }
}

/// §3.1: the κ rule — sum of distances for individual waits, longest
/// distance only under MPI_Waitall — and β = 1 (eager) vs 2 (rendezvous).
#[test]
fn kappa_and_beta_rules() {
    use pom::core::Protocol;
    assert_eq!(kappa_for(&[-1, 1], WaitMode::Individual), 2.0);
    assert_eq!(kappa_for(&[-1, 1], WaitMode::Waitall), 1.0);
    assert_eq!(kappa_for(&[-2, -1, 1], WaitMode::Individual), 4.0);
    assert_eq!(kappa_for(&[-2, -1, 1], WaitMode::Waitall), 2.0);
    assert_eq!(Protocol::Eager.beta(), 1.0);
    assert_eq!(Protocol::Rendezvous.beta(), 2.0);
}

/// §5.2.2 + §6: lockstep is linearly unstable under the desync potential,
/// the 2σ/3 wavefront is stable, and mode 0 is the neutral Goldstone
/// mode — and the instability really develops in a nonlinear run.
#[test]
fn stability_structure_matches_simulation() {
    let sigma = 2.0;
    let pot = Potential::desync(sigma);
    let distances = [-1, 1];
    let n = 16;

    assert!(!stability::lockstep_stable_on_ring(pot, &distances, n));
    assert!(stability::lockstep_stable_on_ring(
        Potential::Tanh,
        &distances,
        n
    ));

    let rates = stability::growth_rates(pot, 0.25, &distances, n, 0.0);
    assert!(rates[0].abs() < 1e-14, "Goldstone mode must be neutral");
    assert!(
        rates.iter().skip(1).all(|&r| r > 0.0),
        "all non-trivial modes grow"
    );

    let wavefront_rates = stability::growth_rates(pot, 0.25, &distances, n, 2.0 * sigma / 3.0);
    assert!(
        wavefront_rates.iter().all(|&r| r <= 1e-12),
        "wavefront is stable"
    );

    // Nonlinear confirmation: a tiny perturbation grows by orders of
    // magnitude under the desync potential.
    let run = PomBuilder::new(n)
        .topology(Topology::ring(n, &distances))
        .potential(pot)
        .compute_time(1.0)
        .comm_time(0.0)
        .coupling(4.0)
        .build()
        .unwrap()
        .simulate(
            InitialCondition::RandomSpread {
                amplitude: 1e-6,
                seed: 5,
            },
            200.0,
        )
        .unwrap();
    assert!(
        run.final_phase_spread() > 0.5,
        "spread {}",
        run.final_phase_spread()
    );
}

/// §2.2.2: the plain Kuramoto model (all-to-all + sin) acts like a
/// barrier — disturbances are smoothed instantly and no desynchronization
/// can develop; the paper's sparse-topology POM, in contrast, lets waves
/// propagate at finite speed.
#[test]
fn kuramoto_contrast_all_to_all_acts_like_barrier() {
    let n = 24;
    let run = |topology: Topology, potential: Potential| {
        PomBuilder::new(n)
            .topology(topology)
            .potential(potential)
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(4.0)
            .normalization(Normalization::ByDegree)
            .local_noise(OneOffDelays::new(vec![DelayEvent {
                rank: 5,
                t_start: 2.0,
                duration: 2.0,
                extra: 1.0,
            }]))
            .build()
            .unwrap()
            .simulate_with(
                InitialCondition::Synchronized,
                &SimOptions::new(40.0).samples(400),
            )
            .unwrap()
    };
    // All-to-all: every oscillator reacts essentially simultaneously; the
    // max spread stays small because the disturbance is shared by all.
    let kuramoto = run(Topology::all_to_all(n), Potential::KuramotoSin);
    // Sparse ring: the disturbance piles up locally before spreading.
    let pom = run(Topology::ring(n, &[-1, 1]), Potential::Tanh);

    let max_spread = |r: &pom::core::PomRun| {
        r.phase_spread_series()
            .iter()
            .map(|p| p.1)
            .fold(0.0f64, f64::max)
    };
    let ks = max_spread(&kuramoto);
    let ps = max_spread(&pom);
    assert!(
        ks < 0.5 * ps,
        "all-to-all should absorb the delay collectively: kuramoto {ks}, pom {ps}"
    );
    // Both eventually resynchronize.
    assert!(kuramoto.final_order_parameter() > 0.99);
    assert!(pom.final_order_parameter() > 0.99);
}

/// The model's two-oscillator closed form (tanh) holds through the public
/// simulate API as well.
#[test]
fn pair_closed_form_through_public_api() {
    let vp = 1.5;
    let x0 = 0.8;
    let model = PomBuilder::new(2)
        .topology(Topology::ring(2, &[1]))
        .potential(Potential::Tanh)
        .compute_time(1.0)
        .comm_time(0.0)
        .coupling(vp)
        .build()
        .unwrap();
    let run = model
        .simulate_with(
            InitialCondition::Phases(vec![0.0, x0]),
            &SimOptions::new(3.0).samples(50),
        )
        .unwrap();
    let last = run.trajectory().last().unwrap();
    let x = last[1] - last[0];
    let exact = (x0.sinh() * (-vp * 3.0f64).exp()).asinh();
    assert!((x - exact).abs() < 1e-6, "x = {x}, exact = {exact}");
}
