//! Integration tests: the oscillator model and the MPI simulator agree on
//! the paper's Fig. 2 phenomenology (the central claim of the paper).

use pom::analysis::{fig2_verdict, DesyncVerdict};
use pom::core::Fig2Panel;

#[test]
fn all_four_corner_cases_match_the_paper() {
    let verdicts: Vec<_> = Fig2Panel::all().iter().map(|&p| fig2_verdict(p)).collect();
    for v in &verdicts {
        assert!(
            v.agrees(),
            "panel ({}) disagrees with the paper: {v:?}",
            v.panel.letter()
        );
    }

    // Scalable panels: both substrates synchronized.
    assert_eq!(verdicts[0].model, DesyncVerdict::Synchronized); // a
    assert_eq!(verdicts[2].sim, DesyncVerdict::Synchronized); // c

    // Bottlenecked panels: both substrates desynchronized.
    assert_eq!(verdicts[1].model, DesyncVerdict::Desynchronized); // b
    assert_eq!(verdicts[3].sim, DesyncVerdict::Desynchronized); // d

    // §5.1.1: the wider stencil speeds the wave up on both substrates.
    let speed = |v: &pom::analysis::Fig2Verdict| {
        (
            v.model_wave_speed.expect("model wave"),
            v.sim_wave_speed.expect("sim wave"),
        )
    };
    let (ma, sa) = speed(&verdicts[0]);
    let (mc, sc) = speed(&verdicts[2]);
    assert!(mc > 1.3 * ma, "model: panel c speed {mc} vs a {ma}");
    assert!(sc > 1.3 * sa, "sim: panel c speed {sc} vs a {sa}");

    // §5.2.2: stiffer communication (panel d) shrinks the local phase gap
    // relative to panel b on the model side.
    assert!(
        verdicts[3].model_adjacent_gap < 0.6 * verdicts[1].model_adjacent_gap,
        "gap d {} vs b {}",
        verdicts[3].model_adjacent_gap,
        verdicts[1].model_adjacent_gap
    );
}
