//! End-to-end pipeline tests: model → solver → analysis → visualization,
//! and simulator → trace → analysis → visualization, exercising every
//! crate through the facade.

use pom::analysis::{sim_wave_arrivals, wave_speed_fit};
use pom::core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom::kernels::Kernel;
use pom::mpisim::{idle_wave_run, IdleWaveConfig};
use pom::topology::{ClusterSpec, Placement, Topology};
use pom::viz::{
    ascii_chart, circle_ascii, circle_svg, gantt_ascii, gantt_svg, phase_timeline_csv,
    potential_timeline_csv, write_series,
};

#[test]
fn model_pipeline_produces_all_three_views() {
    let model = PomBuilder::new(10)
        .topology(Topology::ring(10, &[-1, 1]))
        .potential(Potential::desync(2.0))
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(5.0)
        .normalization(Normalization::ByDegree)
        .build()
        .unwrap();
    let run = model
        .simulate_with(
            InitialCondition::RandomSpread {
                amplitude: 0.3,
                seed: 2,
            },
            &SimOptions::new(80.0).samples(160),
        )
        .unwrap();

    // View (i): circle diagram.
    let circle = circle_ascii(run.trajectory().last().unwrap(), 21);
    assert!(circle.contains('o') || circle.contains('@'));
    let svg = circle_svg(run.trajectory().last().unwrap(), None, 240.0);
    assert!(svg.contains("<circle"));

    // View (ii): phase-difference timeline.
    let csv = phase_timeline_csv(&run);
    assert!(csv.starts_with("t,d0,"));
    assert_eq!(csv.lines().count(), 161);

    // View (iii): potential timeline.
    let csv = potential_timeline_csv(&run, &model);
    assert!(csv.starts_with("t,v0,"));

    // Standard view: lagger-normalized phases, all non-negative.
    let norm = run.final_normalized();
    assert!(norm.iter().all(|&v| v >= 0.0));
    assert!(norm.contains(&0.0));

    // Series exports.
    let chart = ascii_chart("r(t)", &run.order_parameter_series(), 60, 10);
    assert!(chart.contains('*'));
    let csv = write_series(("t", "r"), &run.order_parameter_series());
    assert!(csv.lines().count() > 100);
}

#[test]
fn simulator_pipeline_detects_and_renders_the_wave() {
    let cfg = IdleWaveConfig {
        n_ranks: 16,
        iterations: 18,
        ..IdleWaveConfig::default()
    };
    let (pert, base) = idle_wave_run(&cfg).unwrap();
    pert.check_invariants().unwrap();

    let arrivals = sim_wave_arrivals(&pert, &base, 2e-3);
    let fit = wave_speed_fit(&arrivals, cfg.delay_rank, 8);
    let speed = fit.mean_speed().expect("wave detected");
    // ±1 eager: about one rank per iteration ⇒ 1/t_comp ranks per second.
    let expect = 1.0 / cfg.t_comp;
    assert!(
        (speed - expect).abs() < 0.2 * expect,
        "speed {speed} vs expected ≈ {expect}"
    );

    let gantt = gantt_ascii(&pert, 80);
    assert_eq!(gantt.lines().count(), 17);
    assert!(gantt.contains('·'), "idle wave must be visible");
    let svg = gantt_svg(&pert, 640.0, 10.0);
    assert!(svg.matches("<rect").count() > 100);
}

#[test]
fn cross_substrate_timescales_are_consistent() {
    // One model time unit = one compute-communicate cycle; the simulator's
    // iteration period for the scalable kernel ≈ t_comp + latency. Check
    // that both runs complete ~N iterations in their respective units.
    let n = 12;
    let t_comp = 1e-3;
    let trace = {
        use pom::mpisim::{ProgramSpec, Simulator, WorkSpec};
        let prog = ProgramSpec::new(n, 20)
            .kernel(Kernel::pisolver())
            .work(WorkSpec::TargetSeconds(t_comp));
        Simulator::new(prog, Placement::packed(ClusterSpec::meggie(), n))
            .unwrap()
            .run()
            .unwrap()
    };
    let per_iter = trace.makespan() / 20.0;
    assert!(
        (per_iter - t_comp) / t_comp < 0.05,
        "per-iteration {per_iter}"
    );

    let model = PomBuilder::new(n)
        .topology(Topology::ring(n, &[-1, 1]))
        .potential(Potential::Tanh)
        .compute_time(0.9)
        .comm_time(0.1)
        .build()
        .unwrap();
    let run = model
        .simulate(InitialCondition::Synchronized, 20.0)
        .unwrap();
    // After 20 time units = 20 cycles, every phase advanced by 20·2π.
    let expected = 20.0 * model.omega();
    for (i, &p) in run.trajectory().last().unwrap().iter().enumerate() {
        assert!(
            (p - expected).abs() < 1e-6,
            "oscillator {i}: {p} vs {expected}"
        );
    }
}

#[test]
fn cli_smoke_through_library() {
    // The CLI crate is exercised end-to-end elsewhere; here we only check
    // the facade's pieces compose: a simulate-like flow driven by strings.
    let out = pom_cli::run_cli(["potentials", "sigma=1.5"]).unwrap();
    assert!(out.contains("first zero"));
    let out = pom_cli::run_cli(["scaling"]).unwrap();
    assert!(out.contains("STREAM"));
}
