//! Cluster hardware descriptions and rank placement.
//!
//! The paper's experiments ran on *Meggie* (§4): dual-socket nodes with
//! ten-core Intel Xeon "Broadwell" E5-2630v4 CPUs at 2.2 GHz, 68 GB/s
//! memory bandwidth per socket, connected by a fat-tree 100 Gbit/s
//! Omni-Path fabric. The artifact appendix also reports SuperMUC-NG.
//! We encode those published parameters as [`ClusterSpec`] presets; the MPI
//! simulator uses the spec plus a [`Placement`] to derive communication
//! latencies (intra-socket < inter-socket < inter-node) and per-socket
//! memory-bandwidth budgets.

/// Interconnect parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// One-way small-message latency between nodes, in seconds.
    pub latency_inter_node: f64,
    /// One-way latency between sockets of one node, in seconds.
    pub latency_inter_socket: f64,
    /// One-way latency within a socket (shared L3/memory), in seconds.
    pub latency_intra_socket: f64,
    /// Link bandwidth in bytes/second (per direction).
    pub bandwidth: f64,
    /// Messages up to this size use the eager protocol; larger ones use
    /// rendezvous.
    pub eager_threshold: usize,
}

/// Hardware description of one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Human-readable system name.
    pub name: &'static str,
    /// Sockets per node.
    pub sockets_per_node: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Nominal clock in Hz.
    pub core_freq: f64,
    /// Saturated memory bandwidth per socket, bytes/second.
    pub mem_bw_per_socket: f64,
    /// Peak double-precision FLOP/s per core (used by the kernel model).
    pub flops_per_core: f64,
    /// Interconnect parameters.
    pub network: NetworkSpec,
}

impl ClusterSpec {
    /// The paper's primary test system (*Meggie* at NHR@FAU, §4):
    /// dual-socket ten-core Broadwell at 2.2 GHz, 68 GB/s per socket,
    /// 100 Gbit/s Omni-Path.
    pub fn meggie() -> Self {
        ClusterSpec {
            name: "meggie",
            sockets_per_node: 2,
            cores_per_socket: 10,
            core_freq: 2.2e9,
            mem_bw_per_socket: 68.0e9,
            // Broadwell: 16 DP flops/cycle (2×AVX2 FMA) × 2.2 GHz.
            flops_per_core: 16.0 * 2.2e9,
            network: NetworkSpec {
                latency_inter_node: 1.6e-6,   // Omni-Path small-message
                latency_inter_socket: 0.4e-6, // QPI hop
                latency_intra_socket: 0.15e-6,
                bandwidth: 12.5e9, // 100 Gbit/s
                eager_threshold: 16 * 1024,
            },
        }
    }

    /// A SuperMUC-NG-like system (artifact appendix): dual-socket 24-core
    /// Skylake at 2.3 GHz (here: 2.3 GHz nominal), ~205 GB/s per node
    /// (~102 GB/s per socket), 100 Gbit/s OPA.
    pub fn supermuc_ng_like() -> Self {
        ClusterSpec {
            name: "supermuc-ng-like",
            sockets_per_node: 2,
            cores_per_socket: 24,
            core_freq: 2.3e9,
            mem_bw_per_socket: 102.0e9,
            flops_per_core: 32.0 * 2.3e9, // AVX-512, 2 FMA units
            network: NetworkSpec {
                latency_inter_node: 1.5e-6,
                latency_inter_socket: 0.4e-6,
                latency_intra_socket: 0.15e-6,
                bandwidth: 12.5e9,
                eager_threshold: 16 * 1024,
            },
        }
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }
}

/// Distance class of a rank pair in the cluster hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistanceClass {
    /// Same socket (shared memory controller).
    IntraSocket,
    /// Same node, different sockets.
    InterSocket,
    /// Different nodes (network hop).
    InterNode,
}

/// Block placement of `n_ranks` MPI ranks onto a cluster: consecutive ranks
/// fill cores of a socket, then the next socket, then the next node —
/// matching how `mpirun` places ranks by default and how the paper counts
/// "40 and 18 MPI processes on 4 and 2 sockets".
#[derive(Debug, Clone)]
pub struct Placement {
    spec: ClusterSpec,
    n_ranks: usize,
    ranks_per_socket: usize,
}

impl Placement {
    /// Place `n_ranks` ranks block-wise, `ranks_per_socket` per socket
    /// (clamped to the socket's core count).
    ///
    /// # Panics
    /// Panics if `n_ranks == 0` or `ranks_per_socket == 0`.
    pub fn block(spec: ClusterSpec, n_ranks: usize, ranks_per_socket: usize) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        assert!(ranks_per_socket > 0, "need at least one rank per socket");
        let rps = ranks_per_socket.min(spec.cores_per_socket);
        Placement {
            spec,
            n_ranks,
            ranks_per_socket: rps,
        }
    }

    /// Place `n_ranks` with fully packed sockets.
    pub fn packed(spec: ClusterSpec, n_ranks: usize) -> Self {
        let rps = spec.cores_per_socket;
        Self::block(spec, n_ranks, rps)
    }

    /// The cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Ranks per socket in this placement.
    pub fn ranks_per_socket(&self) -> usize {
        self.ranks_per_socket
    }

    /// Socket index (global across nodes) hosting `rank`.
    pub fn socket_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_socket
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.socket_of(rank) / self.spec.sockets_per_node
    }

    /// Number of sockets in use (ceil division).
    pub fn n_sockets(&self) -> usize {
        self.n_ranks.div_ceil(self.ranks_per_socket)
    }

    /// Number of nodes in use.
    pub fn n_nodes(&self) -> usize {
        self.n_sockets().div_ceil(self.spec.sockets_per_node)
    }

    /// Distance class between two ranks.
    pub fn distance_class(&self, a: usize, b: usize) -> DistanceClass {
        if self.socket_of(a) == self.socket_of(b) {
            DistanceClass::IntraSocket
        } else if self.node_of(a) == self.node_of(b) {
            DistanceClass::InterSocket
        } else {
            DistanceClass::InterNode
        }
    }

    /// One-way small-message latency between two ranks, per the spec.
    pub fn latency(&self, a: usize, b: usize) -> f64 {
        match self.distance_class(a, b) {
            DistanceClass::IntraSocket => self.spec.network.latency_intra_socket,
            DistanceClass::InterSocket => self.spec.network.latency_inter_socket,
            DistanceClass::InterNode => self.spec.network.latency_inter_node,
        }
    }

    /// Ranks hosted by global socket index `s`.
    pub fn ranks_on_socket(&self, s: usize) -> std::ops::Range<usize> {
        let lo = s * self.ranks_per_socket;
        let hi = ((s + 1) * self.ranks_per_socket).min(self.n_ranks);
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meggie_parameters_match_paper() {
        let m = ClusterSpec::meggie();
        assert_eq!(m.cores_per_socket, 10);
        assert_eq!(m.sockets_per_node, 2);
        assert_eq!(m.cores_per_node(), 20);
        assert!((m.mem_bw_per_socket - 68.0e9).abs() < 1.0);
        assert!((m.core_freq - 2.2e9).abs() < 1.0);
    }

    #[test]
    fn paper_run_40_ranks_on_4_sockets() {
        // §4: "40 MPI processes on 4 sockets" → 10 per socket, 2 nodes.
        let p = Placement::packed(ClusterSpec::meggie(), 40);
        assert_eq!(p.n_sockets(), 4);
        assert_eq!(p.n_nodes(), 2);
        assert_eq!(p.socket_of(0), 0);
        assert_eq!(p.socket_of(9), 0);
        assert_eq!(p.socket_of(10), 1);
        assert_eq!(p.socket_of(39), 3);
        assert_eq!(p.node_of(19), 0);
        assert_eq!(p.node_of(20), 1);
    }

    #[test]
    fn paper_run_18_ranks_on_2_sockets() {
        // §4: "18 MPI processes on 2 sockets" → 9 per socket, 1 node.
        let p = Placement::block(ClusterSpec::meggie(), 18, 9);
        assert_eq!(p.n_sockets(), 2);
        assert_eq!(p.n_nodes(), 1);
        assert_eq!(p.ranks_on_socket(0), 0..9);
        assert_eq!(p.ranks_on_socket(1), 9..18);
    }

    #[test]
    fn distance_classes_ordering() {
        let p = Placement::packed(ClusterSpec::meggie(), 40);
        assert_eq!(p.distance_class(0, 5), DistanceClass::IntraSocket);
        assert_eq!(p.distance_class(0, 15), DistanceClass::InterSocket);
        assert_eq!(p.distance_class(0, 25), DistanceClass::InterNode);
        // Latency grows with distance class.
        assert!(p.latency(0, 5) < p.latency(0, 15));
        assert!(p.latency(0, 15) < p.latency(0, 25));
    }

    #[test]
    fn ranks_per_socket_clamped_to_cores() {
        let p = Placement::block(ClusterSpec::meggie(), 40, 99);
        assert_eq!(p.ranks_per_socket(), 10);
    }

    #[test]
    fn partial_last_socket() {
        let p = Placement::block(ClusterSpec::meggie(), 25, 10);
        assert_eq!(p.n_sockets(), 3);
        assert_eq!(p.ranks_on_socket(2), 20..25);
    }

    #[test]
    fn supermuc_differs_from_meggie() {
        let s = ClusterSpec::supermuc_ng_like();
        let m = ClusterSpec::meggie();
        assert!(s.cores_per_socket > m.cores_per_socket);
        assert!(s.mem_bw_per_socket > m.mem_bw_per_socket);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Placement::packed(ClusterSpec::meggie(), 0);
    }
}
