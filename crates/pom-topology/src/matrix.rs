//! Sparse 0/1 topology matrices in compressed-sparse-row form.
//!
//! The coupling sum in Eq. (2) is evaluated once per oscillator per RHS
//! call; with `N` processes and bounded communication degree the CSR layout
//! makes that O(nnz) instead of O(N²) (the ablation bench
//! `bench_coupling` quantifies the gap against a dense matrix).

// Index-as-rank loops are intentional here (the index is the rank id).
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeSet;
use std::fmt;

/// How a topology was constructed — kept as metadata so that `κ` can use
/// the exact distance set for the patterns the paper defines it for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyKind {
    /// Periodic ring with a signed distance set: rank `i` communicates with
    /// `(i + d) mod N` for each `d` in the set.
    Ring {
        /// Signed rank-space distances (e.g. `[-1, 1]` or `[-2, -1, 1]`).
        distances: Vec<i32>,
    },
    /// Open chain (no wraparound): neighbors outside `0..N` are dropped.
    Chain {
        /// Signed rank-space distances.
        distances: Vec<i32>,
    },
    /// Two-dimensional Cartesian grid with a von-Neumann stencil.
    Grid2d {
        /// Grid extent in x.
        nx: usize,
        /// Grid extent in y.
        ny: usize,
        /// Periodic boundaries in both directions.
        periodic: bool,
    },
    /// Every oscillator coupled to every other (plain Kuramoto).
    AllToAll,
    /// Arbitrary edge list.
    Custom,
}

/// Sparse symmetric-or-not 0/1 coupling matrix `T_ij` (CSR).
///
/// Self-loops are never stored: a process does not wait on itself.
#[derive(Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    kind: TopologyKind,
}

/// Borrowed flat view of a [`Topology`]'s CSR storage (offsets + packed
/// `u32` column indices).
///
/// The right-hand-side kernels walk every row of the matrix once per
/// evaluation — millions of times per run. Handing them the two backing
/// arrays directly lets a kernel hoist the row-pointer loads out of inner
/// loops and slice the row range for chunked parallel execution, instead of
/// calling [`Topology::neighbors`] per oscillator. Row `i` of the view is
/// exactly `neighbors(i)`: same indices, same (ascending) order.
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    n: usize,
    row_ptr: &'a [u32],
    col_idx: &'a [u32],
}

impl<'a> CsrView<'a> {
    /// Number of rows (oscillators).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row offsets, length `n + 1`.
    pub fn row_ptr(&self) -> &'a [u32] {
        self.row_ptr
    }

    /// Packed column indices, length `nnz`.
    pub fn col_idx(&self) -> &'a [u32] {
        self.col_idx
    }

    /// Columns of row `i` (identical slice to `Topology::neighbors(i)`).
    #[inline]
    pub fn row(&self, i: usize) -> &'a [u32] {
        &self.col_idx[self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize]
    }
}

/// Index-free description of a periodic-ring topology: every row `i` is
/// `{(i + o) mod n : o ∈ offsets}`.
///
/// For ring topologies the CSR index array carries no information beyond
/// the (deduplicated, non-zero) forward offsets, so large-`N` kernels can
/// compute neighbor indices on the fly — no index loads, no gather — and
/// split the wrap-around rows from the contiguous bulk. Built via
/// [`Topology::ring_stencil`]; the neighbor *set* per row is identical to
/// [`Topology::neighbors`] (the iteration order differs: by offset, not by
/// ascending index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingStencil {
    n: usize,
    /// Forward modular offsets, sorted ascending, each in `1..n`.
    offsets: Vec<u32>,
}

impl RingStencil {
    /// Number of oscillators.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sorted forward offsets (each in `1..n`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Degree of every row (uniform by translational symmetry).
    pub fn degree(&self) -> usize {
        self.offsets.len()
    }

    /// Neighbor of row `i` along `offset` (must come from
    /// [`RingStencil::offsets`]).
    #[inline]
    pub fn neighbor(&self, i: usize, offset: u32) -> usize {
        let j = i + offset as usize;
        if j >= self.n {
            j - self.n
        } else {
            j
        }
    }
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("n", &self.n)
            .field("nnz", &self.nnz())
            .field("kind", &self.kind)
            .finish()
    }
}

impl Topology {
    /// Build from per-row sorted neighbor sets (internal).
    fn from_rows(n: usize, rows: Vec<BTreeSet<u32>>, kind: TopologyKind) -> Self {
        debug_assert_eq!(rows.len(), n);
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0u32);
        for row in &rows {
            col_idx.extend(row.iter().copied());
            row_ptr.push(col_idx.len() as u32);
        }
        Self {
            n,
            row_ptr,
            col_idx,
            kind,
        }
    }

    /// Periodic ring of `n` ranks with the signed distance set `distances`.
    ///
    /// `d` and duplicate entries are deduplicated; `d ≡ 0 (mod n)` entries
    /// are ignored (no self-coupling). This is the topology of the paper's
    /// Fig. 2: `&[-1, 1]` for the top row, `&[-2, -1, 1]` for the bottom.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn ring(n: usize, distances: &[i32]) -> Self {
        assert!(n > 0, "ring topology needs at least one rank");
        let mut rows = vec![BTreeSet::new(); n];
        for i in 0..n {
            for &d in distances {
                let j = (i as i64 + d as i64).rem_euclid(n as i64) as usize;
                if j != i {
                    rows[i].insert(j as u32);
                }
            }
        }
        Self::from_rows(
            n,
            rows,
            TopologyKind::Ring {
                distances: dedup(distances),
            },
        )
    }

    /// Open chain: like [`Topology::ring`] but neighbors falling outside
    /// `0..n` are dropped instead of wrapping.
    pub fn chain(n: usize, distances: &[i32]) -> Self {
        assert!(n > 0, "chain topology needs at least one rank");
        let mut rows = vec![BTreeSet::new(); n];
        for i in 0..n {
            for &d in distances {
                let j = i as i64 + d as i64;
                if (0..n as i64).contains(&j) && j != i as i64 {
                    rows[i].insert(j as u32);
                }
            }
        }
        Self::from_rows(
            n,
            rows,
            TopologyKind::Chain {
                distances: dedup(distances),
            },
        )
    }

    /// Full coupling: the connectivity of the plain Kuramoto model, which
    /// the paper argues is *unsuitable* for parallel programs (§2.2.2) —
    /// provided for the contrast experiment.
    pub fn all_to_all(n: usize) -> Self {
        assert!(n > 0);
        let mut rows = vec![BTreeSet::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    rows[i].insert(j as u32);
                }
            }
        }
        Self::from_rows(n, rows, TopologyKind::AllToAll)
    }

    /// 2-D Cartesian grid (`nx × ny` ranks, row-major), 4-point stencil.
    pub fn grid2d(nx: usize, ny: usize, periodic: bool) -> Self {
        assert!(nx > 0 && ny > 0);
        let n = nx * ny;
        let mut rows = vec![BTreeSet::new(); n];
        let idx = |x: usize, y: usize| (y * nx + x) as u32;
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y) as usize;
                let mut push = |xx: i64, yy: i64| {
                    let (xx, yy) = if periodic {
                        (xx.rem_euclid(nx as i64), yy.rem_euclid(ny as i64))
                    } else {
                        if !(0..nx as i64).contains(&xx) || !(0..ny as i64).contains(&yy) {
                            return;
                        }
                        (xx, yy)
                    };
                    let j = idx(xx as usize, yy as usize);
                    if j as usize != i {
                        rows[i].insert(j);
                    }
                };
                push(x as i64 - 1, y as i64);
                push(x as i64 + 1, y as i64);
                push(x as i64, y as i64 - 1);
                push(x as i64, y as i64 + 1);
            }
        }
        Self::from_rows(n, rows, TopologyKind::Grid2d { nx, ny, periodic })
    }

    /// Arbitrary directed edge list `(i, j)` meaning "`i` depends on `j`"
    /// (`T_ij = 1`). Self-loops and duplicates are dropped.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        assert!(n > 0);
        let mut rows = vec![BTreeSet::new(); n];
        for &(i, j) in edges {
            assert!(i < n && j < n, "edge ({i}, {j}) out of range for n = {n}");
            if i != j {
                rows[i].insert(j as u32);
            }
        }
        Self::from_rows(n, rows, TopologyKind::Custom)
    }

    /// Number of oscillators/ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored couplings (directed).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Construction metadata.
    pub fn kind(&self) -> &TopologyKind {
        &self.kind
    }

    /// Neighbors of rank `i` (sorted ascending).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        &self.col_idx[lo..hi]
    }

    /// Flat borrowed view of the CSR storage for hot-loop kernels.
    pub fn csr(&self) -> CsrView<'_> {
        CsrView {
            n: self.n,
            row_ptr: &self.row_ptr,
            col_idx: &self.col_idx,
        }
    }

    /// Index-free stencil description, available only for periodic rings
    /// (the topology family where every row is a translate of row 0).
    ///
    /// Returns `None` for chains, grids, all-to-all and custom edge lists —
    /// and for the degenerate `n == 1` ring (no neighbors at all).
    pub fn ring_stencil(&self) -> Option<RingStencil> {
        let TopologyKind::Ring { ref distances } = self.kind else {
            return None;
        };
        let offsets: BTreeSet<u32> = distances
            .iter()
            .map(|&d| (d as i64).rem_euclid(self.n as i64) as u32)
            .filter(|&o| o != 0)
            .collect();
        if offsets.is_empty() {
            return None;
        }
        Some(RingStencil {
            n: self.n,
            offsets: offsets.into_iter().collect(),
        })
    }

    /// Out-degree of rank `i`.
    pub fn degree(&self, i: usize) -> usize {
        (self.row_ptr[i + 1] - self.row_ptr[i]) as usize
    }

    /// Whether `T_ij = 1`.
    pub fn connected(&self, i: usize, j: usize) -> bool {
        self.neighbors(i).binary_search(&(j as u32)).is_ok()
    }

    /// `T = Tᵀ`? Bulk-synchronous exchanges are symmetric; one-sided
    /// pipelines are not.
    pub fn is_symmetric(&self) -> bool {
        (0..self.n).all(|i| {
            self.neighbors(i)
                .iter()
                .all(|&j| self.connected(j as usize, i))
        })
    }

    /// Iterate over all directed edges `(i, j)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| self.neighbors(i).iter().map(move |&j| (i, j as usize)))
    }

    /// Dense copy of the matrix (row-major), for tests and ablations.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.n]; self.n];
        for (i, j) in self.edges() {
            m[i][j] = 1.0;
        }
        m
    }

    /// Minimal rank-space distance `|i − j|` respecting ring wraparound for
    /// periodic kinds (used by `κ` fallbacks and by the network model to
    /// scale per-hop latency).
    pub fn rank_distance(&self, i: usize, j: usize) -> usize {
        let lin = i.abs_diff(j);
        match self.kind {
            TopologyKind::Ring { .. } | TopologyKind::AllToAll => lin.min(self.n - lin),
            _ => lin,
        }
    }

    /// Is the topology connected as an undirected graph? (An unconnected
    /// program never propagates idle waves across components.)
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            // Treat edges as undirected for reachability.
            for &j in self.neighbors(i) {
                let j = j as usize;
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
            for k in 0..self.n {
                if !seen[k] && self.connected(k, i) {
                    seen[k] = true;
                    count += 1;
                    stack.push(k);
                }
            }
        }
        count == self.n
    }
}

fn dedup(distances: &[i32]) -> Vec<i32> {
    let set: BTreeSet<i32> = distances.iter().copied().filter(|&d| d != 0).collect();
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_next_neighbor() {
        let t = Topology::ring(5, &[-1, 1]);
        assert_eq!(t.n(), 5);
        assert_eq!(t.nnz(), 10);
        assert_eq!(t.neighbors(0), &[1, 4]);
        assert_eq!(t.neighbors(2), &[1, 3]);
        assert!(t.is_symmetric());
        assert!(t.is_connected());
    }

    #[test]
    fn ring_with_asymmetric_distance_set() {
        // Fig. 2 bottom row: d = ±1, −2.
        let t = Topology::ring(6, &[-2, -1, 1]);
        assert_eq!(t.neighbors(3), &[1, 2, 4]);
        assert_eq!(t.degree(3), 3);
        assert!(!t.is_symmetric()); // −2 has no +2 partner
        assert!(t.is_connected());
    }

    #[test]
    fn ring_wraps_and_ignores_self_coupling() {
        let t = Topology::ring(4, &[0, 4, 1]); // 0 and 4 ≡ 0 (mod 4) dropped
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.nnz(), 4);
    }

    #[test]
    fn chain_drops_out_of_range() {
        let t = Topology::chain(5, &[-1, 1]);
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(4), &[3]);
        assert_eq!(t.neighbors(2), &[1, 3]);
        assert_eq!(t.nnz(), 8);
        assert!(t.is_symmetric());
    }

    #[test]
    fn all_to_all_full_degree() {
        let t = Topology::all_to_all(6);
        for i in 0..6 {
            assert_eq!(t.degree(i), 5);
        }
        assert!(t.is_symmetric());
        assert_eq!(t.kind(), &TopologyKind::AllToAll);
    }

    #[test]
    fn grid2d_open_corner_and_interior() {
        let t = Topology::grid2d(3, 3, false);
        // Corner (0,0) = rank 0: right and up only.
        assert_eq!(t.neighbors(0), &[1, 3]);
        // Center rank 4: all four.
        assert_eq!(t.neighbors(4), &[1, 3, 5, 7]);
        assert!(t.is_symmetric());
        assert!(t.is_connected());
    }

    #[test]
    fn grid2d_periodic_uniform_degree() {
        let t = Topology::grid2d(4, 3, true);
        for i in 0..12 {
            assert_eq!(t.degree(i), 4, "rank {i}");
        }
    }

    #[test]
    fn grid2d_periodic_small_extent_dedups() {
        // nx = 2 with periodic wrap: left and right neighbor coincide.
        let t = Topology::grid2d(2, 2, true);
        for i in 0..4 {
            assert_eq!(t.degree(i), 2, "rank {i}");
        }
    }

    #[test]
    fn from_edges_directed() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 1), (2, 2)]);
        assert_eq!(t.nnz(), 3); // duplicate + self-loop dropped
        assert!(t.connected(0, 1));
        assert!(!t.connected(1, 0));
        assert!(!t.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_bounds_checked() {
        Topology::from_edges(3, &[(0, 3)]);
    }

    #[test]
    fn dense_roundtrip() {
        let t = Topology::ring(4, &[-1, 1]);
        let d = t.to_dense();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(d[i][j] == 1.0, t.connected(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn rank_distance_respects_wraparound() {
        let ring = Topology::ring(10, &[-1, 1]);
        assert_eq!(ring.rank_distance(0, 9), 1);
        assert_eq!(ring.rank_distance(2, 7), 5);
        let chain = Topology::chain(10, &[-1, 1]);
        assert_eq!(chain.rank_distance(0, 9), 9);
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert!(!t.is_connected());
    }

    #[test]
    fn edges_iterator_counts_nnz() {
        let t = Topology::ring(7, &[-2, -1, 1]);
        assert_eq!(t.edges().count(), t.nnz());
        for (i, j) in t.edges() {
            assert!(t.connected(i, j));
        }
    }

    #[test]
    fn single_rank_topologies() {
        let t = Topology::ring(1, &[-1, 1]);
        assert_eq!(t.nnz(), 0);
        assert!(t.is_connected());
        let t = Topology::all_to_all(1);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn csr_view_rows_match_neighbors() {
        let t = Topology::ring(9, &[-2, -1, 1]);
        let v = t.csr();
        assert_eq!(v.n(), 9);
        assert_eq!(v.row_ptr().len(), 10);
        assert_eq!(v.col_idx().len(), t.nnz());
        for i in 0..9 {
            assert_eq!(v.row(i), t.neighbors(i), "row {i}");
        }
    }

    #[test]
    fn ring_stencil_reproduces_neighbor_sets() {
        let t = Topology::ring(10, &[-2, -1, 1]);
        let s = t.ring_stencil().expect("ring has a stencil");
        assert_eq!(s.n(), 10);
        assert_eq!(s.offsets(), &[1, 8, 9]); // 1, −2 ≡ 8, −1 ≡ 9 (mod 10)
        for i in 0..10 {
            let mut via_stencil: Vec<u32> = s
                .offsets()
                .iter()
                .map(|&o| s.neighbor(i, o) as u32)
                .collect();
            via_stencil.sort_unstable();
            assert_eq!(via_stencil, t.neighbors(i), "row {i}");
        }
    }

    #[test]
    fn ring_stencil_dedups_congruent_distances() {
        // On n = 4: −1 ≡ 3 and 3 are one offset; 4 ≡ 0 is dropped.
        let t = Topology::ring(4, &[-1, 3, 4, 1]);
        let s = t.ring_stencil().unwrap();
        assert_eq!(s.offsets(), &[1, 3]);
        assert_eq!(s.degree(), t.degree(0));
    }

    #[test]
    fn non_ring_topologies_have_no_stencil() {
        assert!(Topology::chain(6, &[-1, 1]).ring_stencil().is_none());
        assert!(Topology::all_to_all(5).ring_stencil().is_none());
        assert!(Topology::grid2d(3, 3, true).ring_stencil().is_none());
        assert!(Topology::from_edges(4, &[(0, 1)]).ring_stencil().is_none());
        // Degenerate ring: every distance congruent to 0.
        assert!(Topology::ring(2, &[2, -2]).ring_stencil().is_none());
    }

    #[test]
    fn debug_shows_summary() {
        let t = Topology::ring(5, &[-1, 1]);
        let s = format!("{t:?}");
        assert!(s.contains("nnz"));
        assert!(s.contains("Ring"));
    }
}
