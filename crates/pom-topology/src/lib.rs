//! Topology matrices `T_ij` and cluster hardware descriptions.
//!
//! Paper Eq. (2) couples oscillator `i` to oscillator `j` whenever
//! `T_ij = 1`. The topology matrix "maps the communication structure and
//! thus the inter-process dependencies of the program onto the oscillator
//! model" (§1.2). This crate provides:
//!
//! * [`Topology`] — a CSR sparse 0/1 matrix with constructors for the
//!   patterns used in the paper: periodic rings and open chains with signed
//!   *distance sets* (`d = ±1` and `d = ±1, −2` are Fig. 2's two cases),
//!   Cartesian grids, all-to-all (the plain Kuramoto coupling the paper
//!   contrasts against), and arbitrary edge lists.
//! * [`kappa`] — the paper's `κ` parameter: the sum over communication
//!   distances, or only the *longest* distance when all outstanding
//!   requests are grouped in one `MPI_Waitall` (paper §3.1, citing
//!   [Afzal et al. 2021]).
//! * [`cluster`] — hardware descriptions ([`cluster::ClusterSpec`]) with the
//!   published parameters of the paper's test systems (*Meggie*,
//!   *SuperMUC-NG*-like), and rank→core placements used by the MPI
//!   simulator to classify communication distances.

pub mod cluster;
pub mod kappa;
pub mod matrix;

pub use cluster::{ClusterSpec, DistanceClass, NetworkSpec, Placement};
pub use kappa::{kappa_for, WaitMode};
pub use matrix::{CsrView, RingStencil, Topology, TopologyKind};
