//! The paper's `κ` parameter: communication-distance weight of the coupling.
//!
//! From §3.1: the coupling strength is `v_p = β·κ / (t_comp + t_comm)` where
//! `κ` is "the sum over all communication distances. However, if the
//! outstanding non-blocking MPI requests of all communication partners are
//! grouped in the same `MPI_Waitall`, the parameter `κ` becomes equal to
//! \[the\] longest distance only" [Afzal et al. 2021].
//!
//! `β` itself reflects the point-to-point protocol: 1 for eager, 2 for
//! rendezvous (the sender stalls until the receiver posts the matching
//! receive, doubling the dependency range per cycle).

use crate::matrix::{Topology, TopologyKind};

/// How a rank waits for its outstanding communication requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WaitMode {
    /// Each request is completed individually (`MPI_Wait` per request):
    /// every communication distance contributes — `κ = Σ |d|`.
    #[default]
    Individual,
    /// All requests complete in a single `MPI_Waitall`: only the longest
    /// dependency matters — `κ = max |d|`.
    Waitall,
}

/// `κ` for an explicit signed distance set.
///
/// Returns 0 for an empty set (free-running, uncoupled processes).
pub fn kappa_for(distances: &[i32], mode: WaitMode) -> f64 {
    match mode {
        WaitMode::Individual => distances.iter().map(|d| d.unsigned_abs() as f64).sum(),
        WaitMode::Waitall => distances
            .iter()
            .map(|d| d.unsigned_abs())
            .max()
            .unwrap_or(0) as f64,
    }
}

/// `κ` for a topology.
///
/// For [`TopologyKind::Ring`]/[`TopologyKind::Chain`] the exact distance
/// set is used. For other kinds `κ` falls back to the average over ranks of
/// the per-rank rank-space distance aggregate (sum or max, by `mode`) —
/// the natural generalization consistent with the explicit formula on
/// rings.
pub fn kappa_of_topology(topo: &Topology, mode: WaitMode) -> f64 {
    match topo.kind() {
        TopologyKind::Ring { distances } | TopologyKind::Chain { distances } => {
            kappa_for(distances, mode)
        }
        _ => {
            let n = topo.n();
            if n == 0 {
                return 0.0;
            }
            let mut acc = 0.0;
            for i in 0..n {
                let dists = topo
                    .neighbors(i)
                    .iter()
                    .map(|&j| topo.rank_distance(i, j as usize));
                let v = match mode {
                    WaitMode::Individual => dists.sum::<usize>() as f64,
                    WaitMode::Waitall => dists.max().unwrap_or(0) as f64,
                };
                acc += v;
            }
            acc / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kappa_next_neighbor() {
        // d = ±1: sum = 2, waitall max = 1.
        assert_eq!(kappa_for(&[-1, 1], WaitMode::Individual), 2.0);
        assert_eq!(kappa_for(&[-1, 1], WaitMode::Waitall), 1.0);
    }

    #[test]
    fn kappa_fig2_bottom_row() {
        // d = ±1, −2: sum = 4, waitall max = 2.
        assert_eq!(kappa_for(&[-2, -1, 1], WaitMode::Individual), 4.0);
        assert_eq!(kappa_for(&[-2, -1, 1], WaitMode::Waitall), 2.0);
    }

    #[test]
    fn kappa_empty_set_is_zero() {
        assert_eq!(kappa_for(&[], WaitMode::Individual), 0.0);
        assert_eq!(kappa_for(&[], WaitMode::Waitall), 0.0);
    }

    #[test]
    fn kappa_of_ring_uses_distance_set() {
        let t = Topology::ring(40, &[-2, -1, 1]);
        assert_eq!(kappa_of_topology(&t, WaitMode::Individual), 4.0);
        assert_eq!(kappa_of_topology(&t, WaitMode::Waitall), 2.0);
    }

    #[test]
    fn kappa_of_custom_falls_back_to_rank_distances() {
        // Directed pipeline 0→1→2→3: each rank (except the last) has one
        // neighbor at distance 1; rank 3 has none.
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let k = kappa_of_topology(&t, WaitMode::Individual);
        assert!((k - 0.75).abs() < 1e-12);
        assert_eq!(kappa_of_topology(&t, WaitMode::Waitall), 0.75);
    }

    #[test]
    fn kappa_all_to_all_grows_with_n() {
        let k8 = kappa_of_topology(&Topology::all_to_all(8), WaitMode::Waitall);
        let k16 = kappa_of_topology(&Topology::all_to_all(16), WaitMode::Waitall);
        assert!(k16 > k8, "longest distance grows with N: {k8} vs {k16}");
        // For even N the farthest rank is N/2 away (ring metric).
        assert_eq!(k8, 4.0);
        assert_eq!(k16, 8.0);
    }

    #[test]
    fn waitall_never_exceeds_individual() {
        for dists in [vec![-1, 1], vec![-2, -1, 1], vec![-5, 3], vec![7]] {
            let t = Topology::ring(32, &dists);
            let ind = kappa_of_topology(&t, WaitMode::Individual);
            let wa = kappa_of_topology(&t, WaitMode::Waitall);
            assert!(wa <= ind, "{dists:?}: waitall {wa} > individual {ind}");
        }
    }
}
