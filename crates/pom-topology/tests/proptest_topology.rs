//! Property-based invariants for topology construction.

// Index-as-rank loops are intentional here (the index is the rank id).
#![allow(clippy::needless_range_loop)]

use pom_topology::{kappa_for, Topology, WaitMode};
use proptest::prelude::*;

fn distance_set() -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec((-5i32..=5).prop_filter("nonzero", |d| *d != 0), 1..5)
}

proptest! {
    /// Rings with symmetric distance sets are symmetric matrices.
    #[test]
    fn ring_symmetric_distance_set_is_symmetric(n in 3usize..50, ds in distance_set()) {
        let mut sym: Vec<i32> = ds.iter().flat_map(|&d| [d, -d]).collect();
        sym.sort_unstable();
        let t = Topology::ring(n, &sym);
        prop_assert!(t.is_symmetric());
    }

    /// No self-loops, no out-of-range columns, sorted unique neighbors.
    #[test]
    fn ring_structural_invariants(n in 1usize..60, ds in distance_set()) {
        let t = Topology::ring(n, &ds);
        for i in 0..n {
            let nb = t.neighbors(i);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted/dup row {i}");
            prop_assert!(nb.iter().all(|&j| (j as usize) < n && j as usize != i));
        }
    }

    /// Every rank of a ring has the same degree (translational symmetry).
    #[test]
    fn ring_degree_uniform(n in 2usize..60, ds in distance_set()) {
        let t = Topology::ring(n, &ds);
        let d0 = t.degree(0);
        for i in 1..n {
            prop_assert_eq!(t.degree(i), d0);
        }
    }

    /// A chain is always a sub-topology of the ring with the same distances.
    #[test]
    fn chain_subset_of_ring(n in 2usize..40, ds in distance_set()) {
        let ring = Topology::ring(n, &ds);
        let chain = Topology::chain(n, &ds);
        for (i, j) in chain.edges() {
            prop_assert!(ring.connected(i, j), "chain edge ({i},{j}) missing in ring");
        }
        prop_assert!(chain.nnz() <= ring.nnz());
    }

    /// κ(waitall) = max ≤ κ(individual) = sum, with equality only for
    /// singleton distance magnitude sets.
    #[test]
    fn kappa_order(ds in distance_set()) {
        let sum = kappa_for(&ds, WaitMode::Individual);
        let max = kappa_for(&ds, WaitMode::Waitall);
        prop_assert!(max <= sum);
        let mags: std::collections::BTreeSet<u32> =
            ds.iter().map(|d| d.unsigned_abs()).collect();
        // Note duplicates in `ds` still contribute to the sum; equality
        // therefore requires a single element overall.
        if ds.len() == 1 && mags.len() == 1 {
            prop_assert_eq!(max, sum);
        }
    }

    /// Dense and sparse representations agree.
    #[test]
    fn dense_agrees_with_sparse(n in 2usize..25, ds in distance_set()) {
        let t = Topology::ring(n, &ds);
        let dense = t.to_dense();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(dense[i][j] == 1.0, t.connected(i, j));
            }
        }
    }

    /// Edge-list roundtrip: rebuilding a topology from its own edge list
    /// yields the identical connectivity.
    #[test]
    fn edge_roundtrip(n in 2usize..30, ds in distance_set()) {
        let t = Topology::ring(n, &ds);
        let edges: Vec<(usize, usize)> = t.edges().collect();
        let t2 = Topology::from_edges(n, &edges);
        prop_assert_eq!(t.nnz(), t2.nnz());
        for (i, j) in t.edges() {
            prop_assert!(t2.connected(i, j));
        }
    }

    /// The flat CSR view is the identity on `neighbors(i)`: same slices,
    /// same order, for every topology family.
    #[test]
    fn csr_view_identical_to_neighbors(n in 1usize..50, ds in distance_set()) {
        for t in [Topology::ring(n, &ds), Topology::chain(n, &ds)] {
            let v = t.csr();
            prop_assert_eq!(v.n(), t.n());
            let mut nnz = 0;
            for i in 0..n {
                prop_assert_eq!(v.row(i), t.neighbors(i), "row {}", i);
                nnz += v.row(i).len();
            }
            prop_assert_eq!(nnz, t.nnz());
        }
    }

    /// The ring stencil reproduces every row's neighbor *set* exactly
    /// (iteration order differs, membership must not).
    #[test]
    fn ring_stencil_matches_neighbor_sets(n in 1usize..60, ds in distance_set()) {
        let t = Topology::ring(n, &ds);
        match t.ring_stencil() {
            None => {
                // Stencil only degenerates when the ring has no edges.
                prop_assert_eq!(t.nnz(), 0);
            }
            Some(s) => {
                prop_assert_eq!(s.n(), n);
                // Offsets sorted, unique, in 1..n.
                prop_assert!(s.offsets().windows(2).all(|w| w[0] < w[1]));
                prop_assert!(s.offsets().iter().all(|&o| o >= 1 && (o as usize) < n));
                for i in 0..n {
                    let mut via: Vec<u32> = s
                        .offsets()
                        .iter()
                        .map(|&o| s.neighbor(i, o) as u32)
                        .collect();
                    via.sort_unstable();
                    prop_assert_eq!(via.as_slice(), t.neighbors(i), "row {}", i);
                }
            }
        }
    }
}
