//! Property-based invariants of the MPI simulator: for arbitrary programs
//! the run must terminate without deadlock, produce a structurally valid
//! trace, and respect basic conservation laws.

use pom_kernels::Kernel;
use pom_mpisim::{MpiProtocol, ProgramSpec, SimDelay, Simulator, WorkSpec};
use pom_topology::{ClusterSpec, Placement};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    prop_oneof![
        Just(Kernel::pisolver()),
        Just(Kernel::stream_triad()),
        Just(Kernel::schoenauer_slow()),
    ]
}

fn distances_strategy() -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec((-3i32..=3).prop_filter("nonzero", |d| *d != 0), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid program terminates with a structurally sound trace.
    #[test]
    fn simulation_always_terminates_cleanly(
        n in 2usize..24,
        iters in 1usize..12,
        kernel in kernel_strategy(),
        distances in distances_strategy(),
        rendezvous in any::<bool>(),
        noise in 0.0f64..2e-4,
    ) {
        let protocol = if rendezvous { MpiProtocol::Rendezvous } else { MpiProtocol::Eager };
        let prog = ProgramSpec::new(n, iters)
            .kernel(kernel)
            .work(WorkSpec::TargetSeconds(5e-4))
            .distances(distances)
            .protocol(protocol)
            .noise(noise, 99);
        let placement = Placement::packed(ClusterSpec::meggie(), n);
        let trace = Simulator::new(prog, placement).unwrap().run().unwrap();
        prop_assert_eq!(trace.n_ranks(), n);
        prop_assert_eq!(trace.n_iterations(), iters);
        prop_assert!(trace.check_invariants().is_ok(),
            "{:?}", trace.check_invariants());
        prop_assert!(trace.makespan() > 0.0);
    }

    /// Injected delays never make the run *shorter*, and every rank's
    /// compute time accounts for at least its nominal work.
    #[test]
    fn delays_are_monotone(
        n in 4usize..16,
        delay_rank in 0usize..4,
        delay_iter in 0usize..4,
        extra in 1e-4f64..5e-3,
    ) {
        let base_prog = ProgramSpec::new(n, 8).work(WorkSpec::TargetSeconds(5e-4));
        let placement = Placement::packed(ClusterSpec::meggie(), n);
        let base = Simulator::new(base_prog.clone(), placement.clone())
            .unwrap().run().unwrap();
        let injected = Simulator::new(
            base_prog.inject(SimDelay { rank: delay_rank, iteration: delay_iter, extra_seconds: extra }),
            placement,
        ).unwrap().run().unwrap();
        prop_assert!(injected.makespan() >= base.makespan() - 1e-12);
        // The delayed rank computes at least `extra` longer in total.
        let dc = injected.rank(delay_rank).total_compute()
            - base.rank(delay_rank).total_compute();
        prop_assert!((dc - extra).abs() < 1e-9, "extra compute {dc} vs {extra}");
    }

    /// Determinism: the same program produces bit-identical traces.
    #[test]
    fn runs_are_deterministic(
        n in 2usize..12,
        kernel in kernel_strategy(),
        noise in 0.0f64..1e-4,
    ) {
        let mk = || {
            let prog = ProgramSpec::new(n, 6)
                .kernel(kernel)
                .work(WorkSpec::TargetSeconds(5e-4))
                .noise(noise, 7);
            Simulator::new(prog, Placement::packed(ClusterSpec::meggie(), n))
                .unwrap().run().unwrap()
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.makespan(), b.makespan());
        for r in 0..n {
            prop_assert_eq!(a.rank(r).iter_end(5), b.rank(r).iter_end(5));
        }
    }

    /// Iteration ends are non-decreasing in the iteration index for every
    /// rank (time moves forward).
    #[test]
    fn iteration_ends_monotone(
        n in 2usize..16,
        kernel in kernel_strategy(),
        distances in distances_strategy(),
    ) {
        let prog = ProgramSpec::new(n, 10)
            .kernel(kernel)
            .work(WorkSpec::TargetSeconds(3e-4))
            .distances(distances);
        let trace = Simulator::new(prog, Placement::packed(ClusterSpec::meggie(), n))
            .unwrap().run().unwrap();
        for r in 0..n {
            for k in 1..10 {
                prop_assert!(trace.rank(r).iter_end(k) >= trace.rank(r).iter_end(k - 1));
            }
        }
    }
}
