//! MPI point-to-point protocol semantics.

/// The two MPI point-to-point transfer protocols the paper distinguishes
/// (§3.1): they set the oscillator model's `β` factor and, here, the
/// actual blocking semantics in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MpiProtocol {
    /// Eager: the payload is shipped immediately into a receiver-side
    /// buffer; the send completes locally. Dependencies point one way
    /// (receiver waits for sender). Model `β = 1`.
    #[default]
    Eager,
    /// Rendezvous: the transfer starts only when the matching receive is
    /// posted; the *sender* also blocks until then. Dependencies couple
    /// both directions. Model `β = 2`.
    Rendezvous,
}

impl MpiProtocol {
    /// The oscillator-model coupling factor `β` this protocol induces.
    pub fn beta(self) -> f64 {
        match self {
            MpiProtocol::Eager => 1.0,
            MpiProtocol::Rendezvous => 2.0,
        }
    }

    /// Name for tables.
    pub fn name(self) -> &'static str {
        match self {
            MpiProtocol::Eager => "eager",
            MpiProtocol::Rendezvous => "rendezvous",
        }
    }

    /// Pick the protocol MPI would use for a message of `bytes` given the
    /// library's eager threshold.
    pub fn for_message(bytes: usize, eager_threshold: usize) -> Self {
        if bytes <= eager_threshold {
            MpiProtocol::Eager
        } else {
            MpiProtocol::Rendezvous
        }
    }
}

/// Identity of one point-to-point message instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgKey {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Iteration index the message belongs to.
    pub iter: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_matches_paper() {
        assert_eq!(MpiProtocol::Eager.beta(), 1.0);
        assert_eq!(MpiProtocol::Rendezvous.beta(), 2.0);
    }

    #[test]
    fn threshold_selection() {
        assert_eq!(MpiProtocol::for_message(100, 16_384), MpiProtocol::Eager);
        assert_eq!(MpiProtocol::for_message(16_384, 16_384), MpiProtocol::Eager);
        assert_eq!(
            MpiProtocol::for_message(16_385, 16_384),
            MpiProtocol::Rendezvous
        );
    }

    #[test]
    fn msg_key_identity() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(MsgKey {
            src: 1,
            dst: 2,
            iter: 3,
        });
        assert!(set.contains(&MsgKey {
            src: 1,
            dst: 2,
            iter: 3
        }));
        assert!(!set.contains(&MsgKey {
            src: 2,
            dst: 1,
            iter: 3
        }));
    }
}
