//! Bulk-synchronous program descriptions for the simulator.

use pom_kernels::Kernel;
use pom_noise::SplitMix64;

use crate::protocol::MpiProtocol;

/// How much work each rank performs per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkSpec {
    /// Explicit loop-update count per iteration.
    Lups(f64),
    /// Sized so the *un-contended* single-core compute phase lasts this
    /// many seconds (convenient for matching the oscillator model's
    /// `t_comp`).
    TargetSeconds(f64),
}

/// An injected one-off delay (paper §5.1): `rank` performs `extra_seconds`
/// of additional in-core work in iteration `iteration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimDelay {
    /// Affected rank.
    pub rank: usize,
    /// Iteration receiving the extra workload.
    pub iteration: usize,
    /// Extra in-core time, seconds.
    pub extra_seconds: f64,
}

/// Description of the MPI toy code to simulate.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    /// Number of MPI ranks.
    pub n_ranks: usize,
    /// Number of bulk-synchronous iterations.
    pub iterations: usize,
    /// The compute kernel run each iteration.
    pub kernel: Kernel,
    /// Per-iteration work volume.
    pub work: WorkSpec,
    /// Signed dependency distances: rank `i` receives from `i + d (mod N)`
    /// each iteration (the oscillator model's topology row).
    pub distances: Vec<i32>,
    /// Point-to-point protocol.
    pub protocol: MpiProtocol,
    /// Message payload size, bytes (the paper uses short messages).
    pub message_bytes: usize,
    /// One-off delay injections.
    pub injections: Vec<SimDelay>,
    /// Insert a synchronizing collective (allreduce/barrier) after every
    /// `k`-th iteration (`None` = barrier-free, the paper's default;
    /// §6 discusses why frequent synchronization fights scalability).
    pub allreduce_every: Option<usize>,
    /// Half-normal per-iteration compute noise amplitude, seconds
    /// (0 = silent system).
    pub noise_sigma: f64,
    /// Seed for the frozen noise.
    pub noise_seed: u64,
}

impl ProgramSpec {
    /// A scalable next-neighbor program skeleton: PISOLVER kernel,
    /// 1 ms compute target, `d = ±1`, eager protocol, 8-byte messages,
    /// silent system.
    pub fn new(n_ranks: usize, iterations: usize) -> Self {
        ProgramSpec {
            n_ranks,
            iterations,
            kernel: Kernel::pisolver(),
            work: WorkSpec::TargetSeconds(1e-3),
            distances: vec![-1, 1],
            protocol: MpiProtocol::Eager,
            message_bytes: 8,
            injections: Vec::new(),
            allreduce_every: None,
            noise_sigma: 0.0,
            noise_seed: 0x9D_0E5,
        }
    }

    /// Set the compute kernel.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Set the per-iteration work volume.
    pub fn work(mut self, work: WorkSpec) -> Self {
        self.work = work;
        self
    }

    /// Set the dependency distance set.
    pub fn distances(mut self, distances: Vec<i32>) -> Self {
        self.distances = distances;
        self
    }

    /// Set the point-to-point protocol.
    pub fn protocol(mut self, protocol: MpiProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Set the message size.
    pub fn message_bytes(mut self, bytes: usize) -> Self {
        self.message_bytes = bytes;
        self
    }

    /// Add a one-off delay injection.
    pub fn inject(mut self, delay: SimDelay) -> Self {
        self.injections.push(delay);
        self
    }

    /// Insert a synchronizing collective after every `k`-th iteration.
    pub fn allreduce_every(mut self, k: usize) -> Self {
        self.allreduce_every = Some(k);
        self
    }

    /// Enable background compute noise (half-normal, `sigma` seconds).
    pub fn noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise_sigma = sigma;
        self.noise_seed = seed;
        self
    }

    /// Ranks this rank *receives from* each iteration (`i + d`, wrapped).
    pub fn recv_partners(&self, rank: usize) -> Vec<usize> {
        let n = self.n_ranks as i64;
        let mut v: Vec<usize> = self
            .distances
            .iter()
            .map(|&d| ((rank as i64 + d as i64).rem_euclid(n)) as usize)
            .filter(|&j| j != rank)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Ranks this rank *sends to* each iteration (the mirror of
    /// [`ProgramSpec::recv_partners`]: `i − d`, wrapped).
    pub fn send_partners(&self, rank: usize) -> Vec<usize> {
        let n = self.n_ranks as i64;
        let mut v: Vec<usize> = self
            .distances
            .iter()
            .map(|&d| ((rank as i64 - d as i64).rem_euclid(n)) as usize)
            .filter(|&j| j != rank)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total injected extra core time for `(rank, iteration)`, including
    /// background noise (deterministic in the seed).
    pub fn extra_core_time(&self, rank: usize, iteration: usize) -> f64 {
        let mut extra: f64 = self
            .injections
            .iter()
            .filter(|d| d.rank == rank && d.iteration == iteration)
            .map(|d| d.extra_seconds)
            .sum();
        if self.noise_sigma > 0.0 {
            let h = SplitMix64::hash3(self.noise_seed, rank as u64, iteration as u64);
            // Half-normal from two 32-bit uniforms (Box–Muller magnitude).
            let u1 = ((h >> 32) as f64 + 0.5) / 4294967296.0;
            let u2 = ((h & 0xFFFF_FFFF) as f64 + 0.5) / 4294967296.0;
            let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            extra += self.noise_sigma * g.abs();
        }
        extra
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_ranks == 0 {
            return Err("n_ranks must be positive".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if self.distances.is_empty() {
            return Err("distance set must be non-empty".into());
        }
        match self.work {
            WorkSpec::Lups(l) if !(l.is_finite() && l > 0.0) => {
                return Err(format!("work lups {l} must be positive"));
            }
            WorkSpec::TargetSeconds(s) if !(s.is_finite() && s > 0.0) => {
                return Err(format!("work target {s} must be positive"));
            }
            _ => {}
        }
        if self.allreduce_every == Some(0) {
            return Err("allreduce_every must be at least 1".into());
        }
        if self.noise_sigma < 0.0 || !self.noise_sigma.is_finite() {
            return Err(format!(
                "noise sigma {} must be non-negative",
                self.noise_sigma
            ));
        }
        for inj in &self.injections {
            if inj.rank >= self.n_ranks {
                return Err(format!("injection rank {} out of range", inj.rank));
            }
            if inj.iteration >= self.iterations {
                return Err(format!(
                    "injection iteration {} out of range",
                    inj.iteration
                ));
            }
            if !(inj.extra_seconds.is_finite() && inj.extra_seconds >= 0.0) {
                return Err(format!("injection extra {} invalid", inj.extra_seconds));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partners_symmetric_distance_set() {
        let p = ProgramSpec::new(10, 5);
        assert_eq!(p.recv_partners(3), vec![2, 4]);
        assert_eq!(p.send_partners(3), vec![2, 4]);
        // Wraparound.
        assert_eq!(p.recv_partners(0), vec![1, 9]);
    }

    #[test]
    fn partners_asymmetric_distance_set() {
        // Fig. 2 bottom row: receives from i−2, i−1, i+1.
        let p = ProgramSpec::new(10, 5).distances(vec![-2, -1, 1]);
        assert_eq!(p.recv_partners(5), vec![3, 4, 6]);
        // Mirror: sends to i+2, i+1, i−1.
        assert_eq!(p.send_partners(5), vec![4, 6, 7]);
    }

    #[test]
    fn send_recv_matching_is_consistent() {
        // Global invariant: j ∈ recv_partners(i) ⇔ i ∈ send_partners(j) —
        // every expected message has exactly one sender.
        let p = ProgramSpec::new(12, 3).distances(vec![-2, -1, 1, 3]);
        for i in 0..12 {
            for &j in &p.recv_partners(i) {
                assert!(
                    p.send_partners(j).contains(&i),
                    "rank {i} expects from {j}, but {j} does not send to {i}"
                );
            }
            for &j in &p.send_partners(i) {
                assert!(p.recv_partners(j).contains(&i));
            }
        }
    }

    #[test]
    fn injection_lookup() {
        let p = ProgramSpec::new(8, 10).inject(SimDelay {
            rank: 5,
            iteration: 3,
            extra_seconds: 0.5,
        });
        assert_eq!(p.extra_core_time(5, 3), 0.5);
        assert_eq!(p.extra_core_time(5, 4), 0.0);
        assert_eq!(p.extra_core_time(4, 3), 0.0);
    }

    #[test]
    fn noise_is_deterministic_nonnegative_and_scaled() {
        let p = ProgramSpec::new(8, 100).noise(1e-4, 42);
        let a = p.extra_core_time(2, 7);
        assert_eq!(a, p.extra_core_time(2, 7));
        assert!(a >= 0.0);
        // Mean of |N(0,σ)| is σ·√(2/π) ≈ 0.8σ — check the sample mean.
        let mean: f64 = (0..2000).map(|k| p.extra_core_time(1, k)).sum::<f64>() / 2000.0;
        let expect = 1e-4 * (2.0 / std::f64::consts::PI).sqrt();
        assert!(
            (mean - expect).abs() < 0.2 * expect,
            "mean {mean:e} vs {expect:e}"
        );
    }

    #[test]
    fn validation_catches_errors() {
        assert!(ProgramSpec::new(0, 5).validate().is_err());
        assert!(ProgramSpec::new(5, 0).validate().is_err());
        assert!(ProgramSpec::new(5, 5).distances(vec![]).validate().is_err());
        assert!(ProgramSpec::new(5, 5)
            .work(WorkSpec::Lups(-1.0))
            .validate()
            .is_err());
        assert!(ProgramSpec::new(5, 5)
            .inject(SimDelay {
                rank: 9,
                iteration: 0,
                extra_seconds: 0.1
            })
            .validate()
            .is_err());
        assert!(ProgramSpec::new(5, 5)
            .inject(SimDelay {
                rank: 1,
                iteration: 9,
                extra_seconds: 0.1
            })
            .validate()
            .is_err());
        assert!(ProgramSpec::new(5, 5).validate().is_ok());
    }

    #[test]
    fn allreduce_period_validated() {
        assert!(ProgramSpec::new(4, 5)
            .allreduce_every(0)
            .validate()
            .is_err());
        assert!(ProgramSpec::new(4, 5).allreduce_every(3).validate().is_ok());
    }

    #[test]
    fn noise_exceeding_iterations_is_fine() {
        // extra_core_time must not panic past the nominal iteration count
        // (the engine never asks, but analysis code may probe).
        let p = ProgramSpec::new(4, 5).noise(1e-5, 1);
        let _ = p.extra_core_time(0, 10_000);
    }
}
