//! Fluid memory-bandwidth sharing per socket.
//!
//! Compute phases of memory-bound kernels draw bandwidth from their
//! socket. Between discrete events the set of active "streams" is
//! constant, so each stream progresses linearly at its granted (max-min
//! fair) rate; the engine advances this fluid at every event and asks for
//! the next projected completion. A generation counter invalidates stale
//! completion events after the active set changes.

use pom_kernels::share_bandwidth;

/// Tolerance for "stream finished" comparisons, bytes.
const EPS_BYTES: f64 = 1e-3;

#[derive(Debug, Clone)]
struct Stream {
    rank: u32,
    /// Un-contended demand rate, bytes/s.
    demand: f64,
    /// Bytes still to transfer.
    remaining: f64,
}

/// Max-min-fair fluid state of one socket's memory interface.
#[derive(Debug, Clone)]
pub struct SocketFluid {
    capacity: f64,
    last_update: f64,
    generation: u64,
    streams: Vec<Stream>,
}

impl SocketFluid {
    /// A socket with the given saturated bandwidth (bytes/s).
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0 && capacity.is_finite());
        Self {
            capacity,
            last_update: 0.0,
            generation: 0,
            streams: Vec::new(),
        }
    }

    /// Current generation (bumped whenever the active set changes).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of active streams.
    pub fn n_active(&self) -> usize {
        self.streams.len()
    }

    /// Granted rates for the current active set (same order as streams).
    fn rates(&self) -> Vec<f64> {
        let demands: Vec<f64> = self.streams.iter().map(|s| s.demand).collect();
        share_bandwidth(&demands, self.capacity).granted
    }

    /// Progress all streams from `last_update` to `t`.
    pub fn advance(&mut self, t: f64) {
        debug_assert!(t >= self.last_update - 1e-12, "time went backwards");
        let dt = (t - self.last_update).max(0.0);
        if dt > 0.0 && !self.streams.is_empty() {
            let rates = self.rates();
            for (s, r) in self.streams.iter_mut().zip(rates) {
                s.remaining = (s.remaining - r * dt).max(0.0);
            }
        }
        self.last_update = t;
    }

    /// Add a stream for `rank` at time `t` (the fluid is advanced first).
    /// Returns the new generation.
    pub fn add_stream(&mut self, t: f64, rank: u32, demand: f64, bytes: f64) -> u64 {
        debug_assert!(demand > 0.0 && bytes > 0.0);
        self.advance(t);
        debug_assert!(
            !self.streams.iter().any(|s| s.rank == rank),
            "rank {rank} already streaming"
        );
        self.streams.push(Stream {
            rank,
            demand,
            remaining: bytes,
        });
        self.generation += 1;
        self.generation
    }

    /// Remove and return the ranks whose streams are complete
    /// (`remaining ≈ 0`) at the current fluid time. Bumps the generation
    /// if anything was removed.
    pub fn take_completed(&mut self) -> Vec<u32> {
        let mut done = Vec::new();
        self.streams.retain(|s| {
            if s.remaining <= EPS_BYTES {
                done.push(s.rank);
                false
            } else {
                true
            }
        });
        if !done.is_empty() {
            self.generation += 1;
        }
        done
    }

    /// Projected time of the next stream completion given the current
    /// active set (no event ⇒ `None`).
    pub fn next_completion(&self) -> Option<f64> {
        if self.streams.is_empty() {
            return None;
        }
        let rates = self.rates();
        self.streams
            .iter()
            .zip(rates)
            .filter(|(_, r)| *r > 0.0)
            .map(|(s, r)| self.last_update + s.remaining / r)
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
    }

    /// Instantaneous aggregate granted bandwidth.
    pub fn aggregate_rate(&self) -> f64 {
        self.rates().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_runs_at_demand() {
        let mut s = SocketFluid::new(68e9);
        s.add_stream(0.0, 0, 20e9, 40e9); // 2 s of work alone
        let done_at = s.next_completion().unwrap();
        assert!((done_at - 2.0).abs() < 1e-9);
        s.advance(2.0);
        assert_eq!(s.take_completed(), vec![0]);
        assert_eq!(s.n_active(), 0);
    }

    #[test]
    fn contended_streams_slow_down() {
        let mut s = SocketFluid::new(68e9);
        for r in 0..10 {
            s.add_stream(0.0, r, 20e9, 20e9); // 1 s alone
        }
        // Each granted 6.8 GB/s ⇒ 20e9 / 6.8e9 ≈ 2.94 s.
        let t = s.next_completion().unwrap();
        assert!((t - 20.0 / 6.8).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn stagger_finishes_in_demand_order() {
        let mut s = SocketFluid::new(30e9);
        s.add_stream(0.0, 0, 20e9, 20e9);
        s.add_stream(0.0, 1, 20e9, 40e9);
        // Fair share 15 GB/s each: rank 0 finishes at 4/3 s.
        let t0 = s.next_completion().unwrap();
        assert!((t0 - 20.0 / 15.0).abs() < 1e-9);
        s.advance(t0);
        assert_eq!(s.take_completed(), vec![0]);
        // Rank 1 transferred 20e9 of its 40e9 during the shared phase;
        // alone it runs at its full 20 GB/s demand and finishes the last
        // 20e9 one second later, at t = 4/3 + 1 = 7/3.
        let t1 = s.next_completion().unwrap();
        assert!((t1 - (20.0 / 15.0 + 1.0)).abs() < 1e-9, "t1 = {t1}");
    }

    #[test]
    fn generation_bumps_on_changes() {
        let mut s = SocketFluid::new(10e9);
        let g0 = s.generation();
        let g1 = s.add_stream(0.0, 0, 5e9, 5e9);
        assert!(g1 > g0);
        s.advance(1.0);
        let before = s.generation();
        assert_eq!(s.take_completed(), vec![0]);
        assert!(s.generation() > before);
        // No change ⇒ no bump.
        let g = s.generation();
        assert!(s.take_completed().is_empty());
        assert_eq!(s.generation(), g);
    }

    #[test]
    fn mid_flight_join_reshares() {
        let mut s = SocketFluid::new(20e9);
        s.add_stream(0.0, 0, 20e9, 20e9); // would finish at 1 s alone
        s.advance(0.5); // transferred 10e9, 10e9 left
        s.add_stream(0.5, 1, 20e9, 20e9);
        // Now 10 GB/s each: rank 0 needs 1 more second (finish 1.5);
        // rank 1 then holds 10e9 and, alone at its full 20 GB/s demand
        // (capped by the 20 GB/s socket), finishes at t = 2.0.
        let t = s.next_completion().unwrap();
        assert!((t - 1.5).abs() < 1e-9, "t = {t}");
        s.advance(1.5);
        assert_eq!(s.take_completed(), vec![0]);
        let t = s.next_completion().unwrap();
        assert!((t - 2.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn aggregate_rate_capped() {
        let mut s = SocketFluid::new(68e9);
        for r in 0..10 {
            s.add_stream(0.0, r, 20e9, 1e9);
        }
        assert!((s.aggregate_rate() - 68e9).abs() < 1.0);
    }

    #[test]
    fn empty_socket_has_no_completion() {
        let s = SocketFluid::new(1e9);
        assert_eq!(s.next_completion(), None);
        assert_eq!(s.aggregate_rate(), 0.0);
    }
}
