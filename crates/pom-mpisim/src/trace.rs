//! ITAC-like execution traces.
//!
//! The paper's Fig. 2 shows Intel Trace Analyzer timelines with
//! "computation (white) and communication (red)" per rank. [`SimTrace`]
//! records the same information from the simulator: per-rank
//! [`Segment`]s (compute vs. wait) plus per-iteration timestamps, from
//! which idle waves and computational wavefronts are extracted.

/// What a rank was doing during a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Executing the compute kernel.
    Compute,
    /// Blocked in `MPI_Waitall` (idle).
    Wait,
}

/// One contiguous activity of one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Activity kind.
    pub kind: SegmentKind,
    /// Start time, seconds.
    pub t0: f64,
    /// End time, seconds (`t1 ≥ t0`).
    pub t1: f64,
    /// Iteration the segment belongs to.
    pub iter: u32,
}

impl Segment {
    /// Segment duration.
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// Timeline of one rank.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    segments: Vec<Segment>,
    /// Start time of each iteration (posting of the receives).
    iter_start: Vec<f64>,
    /// End of each iteration's compute phase.
    compute_end: Vec<f64>,
    /// End of each iteration (waitall satisfied).
    iter_end: Vec<f64>,
}

impl RankTrace {
    pub(crate) fn push_segment(&mut self, seg: Segment) {
        debug_assert!(seg.t1 >= seg.t0 - 1e-12, "segment reversed: {seg:?}");
        if let Some(last) = self.segments.last() {
            debug_assert!(
                seg.t0 >= last.t1 - 1e-9,
                "segments overlap: {last:?} then {seg:?}"
            );
        }
        // Skip zero-length segments (e.g. waitall already satisfied).
        if seg.t1 > seg.t0 {
            self.segments.push(seg);
        }
    }

    pub(crate) fn record_iter_start(&mut self, t: f64) {
        self.iter_start.push(t);
    }

    pub(crate) fn record_compute_end(&mut self, t: f64) {
        self.compute_end.push(t);
    }

    pub(crate) fn record_iter_end(&mut self, t: f64) {
        self.iter_end.push(t);
    }

    /// All segments, time-ordered.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Start time of iteration `k`.
    pub fn iter_start(&self, k: usize) -> f64 {
        self.iter_start[k]
    }

    /// Compute-phase end of iteration `k`.
    pub fn compute_end(&self, k: usize) -> f64 {
        self.compute_end[k]
    }

    /// End (waitall completion) of iteration `k`.
    pub fn iter_end(&self, k: usize) -> f64 {
        self.iter_end[k]
    }

    /// Number of completed iterations.
    pub fn n_iterations(&self) -> usize {
        self.iter_end.len()
    }

    /// Total time spent waiting (idle) across the run.
    pub fn total_wait(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Wait)
            .map(Segment::duration)
            .sum()
    }

    /// Total time spent computing.
    pub fn total_compute(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Compute)
            .map(Segment::duration)
            .sum()
    }

    /// Wait time inside iteration `k`.
    pub fn wait_in_iter(&self, k: usize) -> f64 {
        self.iter_end(k) - self.compute_end(k)
    }
}

/// Complete trace of a simulated program run.
#[derive(Debug, Clone)]
pub struct SimTrace {
    ranks: Vec<RankTrace>,
    makespan: f64,
}

impl SimTrace {
    pub(crate) fn new(ranks: Vec<RankTrace>, makespan: f64) -> Self {
        Self { ranks, makespan }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Number of iterations (same for all ranks).
    pub fn n_iterations(&self) -> usize {
        self.ranks.first().map_or(0, RankTrace::n_iterations)
    }

    /// Per-rank timeline.
    pub fn rank(&self, r: usize) -> &RankTrace {
        &self.ranks[r]
    }

    /// All rank timelines.
    pub fn ranks(&self) -> &[RankTrace] {
        &self.ranks
    }

    /// Completion time of the whole run.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Start times of iteration `k` across ranks.
    pub fn iteration_starts(&self, k: usize) -> Vec<f64> {
        self.ranks.iter().map(|r| r.iter_start(k)).collect()
    }

    /// Compute-phase end times of iteration `k` across ranks (the
    /// "computational wavefront" coordinate, §5.1.2).
    pub fn compute_ends(&self, k: usize) -> Vec<f64> {
        self.ranks.iter().map(|r| r.compute_end(k)).collect()
    }

    /// Max − min of iteration-`k` start times: 0 in perfect lockstep,
    /// macroscopic for a desynchronized wavefront.
    pub fn iteration_start_spread(&self, k: usize) -> f64 {
        let starts = self.iteration_starts(k);
        let lo = starts.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = starts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }

    /// Aggregate idle fraction of the run (Σ wait / (N × makespan)).
    pub fn idle_fraction(&self) -> f64 {
        if self.makespan <= 0.0 || self.ranks.is_empty() {
            return 0.0;
        }
        let total_wait: f64 = self.ranks.iter().map(RankTrace::total_wait).sum();
        total_wait / (self.makespan * self.ranks.len() as f64)
    }

    /// Per-rank wait time in iteration `k` (the idle-wave field: the wave
    /// appears as a band of elevated wait times moving across ranks).
    pub fn wait_field(&self, k: usize) -> Vec<f64> {
        self.ranks.iter().map(|r| r.wait_in_iter(k)).collect()
    }

    /// Verify structural invariants (used by property tests): segments
    /// tile each rank's timeline without overlap, iterations are ordered,
    /// compute ends fall inside their iteration.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (r, rt) in self.ranks.iter().enumerate() {
            for w in rt.segments.windows(2) {
                if w[1].t0 < w[0].t1 - 1e-9 {
                    return Err(format!("rank {r}: overlapping segments"));
                }
            }
            for seg in &rt.segments {
                if seg.t1 < seg.t0 {
                    return Err(format!("rank {r}: reversed segment"));
                }
            }
            let n = rt.n_iterations();
            for k in 0..n {
                if rt.compute_end(k) < rt.iter_start(k) - 1e-9 {
                    return Err(format!("rank {r} iter {k}: compute ends before start"));
                }
                if rt.iter_end(k) < rt.compute_end(k) - 1e-9 {
                    return Err(format!("rank {r} iter {k}: iter ends before compute"));
                }
                if k > 0 && rt.iter_start(k) < rt.iter_end(k - 1) - 1e-9 {
                    return Err(format!("rank {r} iter {k}: starts before previous ends"));
                }
            }
            if let Some(last) = rt.iter_end.last() {
                if *last > self.makespan + 1e-9 {
                    return Err(format!("rank {r}: ends after makespan"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> SimTrace {
        let mut r0 = RankTrace::default();
        r0.record_iter_start(0.0);
        r0.push_segment(Segment {
            kind: SegmentKind::Compute,
            t0: 0.0,
            t1: 1.0,
            iter: 0,
        });
        r0.record_compute_end(1.0);
        r0.push_segment(Segment {
            kind: SegmentKind::Wait,
            t0: 1.0,
            t1: 1.5,
            iter: 0,
        });
        r0.record_iter_end(1.5);

        let mut r1 = RankTrace::default();
        r1.record_iter_start(0.0);
        r1.push_segment(Segment {
            kind: SegmentKind::Compute,
            t0: 0.0,
            t1: 1.4,
            iter: 0,
        });
        r1.record_compute_end(1.4);
        r1.record_iter_end(1.5); // waitall satisfied almost immediately
        SimTrace::new(vec![r0, r1], 1.5)
    }

    #[test]
    fn accessors() {
        let tr = sample_trace();
        assert_eq!(tr.n_ranks(), 2);
        assert_eq!(tr.n_iterations(), 1);
        assert_eq!(tr.makespan(), 1.5);
        assert_eq!(tr.rank(0).total_compute(), 1.0);
        assert_eq!(tr.rank(0).total_wait(), 0.5);
        assert!((tr.rank(1).wait_in_iter(0) - 0.1).abs() < 1e-12);
        assert_eq!(tr.iteration_starts(0), vec![0.0, 0.0]);
        assert_eq!(tr.compute_ends(0), vec![1.0, 1.4]);
        assert_eq!(tr.iteration_start_spread(0), 0.0);
    }

    #[test]
    fn idle_fraction() {
        let tr = sample_trace();
        // wait: 0.5 + 0 (r1 has no wait segment, sub-0.1 gap recorded via
        // iter_end only) over 2 × 1.5.
        assert!((tr.idle_fraction() - 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wait_field_shows_imbalance() {
        let tr = sample_trace();
        let field = tr.wait_field(0);
        assert!((field[0] - 0.5).abs() < 1e-12);
        assert!((field[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_length_segments_skipped() {
        let mut rt = RankTrace::default();
        rt.push_segment(Segment {
            kind: SegmentKind::Wait,
            t0: 1.0,
            t1: 1.0,
            iter: 0,
        });
        assert!(rt.segments().is_empty());
    }

    #[test]
    fn invariants_hold_for_sample() {
        assert!(sample_trace().check_invariants().is_ok());
    }

    #[test]
    fn invariants_catch_reversed_iteration() {
        let mut r0 = RankTrace::default();
        r0.record_iter_start(1.0);
        r0.record_compute_end(0.5); // compute "ends" before the start
        r0.record_iter_end(1.5);
        let tr = SimTrace::new(vec![r0], 2.0);
        assert!(tr.check_invariants().is_err());
    }
}
