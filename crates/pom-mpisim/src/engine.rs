//! The discrete-event engine.
//!
//! A continuous-rate ("fluid") DES: between events every quantity evolves
//! linearly — computing ranks burn fixed in-core time and stream memory at
//! the max-min fair rate of their socket ([`crate::socket::SocketFluid`]).
//! Events are: in-core completion, projected memory completion (with
//! generation-stamped invalidation), eager message arrival, and rendezvous
//! completion. Each rank cycles through
//!
//! ```text
//! post Irecvs → compute (core ∥ memory) → post sends → Waitall → next iter
//! ```
//!
//! which is exactly the paper's toy-code structure (§4: `MPI_Irecv`,
//! `MPI_Send`, `MPI_Wait*`).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

use pom_kernels::SocketSpec;
use pom_topology::{ClusterSpec, Placement};

use crate::program::{ProgramSpec, WorkSpec};
use crate::protocol::{MpiProtocol, MsgKey};
use crate::socket::SocketFluid;
use crate::trace::{RankTrace, Segment, SegmentKind, SimTrace};

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The program description failed validation.
    InvalidProgram(String),
    /// Placement hosts fewer ranks than the program needs.
    PlacementMismatch {
        /// Ranks in the program.
        program_ranks: usize,
        /// Ranks in the placement.
        placement_ranks: usize,
    },
    /// The event queue drained before all ranks finished — a deadlock
    /// (should be impossible for valid programs; kept as a hard check).
    Stalled {
        /// Time of the last processed event.
        t: f64,
        /// Ranks that completed all iterations.
        finished_ranks: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
            SimError::PlacementMismatch {
                program_ranks,
                placement_ranks,
            } => write!(
                f,
                "program has {program_ranks} ranks but the placement hosts {placement_ranks}"
            ),
            SimError::Stalled { t, finished_ranks } => write!(
                f,
                "simulation stalled at t = {t} with only {finished_ranks} ranks finished (deadlock)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EvKind {
    CoreDone {
        rank: u32,
        iter: u32,
    },
    MemCompletion {
        socket: u32,
        generation: u64,
    },
    MsgArrive {
        key: MsgKey,
    },
    RdvComplete {
        key: MsgKey,
    },
    /// All ranks reached the collective after iteration `iter`.
    BarrierRelease {
        iter: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    t: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Computing {
        core_done: bool,
        mem_done: bool,
    },
    Waiting,
    /// Blocked in a synchronizing collective after the given iteration.
    AtBarrier,
    Finished,
}

#[derive(Debug)]
struct RankState {
    iter: u32,
    phase: Phase,
    iter_start_t: f64,
    wait_start_t: f64,
    pending_recv: HashSet<MsgKey>,
    pending_send: usize,
}

/// Derive the kernel-model socket description from a cluster spec.
///
/// The cluster spec carries the saturated per-socket bandwidth; the
/// single-core concurrency limit is taken from published measurements for
/// the known presets and defaults to 30 % of saturation otherwise.
pub fn socket_spec_for(cluster: &ClusterSpec) -> SocketSpec {
    let single_core_bw = match cluster.name {
        "meggie" => 20.0e9,
        "supermuc-ng-like" => 14.0e9,
        _ => 0.3 * cluster.mem_bw_per_socket,
    };
    SocketSpec {
        freq: cluster.core_freq,
        cores: cluster.cores_per_socket,
        mem_bw: cluster.mem_bw_per_socket,
        single_core_bw,
    }
}

/// The simulator: a program bound to a placement, ready to run.
pub struct Simulator {
    program: ProgramSpec,
    placement: Placement,
    socket_spec: SocketSpec,
    /// Per-iteration in-core time (before injections), seconds.
    core_time_base: f64,
    /// Per-iteration memory traffic, bytes.
    mem_bytes: f64,
    /// Un-contended per-rank bandwidth demand, bytes/s.
    demand: f64,
    /// Per-message transfer time on the link, seconds.
    transfer_time: f64,
}

impl Simulator {
    /// Bind `program` to `placement` (validates both).
    pub fn new(program: ProgramSpec, placement: Placement) -> Result<Self, SimError> {
        program.validate().map_err(SimError::InvalidProgram)?;
        if placement.n_ranks() < program.n_ranks {
            return Err(SimError::PlacementMismatch {
                program_ranks: program.n_ranks,
                placement_ranks: placement.n_ranks(),
            });
        }
        let socket_spec = socket_spec_for(placement.spec());
        let lups = match program.work {
            WorkSpec::Lups(l) => l,
            WorkSpec::TargetSeconds(s) => program.kernel.lups_for_duration(s, &socket_spec),
        };
        let core_time_base = program.kernel.core_time(lups, &socket_spec);
        let mem_bytes = lups * program.kernel.bytes_per_lup;
        let demand = program.kernel.bandwidth_demand(&socket_spec);
        let transfer_time = program.message_bytes as f64 / placement.spec().network.bandwidth;
        Ok(Self {
            program,
            placement,
            socket_spec,
            core_time_base,
            mem_bytes,
            demand,
            transfer_time,
        })
    }

    /// The effective per-iteration compute duration of an un-contended
    /// rank (the analog of the model's `t_comp`).
    pub fn alone_compute_time(&self) -> f64 {
        if self.mem_bytes > 0.0 {
            self.core_time_base.max(self.mem_bytes / self.demand)
        } else {
            self.core_time_base
        }
    }

    /// The socket description in use.
    pub fn socket_spec(&self) -> &SocketSpec {
        &self.socket_spec
    }

    /// Run the program to completion and return the trace.
    pub fn run(&self) -> Result<SimTrace, SimError> {
        Engine::new(self).run()
    }
}

/// Per-run mutable state.
struct Engine<'a> {
    sim: &'a Simulator,
    heap: BinaryHeap<Ev>,
    seq: u64,
    states: Vec<RankState>,
    traces: Vec<RankTrace>,
    sockets: Vec<SocketFluid>,
    arrived: HashSet<MsgKey>,
    recv_posted: HashMap<MsgKey, f64>,
    pending_rdv_send: HashMap<MsgKey, f64>,
    /// Collective rendezvous bookkeeping: iteration → (arrivals, latest).
    barrier: HashMap<u32, (usize, f64)>,
    finished: usize,
    makespan: f64,
}

impl<'a> Engine<'a> {
    fn new(sim: &'a Simulator) -> Self {
        let n = sim.program.n_ranks;
        let n_sockets = sim.placement.n_sockets();
        Engine {
            sim,
            // Outstanding events are O(ranks) at any instant (each rank
            // has at most a handful in flight); size the containers once.
            heap: BinaryHeap::with_capacity(8 * n),
            seq: 0,
            states: (0..n)
                .map(|_| RankState {
                    iter: 0,
                    phase: Phase::Computing {
                        core_done: false,
                        mem_done: true,
                    },
                    iter_start_t: 0.0,
                    wait_start_t: 0.0,
                    pending_recv: HashSet::new(),
                    pending_send: 0,
                })
                .collect(),
            traces: (0..n).map(|_| RankTrace::default()).collect(),
            sockets: (0..n_sockets)
                .map(|_| SocketFluid::new(sim.placement.spec().mem_bw_per_socket))
                .collect(),
            arrived: HashSet::with_capacity(4 * n),
            recv_posted: HashMap::with_capacity(4 * n),
            pending_rdv_send: HashMap::with_capacity(4 * n),
            barrier: HashMap::new(),
            finished: 0,
            makespan: 0.0,
        }
    }

    fn push(&mut self, t: f64, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Ev {
            t,
            seq: self.seq,
            kind,
        });
    }

    fn latency(&self, src: usize, dst: usize) -> f64 {
        self.sim.placement.latency(src, dst) + self.sim.transfer_time
    }

    fn run(mut self) -> Result<SimTrace, SimError> {
        for rank in 0..self.sim.program.n_ranks {
            self.start_iteration(rank, 0.0);
        }
        while let Some(ev) = self.heap.pop() {
            match ev.kind {
                EvKind::CoreDone { rank, iter } => self.on_core_done(rank as usize, iter, ev.t),
                EvKind::MemCompletion { socket, generation } => {
                    self.on_mem_completion(socket as usize, generation, ev.t)
                }
                EvKind::MsgArrive { key } => self.on_msg_delivered(key, ev.t),
                EvKind::RdvComplete { key } => self.on_rdv_complete(key, ev.t),
                EvKind::BarrierRelease { iter } => self.on_barrier_release(iter, ev.t),
            }
        }
        if self.finished != self.sim.program.n_ranks {
            return Err(SimError::Stalled {
                t: self.makespan,
                finished_ranks: self.finished,
            });
        }
        Ok(SimTrace::new(self.traces, self.makespan))
    }

    /// Post receives and start the compute phase of the current iteration.
    fn start_iteration(&mut self, rank: usize, t: f64) {
        let iter = self.states[rank].iter;
        self.traces[rank].record_iter_start(t);
        self.states[rank].iter_start_t = t;

        // Post the receives. For rendezvous, resolve senders already
        // blocked on our posting.
        if self.sim.program.protocol == MpiProtocol::Rendezvous {
            let partners = self.sim.program.recv_partners(rank);
            for j in partners {
                let key = MsgKey {
                    src: j as u32,
                    dst: rank as u32,
                    iter,
                };
                if let Some(_send_t) = self.pending_rdv_send.remove(&key) {
                    // Sender already posted: the handshake completes one
                    // latency after the later of the two postings = now.
                    let done = t + self.latency(j, rank);
                    self.push(done, EvKind::RdvComplete { key });
                } else {
                    self.recv_posted.insert(key, t);
                }
            }
        }

        // Start the compute phase.
        let extra = self.sim.program.extra_core_time(rank, iter as usize);
        let core_t = self.sim.core_time_base + extra;
        let mem_done = self.sim.mem_bytes <= 0.0;
        self.states[rank].phase = Phase::Computing {
            core_done: false,
            mem_done,
        };
        self.push(
            t + core_t,
            EvKind::CoreDone {
                rank: rank as u32,
                iter,
            },
        );
        if !mem_done {
            let s = self.sim.placement.socket_of(rank);
            let generation =
                self.sockets[s].add_stream(t, rank as u32, self.sim.demand, self.sim.mem_bytes);
            self.schedule_mem_completion(s, generation);
        }
    }

    fn schedule_mem_completion(&mut self, socket: usize, generation: u64) {
        if let Some(t_next) = self.sockets[socket].next_completion() {
            self.push(
                t_next,
                EvKind::MemCompletion {
                    socket: socket as u32,
                    generation,
                },
            );
        }
    }

    fn on_core_done(&mut self, rank: usize, iter: u32, t: f64) {
        let st = &mut self.states[rank];
        if st.iter != iter {
            return; // stale (cannot happen, but harmless)
        }
        if let Phase::Computing { mem_done, .. } = st.phase {
            st.phase = Phase::Computing {
                core_done: true,
                mem_done,
            };
            if mem_done {
                self.compute_phase_done(rank, t);
            }
        }
    }

    fn on_mem_completion(&mut self, socket: usize, generation: u64, t: f64) {
        if self.sockets[socket].generation() != generation {
            return; // stale projection
        }
        self.sockets[socket].advance(t);
        let completed = self.sockets[socket].take_completed();
        if completed.is_empty() {
            // Round-off pushed the completion marginally past the
            // projection; re-project from the current state.
            let gen = self.sockets[socket].generation();
            if let Some(t_next) = self.sockets[socket].next_completion() {
                let t_next = t_next.max(t + 1e-12);
                self.push(
                    t_next,
                    EvKind::MemCompletion {
                        socket: socket as u32,
                        generation: gen,
                    },
                );
            }
            return;
        }
        for r in &completed {
            let rank = *r as usize;
            let st = &mut self.states[rank];
            if let Phase::Computing { core_done, .. } = st.phase {
                st.phase = Phase::Computing {
                    core_done,
                    mem_done: true,
                };
                if core_done {
                    self.compute_phase_done(rank, t);
                }
            }
        }
        let gen = self.sockets[socket].generation();
        self.schedule_mem_completion(socket, gen);
    }

    /// Compute finished: record the segment, post sends, enter Waitall.
    fn compute_phase_done(&mut self, rank: usize, t: f64) {
        let iter = self.states[rank].iter;
        let start = self.states[rank].iter_start_t;
        self.traces[rank].push_segment(Segment {
            kind: SegmentKind::Compute,
            t0: start,
            t1: t,
            iter,
        });
        self.traces[rank].record_compute_end(t);

        // Post sends.
        let send_partners = self.sim.program.send_partners(rank);
        let mut pending_send = 0;
        for dst in send_partners {
            let key = MsgKey {
                src: rank as u32,
                dst: dst as u32,
                iter,
            };
            match self.sim.program.protocol {
                MpiProtocol::Eager => {
                    let arrive = t + self.latency(rank, dst);
                    self.push(arrive, EvKind::MsgArrive { key });
                }
                MpiProtocol::Rendezvous => {
                    pending_send += 1;
                    if let Some(recv_t) = self.recv_posted.remove(&key) {
                        debug_assert!(recv_t <= t + 1e-12);
                        let done = t + self.latency(rank, dst);
                        self.push(done, EvKind::RdvComplete { key });
                    } else {
                        self.pending_rdv_send.insert(key, t);
                    }
                }
            }
        }

        // Enter Waitall: collect outstanding receives. The rank's own set
        // is empty here (drained while it was waiting last iteration), so
        // recycling it reuses one allocation for the whole run instead of
        // allocating a set per rank per iteration.
        let mut pending_recv = std::mem::take(&mut self.states[rank].pending_recv);
        debug_assert!(pending_recv.is_empty());
        for j in self.sim.program.recv_partners(rank) {
            let key = MsgKey {
                src: j as u32,
                dst: rank as u32,
                iter,
            };
            if !self.arrived.remove(&key) {
                pending_recv.insert(key);
            }
        }
        let st = &mut self.states[rank];
        st.wait_start_t = t;
        st.pending_recv = pending_recv;
        st.pending_send = pending_send;
        if st.pending_recv.is_empty() && st.pending_send == 0 {
            self.end_iteration(rank, t);
        } else {
            st.phase = Phase::Waiting;
        }
    }

    /// A message reached its receiver (eager arrival or rendezvous
    /// completion acting on the receiver side).
    fn on_msg_delivered(&mut self, key: MsgKey, t: f64) {
        let dst = key.dst as usize;
        let st = &mut self.states[dst];
        if st.phase == Phase::Waiting && st.iter == key.iter && st.pending_recv.remove(&key) {
            if st.pending_recv.is_empty() && st.pending_send == 0 {
                self.end_iteration(dst, t);
            }
        } else {
            self.arrived.insert(key);
        }
    }

    fn on_rdv_complete(&mut self, key: MsgKey, t: f64) {
        // Sender side: one outstanding send retired.
        let src = key.src as usize;
        let st = &mut self.states[src];
        if st.iter == key.iter {
            debug_assert!(st.pending_send > 0 || st.phase != Phase::Waiting);
            st.pending_send = st.pending_send.saturating_sub(1);
            if st.phase == Phase::Waiting && st.pending_recv.is_empty() && st.pending_send == 0 {
                self.end_iteration(src, t);
            }
        }
        // Receiver side: the payload has landed.
        self.on_msg_delivered(key, t);
    }

    fn end_iteration(&mut self, rank: usize, t: f64) {
        let st = &mut self.states[rank];
        let iter = st.iter;
        let wait_start = st.wait_start_t;
        self.traces[rank].push_segment(Segment {
            kind: SegmentKind::Wait,
            t0: wait_start,
            t1: t,
            iter,
        });
        self.traces[rank].record_iter_end(t);
        self.makespan = self.makespan.max(t);

        let next = iter + 1;
        if (next as usize) >= self.sim.program.iterations {
            self.states[rank].phase = Phase::Finished;
            self.finished += 1;
            return;
        }
        // A synchronizing collective after every K-th iteration: the rank
        // blocks until all ranks arrived; release costs a log-tree of
        // inter-node latencies.
        if let Some(k) = self.sim.program.allreduce_every {
            if (iter as usize + 1).is_multiple_of(k) {
                let n = self.sim.program.n_ranks;
                self.states[rank].phase = Phase::AtBarrier;
                let entry = self.barrier.entry(iter).or_insert((0, t));
                entry.0 += 1;
                entry.1 = entry.1.max(t);
                if entry.0 == n {
                    let tree_hops = (n as f64).log2().ceil().max(1.0);
                    let release =
                        entry.1 + tree_hops * self.sim.placement.spec().network.latency_inter_node;
                    self.push(release, EvKind::BarrierRelease { iter });
                }
                return;
            }
        }
        self.states[rank].iter = next;
        self.start_iteration(rank, t);
    }

    fn on_barrier_release(&mut self, iter: u32, t: f64) {
        self.barrier.remove(&iter);
        self.makespan = self.makespan.max(t);
        for rank in 0..self.sim.program.n_ranks {
            debug_assert_eq!(self.states[rank].phase, Phase::AtBarrier);
            // The time between the rank's own arrival and the release is
            // collective wait time.
            let arrived_at = self.traces[rank].iter_end(iter as usize);
            self.traces[rank].push_segment(Segment {
                kind: SegmentKind::Wait,
                t0: arrived_at,
                t1: t,
                iter,
            });
            self.states[rank].iter = iter + 1;
            self.start_iteration(rank, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SimDelay;
    use pom_kernels::Kernel;

    fn meggie_placement(n: usize) -> Placement {
        Placement::packed(ClusterSpec::meggie(), n)
    }

    fn scalable(n: usize, iters: usize) -> ProgramSpec {
        ProgramSpec::new(n, iters)
            .kernel(Kernel::pisolver())
            .work(WorkSpec::TargetSeconds(1e-3))
    }

    fn memory_bound(n: usize, iters: usize) -> ProgramSpec {
        ProgramSpec::new(n, iters)
            .kernel(Kernel::stream_triad())
            .work(WorkSpec::TargetSeconds(1e-3))
    }

    #[test]
    fn single_rank_pure_compute() {
        let prog = ProgramSpec::new(1, 10)
            .kernel(Kernel::pisolver())
            .work(WorkSpec::TargetSeconds(2e-3));
        let sim = Simulator::new(prog, meggie_placement(1)).unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.n_ranks(), 1);
        assert_eq!(trace.n_iterations(), 10);
        // No partners ⇒ no waiting; makespan = 10 × 2 ms.
        assert!((trace.makespan() - 0.02).abs() < 1e-9);
        assert_eq!(trace.rank(0).total_wait(), 0.0);
        trace.check_invariants().unwrap();
    }

    #[test]
    fn silent_scalable_system_stays_in_lockstep() {
        let sim = Simulator::new(scalable(20, 25), meggie_placement(20)).unwrap();
        let trace = sim.run().unwrap();
        trace.check_invariants().unwrap();
        for k in [0, 10, 24] {
            assert!(
                trace.iteration_start_spread(k) < 1e-5,
                "iter {k}: spread {}",
                trace.iteration_start_spread(k)
            );
        }
        // Each iteration costs compute + one message latency round.
        let per_iter = trace.makespan() / 25.0;
        assert!(per_iter > 1e-3 && per_iter < 1.1e-3, "per-iter {per_iter}");
    }

    #[test]
    fn one_off_delay_launches_an_idle_wave() {
        let delay = 5e-3; // 5 compute phases worth
        let prog = scalable(20, 20).inject(SimDelay {
            rank: 5,
            iteration: 3,
            extra_seconds: delay,
        });
        let sim = Simulator::new(prog, meggie_placement(20)).unwrap();
        let trace = sim.run().unwrap();
        trace.check_invariants().unwrap();

        // Baseline: unperturbed run.
        let base = Simulator::new(scalable(20, 20), meggie_placement(20))
            .unwrap()
            .run()
            .unwrap();

        // Eager ±1: the wave travels 1 rank per iteration in both
        // directions. Rank 5+r's iteration *end* is first delayed in
        // iteration 2+r: its waitall for that iteration consumes the late
        // message of rank 5+r−1 (rank 6 already stalls in iteration 3,
        // waiting on rank 5's delayed sends).
        for r in 1..6 {
            let rank = 5 + r;
            let before = trace.rank(rank).iter_end(1 + r) - base.rank(rank).iter_end(1 + r);
            let after = trace.rank(rank).iter_end(2 + r) - base.rank(rank).iter_end(2 + r);
            assert!(
                before.abs() < 1e-9,
                "rank {rank} disturbed too early: {before}"
            );
            assert!(after > 0.9 * delay, "rank {rank} not delayed: {after}");
        }
        // Total wait time records the idle wave (white → red in ITAC).
        assert!(trace.idle_fraction() > base.idle_fraction());
    }

    #[test]
    fn wave_direction_follows_dependency_sign_eager() {
        // D = {+1}: i receives from i+1 ⇒ a delay at rank 10 stalls ranks
        // below it, never above (eager sends don't block).
        let prog = scalable(20, 16).distances(vec![1]).inject(SimDelay {
            rank: 10,
            iteration: 2,
            extra_seconds: 4e-3,
        });
        let trace = Simulator::new(prog, meggie_placement(20))
            .unwrap()
            .run()
            .unwrap();
        let base = Simulator::new(scalable(20, 16).distances(vec![1]), meggie_placement(20))
            .unwrap()
            .run()
            .unwrap();
        // Below: delayed.
        let d9 = trace.rank(9).iter_end(3) - base.rank(9).iter_end(3);
        assert!(d9 > 3e-3, "rank 9 should feel the wave, delta {d9}");
        // Above: untouched through the whole run.
        for rank in 11..15 {
            let d = trace.rank(rank).iter_end(15) - base.rank(rank).iter_end(15);
            assert!(d.abs() < 1e-9, "rank {rank} wrongly delayed by {d}");
        }
    }

    #[test]
    fn rendezvous_propagates_waves_both_ways() {
        // Same D = {+1} but rendezvous: the delayed rank posts its next
        // receive late, which blocks its *upward* neighbor's send.
        let prog = scalable(20, 16)
            .distances(vec![1])
            .protocol(MpiProtocol::Rendezvous)
            .inject(SimDelay {
                rank: 10,
                iteration: 2,
                extra_seconds: 4e-3,
            });
        let trace = Simulator::new(prog, meggie_placement(20))
            .unwrap()
            .run()
            .unwrap();
        let base = Simulator::new(
            scalable(20, 16)
                .distances(vec![1])
                .protocol(MpiProtocol::Rendezvous),
            meggie_placement(20),
        )
        .unwrap()
        .run()
        .unwrap();
        let below = trace.rank(9).iter_end(10) - base.rank(9).iter_end(10);
        let above = trace.rank(11).iter_end(10) - base.rank(11).iter_end(10);
        assert!(below > 3e-3, "downward propagation missing: {below}");
        assert!(
            above > 3e-3,
            "upward (rendezvous) propagation missing: {above}"
        );
        trace.check_invariants().unwrap();
    }

    #[test]
    fn wider_stencil_spreads_waves_faster() {
        // D = {−2, −1, 1}: upward propagation 2 ranks/iter via the −2 leg.
        let mk = |inject: bool| {
            let mut p = scalable(30, 20).distances(vec![-2, -1, 1]);
            if inject {
                p = p.inject(SimDelay {
                    rank: 5,
                    iteration: 2,
                    extra_seconds: 4e-3,
                });
            }
            Simulator::new(p, meggie_placement(30))
                .unwrap()
                .run()
                .unwrap()
        };
        let trace = mk(true);
        let base = mk(false);
        // The −2 leg lets the wavefront jump 2 ranks per iteration: rank
        // 5+2r's iteration end is first disturbed at iteration 1+r (rank 7
        // already waits on rank 5's late iteration-2 sends).
        for r in 1..4 {
            let rank = 5 + 2 * r;
            let at = trace.rank(rank).iter_end(1 + r) - base.rank(rank).iter_end(1 + r);
            assert!(at > 3e-3, "rank {rank} iter {}: delta {at}", 1 + r);
            let before = trace.rank(rank).iter_end(r) - base.rank(rank).iter_end(r);
            assert!(
                before.abs() < 1e-9,
                "rank {rank} disturbed early by {before}"
            );
        }
    }

    #[test]
    fn memory_bound_lockstep_is_contended() {
        // 10 STREAM ranks on one socket in lockstep: every compute phase
        // is stretched by the demand/share ratio (20/6.8 ≈ 2.94).
        let sim = Simulator::new(memory_bound(10, 6), meggie_placement(10)).unwrap();
        let alone = sim.alone_compute_time();
        let trace = sim.run().unwrap();
        trace.check_invariants().unwrap();
        let stretched = trace.rank(0).compute_end(0) - trace.rank(0).iter_start(0);
        assert!(
            stretched > 2.5 * alone,
            "lockstep compute {stretched} vs alone {alone}"
        );
    }

    #[test]
    fn scalable_kernel_untouched_by_socket_sharing() {
        let sim = Simulator::new(scalable(10, 6), meggie_placement(10)).unwrap();
        let alone = sim.alone_compute_time();
        let trace = sim.run().unwrap();
        let actual = trace.rank(0).compute_end(0) - trace.rank(0).iter_start(0);
        assert!((actual - alone).abs() < 1e-12, "{actual} vs {alone}");
    }

    #[test]
    fn memory_bound_keeps_residual_wavefront_scalable_resyncs() {
        // Paper §5.1.2 / Fig. 2(b): after the idle wave has run out, a
        // bottlenecked program retains a *residual computational
        // wavefront*, while a scalable program returns to lockstep (the
        // whole system uniformly shifted by the absorbed delay). The
        // wavefront needs non-negligible communication time, so use 4 MB
        // messages (~0.3 ms on the 12.5 GB/s link).
        let run = |kernel| {
            let p = ProgramSpec::new(40, 60)
                .kernel(kernel)
                .work(WorkSpec::TargetSeconds(1e-3))
                .message_bytes(4_000_000)
                .inject(SimDelay {
                    rank: 5,
                    iteration: 5,
                    extra_seconds: 5e-3,
                });
            Simulator::new(p, meggie_placement(40))
                .unwrap()
                .run()
                .unwrap()
        };
        let mem = run(Kernel::stream_triad());
        let comp = run(Kernel::pisolver());
        mem.check_invariants().unwrap();
        comp.check_invariants().unwrap();
        // Long after the wave (iteration 50): the memory-bound run holds a
        // macroscopic stagger; the scalable run is tight again.
        let mem_spread = mem.iteration_start_spread(50);
        let comp_spread = comp.iteration_start_spread(50);
        assert!(
            mem_spread > 1e-3,
            "residual wavefront missing: {mem_spread}"
        );
        assert!(
            comp_spread < 5e-4,
            "scalable failed to resync: {comp_spread}"
        );
    }

    #[test]
    fn memory_bound_absorbs_injected_delay() {
        // Bottleneck evasion (§5.1.2): the same 5 ms injection that costs
        // a scalable run its full length is almost completely absorbed by
        // the bandwidth slack of a memory-bound run.
        let run = |kernel, inject: bool| {
            let mut p = ProgramSpec::new(20, 40)
                .kernel(kernel)
                .work(WorkSpec::TargetSeconds(1e-3));
            if inject {
                p = p.inject(SimDelay {
                    rank: 5,
                    iteration: 5,
                    extra_seconds: 5e-3,
                });
            }
            Simulator::new(p, meggie_placement(20))
                .unwrap()
                .run()
                .unwrap()
        };
        let comp_cost =
            run(Kernel::pisolver(), true).makespan() - run(Kernel::pisolver(), false).makespan();
        let mem_cost = run(Kernel::stream_triad(), true).makespan()
            - run(Kernel::stream_triad(), false).makespan();
        assert!(
            comp_cost > 4.5e-3,
            "scalable run pays the full delay: {comp_cost}"
        );
        assert!(
            mem_cost < 1e-3,
            "memory-bound run absorbs the delay: {mem_cost}"
        );
    }

    #[test]
    fn desynchronized_run_overlaps_comm_and_saves_time() {
        // Bottleneck evasion: inject a stagger into a memory-bound
        // program and compare per-iteration cost in steady state against
        // the lockstep run. The staggered run must not be slower.
        let lock = Simulator::new(memory_bound(10, 40), meggie_placement(10))
            .unwrap()
            .run()
            .unwrap();
        let mut staggered_prog = memory_bound(10, 40);
        for r in 0..10 {
            staggered_prog = staggered_prog.inject(SimDelay {
                rank: r,
                iteration: 0,
                extra_seconds: r as f64 * 3e-4,
            });
        }
        let stag = Simulator::new(staggered_prog, meggie_placement(10))
            .unwrap()
            .run()
            .unwrap();
        // Compare the cost of iterations 20..40 (past the transient).
        let cost = |tr: &SimTrace| {
            (0..10)
                .map(|r| tr.rank(r).iter_end(39) - tr.rank(r).iter_end(19))
                .fold(0.0f64, f64::max)
        };
        let lock_cost = cost(&lock);
        let stag_cost = cost(&stag);
        assert!(
            stag_cost <= lock_cost * 1.02,
            "staggered {stag_cost} should not exceed lockstep {lock_cost}"
        );
    }

    #[test]
    fn rejects_bad_configurations() {
        let prog = ProgramSpec::new(30, 5);
        assert!(matches!(
            Simulator::new(prog, meggie_placement(20)),
            Err(SimError::PlacementMismatch { .. })
        ));
        let bad = ProgramSpec::new(5, 0);
        assert!(matches!(
            Simulator::new(bad, meggie_placement(5)),
            Err(SimError::InvalidProgram(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = SimError::Stalled {
            t: 1.5,
            finished_ranks: 3,
        };
        assert!(e.to_string().contains("deadlock"));
        let e = SimError::PlacementMismatch {
            program_ranks: 30,
            placement_ranks: 20,
        };
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn collective_resynchronizes_the_wavefront() {
        // §6: frequently synchronizing programs cannot keep the
        // bottleneck-evading wavefront. Memory-bound run with a one-off
        // delay: barrier-free keeps macroscopic skew; with an allreduce
        // every 8 iterations the skew is wiped at each collective.
        let mk = |allreduce: Option<usize>| {
            let mut p = memory_bound(20, 40)
                .message_bytes(4_000_000)
                .inject(SimDelay {
                    rank: 5,
                    iteration: 5,
                    extra_seconds: 5e-3,
                });
            if let Some(k) = allreduce {
                p = p.allreduce_every(k);
            }
            Simulator::new(p, meggie_placement(20))
                .unwrap()
                .run()
                .unwrap()
        };
        let free = mk(None);
        let synced = mk(Some(8));
        synced.check_invariants().unwrap();
        // Iteration 32 starts right after the collective at iteration 31.
        assert!(
            synced.iteration_start_spread(32) < 1e-6,
            "collective must realign: {}",
            synced.iteration_start_spread(32)
        );
        assert!(
            free.iteration_start_spread(32) > 1e-3,
            "barrier-free keeps the wavefront: {}",
            free.iteration_start_spread(32)
        );
        // And the synchronized run pays for it in wall-clock time.
        assert!(
            synced.makespan() >= free.makespan(),
            "synced {} vs free {}",
            synced.makespan(),
            free.makespan()
        );
    }

    #[test]
    fn collective_adds_tree_latency_in_lockstep() {
        let base = Simulator::new(scalable(8, 8), meggie_placement(8))
            .unwrap()
            .run()
            .unwrap();
        let with_bar = Simulator::new(scalable(8, 8).allreduce_every(1), meggie_placement(8))
            .unwrap()
            .run()
            .unwrap();
        with_bar.check_invariants().unwrap();
        // 7 collectives (none after the final iteration), each ≥ 3 hops of
        // inter-node latency.
        let extra = with_bar.makespan() - base.makespan();
        assert!(extra > 0.0, "barriers cost time: {extra}");
    }

    #[test]
    fn rendezvous_and_eager_agree_without_disturbance() {
        // On a silent system the protocols produce the same lockstep
        // cadence (handshake costs the same single latency here).
        let eager = Simulator::new(scalable(12, 10), meggie_placement(12))
            .unwrap()
            .run()
            .unwrap();
        let rdv = Simulator::new(
            scalable(12, 10).protocol(MpiProtocol::Rendezvous),
            meggie_placement(12),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!((eager.makespan() - rdv.makespan()).abs() < 1e-6);
    }

    #[test]
    fn multi_socket_placement_charges_higher_latency() {
        // 20 ranks on 2 sockets: the socket-boundary pair (9, 10) pays the
        // inter-socket latency; interior pairs pay intra-socket.
        let sim = Simulator::new(scalable(20, 4), meggie_placement(20)).unwrap();
        let lat_in = sim.placement.latency(3, 4);
        let lat_x = sim.placement.latency(9, 10);
        assert!(lat_x > lat_in);
        // And the run still completes in lockstep-ish fashion (the slower
        // boundary link slows everyone within a few iterations).
        let trace = sim.run().unwrap();
        trace.check_invariants().unwrap();
    }
}
