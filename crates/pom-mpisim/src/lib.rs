//! Discrete-event simulator of MPI-parallel bulk-synchronous programs on a
//! cluster — the stand-in for the paper's *Meggie* test bed.
//!
//! The paper validates the oscillator model against real MPI runs (§4–5):
//! toy codes with `MPI_Irecv`/`MPI_Send`/`MPI_Waitall` point-to-point
//! exchanges, traced with Intel Trace Analyzer. We do not have the
//! cluster, so this crate implements the closest synthetic equivalent —
//! a first-principles simulator with exactly the three mechanisms that
//! produce the paper's phenomenology:
//!
//! 1. **Dependency structure** ([`program::ProgramSpec`]): every rank
//!    iterates compute → send → waitall; rank `i` *receives from* the
//!    ranks `i + d` of its distance set each iteration, so delays ripple
//!    exactly along the oscillator model's topology matrix.
//! 2. **Bounded shared resource** ([`socket::SocketFluid`]): ranks on one
//!    socket share its memory bandwidth via max-min fair processor
//!    sharing (`pom_kernels::contention`); memory-bound compute phases
//!    stretch under contention — the substrate of desynchronization and
//!    bottleneck evasion.
//! 3. **Communication protocol** ([`protocol::MpiProtocol`]): eager sends
//!    complete immediately (one-directional dependencies, the paper's
//!    `β = 1`); rendezvous sends couple sender to receiver (`β = 2`).
//!    Latency scales with the cluster distance class (intra-socket <
//!    inter-socket < inter-node) from `pom_topology::Placement`.
//!
//! The simulator records an ITAC-like [`trace::SimTrace`] (per-rank
//! compute/wait segments and per-iteration timestamps) from which the
//! analysis layer extracts idle waves, desynchronization and wavefronts.
//!
//! ## Example
//!
//! ```
//! use pom_mpisim::{ProgramSpec, Simulator, WorkSpec, MpiProtocol};
//! use pom_topology::{ClusterSpec, Placement};
//!
//! // 20 scalable ranks, next-neighbor ring, one Meggie node.
//! let program = ProgramSpec::new(20, 30)
//!     .kernel(pom_kernels::Kernel::pisolver())
//!     .work(WorkSpec::TargetSeconds(1e-3))
//!     .distances(vec![-1, 1]);
//! let placement = Placement::packed(ClusterSpec::meggie(), 20);
//! let trace = Simulator::new(program, placement).unwrap().run().unwrap();
//! assert_eq!(trace.n_ranks(), 20);
//! // Noise-free scalable code stays in lockstep.
//! assert!(trace.iteration_start_spread(10) < 1e-5);
//! ```

pub mod engine;
pub mod experiment;
pub mod program;
pub mod protocol;
pub mod socket;
pub mod trace;

pub use engine::{SimError, Simulator};
pub use experiment::{idle_wave_run, lockstep_run, IdleWaveConfig};
pub use program::{ProgramSpec, SimDelay, WorkSpec};
pub use protocol::MpiProtocol;
pub use trace::{RankTrace, Segment, SegmentKind, SimTrace};
