//! Canned experiment runs shared by the analysis layer, examples and the
//! reproduction benches.

use pom_kernels::Kernel;
use pom_topology::{ClusterSpec, Placement};

use crate::engine::{SimError, Simulator};
use crate::program::{ProgramSpec, SimDelay, WorkSpec};
use crate::protocol::MpiProtocol;
use crate::trace::SimTrace;

/// Configuration of a §5.1-style idle-wave experiment: a one-off delay
/// injected into an otherwise silent run, compared against an unperturbed
/// baseline.
#[derive(Debug, Clone)]
pub struct IdleWaveConfig {
    /// Number of MPI ranks.
    pub n_ranks: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// Compute kernel.
    pub kernel: Kernel,
    /// Dependency distance set.
    pub distances: Vec<i32>,
    /// Point-to-point protocol.
    pub protocol: MpiProtocol,
    /// Un-contended compute-phase duration target, seconds.
    pub t_comp: f64,
    /// Rank receiving the delay (paper: rank 5).
    pub delay_rank: usize,
    /// Iteration of the injection.
    pub delay_iteration: usize,
    /// Delay magnitude in multiples of `t_comp`.
    pub delay_factor: f64,
}

impl Default for IdleWaveConfig {
    fn default() -> Self {
        IdleWaveConfig {
            n_ranks: 40,
            iterations: 30,
            kernel: Kernel::pisolver(),
            distances: vec![-1, 1],
            protocol: MpiProtocol::Eager,
            t_comp: 1e-3,
            delay_rank: 5,
            delay_iteration: 5,
            delay_factor: 5.0,
        }
    }
}

impl IdleWaveConfig {
    fn program(&self, with_injection: bool) -> ProgramSpec {
        let mut p = ProgramSpec::new(self.n_ranks, self.iterations)
            .kernel(self.kernel)
            .work(WorkSpec::TargetSeconds(self.t_comp))
            .distances(self.distances.clone())
            .protocol(self.protocol);
        if with_injection {
            p = p.inject(SimDelay {
                rank: self.delay_rank,
                iteration: self.delay_iteration,
                extra_seconds: self.delay_factor * self.t_comp,
            });
        }
        p
    }
}

/// Run the idle-wave experiment on a packed Meggie placement; returns
/// `(perturbed, baseline)` traces.
pub fn idle_wave_run(cfg: &IdleWaveConfig) -> Result<(SimTrace, SimTrace), SimError> {
    let placement = Placement::packed(ClusterSpec::meggie(), cfg.n_ranks);
    let perturbed = Simulator::new(cfg.program(true), placement.clone())?.run()?;
    let baseline = Simulator::new(cfg.program(false), placement)?.run()?;
    Ok((perturbed, baseline))
}

/// A plain lockstep run (silent system, no injection) of `kernel` on a
/// packed Meggie placement.
pub fn lockstep_run(
    n_ranks: usize,
    iterations: usize,
    kernel: Kernel,
    t_comp: f64,
) -> Result<SimTrace, SimError> {
    let placement = Placement::packed(ClusterSpec::meggie(), n_ranks);
    let program = ProgramSpec::new(n_ranks, iterations)
        .kernel(kernel)
        .work(WorkSpec::TargetSeconds(t_comp));
    Simulator::new(program, placement)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_setup() {
        let cfg = IdleWaveConfig::default();
        assert_eq!(cfg.n_ranks, 40); // 4 Meggie sockets (§4)
        assert_eq!(cfg.delay_rank, 5); // "the 5th MPI process" (§5.1)
        assert_eq!(cfg.distances, vec![-1, 1]);
    }

    #[test]
    fn idle_wave_run_produces_differing_traces() {
        let cfg = IdleWaveConfig {
            n_ranks: 12,
            iterations: 12,
            ..IdleWaveConfig::default()
        };
        let (perturbed, baseline) = idle_wave_run(&cfg).unwrap();
        assert!(perturbed.makespan() > baseline.makespan());
        perturbed.check_invariants().unwrap();
        baseline.check_invariants().unwrap();
    }

    #[test]
    fn lockstep_run_is_tight() {
        let tr = lockstep_run(8, 10, Kernel::pisolver(), 1e-3).unwrap();
        assert!(tr.iteration_start_spread(9) < 1e-5);
    }
}
