//! Interaction noise `τ_ij(t)`: random communication delays.
//!
//! Paper §3.1: interaction noise models "random delays caused by varying
//! communication time" and "impacts the phase difference
//! `θ(t, τ_ij(t)) = θ_j(t − τ_ij(t)) − θ_i(t)`" — oscillator `i` sees a
//! *stale* phase of its partner `j`. With any nonzero `τ` the model
//! becomes a delay differential equation (solved by `pom_ode::dde`).

use crate::rng::FrozenField;

/// Pairwise communication delay: a deterministic function of the rank pair
/// and time, always ≥ 0.
pub trait InteractionNoise: Send + Sync {
    /// Delay `τ_ij(t)` in seconds.
    fn tau(&self, i: usize, j: usize, t: f64) -> f64;

    /// A bound on the largest delay the model can produce (sizing the DDE
    /// history buffer).
    fn max_delay(&self) -> f64;

    /// `true` if the delay is identically zero (the model then solves a
    /// plain ODE instead of a DDE).
    fn is_null(&self) -> bool {
        self.max_delay() == 0.0
    }

    /// Stable identity of the delay field: two models returning equal
    /// `Some` values MUST produce bitwise-identical `tau(i, j, t)` for
    /// every query. `None` means "unknown" and is never treated as shared.
    ///
    /// Replicas of one scenario run on the same (modelled) machine, so
    /// they usually share the hardware's delay field while differing in
    /// their stochastic state; the batched ensemble RHS uses this to
    /// evaluate the field once per pair instead of once per replica.
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

/// No communication delay: the coupling sees current phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDelay;

impl InteractionNoise for NoDelay {
    fn tau(&self, _i: usize, _j: usize, _t: f64) -> f64 {
        0.0
    }
    fn max_delay(&self) -> f64 {
        0.0
    }
    fn fingerprint(&self) -> Option<u64> {
        Some(crate::rng::SplitMix64::hash3(0x006e_6f64_656c_6179, 0, 0))
    }
}

/// Constant delay for every pair (e.g. a fixed network latency expressed
/// in units of the oscillator time).
#[derive(Debug, Clone, Copy)]
pub struct ConstantDelay {
    delay: f64,
}

impl ConstantDelay {
    /// A constant delay (must be ≥ 0 and finite).
    pub fn new(delay: f64) -> Self {
        assert!(
            delay >= 0.0 && delay.is_finite(),
            "delay must be non-negative"
        );
        Self { delay }
    }
}

impl InteractionNoise for ConstantDelay {
    fn tau(&self, _i: usize, _j: usize, _t: f64) -> f64 {
        self.delay
    }
    fn max_delay(&self) -> f64 {
        self.delay
    }
    fn fingerprint(&self) -> Option<u64> {
        Some(crate::rng::SplitMix64::hash3(
            0x636f_6e73_745f_7461_u64,
            self.delay.to_bits(),
            0,
        ))
    }
}

/// Random pairwise delay: `mean + spread·w(pair, t)` clamped to
/// `[0, mean + 3·spread]`, with `w` a frozen standard-normal field over a
/// lattice of correlation time `corr_time`.
///
/// The pair `(i, j)` is hashed order-sensitively: the delay `i ← j` need
/// not equal `j ← i` (MPI traffic is not symmetric in time).
#[derive(Debug, Clone, Copy)]
pub struct RandomCommDelay {
    field: FrozenField,
    mean: f64,
    spread: f64,
    /// Ranks are folded into a single lattice "rank" index; this is the
    /// stride used for the fold.
    stride: usize,
}

impl RandomCommDelay {
    /// Random delays with the given `mean` and `spread` (both seconds),
    /// decorrelating over `corr_time`. `n_ranks` bounds the pair-index
    /// folding.
    pub fn new(seed: u64, n_ranks: usize, mean: f64, spread: f64, corr_time: f64) -> Self {
        assert!(
            mean >= 0.0 && spread >= 0.0,
            "delay parameters must be non-negative"
        );
        Self {
            field: FrozenField::new(seed, corr_time),
            mean,
            spread,
            stride: n_ranks.max(1),
        }
    }
}

impl InteractionNoise for RandomCommDelay {
    fn tau(&self, i: usize, j: usize, t: f64) -> f64 {
        let pair = i * self.stride + j;
        let w = self.field.sample(pair, t);
        (self.mean + self.spread * w).clamp(0.0, self.max_delay())
    }

    fn max_delay(&self) -> f64 {
        self.mean + 3.0 * self.spread
    }
    fn fingerprint(&self) -> Option<u64> {
        use crate::rng::SplitMix64;
        let params = SplitMix64::hash3(
            self.mean.to_bits(),
            self.spread.to_bits(),
            self.stride as u64,
        );
        Some(SplitMix64::hash3(
            0x7261_6e64_5f74_6175_u64,
            SplitMix64::hash3(self.field.seed(), self.field.dt().to_bits(), 0),
            params,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_delay_is_null() {
        assert!(NoDelay.is_null());
        assert_eq!(NoDelay.tau(0, 1, 5.0), 0.0);
        assert_eq!(NoDelay.max_delay(), 0.0);
    }

    #[test]
    fn constant_delay() {
        let d = ConstantDelay::new(0.3);
        assert_eq!(d.tau(0, 1, 0.0), 0.3);
        assert_eq!(d.tau(7, 2, 99.0), 0.3);
        assert_eq!(d.max_delay(), 0.3);
        assert!(!d.is_null());
        assert!(ConstantDelay::new(0.0).is_null());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn constant_delay_rejects_negative() {
        ConstantDelay::new(-0.1);
    }

    #[test]
    fn random_delay_bounds_and_determinism() {
        let d = RandomCommDelay::new(4, 16, 0.1, 0.05, 1.0);
        for (i, j, t) in [(0, 1, 0.0), (3, 2, 1.5), (15, 0, 7.25)] {
            let tau = d.tau(i, j, t);
            assert!(tau >= 0.0 && tau <= d.max_delay(), "tau = {tau}");
            assert_eq!(tau, d.tau(i, j, t), "determinism");
        }
    }

    #[test]
    fn random_delay_is_direction_sensitive() {
        let d = RandomCommDelay::new(4, 16, 0.1, 0.05, 1.0);
        // Almost surely different for swapped pairs.
        assert_ne!(d.tau(2, 3, 0.7), d.tau(3, 2, 0.7));
    }

    #[test]
    fn random_delay_mean_close_to_parameter() {
        let d = RandomCommDelay::new(8, 4, 0.2, 0.02, 0.5);
        let mut acc = 0.0;
        let n = 10_000;
        for k in 0..n {
            acc += d.tau(1, 2, k as f64 * 0.37);
        }
        let mean = acc / n as f64;
        assert!((mean - 0.2).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_spread_is_constant() {
        let d = RandomCommDelay::new(8, 4, 0.15, 0.0, 0.5);
        assert_eq!(d.tau(0, 1, 0.0), 0.15);
        assert_eq!(d.tau(2, 3, 9.0), 0.15);
        assert_eq!(d.max_delay(), 0.15);
    }
}
