//! Noise models for the Physical Oscillator Model and the MPI simulator.
//!
//! Paper Eq. (2) contains two stochastic terms:
//!
//! * **process-local noise** `ζ_i(t)` — "a jitter in the local oscillator
//!   frequency \[that\] can also serve to model load imbalance" (§3.1). In
//!   the denominator `2π / (t_comp + t_comm + ζ_i(t))`, positive `ζ`
//!   lengthens the cycle, i.e. slows the process.
//! * **interaction noise** `τ_ij(t)` — "random delays caused by varying
//!   communication time", which turns the model into a delay equation via
//!   `θ_j(t − τ_ij(t))`.
//!
//! Both are exposed as traits ([`LocalNoise`], [`InteractionNoise`]) whose
//! implementations are **frozen noise**: deterministic functions of
//! `(rank, t)` built from a counter-based PRNG ([`rng`]). Determinism
//! matters because adaptive ODE solvers re-evaluate the right-hand side at
//! repeated times (rejected steps, dense output); a noise term that changed
//! between evaluations would break the integrator's error control and make
//! runs irreproducible.
//!
//! The paper's §5.1 *one-off delay* experiments (the injected extra
//! workload on rank 5 that launches an idle wave) are modeled by
//! [`DelayEvent`] / [`OneOffDelays`].

pub mod interaction;
pub mod local;
pub mod rng;

pub use interaction::{ConstantDelay, InteractionNoise, NoDelay, RandomCommDelay};
pub use local::{
    DelayEvent, LoadImbalance, LocalNoise, NoNoise, OneOffDelays, PeriodicDaemon, SumNoise,
    WhiteJitter,
};
pub use rng::{FrozenField, SplitMix64, Xoshiro256pp};
