//! Process-local noise `ζ_i(t)`: frequency jitter, load imbalance, and
//! one-off delay injections.
//!
//! In Eq. (2) the local term enters the *period*:
//! `θ̇_i = 2π / (t_comp + t_comm + ζ_i(t)) + …` — positive `ζ` slows
//! oscillator `i` down. The paper uses it for (a) fine-grained system
//! noise, (b) static load imbalance, and (c) the singular extra workload
//! that launches an idle wave (§5.1: "a one-off delay (extra workload
//! performed by the 5th MPI process)").

use crate::rng::FrozenField;

/// Process-local noise: a deterministic ("frozen") function of rank and
/// time, added to the cycle duration.
pub trait LocalNoise: Send + Sync {
    /// Extra cycle time for `rank` at time `t` (may be negative for a
    /// process that is temporarily *faster*, but must keep the total period
    /// positive — the model clamps, see `pom-core`).
    fn zeta(&self, rank: usize, t: f64) -> f64;

    /// `true` if this noise is identically zero (lets the model skip the
    /// call in the hot RHS loop).
    fn is_null(&self) -> bool {
        false
    }
}

/// The silent system: `ζ ≡ 0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoNoise;

impl LocalNoise for NoNoise {
    fn zeta(&self, _rank: usize, _t: f64) -> f64 {
        0.0
    }
    fn is_null(&self) -> bool {
        true
    }
}

/// Gaussian jitter with standard deviation `sigma` and correlation time
/// `corr_time`, built on a [`FrozenField`].
#[derive(Debug, Clone, Copy)]
pub struct WhiteJitter {
    field: FrozenField,
    sigma: f64,
}

impl WhiteJitter {
    /// Jitter of strength `sigma` (seconds), decorrelating over
    /// `corr_time` (seconds).
    pub fn new(seed: u64, sigma: f64, corr_time: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite());
        Self {
            field: FrozenField::new(seed, corr_time),
            sigma,
        }
    }
}

impl LocalNoise for WhiteJitter {
    fn zeta(&self, rank: usize, t: f64) -> f64 {
        self.sigma * self.field.sample(rank, t)
    }
    fn is_null(&self) -> bool {
        self.sigma == 0.0
    }
}

/// Periodic OS-daemon-like disturbance: every `period` seconds each rank
/// suffers `magnitude` extra time for a window of `duty × period`. Ranks
/// are offset by `rank_phase` so that daemons do not fire simultaneously
/// across the machine.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicDaemon {
    /// Repetition period in seconds.
    pub period: f64,
    /// Fraction of the period the disturbance is active (0..1).
    pub duty: f64,
    /// Extra cycle time while active, in seconds.
    pub magnitude: f64,
    /// Per-rank phase offset in seconds.
    pub rank_phase: f64,
}

impl LocalNoise for PeriodicDaemon {
    fn zeta(&self, rank: usize, t: f64) -> f64 {
        let local_t = t + rank as f64 * self.rank_phase;
        let phase = local_t.rem_euclid(self.period);
        if phase < self.duty * self.period {
            self.magnitude
        } else {
            0.0
        }
    }
    fn is_null(&self) -> bool {
        self.magnitude == 0.0 || self.duty == 0.0
    }
}

/// Static load imbalance: a constant extra cycle time per rank.
#[derive(Debug, Clone, Default)]
pub struct LoadImbalance {
    extra: Vec<f64>,
}

impl LoadImbalance {
    /// Per-rank extra cycle times (ranks beyond the vector get 0).
    pub fn new(extra: Vec<f64>) -> Self {
        Self { extra }
    }

    /// Linear ramp: rank `i` of `n` gets `i/(n−1) × max_extra`.
    pub fn ramp(n: usize, max_extra: f64) -> Self {
        if n <= 1 {
            return Self::new(vec![0.0; n]);
        }
        Self::new(
            (0..n)
                .map(|i| max_extra * i as f64 / (n - 1) as f64)
                .collect(),
        )
    }
}

impl LocalNoise for LoadImbalance {
    fn zeta(&self, rank: usize, _t: f64) -> f64 {
        self.extra.get(rank).copied().unwrap_or(0.0)
    }
    fn is_null(&self) -> bool {
        self.extra.iter().all(|&e| e == 0.0)
    }
}

/// A single injected delay: `rank` runs `extra` seconds slower per cycle
/// during `[t_start, t_start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayEvent {
    /// Affected rank.
    pub rank: usize,
    /// Start of the injection window (seconds).
    pub t_start: f64,
    /// Length of the injection window (seconds).
    pub duration: f64,
    /// Extra cycle time during the window (seconds).
    pub extra: f64,
}

impl DelayEvent {
    /// The paper's canonical injection: one strong delay on rank 5.
    pub fn paper_default(t_start: f64, extra: f64) -> Self {
        Self {
            rank: 5,
            t_start,
            duration: extra,
            extra,
        }
    }

    fn active(&self, rank: usize, t: f64) -> bool {
        rank == self.rank && t >= self.t_start && t < self.t_start + self.duration
    }
}

/// A set of one-off delay injections (paper §5.1).
#[derive(Debug, Clone, Default)]
pub struct OneOffDelays {
    events: Vec<DelayEvent>,
}

impl OneOffDelays {
    /// Build from a list of events.
    pub fn new(events: Vec<DelayEvent>) -> Self {
        Self { events }
    }

    /// The configured events.
    pub fn events(&self) -> &[DelayEvent] {
        &self.events
    }
}

impl LocalNoise for OneOffDelays {
    fn zeta(&self, rank: usize, t: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active(rank, t))
            .map(|e| e.extra)
            .sum()
    }
    fn is_null(&self) -> bool {
        self.events.is_empty()
    }
}

/// Sum of several noise sources (e.g. background jitter + an injected
/// one-off delay).
#[derive(Default)]
pub struct SumNoise {
    parts: Vec<Box<dyn LocalNoise>>,
}

impl SumNoise {
    /// Empty sum (≡ 0).
    pub fn new() -> Self {
        Self { parts: Vec::new() }
    }

    /// Add a component (builder style).
    pub fn with(mut self, part: impl LocalNoise + 'static) -> Self {
        self.parts.push(Box::new(part));
        self
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `true` if no components are present.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl LocalNoise for SumNoise {
    fn zeta(&self, rank: usize, t: f64) -> f64 {
        self.parts.iter().map(|p| p.zeta(rank, t)).sum()
    }
    fn is_null(&self) -> bool {
        self.parts.iter().all(|p| p.is_null())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_is_null_and_zero() {
        assert!(NoNoise.is_null());
        assert_eq!(NoNoise.zeta(3, 1.5), 0.0);
    }

    #[test]
    fn white_jitter_reproducible_and_scaled() {
        let j = WhiteJitter::new(1, 0.25, 0.5);
        assert_eq!(j.zeta(0, 1.0), j.zeta(0, 1.0));
        let j0 = WhiteJitter::new(1, 0.0, 0.5);
        assert!(j0.is_null());
        assert_eq!(j0.zeta(0, 1.0), 0.0);
        // Scaling: sigma doubles the sample.
        let j2 = WhiteJitter::new(1, 0.5, 0.5);
        assert!((j2.zeta(0, 1.0) - 2.0 * j.zeta(0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn periodic_daemon_window() {
        let d = PeriodicDaemon {
            period: 1.0,
            duty: 0.25,
            magnitude: 0.1,
            rank_phase: 0.0,
        };
        assert_eq!(d.zeta(0, 0.1), 0.1);
        assert_eq!(d.zeta(0, 0.3), 0.0);
        assert_eq!(d.zeta(0, 1.1), 0.1); // periodic
        assert!(!d.is_null());
    }

    #[test]
    fn periodic_daemon_rank_phase_staggers() {
        let d = PeriodicDaemon {
            period: 1.0,
            duty: 0.1,
            magnitude: 1.0,
            rank_phase: 0.5,
        };
        // Rank 0 at t = 0.05 is inside its window; rank 1 is shifted.
        assert_eq!(d.zeta(0, 0.05), 1.0);
        assert_eq!(d.zeta(1, 0.05), 0.0);
    }

    #[test]
    fn load_imbalance_ramp() {
        let li = LoadImbalance::ramp(5, 0.4);
        assert_eq!(li.zeta(0, 0.0), 0.0);
        assert!((li.zeta(4, 123.0) - 0.4).abs() < 1e-12);
        assert!((li.zeta(2, 0.0) - 0.2).abs() < 1e-12);
        // Out-of-range ranks contribute nothing.
        assert_eq!(li.zeta(17, 0.0), 0.0);
        assert!(!li.is_null());
        assert!(LoadImbalance::ramp(1, 0.4).is_null());
    }

    #[test]
    fn one_off_delay_window_and_rank() {
        let inj = OneOffDelays::new(vec![DelayEvent {
            rank: 5,
            t_start: 2.0,
            duration: 1.0,
            extra: 0.7,
        }]);
        assert_eq!(inj.zeta(5, 2.5), 0.7);
        assert_eq!(inj.zeta(5, 1.9), 0.0);
        assert_eq!(inj.zeta(5, 3.0), 0.0); // half-open window
        assert_eq!(inj.zeta(4, 2.5), 0.0); // other rank
    }

    #[test]
    fn overlapping_events_sum() {
        let inj = OneOffDelays::new(vec![
            DelayEvent {
                rank: 0,
                t_start: 0.0,
                duration: 2.0,
                extra: 0.1,
            },
            DelayEvent {
                rank: 0,
                t_start: 1.0,
                duration: 2.0,
                extra: 0.2,
            },
        ]);
        assert!((inj.zeta(0, 1.5) - 0.3).abs() < 1e-12);
        assert!((inj.zeta(0, 0.5) - 0.1).abs() < 1e-12);
        assert!((inj.zeta(0, 2.5) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn paper_default_event_targets_rank_5() {
        let e = DelayEvent::paper_default(10.0, 3.0);
        assert_eq!(e.rank, 5);
        assert_eq!(e.duration, 3.0);
    }

    #[test]
    fn sum_noise_combines() {
        let s = SumNoise::new()
            .with(LoadImbalance::new(vec![0.0, 0.5]))
            .with(OneOffDelays::new(vec![DelayEvent {
                rank: 1,
                t_start: 0.0,
                duration: 10.0,
                extra: 0.25,
            }]));
        assert_eq!(s.len(), 2);
        assert!((s.zeta(1, 5.0) - 0.75).abs() < 1e-12);
        assert_eq!(s.zeta(0, 5.0), 0.0);
        assert!(!s.is_null());
        assert!(SumNoise::new().is_null());
        assert!(SumNoise::new().with(NoNoise).is_null());
    }
}
