//! Deterministic pseudo-random number generation, implemented from scratch.
//!
//! Two generators:
//!
//! * [`SplitMix64`] — Steele/Lea/Vigna's 64-bit mixer. Counter-based: every
//!   output is a pure function of the state, which makes it ideal both for
//!   seeding and for *frozen noise fields* (hash a `(seed, rank, lattice
//!   index)` triple to a reproducible value, no stored path needed).
//! * [`Xoshiro256pp`] — Blackman/Vigna's xoshiro256++ 1.0, the
//!   general-purpose stream generator used by the simulator.
//!
//! Hand-rolling the PRNG (rather than pulling in `rand`) keeps the noise
//! bit-reproducible across library versions — reproducibility of runs is a
//! core requirement for a performance-model artifact.

/// SplitMix64: a fast, well-mixed 64-bit generator and hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    /// The SplitMix64 output mix as a pure function (finalizer). Used to
    /// hash lattice coordinates into reproducible random values.
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hash a triple (e.g. seed, rank, lattice index) to one 64-bit value.
    #[inline]
    pub fn hash3(a: u64, b: u64, c: u64) -> u64 {
        // Sequential absorb-and-mix; each round is the SplitMix64 step.
        let mut h = a ^ 0x51_7C_C1_B7_27_22_0A_95;
        h = Self::mix(h.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(b));
        h = Self::mix(h.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(c));
        Self::mix(h)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion (the recommended procedure).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid (fixed point); the SplitMix expansion
        // of any seed never produces it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal via Box–Muller (polar-free, two uniforms).
    pub fn normal(&mut self) -> f64 {
        // Reject u1 == 0 to keep ln finite.
        let mut u1 = self.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Exponential with rate `lambda` (mean `1/lambda`).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        let mut u = self.next_f64();
        while u <= f64::MIN_POSITIVE {
            u = self.next_f64();
        }
        -u.ln() / lambda
    }

    /// Log-normal with underlying normal parameters `(mu, sigma)`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Uniform integer in `[0, n)` (Lemire-style rejection-free for our
    /// needs: modulo bias is negligible for n ≪ 2⁶⁴ but we debias anyway).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling over the largest multiple of n.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }
}

/// A *frozen* scalar noise field `w(rank, t)`: standard-normal values on a
/// regular time lattice (spacing `dt`), linearly interpolated in `t`, fully
/// determined by `(seed, rank, lattice index)` hashing — no storage, same
/// value for the same arguments forever.
///
/// The lattice spacing acts as the correlation time of the jitter.
#[derive(Debug, Clone, Copy)]
pub struct FrozenField {
    seed: u64,
    dt: f64,
}

impl FrozenField {
    /// Create a field with correlation time `dt` (must be positive).
    pub fn new(seed: u64, dt: f64) -> Self {
        assert!(
            dt > 0.0 && dt.is_finite(),
            "lattice spacing must be positive"
        );
        Self { seed, dt }
    }

    /// Standard-normal value at lattice node `k` for `rank`.
    fn node(&self, rank: usize, k: i64) -> f64 {
        let h = SplitMix64::hash3(self.seed, rank as u64, k as u64);
        // Two 32-bit halves → two uniforms → Box–Muller cosine branch.
        let u1 = ((h >> 32) as f64 + 0.5) / 4294967296.0;
        let u2 = ((h & 0xFFFF_FFFF) as f64 + 0.5) / 4294967296.0;
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// The field's seed (part of its deterministic identity).
    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// The lattice spacing (part of the field's deterministic identity).
    pub(crate) fn dt(&self) -> f64 {
        self.dt
    }

    /// Sample the field at time `t` for `rank` (standard-normal marginals,
    /// triangular autocorrelation of width `dt`).
    pub fn sample(&self, rank: usize, t: f64) -> f64 {
        let x = t / self.dt;
        let k = x.floor();
        let frac = x - k;
        let a = self.node(rank, k as i64);
        let b = self.node(rank, k as i64 + 1);
        a + frac * (b - a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // Reference outputs for seed 0 (Vigna's splitmix64.c).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix_seed_sensitivity() {
        let a = SplitMix64::new(1).next_u64();
        let b = SplitMix64::new(2).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn hash3_deterministic_and_sensitive() {
        let h1 = SplitMix64::hash3(1, 2, 3);
        assert_eq!(h1, SplitMix64::hash3(1, 2, 3));
        assert_ne!(h1, SplitMix64::hash3(1, 2, 4));
        assert_ne!(h1, SplitMix64::hash3(1, 3, 2));
        assert_ne!(h1, SplitMix64::hash3(2, 2, 3));
    }

    #[test]
    fn xoshiro_deterministic_stream() {
        let mut a = Xoshiro256pp::seeded(42);
        let mut b = Xoshiro256pp::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seeded(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_moments() {
        let mut g = Xoshiro256pp::seeded(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn normal_moments() {
        let mut g = Xoshiro256pp::seeded(11);
        let n = 200_000;
        let (mut s, mut s2, mut s3) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = g.normal();
            s += x;
            s2 += x * x;
            s3 += x * x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        let skew = s3 / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.05, "skew {skew}");
    }

    #[test]
    fn exponential_mean() {
        let mut g = Xoshiro256pp::seeded(3);
        let lambda = 2.5;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / lambda).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn lognormal_positive() {
        let mut g = Xoshiro256pp::seeded(5);
        for _ in 0..1000 {
            assert!(g.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut g = Xoshiro256pp::seeded(9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[g.below(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "bucket {i}: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256pp::seeded(13);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Shuffling 50 elements virtually never yields identity.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn frozen_field_deterministic() {
        let f = FrozenField::new(99, 0.5);
        assert_eq!(f.sample(3, 1.234), f.sample(3, 1.234));
        assert_ne!(f.sample(3, 1.234), f.sample(4, 1.234));
    }

    #[test]
    fn frozen_field_continuous() {
        let f = FrozenField::new(1, 0.5);
        // Piecewise-linear: tiny t change ⇒ tiny value change.
        let a = f.sample(0, 1.0);
        let b = f.sample(0, 1.0 + 1e-9);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn frozen_field_marginals_are_standard_normal_on_lattice() {
        let f = FrozenField::new(2, 1.0);
        let n = 100_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for k in 0..n {
            // Exactly on lattice nodes (no interpolation variance loss).
            let x = f.sample(0, k as f64);
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn frozen_field_rejects_bad_dt() {
        FrozenField::new(0, 0.0);
    }
}
