//! Memory-bandwidth contention: fair sharing of a socket's bandwidth.
//!
//! When `k` processes stream concurrently on one socket they share the
//! saturated bandwidth `B`. We model the memory controller as a
//! *processor-sharing* server with per-process demand caps: process `p`
//! wants rate `d_p` (its un-contended demand); the controller grants
//! rates `g_p ≤ d_p` with `Σ g_p ≤ B`, filling fairly ("water-filling"):
//! no process gets less than another process that wants more.
//!
//! This is the mechanism that makes memory-bound programs
//! *resource-bottlenecked* in the simulator: in lockstep all ranks stream
//! simultaneously and everyone is slowed; staggered (desynchronized)
//! execution lets each rank stream closer to full speed — the
//! bottleneck-evasion effect the paper describes (§5.2.2, [Afzal et al.
//! TPDS 2022]).

/// Result of a bandwidth-sharing computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthShare {
    /// Granted rate per process (same order as the demand input).
    pub granted: Vec<f64>,
    /// Total granted rate (≤ capacity).
    pub total: f64,
    /// `true` if the socket is saturated (total == capacity, within fp).
    pub saturated: bool,
}

/// Fair (max-min / water-filling) allocation of `capacity` among processes
/// with the given `demands`.
///
/// Properties (pinned by tests):
/// * `granted[p] ≤ demands[p]`,
/// * `Σ granted ≤ capacity`,
/// * if `Σ demands ≤ capacity`, everyone gets its full demand,
/// * otherwise the grant is max-min fair: there is a water level `w` with
///   `granted[p] = min(demands[p], w)` and `Σ granted = capacity`.
pub fn share_bandwidth(demands: &[f64], capacity: f64) -> BandwidthShare {
    assert!(capacity >= 0.0 && capacity.is_finite());
    assert!(
        demands.iter().all(|&d| d >= 0.0 && d.is_finite()),
        "demands must be non-negative and finite"
    );
    let total_demand: f64 = demands.iter().sum();
    if total_demand <= capacity {
        return BandwidthShare {
            granted: demands.to_vec(),
            total: total_demand,
            saturated: false,
        };
    }

    // Water-filling: process demands in ascending order; each either fits
    // under the current fair share or caps out.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| demands[a].partial_cmp(&demands[b]).expect("finite demands"));

    let mut granted = vec![0.0; demands.len()];
    let mut remaining = capacity;
    let mut left = demands.len();
    for &p in &order {
        let fair = remaining / left as f64;
        let g = demands[p].min(fair);
        granted[p] = g;
        remaining -= g;
        left -= 1;
    }
    BandwidthShare {
        granted,
        total: capacity - remaining,
        saturated: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_everyone_full() {
        let s = share_bandwidth(&[10.0, 20.0, 5.0], 100.0);
        assert_eq!(s.granted, vec![10.0, 20.0, 5.0]);
        assert!(!s.saturated);
        assert_eq!(s.total, 35.0);
    }

    #[test]
    fn equal_demands_split_evenly() {
        let s = share_bandwidth(&[30.0; 4], 60.0);
        assert!(s.saturated);
        for g in &s.granted {
            assert!((g - 15.0).abs() < 1e-12);
        }
        assert!((s.total - 60.0).abs() < 1e-9);
    }

    #[test]
    fn small_demand_fully_served_before_big_ones() {
        // Max-min fairness: the 5-unit flow fits below the water level.
        let s = share_bandwidth(&[5.0, 50.0, 50.0], 45.0);
        assert!((s.granted[0] - 5.0).abs() < 1e-12);
        assert!((s.granted[1] - 20.0).abs() < 1e-12);
        assert!((s.granted[2] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn never_exceeds_demand_or_capacity() {
        let demands = [3.0, 9.0, 27.0, 81.0, 1.0];
        for cap in [1.0, 10.0, 50.0, 120.0, 1000.0] {
            let s = share_bandwidth(&demands, cap);
            for (g, d) in s.granted.iter().zip(&demands) {
                assert!(*g <= d + 1e-12);
            }
            assert!(s.total <= cap + 1e-9);
        }
    }

    #[test]
    fn water_level_structure_when_saturated() {
        let demands = [10.0, 40.0, 25.0, 70.0];
        let s = share_bandwidth(&demands, 100.0);
        assert!(s.saturated);
        // Water level: grants are min(demand, w) for a single w.
        // Here w should be 32.5: grants 10, 32.5, 25, 32.5 = 100.
        assert!((s.granted[0] - 10.0).abs() < 1e-9);
        assert!((s.granted[1] - 32.5).abs() < 1e-9);
        assert!((s.granted[2] - 25.0).abs() < 1e-9);
        assert!((s.granted[3] - 32.5).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_processes_ignored() {
        let s = share_bandwidth(&[0.0, 50.0, 0.0, 50.0], 60.0);
        assert_eq!(s.granted[0], 0.0);
        assert_eq!(s.granted[2], 0.0);
        assert!((s.granted[1] - 30.0).abs() < 1e-12);
        assert!((s.granted[3] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate() {
        let s = share_bandwidth(&[], 10.0);
        assert!(s.granted.is_empty());
        assert_eq!(s.total, 0.0);
        let s = share_bandwidth(&[5.0], 0.0);
        assert_eq!(s.granted, vec![0.0]);
        assert!(s.saturated);
    }

    #[test]
    fn staggering_beats_lockstep_throughput_per_process() {
        // The desync dividend: 10 STREAM-like processes each demanding
        // 20 GB/s on a 68 GB/s socket get 6.8 each in lockstep; any one
        // of them running alone gets its full 20.
        let lockstep = share_bandwidth(&[20e9; 10], 68e9);
        assert!((lockstep.granted[0] - 6.8e9).abs() < 1e3);
        let alone = share_bandwidth(&[20e9], 68e9);
        assert_eq!(alone.granted[0], 20e9);
    }
}
