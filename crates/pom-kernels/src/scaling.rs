//! Per-socket scaling curves — the reproduction of paper Fig. 1(b).
//!
//! For each kernel, run `k = 1..cores` identical processes on one socket
//! and report the aggregate memory bandwidth. STREAM saturates after a few
//! cores; the slow Schönauer triad climbs almost linearly to high core
//! counts; PISOLVER draws no bandwidth at all.

use crate::contention::share_bandwidth;
use crate::kernel::{Kernel, SocketSpec};

/// One point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of processes on the socket.
    pub processes: usize,
    /// Aggregate memory bandwidth drawn, bytes/s.
    pub aggregate_bw: f64,
    /// Per-process slowdown vs. running alone (≥ 1).
    pub slowdown: f64,
}

/// Aggregate-bandwidth scaling of `kernel` on `socket` for
/// `1..=max_processes` processes (paper Fig. 1(b)).
pub fn scaling_curve(
    kernel: &Kernel,
    socket: &SocketSpec,
    max_processes: usize,
) -> Vec<ScalingPoint> {
    let demand = kernel.bandwidth_demand(socket);
    (1..=max_processes)
        .map(|k| {
            let demands = vec![demand; k];
            let share = share_bandwidth(&demands, socket.mem_bw);
            let slowdown = if demand == 0.0 || share.granted[0] == 0.0 {
                1.0
            } else {
                // Memory-bound portion stretches by demand/granted; the
                // in-core portion is unaffected. For the paper's kernels
                // the memory-bound ones are bandwidth-dominated, so the
                // ratio is a good proxy (exact for pure streaming).
                let t_alone = kernel.single_core_time(1.0, socket);
                let t_cont = kernel.exec_time(1.0, socket, share.granted[0]);
                t_cont / t_alone
            };
            ScalingPoint {
                processes: k,
                aggregate_bw: share.total,
                slowdown,
            }
        })
        .collect()
}

/// Smallest process count at which the kernel saturates the socket
/// (aggregate ≥ `threshold` × capacity); `None` if it never does.
pub fn saturation_point(kernel: &Kernel, socket: &SocketSpec, threshold: f64) -> Option<usize> {
    scaling_curve(kernel, socket, socket.cores)
        .into_iter()
        .find(|p| p.aggregate_bw >= threshold * socket.mem_bw)
        .map(|p| p.processes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meggie() -> SocketSpec {
        SocketSpec::meggie()
    }

    #[test]
    fn stream_saturates_early_slow_triad_late() {
        // The paper's Fig. 1(b) shape: STREAM hits the bandwidth ceiling
        // after a few cores, the slow triad much later.
        let s = meggie();
        let stream = saturation_point(&Kernel::stream_triad(), &s, 0.95).unwrap();
        let slow = saturation_point(&Kernel::schoenauer_slow(), &s, 0.95).unwrap();
        assert!(stream <= 4, "STREAM saturates at {stream} cores");
        assert!(slow >= 7, "slow triad saturates at {slow} cores");
        assert!(slow > stream);
    }

    #[test]
    fn pisolver_never_saturates() {
        assert_eq!(saturation_point(&Kernel::pisolver(), &meggie(), 0.1), None);
        let curve = scaling_curve(&Kernel::pisolver(), &meggie(), 10);
        assert!(curve.iter().all(|p| p.aggregate_bw == 0.0));
        assert!(curve.iter().all(|p| p.slowdown == 1.0));
    }

    #[test]
    fn aggregate_bandwidth_monotone_and_capped() {
        let s = meggie();
        for k in [Kernel::stream_triad(), Kernel::schoenauer_slow()] {
            let curve = scaling_curve(&k, &s, s.cores);
            for w in curve.windows(2) {
                assert!(w[1].aggregate_bw >= w[0].aggregate_bw - 1e-6);
            }
            assert!(curve.iter().all(|p| p.aggregate_bw <= s.mem_bw + 1e-6));
        }
    }

    #[test]
    fn stream_linear_before_saturation() {
        let s = meggie();
        let curve = scaling_curve(&Kernel::stream_triad(), &s, s.cores);
        let demand = Kernel::stream_triad().bandwidth_demand(&s);
        // First point: exactly one un-contended process.
        assert!((curve[0].aggregate_bw - demand).abs() < 1.0);
        assert!((curve[0].slowdown - 1.0).abs() < 1e-12);
        // Second point: either still linear or capped.
        assert!(curve[1].aggregate_bw <= 2.0 * demand + 1.0);
    }

    #[test]
    fn slowdown_grows_past_saturation() {
        let s = meggie();
        let curve = scaling_curve(&Kernel::stream_triad(), &s, s.cores);
        let last = curve.last().unwrap();
        // 10 STREAM processes on 68 GB/s: each gets 6.8 of its 20 GB/s
        // demand ⇒ slowdown ≈ 20/6.8 ≈ 2.9.
        assert!(last.slowdown > 2.5, "slowdown {}", last.slowdown);
        // Monotone non-decreasing slowdown.
        for w in curve.windows(2) {
            assert!(w[1].slowdown >= w[0].slowdown - 1e-9);
        }
    }

    #[test]
    fn fig1b_series_has_expected_ordering_at_full_socket() {
        // At 10 processes: STREAM ≈ slow triad ≈ 68 GB/s, PISOLVER = 0.
        let s = meggie();
        let at_full = |k: &Kernel| scaling_curve(k, &s, 10).last().unwrap().aggregate_bw;
        let stream = at_full(&Kernel::stream_triad());
        let slow = at_full(&Kernel::schoenauer_slow());
        let pi = at_full(&Kernel::pisolver());
        assert!((stream - s.mem_bw).abs() < 1e-3 * s.mem_bw);
        assert!(slow >= 0.9 * s.mem_bw);
        assert_eq!(pi, 0.0);
    }
}
