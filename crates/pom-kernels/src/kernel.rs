//! Kernel descriptors and the roofline-with-saturation execution model.

/// Memory/compute resources of one socket, as seen by the kernel model.
///
/// This is deliberately independent of `pom_topology::ClusterSpec` (which
/// describes a whole machine); conversion is a one-liner where needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocketSpec {
    /// Core clock, Hz.
    pub freq: f64,
    /// Number of cores.
    pub cores: usize,
    /// Saturated memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Memory bandwidth a *single* core can draw, bytes/s (concurrency-
    /// limited; well below `mem_bw` on server CPUs).
    pub single_core_bw: f64,
}

impl SocketSpec {
    /// One Meggie socket (§4): 10-core Broadwell at 2.2 GHz, 68 GB/s
    /// saturated, ~20 GB/s single-core.
    pub fn meggie() -> Self {
        SocketSpec {
            freq: 2.2e9,
            cores: 10,
            mem_bw: 68.0e9,
            single_core_bw: 20.0e9,
        }
    }

    /// One SuperMUC-NG-like socket: 24-core Skylake, 102 GB/s saturated.
    pub fn supermuc_ng_like() -> Self {
        SocketSpec {
            freq: 2.3e9,
            cores: 24,
            mem_bw: 102.0e9,
            single_core_bw: 14.0e9,
        }
    }
}

/// A loop kernel characterized per "loop update" (LUP — one iteration of
/// the inner loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kernel {
    /// Kernel name.
    pub name: &'static str,
    /// Floating-point operations per LUP.
    pub flops_per_lup: f64,
    /// Memory traffic per LUP in bytes (including write-allocate).
    pub bytes_per_lup: f64,
    /// In-core cost per LUP in clock cycles (pipeline/port bound; captures
    /// the expensive `cos`/divide of the slow triad).
    pub cycles_per_lup: f64,
}

impl Kernel {
    /// STREAM triad `A(:) = B(:) + s*C(:)`: 2 flops; 8-byte doubles with
    /// three streamed arrays plus write-allocate on `A` → 32 B/LUP; the
    /// FMA pipeline retires it in well under a cycle per LUP with AVX2.
    pub fn stream_triad() -> Self {
        Kernel {
            name: "stream-triad",
            flops_per_lup: 2.0,
            bytes_per_lup: 32.0,
            cycles_per_lup: 0.4,
        }
    }

    /// "Slow" Schönauer triad `A(:) = B(:) + cos(C(:)/D(:))`: four streamed
    /// arrays plus write-allocate → 40 B/LUP; the divide + cosine cost on
    /// the order of a dozen cycles per element and dominate in-core time
    /// (calibrated so a Meggie socket saturates near 9 cores, the paper's
    /// Fig. 1(b) shape).
    pub fn schoenauer_slow() -> Self {
        Kernel {
            name: "schoenauer-slow",
            flops_per_lup: 4.0,
            bytes_per_lup: 40.0,
            cycles_per_lup: 12.0,
        }
    }

    /// PISOLVER midpoint-rule step: `sum += 4/(1 + x*x)` with loop-carried
    /// divide — a handful of cycles per step, zero memory traffic.
    pub fn pisolver() -> Self {
        Kernel {
            name: "pisolver",
            flops_per_lup: 5.0,
            bytes_per_lup: 0.0,
            cycles_per_lup: 4.0,
        }
    }

    /// The three paper kernels in Fig. 1(b) order.
    pub fn paper_kernels() -> [Kernel; 3] {
        [
            Self::stream_triad(),
            Self::schoenauer_slow(),
            Self::pisolver(),
        ]
    }

    /// `true` if the kernel performs no memory traffic (resource-scalable
    /// in the paper's sense).
    pub fn is_compute_bound(&self) -> bool {
        self.bytes_per_lup == 0.0
    }

    /// In-core execution time for `lups` loop updates (no memory
    /// bottleneck), seconds.
    pub fn core_time(&self, lups: f64, socket: &SocketSpec) -> f64 {
        lups * self.cycles_per_lup / socket.freq
    }

    /// Memory-transfer time for `lups` updates at achieved bandwidth `bw`.
    pub fn mem_time(&self, lups: f64, bw: f64) -> f64 {
        if self.bytes_per_lup == 0.0 {
            0.0
        } else {
            lups * self.bytes_per_lup / bw
        }
    }

    /// Execution time for `lups` updates when the core may draw at most
    /// `bw` bytes/s from memory: `max(in-core, traffic/bw)` (naive
    /// roofline; overlap assumed perfect).
    pub fn exec_time(&self, lups: f64, socket: &SocketSpec, bw: f64) -> f64 {
        let t_core = self.core_time(lups, socket);
        if self.bytes_per_lup == 0.0 {
            return t_core;
        }
        t_core.max(self.mem_time(lups, bw))
    }

    /// Unconstrained single-core execution time (bandwidth capped only by
    /// the core's own concurrency limit).
    pub fn single_core_time(&self, lups: f64, socket: &SocketSpec) -> f64 {
        self.exec_time(lups, socket, socket.single_core_bw)
    }

    /// Memory-bandwidth demand of one process running this kernel flat
    /// out on one core, bytes/s — the rate it sustains when un-contended.
    pub fn bandwidth_demand(&self, socket: &SocketSpec) -> f64 {
        if self.bytes_per_lup == 0.0 {
            return 0.0;
        }
        let t = self.single_core_time(1.0, socket);
        self.bytes_per_lup / t
    }

    /// Number of LUPs whose single-core execution takes `seconds` — used
    /// to size workloads that should run a target compute-phase duration.
    pub fn lups_for_duration(&self, seconds: f64, socket: &SocketSpec) -> f64 {
        seconds / self.single_core_time(1.0, socket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_kernel_classification() {
        assert!(Kernel::pisolver().is_compute_bound());
        assert!(!Kernel::stream_triad().is_compute_bound());
        assert!(!Kernel::schoenauer_slow().is_compute_bound());
    }

    #[test]
    fn stream_demands_more_bandwidth_than_slow_triad() {
        // The whole point of the slow triad (§4): heavier in-core cost per
        // LUP ⇒ lower per-core bandwidth demand ⇒ later saturation.
        let s = SocketSpec::meggie();
        let stream = Kernel::stream_triad().bandwidth_demand(&s);
        let slow = Kernel::schoenauer_slow().bandwidth_demand(&s);
        assert!(
            stream > 2.0 * slow,
            "stream {stream:.2e} vs slow {slow:.2e}"
        );
        assert_eq!(Kernel::pisolver().bandwidth_demand(&s), 0.0);
    }

    #[test]
    fn stream_is_bandwidth_bound_on_one_core() {
        let s = SocketSpec::meggie();
        let k = Kernel::stream_triad();
        let lups = 1e9;
        // Memory time at single-core bw exceeds the in-core time.
        assert!(k.mem_time(lups, s.single_core_bw) > k.core_time(lups, &s));
        assert_eq!(
            k.single_core_time(lups, &s),
            k.mem_time(lups, s.single_core_bw)
        );
    }

    #[test]
    fn slow_triad_is_core_bound_on_one_core() {
        let s = SocketSpec::meggie();
        let k = Kernel::schoenauer_slow();
        let lups = 1e9;
        assert!(k.core_time(lups, &s) > k.mem_time(lups, s.single_core_bw));
        assert_eq!(k.single_core_time(lups, &s), k.core_time(lups, &s));
    }

    #[test]
    fn exec_time_scales_linearly_in_lups() {
        let s = SocketSpec::meggie();
        for k in Kernel::paper_kernels() {
            let t1 = k.single_core_time(1e6, &s);
            let t2 = k.single_core_time(2e6, &s);
            assert!((t2 - 2.0 * t1).abs() < 1e-12 * t2.max(1.0));
        }
    }

    #[test]
    fn throttled_bandwidth_stretches_memory_kernels_only() {
        let s = SocketSpec::meggie();
        let lups = 1e8;
        let full = Kernel::stream_triad().exec_time(lups, &s, 20e9);
        let starved = Kernel::stream_triad().exec_time(lups, &s, 5e9);
        assert!(starved > 3.0 * full, "{starved} vs {full}");
        // Compute-bound kernel is indifferent.
        let a = Kernel::pisolver().exec_time(lups, &s, 20e9);
        let b = Kernel::pisolver().exec_time(lups, &s, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn lups_for_duration_roundtrip() {
        let s = SocketSpec::meggie();
        for k in Kernel::paper_kernels() {
            let lups = k.lups_for_duration(0.25, &s);
            let t = k.single_core_time(lups, &s);
            assert!((t - 0.25).abs() < 1e-9, "{}: {t}", k.name);
        }
    }

    #[test]
    fn meggie_socket_matches_paper() {
        let s = SocketSpec::meggie();
        assert_eq!(s.cores, 10);
        assert!((s.mem_bw - 68e9).abs() < 1.0);
    }
}
