//! Executable versions of the paper's micro-kernels.
//!
//! These are the actual loops (in Rust instead of Fortran/C): useful for
//! the examples, and for tests that sanity-check the *relative* in-core
//! costs assumed by the analytic [`crate::kernel::Kernel`] descriptors
//! (e.g. the slow Schönauer triad really is much slower per element than
//! the STREAM triad).

/// One STREAM triad sweep: `a[i] = b[i] + s * c[i]`.
///
/// Returns a checksum (sum of `a`) so optimizers cannot elide the loop.
pub fn stream_triad(a: &mut [f64], b: &[f64], c: &[f64], s: f64) -> f64 {
    assert!(
        a.len() == b.len() && b.len() == c.len(),
        "array length mismatch"
    );
    for i in 0..a.len() {
        a[i] = b[i] + s * c[i];
    }
    a.iter().sum()
}

/// One "slow" Schönauer triad sweep: `a[i] = b[i] + cos(c[i] / d[i])`.
pub fn schoenauer_slow(a: &mut [f64], b: &[f64], c: &[f64], d: &[f64]) -> f64 {
    assert!(
        a.len() == b.len() && b.len() == c.len() && c.len() == d.len(),
        "array length mismatch"
    );
    for i in 0..a.len() {
        a[i] = b[i] + (c[i] / d[i]).cos();
    }
    a.iter().sum()
}

/// PISOLVER: midpoint-rule quadrature of `∫₀¹ 4/(1+x²) dx = π` with
/// `steps` intervals (the paper uses 500 M; tests use far fewer).
pub fn pisolver(steps: u64) -> f64 {
    assert!(steps > 0);
    let w = 1.0 / steps as f64;
    let mut sum = 0.0;
    for k in 0..steps {
        let x = (k as f64 + 0.5) * w;
        sum += 4.0 / (1.0 + x * x);
    }
    sum * w
}

/// Partition `steps` PISOLVER steps across `ranks` workers (the MPI
/// decomposition): returns each rank's `(first_step, count)`.
pub fn pisolver_partition(steps: u64, ranks: u64) -> Vec<(u64, u64)> {
    assert!(ranks > 0);
    let base = steps / ranks;
    let extra = steps % ranks;
    let mut out = Vec::with_capacity(ranks as usize);
    let mut start = 0;
    for r in 0..ranks {
        let count = base + u64::from(r < extra);
        out.push((start, count));
        start += count;
    }
    out
}

/// PISOLVER partial sum for one rank's slice (no final `× w` scaling;
/// combine with [`pisolver_reduce`]).
pub fn pisolver_partial(first: u64, count: u64, steps: u64) -> f64 {
    let w = 1.0 / steps as f64;
    let mut sum = 0.0;
    for k in first..first + count {
        let x = (k as f64 + 0.5) * w;
        sum += 4.0 / (1.0 + x * x);
    }
    sum
}

/// Combine partial sums into the final π estimate.
pub fn pisolver_reduce(partials: &[f64], steps: u64) -> f64 {
    partials.iter().sum::<f64>() / steps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn pisolver_converges_to_pi() {
        let est = pisolver(100_000);
        assert!((est - PI).abs() < 1e-9, "estimate {est}");
        // Midpoint rule is second order: 10× steps ⇒ ~100× error drop.
        let coarse = (pisolver(1_000) - PI).abs();
        let fine = (pisolver(10_000) - PI).abs();
        assert!(fine < coarse / 50.0);
    }

    #[test]
    fn parallel_pisolver_matches_serial() {
        let steps = 50_000;
        for ranks in [1u64, 3, 7, 16] {
            let parts = pisolver_partition(steps, ranks);
            assert_eq!(parts.iter().map(|p| p.1).sum::<u64>(), steps);
            let partials: Vec<f64> = parts
                .iter()
                .map(|&(f, c)| pisolver_partial(f, c, steps))
                .collect();
            let est = pisolver_reduce(&partials, steps);
            assert!((est - pisolver(steps)).abs() < 1e-12, "ranks = {ranks}");
        }
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let parts = pisolver_partition(10, 3);
        assert_eq!(parts, vec![(0, 4), (4, 3), (7, 3)]);
    }

    #[test]
    fn stream_triad_computes() {
        let b = vec![1.0; 64];
        let c = vec![2.0; 64];
        let mut a = vec![0.0; 64];
        let sum = stream_triad(&mut a, &b, &c, 3.0);
        assert!(a.iter().all(|&x| (x - 7.0).abs() < 1e-15));
        assert!((sum - 7.0 * 64.0).abs() < 1e-9);
    }

    #[test]
    fn schoenauer_computes() {
        let b = vec![1.0; 16];
        let c = vec![0.0; 16];
        let d = vec![2.0; 16];
        let mut a = vec![0.0; 16];
        schoenauer_slow(&mut a, &b, &c, &d);
        // cos(0/2) = 1 ⇒ a = 2.
        assert!(a.iter().all(|&x| (x - 2.0).abs() < 1e-15));
    }

    #[test]
    fn slow_triad_really_is_slower_per_element() {
        // Relative in-core cost check backing the Kernel descriptors. Use
        // enough work to dominate timer noise but stay fast in CI.
        let n = 200_000;
        let b = vec![1.1; n];
        let c = vec![2.2; n];
        let d = vec![3.3; n];
        let mut a = vec![0.0; n];

        let reps = 20;
        let t0 = std::time::Instant::now();
        let mut sink = 0.0;
        for _ in 0..reps {
            sink += stream_triad(&mut a, &b, &c, 1.5);
        }
        let t_stream = t0.elapsed();

        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            sink += schoenauer_slow(&mut a, &b, &c, &d);
        }
        let t_slow = t0.elapsed();

        assert!(sink.is_finite());
        // In-memory (cache-resident) data: the cos/div loop must be
        // substantially slower per sweep. Keep margin loose for CI noise.
        assert!(
            t_slow > t_stream,
            "slow triad {t_slow:?} should exceed stream {t_stream:?}"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn stream_checks_lengths() {
        let mut a = vec![0.0; 4];
        stream_triad(&mut a, &[0.0; 4], &[0.0; 3], 1.0);
    }
}
