//! A hand-rolled fork–join pool for chunked data-parallel loops.
//!
//! The oscillator-model right-hand side is evaluated four times per RK4
//! step, millions of steps per run; at continuum-scale `N` (10⁴–10⁶
//! oscillators) a single evaluation is itself worth parallelizing. Spawning
//! scoped threads *per evaluation* would cost more than the work, so
//! [`ChunkPool`] keeps a fixed set of workers parked on a condvar and
//! hands them one job at a time: split `0..n_items` into one contiguous
//! range per participant and run a caller closure on each range
//! concurrently. The calling thread participates (it takes slot 0), so a
//! pool of `t` threads spawns `t − 1` workers.
//!
//! The design mirrors the `pom-sweep` campaign executor (plain `std`
//! threads, mutex + condvar, no external dependencies) scaled down to
//! microsecond-sized jobs: one notify-all to start, one counter to finish,
//! no per-item channel traffic.
//!
//! Chunk boundaries depend only on `(n_items, threads)`, never on timing,
//! so any split-by-rows computation that is deterministic per row is
//! deterministic under the pool.
//!
//! ```
//! use pom_kernels::par::{ChunkPool, DisjointSliceMut};
//!
//! let pool = ChunkPool::new(2);
//! let mut out = vec![0.0f64; 1000];
//! let shared = DisjointSliceMut::new(&mut out);
//! pool.run(1000, &|_slot, range| {
//!     // SAFETY: `run` hands each slot a disjoint range of `0..n_items`.
//!     let chunk = unsafe { shared.range_mut(range.clone()) };
//!     for (k, v) in chunk.iter_mut().enumerate() {
//!         *v = (range.start + k) as f64;
//!     }
//! });
//! assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64));
//! ```

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

struct PoolMetrics {
    jobs: Arc<pom_obs::Counter>,
    items: Arc<pom_obs::Counter>,
    busy_us: Arc<pom_obs::Counter>,
    imbalance_us: Arc<pom_obs::Histogram>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = pom_obs::registry();
        PoolMetrics {
            jobs: r.counter(
                "pom_kernels_pool_jobs_total",
                "Fork\u{2013}join jobs dispatched.",
            ),
            items: r.counter(
                "pom_kernels_pool_items_total",
                "Items covered by dispatched jobs.",
            ),
            busy_us: r.counter(
                "pom_kernels_pool_busy_us_total",
                "Per-slot busy time summed over all slots and jobs.",
            ),
            imbalance_us: r.histogram(
                "pom_kernels_pool_imbalance_us",
                "Per-job fork\u{2013}join imbalance: busiest minus idlest slot.",
            ),
        }
    })
}

/// Type-erased job descriptor handed from [`ChunkPool::run`] to workers.
///
/// The closure pointer's lifetime is erased; soundness rests on `run` not
/// returning until every worker has finished with the job (see the
/// `remaining` accounting below).
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize, Range<usize>) + Sync),
    n_items: usize,
    slots: usize,
}

// SAFETY: the raw closure pointer is only dereferenced by workers between
// job pickup and their `remaining` decrement, and `run` blocks until
// `remaining == 0` — the referent outlives every dereference.
unsafe impl Send for Job {}

struct State {
    /// Monotonic job counter; a worker runs each epoch exactly once.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current epoch's chunk.
    remaining: usize,
    /// Set when a worker's chunk panicked; `run` re-panics on the caller.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new job posted (or shutdown).
    work: Condvar,
    /// Signals the caller: all workers done with the current job.
    done: Condvar,
}

/// Fixed pool of parked worker threads executing chunked loops.
///
/// Create once (it spawns `threads − 1` OS threads) and call
/// [`ChunkPool::run`] as often as needed; dropping the pool joins the
/// workers. With `threads <= 1` the pool spawns nothing and `run` executes
/// the whole range inline.
pub struct ChunkPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes concurrent [`ChunkPool::run`] callers: the pool is held
    /// through `&self` by types that are themselves `Sync` (a model's RHS
    /// runs through `&self`), so two threads may legally call `run` at
    /// once — the second simply waits for the first job to drain instead
    /// of corrupting the job slot.
    run_gate: Mutex<()>,
}

impl std::fmt::Debug for ChunkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkPool")
            .field("threads", &self.threads())
            .finish()
    }
}

/// The contiguous range of slot `slot` when `0..n_items` is split into
/// `slots` near-equal chunks (earlier slots take the remainder).
fn chunk_range(slot: usize, slots: usize, n_items: usize) -> Range<usize> {
    let base = n_items / slots;
    let rem = n_items % slots;
    let start = slot * base + slot.min(rem);
    let len = base + usize::from(slot < rem);
    start..start + len
}

impl ChunkPool {
    /// Build a pool executing jobs on `threads` participants (the caller
    /// plus `threads − 1` spawned workers).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads.max(1))
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, slot))
            })
            .collect();
        Self {
            shared,
            workers,
            run_gate: Mutex::new(()),
        }
    }

    /// Total participants (caller + workers).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Execute `f(slot, range)` once per participant, with the ranges
    /// forming a disjoint cover of `0..n_items` (a slot's range may be
    /// empty when `n_items < threads`). Blocks until every participant has
    /// finished; panics from any chunk propagate to the caller.
    ///
    /// Safe to call from several threads at once: concurrent calls are
    /// serialized (each job runs alone on the pool).
    pub fn run(&self, n_items: usize, f: &(dyn Fn(usize, Range<usize>) + Sync)) {
        if !pom_obs::enabled() {
            return self.run_inner(n_items, f);
        }
        // Instrumented path: one clock pair per slot per job (never per
        // item). `run_inner` falls back to inline execution on slot 0 for
        // trivial jobs, so only aggregate the slots that actually ran.
        let slots = self.threads();
        let active = if slots == 1 || n_items == 0 { 1 } else { slots };
        let busy: Vec<AtomicU64> = (0..active).map(|_| AtomicU64::new(0)).collect();
        let busy_ref = &busy;
        self.run_inner(n_items, &move |slot: usize, range: Range<usize>| {
            let t0 = Instant::now();
            f(slot, range);
            busy_ref[slot].store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        });
        let m = pool_metrics();
        m.jobs.inc();
        m.items.add(n_items as u64);
        let (mut lo, mut hi, mut sum) = (u64::MAX, 0u64, 0u64);
        for b in &busy {
            let v = b.load(Ordering::Relaxed);
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v;
        }
        m.busy_us.add(sum);
        m.imbalance_us.observe(hi - lo);
    }

    fn run_inner(&self, n_items: usize, f: &(dyn Fn(usize, Range<usize>) + Sync)) {
        let slots = self.threads();
        if slots == 1 || n_items == 0 {
            f(0, 0..n_items);
            return;
        }
        // One job at a time. A poisoned gate (a previous caller panicked
        // after its job fully drained — see the unwind handling below) is
        // recovered, not propagated: the pool state is consistent.
        let _gate = match self.run_gate.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            st.epoch += 1;
            // SAFETY: pure lifetime erasure (`&'a dyn …` → `*const dyn …`);
            // the wait on `remaining` below keeps the referent alive for
            // every dereference.
            let f: *const (dyn Fn(usize, Range<usize>) + Sync) = unsafe { std::mem::transmute(f) };
            st.job = Some(Job { f, n_items, slots });
            st.remaining = self.workers.len();
            st.panicked = false;
            self.shared.work.notify_all();
        }
        // The caller takes slot 0. Run it under catch_unwind so that even
        // if this chunk panics we still wait for the workers (whose borrow
        // of `f` must not outlive this frame) before resuming the panic.
        let mine = catch_unwind(AssertUnwindSafe(|| f(0, chunk_range(0, slots, n_items))));
        let panicked = {
            let mut st = self.shared.state.lock().expect("pool mutex");
            while st.remaining > 0 {
                st = self.shared.done.wait(st).expect("pool mutex");
            }
            st.job = None;
            st.panicked
        };
        match mine {
            Err(payload) => resume_unwind(payload),
            Ok(()) if panicked => panic!("ChunkPool worker chunk panicked"),
            Ok(()) => {}
        }
    }
}

impl Drop for ChunkPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool mutex");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(job) = st.job {
                        seen = st.epoch;
                        break job;
                    }
                }
                st = shared.work.wait(st).expect("pool mutex");
            }
        };
        // SAFETY: `run` blocks until `remaining` reaches zero, which
        // happens only after this call returns — the closure is alive.
        let f = unsafe { &*job.f };
        let result = catch_unwind(AssertUnwindSafe(|| {
            f(slot, chunk_range(slot, job.slots, job.n_items))
        }));
        let mut st = shared.state.lock().expect("pool mutex");
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// A mutable slice shareable across the pool's participants, on the
/// caller's promise that concurrently accessed ranges are disjoint.
///
/// [`ChunkPool::run`] guarantees the ranges it hands out are disjoint, so a
/// chunk closure may safely reborrow its own range:
/// `unsafe { shared.range_mut(range) }`.
pub struct DisjointSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access is restricted to disjoint ranges (the contract of
// `range_mut`), so concurrent use from multiple threads cannot alias.
unsafe impl<T: Send> Send for DisjointSliceMut<'_, T> {}
unsafe impl<T: Send> Sync for DisjointSliceMut<'_, T> {}

impl<'a, T> DisjointSliceMut<'a, T> {
    /// Wrap a slice for disjoint-range sharing.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrow `range` of the underlying slice mutably.
    ///
    /// # Safety
    /// No two live borrows obtained from this wrapper (on any thread) may
    /// overlap, and `range` must lie within `0..self.len()`. Ranges handed
    /// out by [`ChunkPool::run`] satisfy the disjointness requirement.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_disjointly() {
        for &(slots, n) in &[(1usize, 7usize), (3, 10), (4, 3), (5, 0), (2, 100)] {
            let mut covered = vec![0u32; n];
            let mut prev_end = 0;
            for s in 0..slots {
                let r = chunk_range(s, slots, n);
                assert_eq!(r.start, prev_end, "slots {slots}, n {n}");
                prev_end = r.end;
                for i in r {
                    covered[i] += 1;
                }
            }
            assert_eq!(prev_end, n);
            assert!(covered.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ChunkPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0usize; 17];
        let shared = DisjointSliceMut::new(&mut out);
        pool.run(17, &|slot, range| {
            assert_eq!(slot, 0);
            let chunk = unsafe { shared.range_mut(range.clone()) };
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = range.start + k;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn multi_thread_pool_covers_every_item_once() {
        let pool = ChunkPool::new(4);
        assert_eq!(pool.threads(), 4);
        let n = 1003;
        let mut out = vec![0u32; n];
        let shared = DisjointSliceMut::new(&mut out);
        // Repeated runs reuse the same parked workers.
        for round in 0..50u32 {
            pool.run(n, &|_slot, range| {
                let chunk = unsafe { shared.range_mut(range) };
                for v in chunk {
                    *v += round + 1;
                }
            });
        }
        let expect: u32 = (1..=50).sum();
        assert!(out.iter().all(|&v| v == expect), "some item missed a round");
    }

    #[test]
    fn fewer_items_than_threads() {
        let pool = ChunkPool::new(8);
        let hits = AtomicUsize::new(0);
        pool.run(3, &|_slot, range| {
            hits.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        pool.run(0, &|_slot, range| {
            assert!(range.is_empty());
        });
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ChunkPool::new(3);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, &|_slot, range| {
                if range.contains(&99) {
                    panic!("chunk failure");
                }
            });
        }));
        assert!(res.is_err(), "panic must propagate to the caller");
        // The pool remains usable after a panicked job.
        let hits = AtomicUsize::new(0);
        pool.run(10, &|_slot, range| {
            hits.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn concurrent_run_calls_are_serialized() {
        // The pool is reachable through `&self` from `Sync` owners, so two
        // threads may issue jobs at once; each job must still cover its
        // own range exactly once.
        let pool = ChunkPool::new(3);
        let n = 4001;
        std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        for _ in 0..50 {
                            let hits = AtomicUsize::new(0);
                            pool.run(n, &|_slot, range| {
                                hits.fetch_add(range.len(), Ordering::Relaxed);
                            });
                            assert_eq!(hits.load(Ordering::Relaxed), n);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn results_deterministic_across_thread_counts() {
        let n = 257;
        let compute = |threads: usize| -> Vec<f64> {
            let pool = ChunkPool::new(threads);
            let mut out = vec![0.0f64; n];
            let shared = DisjointSliceMut::new(&mut out);
            pool.run(n, &|_slot, range| {
                let chunk = unsafe { shared.range_mut(range.clone()) };
                for (k, v) in chunk.iter_mut().enumerate() {
                    let i = range.start + k;
                    *v = (i as f64 * 0.37).sin() * (i as f64).sqrt();
                }
            });
            out
        };
        let one = compute(1);
        for threads in [2, 3, 5] {
            assert_eq!(one, compute(threads), "threads = {threads}");
        }
    }
}
