//! Node-level performance model of the paper's micro-benchmarks.
//!
//! The paper's test bed (§4) uses three MPI-parallel toy codes:
//!
//! * **PISOLVER** — midpoint-rule integration of `∫₀¹ 4/(1+x²) dx` with
//!   500 M steps: pure floating-point work, no memory traffic —
//!   *resource-scalable*.
//! * **STREAM triad** — `A(:) = B(:) + s*C(:)` [McCalpin 1995]:
//!   bandwidth-dominated, saturates the socket's memory bandwidth at a few
//!   cores — *resource-bottlenecked*.
//! * **"Slow" Schönauer triad** — `A(:) = B(:) + cos(C(:)/D(:))`: the
//!   low-throughput cosine and FP division raise the in-core cost per
//!   loop iteration, which "shifts the bandwidth saturation point to a
//!   higher number of cores" (§4).
//!
//! This crate models each kernel with a *roofline-with-saturation*
//! description ([`Kernel`]): per-iteration FLOP count, memory traffic, and
//! in-core cycle cost. Combined with a socket's bandwidth budget it yields
//! the per-socket scaling curves of paper Fig. 1(b)
//! ([`scaling::scaling_curve`]) and the compute-phase durations that the
//! MPI simulator stretches under contention ([`contention`]).
//!
//! The kernels are also *implemented* as real loops ([`exec`]) so tests can
//! sanity-check the relative in-core costs the model assumes.

//! The crate also hosts the repository's intra-run parallelism primitive,
//! [`par::ChunkPool`] — a dependency-free fork–join pool used by the
//! oscillator model's right-hand-side kernels to split one large-`N`
//! evaluation across cores (it lives here, in the foundation layer,
//! because it knows nothing about oscillators).

pub mod contention;
pub mod exec;
pub mod kernel;
pub mod par;
pub mod scaling;

pub use contention::{share_bandwidth, BandwidthShare};
pub use kernel::{Kernel, SocketSpec};
pub use par::{ChunkPool, DisjointSliceMut};
pub use scaling::{saturation_point, scaling_curve, ScalingPoint};
