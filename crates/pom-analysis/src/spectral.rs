//! Spectral (Fourier-mode) analysis of phase patterns.
//!
//! The linear-stability theory (`pom_core::stability`) predicts *which*
//! Fourier mode of the perturbation grows fastest; this module measures
//! the mode content of an actual phase snapshot so the prediction can be
//! checked against the developed pattern. For the desync potential at
//! lockstep the prediction is the zigzag mode `m = N/2` (the
//! anti-diffusion of the continuum limit blows up the shortest
//! wavelength first — `pom_core::continuum`).

use std::f64::consts::TAU;

/// Power `|ε̂_m|²` of Fourier mode `m` of the mean-removed phase pattern,
/// for `m = 0..N` (mode 0 is zero by construction).
pub fn mode_power(phases: &[f64]) -> Vec<f64> {
    let n = phases.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = phases.iter().sum::<f64>() / n as f64;
    (0..n)
        .map(|m| {
            let q = TAU * m as f64 / n as f64;
            let (mut re, mut im) = (0.0, 0.0);
            for (i, &p) in phases.iter().enumerate() {
                let x = p - mean;
                re += x * (q * i as f64).cos();
                im += x * (q * i as f64).sin();
            }
            (re * re + im * im) / (n as f64 * n as f64)
        })
        .collect()
}

/// The dominant nonzero mode of the pattern, folded to `1..=N/2` (a real
/// signal puts equal power in conjugate modes `m` and `N − m`), or `None`
/// for an empty/constant pattern.
pub fn dominant_mode(phases: &[f64]) -> Option<usize> {
    let power = mode_power(phases);
    let n = power.len();
    if n < 2 {
        return None;
    }
    let mut best = (0usize, 0.0f64);
    for m in 1..=n / 2 {
        let mirror = n - m;
        let p = power[m] + if mirror != m { power[mirror] } else { 0.0 };
        if p > best.1 {
            best = (m, p);
        }
    }
    (best.1 > 1e-20).then_some(best.0)
}

/// Fraction of total (nonzero-mode) power carried by mode `m` and its
/// mirror `N − m` (real signals put equal power in conjugate modes).
pub fn mode_fraction(phases: &[f64], m: usize) -> f64 {
    let power = mode_power(phases);
    let total: f64 = power.iter().skip(1).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let n = power.len();
    let mirror = (n - m) % n;
    let p = power[m]
        + if mirror != m && mirror != 0 {
            power[mirror]
        } else {
            0.0
        };
    p / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_core::{stability, InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
    use pom_topology::Topology;

    #[test]
    fn pure_mode_is_detected() {
        let n = 16;
        for m in [1usize, 3, 8] {
            let phases: Vec<f64> = (0..n)
                .map(|i| (TAU * m as f64 * i as f64 / n as f64).cos())
                .collect();
            assert_eq!(dominant_mode(&phases), Some(m.min(n - m)), "m = {m}");
            assert!(mode_fraction(&phases, m) > 0.99, "m = {m}");
        }
    }

    #[test]
    fn constant_pattern_has_no_mode() {
        assert_eq!(dominant_mode(&[2.0; 12]), None);
        assert_eq!(dominant_mode(&[]), None);
        assert_eq!(mode_power(&[1.0; 4]).iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn mixed_pattern_picks_the_larger() {
        let n = 24;
        let phases: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                3.0 * (TAU * 2.0 * x).cos() + 0.5 * (TAU * 5.0 * x).sin()
            })
            .collect();
        // Mode 2 (folded with its mirror 22) dominates.
        assert_eq!(dominant_mode(&phases), Some(2));
    }

    #[test]
    fn desync_instability_develops_the_predicted_mode() {
        // Grow the pattern from tiny random noise under the desync
        // potential and compare the dominant emerging mode with the
        // linear-stability prediction (the zigzag N/2 for d = ±1).
        let n = 12;
        let pot = Potential::desync(3.0);
        let vp = 6.0;
        let predicted =
            stability::most_unstable_mode(pot, vp / n as f64, &[-1, 1], n, 0.0).unwrap();
        assert_eq!(predicted, n / 2, "theory: zigzag grows fastest");

        let run = PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(pot)
            .compute_time(1.0)
            .comm_time(0.0)
            .coupling(vp)
            .normalization(Normalization::ByN)
            .build()
            .unwrap()
            // Stop inside the linear growth regime (amplitude ~0.1 rad
            // after t = 8 from 1e-6) so the fastest mode still dominates;
            // past that, nonlinear saturation redistributes mode power.
            .simulate_with(
                InitialCondition::RandomSpread {
                    amplitude: 1e-6,
                    seed: 23,
                },
                &SimOptions::new(8.0).samples(100),
            )
            .unwrap();
        let final_state = run.trajectory().last().unwrap();
        let measured = dominant_mode(final_state).unwrap();
        assert_eq!(measured, predicted, "emerging mode must match theory");
        // Neighboring modes grow almost as fast over a short window, so
        // require plurality rather than majority.
        assert!(mode_fraction(final_state, predicted) > 0.25);
    }

    #[test]
    fn power_is_parseval_consistent() {
        // Σ_m |ε̂_m|² = (1/N)·Σ_i ε_i² for the mean-removed signal.
        let phases = vec![0.3, -1.2, 0.7, 2.0, -0.5, 0.1];
        let n = phases.len() as f64;
        let mean = phases.iter().sum::<f64>() / n;
        let var: f64 = phases.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        let total: f64 = mode_power(&phases).iter().sum();
        assert!((total - var).abs() < 1e-12, "{total} vs {var}");
    }
}
