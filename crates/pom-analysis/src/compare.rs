//! Model-vs-simulator agreement for the Fig. 2 corner cases.
//!
//! The paper's central demonstration is the *analogy*: the oscillator
//! model with the right potential/topology reproduces the qualitative
//! behavior of the corresponding MPI run. This module runs both sides of
//! one panel and reports a joint verdict used by the integration tests
//! and the EXPERIMENTS.md generator.

use pom_core::{fig2_model, Fig2Panel, InitialCondition, SimOptions};
use pom_kernels::Kernel;
use pom_mpisim::IdleWaveConfig;

use crate::desync::{model_verdict, residual_spread, sim_verdict, DesyncVerdict};
use crate::idlewave::{model_wave_arrivals, sim_wave_arrivals, wave_speed_fit};

/// Joint verdict for one Fig. 2 panel.
#[derive(Debug, Clone)]
pub struct Fig2Verdict {
    /// The panel examined.
    pub panel: Fig2Panel,
    /// Asymptotic verdict of the oscillator model.
    pub model: DesyncVerdict,
    /// Asymptotic verdict of the MPI simulator.
    pub sim: DesyncVerdict,
    /// Idle-wave speed measured in the model (oscillators per unit time),
    /// if the wave was detectable.
    pub model_wave_speed: Option<f64>,
    /// Idle-wave speed measured in the simulator (ranks per second).
    pub sim_wave_speed: Option<f64>,
    /// Residual phase spread of the model run (radians).
    pub model_residual_spread: f64,
    /// Mean absolute adjacent phase difference at the end of the model
    /// run (radians) — the local wavefront gap, which the desync
    /// potential pins at `2σ/3`.
    pub model_adjacent_gap: f64,
    /// Residual iteration-start spread of the simulator run (seconds).
    pub sim_residual_spread: f64,
}

impl Fig2Verdict {
    /// `true` when model and simulator agree on the asymptotic state and
    /// that state matches the paper's expectation for the panel.
    pub fn agrees(&self) -> bool {
        let expected = if self.panel.scalable() {
            DesyncVerdict::Synchronized
        } else {
            DesyncVerdict::Desynchronized
        };
        self.model == expected && self.sim == expected
    }
}

/// Run one Fig. 2 panel on both substrates and compare.
///
/// The model runs N = 40 oscillators with the panel's potential and
/// topology plus the rank-5 injection; the simulator runs the matching
/// kernel class (PISOLVER vs. STREAM triad with 4 MB messages) with the
/// same injection. Thresholds: model 0.5 rad, simulator 0.5 ms.
pub fn fig2_verdict(panel: Fig2Panel) -> Fig2Verdict {
    // --- model side ---
    let perturbed = fig2_model(panel, true).expect("preset builds");
    let baseline = fig2_model(panel, false).expect("preset builds");
    let opts = SimOptions::new(120.0).samples(600);
    let run_p = perturbed
        .simulate_with(InitialCondition::Synchronized, &opts)
        .expect("model integrates");
    let run_b = baseline
        .simulate_with(InitialCondition::Synchronized, &opts)
        .expect("model integrates");
    let model_arrivals = model_wave_arrivals(&run_p, &run_b, 0.05);
    let model_wave_speed = wave_speed_fit(&model_arrivals, 5, 10).mean_speed();
    let model = model_verdict(&run_p, 0.5);

    // --- simulator side ---
    // Scalable panels use PISOLVER with the paper's short messages;
    // bottlenecked ones use the STREAM triad with 4 MB messages — the
    // non-negligible communication time is what lets the computational
    // wavefront persist (see DESIGN.md §4).
    let kernel = if panel.scalable() {
        Kernel::pisolver()
    } else {
        Kernel::stream_triad()
    };
    let message_bytes = if panel.scalable() { 8 } else { 4_000_000 };
    let cfg = IdleWaveConfig {
        n_ranks: 40,
        iterations: 60,
        kernel,
        distances: panel.distances().to_vec(),
        ..IdleWaveConfig::default()
    };
    let (pert, base) = {
        use pom_mpisim::{ProgramSpec, SimDelay, Simulator, WorkSpec};
        use pom_topology::{ClusterSpec, Placement};
        let mk = |inject: bool| {
            let mut p = ProgramSpec::new(cfg.n_ranks, cfg.iterations)
                .kernel(kernel)
                .work(WorkSpec::TargetSeconds(cfg.t_comp))
                .distances(cfg.distances.clone())
                .message_bytes(message_bytes);
            if inject {
                p = p.inject(SimDelay {
                    rank: cfg.delay_rank,
                    iteration: cfg.delay_iteration,
                    extra_seconds: cfg.delay_factor * cfg.t_comp,
                });
            }
            Simulator::new(p, Placement::packed(ClusterSpec::meggie(), cfg.n_ranks))
                .expect("simulator builds")
                .run()
                .expect("simulation runs")
        };
        (mk(true), mk(false))
    };
    let sim_arrivals = sim_wave_arrivals(&pert, &base, 2e-3);
    let sim_wave_speed = wave_speed_fit(&sim_arrivals, cfg.delay_rank, 12).mean_speed();
    let sim = sim_verdict(&pert, 45, 5e-4);

    Fig2Verdict {
        panel,
        model,
        sim,
        model_wave_speed,
        sim_wave_speed,
        model_residual_spread: crate::desync::model_residual_spread(&run_p, 0.2),
        model_adjacent_gap: {
            let d = run_p.final_adjacent_differences();
            if d.is_empty() {
                0.0
            } else {
                d.iter().map(|x| x.abs()).sum::<f64>() / d.len() as f64
            }
        },
        sim_residual_spread: residual_spread(&pert, 45),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_a_agrees_scalable_resync() {
        let v = fig2_verdict(Fig2Panel::A);
        assert!(v.agrees(), "panel a: {v:?}");
        assert!(v.sim_wave_speed.is_some());
    }

    #[test]
    fn panel_b_agrees_bottleneck_desync() {
        let v = fig2_verdict(Fig2Panel::B);
        assert!(v.agrees(), "panel b: {v:?}");
        assert!(v.model_residual_spread > 0.5);
        assert!(v.sim_residual_spread > 5e-4);
    }

    #[test]
    fn panel_c_agrees_and_is_faster_than_a() {
        let va = fig2_verdict(Fig2Panel::A);
        let vc = fig2_verdict(Fig2Panel::C);
        assert!(vc.agrees(), "panel c: {vc:?}");
        // Wider stencil ⇒ faster wave on both substrates (§5.1.1).
        let (sa, sc) = (va.sim_wave_speed.unwrap(), vc.sim_wave_speed.unwrap());
        assert!(sc > 1.3 * sa, "sim speed {sc} vs {sa}");
        let (ma, mc) = (va.model_wave_speed.unwrap(), vc.model_wave_speed.unwrap());
        assert!(mc > 1.3 * ma, "model speed {mc} vs {ma}");
    }

    #[test]
    fn panel_d_agrees_with_smaller_spread_than_b() {
        let vb = fig2_verdict(Fig2Panel::B);
        let vd = fig2_verdict(Fig2Panel::D);
        assert!(vd.agrees(), "panel d: {vd:?}");
        // §5.2.2: stiffer communication (σ three times smaller) ⇒ smaller
        // asymptotic phase gaps. The local adjacent-rank gap is the right
        // metric: the desync potential pins it at 2σ/3, so panel d's gap
        // must come out well below panel b's (the *global* spread on a
        // ring also depends on the emergent zigzag pattern and is less
        // directly tied to σ).
        assert!(
            vd.model_adjacent_gap < 0.6 * vb.model_adjacent_gap,
            "model gap d {} vs b {}",
            vd.model_adjacent_gap,
            vb.model_adjacent_gap
        );
    }
}
