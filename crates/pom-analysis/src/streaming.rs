//! Online (streaming) observables: fold a run into O(N) state as it
//! integrates, instead of scanning a stored trajectory afterwards.
//!
//! Every probe here implements [`pom_ode::StepObserver`] and plugs into
//! the solvers' `integrate_observed` fast paths (or
//! `pom_core::Pom::simulate_observed`). A probe sees each accepted step
//! once, updates a constant-size accumulator, and keeps nothing per step
//! — which is what makes million-step runs of 10⁵ oscillators fit in
//! memory: the paper's headline quantities (order parameter `r(t)`,
//! adjacent phase gaps, idle-wave arrival fronts, §5.1/§5.2) never needed
//! the raw phases, only these reductions.
//!
//! Contents:
//!
//! * [`Welford`] — numerically stable streaming mean/variance/min/max;
//! * [`OrderParameterProbe`] — Kuramoto `r(t)` statistics over the run;
//! * [`PhaseGapProbe`] — mean/max adjacent phase gap statistics;
//! * [`WaveFrontProbe`] — first-crossing idle-wave arrival detection
//!   against an analytic baseline, reproducing
//!   [`crate::idlewave::model_wave_arrivals`] without a baseline
//!   trajectory in memory;
//! * [`RunSummaryProbe`] — the bundle `pom-sweep` attaches to streaming
//!   campaign points.
//!
//! Statistics are per observed *sample* (one per accepted step, or per
//! forwarded step under [`pom_ode::ObserveEvery`]), not time-weighted:
//! with a fixed-step solver the two coincide; with an adaptive solver
//! regions of small steps weigh proportionally more.

use pom_core::observables::{order_parameter, phase_spread};
use pom_ode::StepObserver;

use crate::idlewave::{crossing_time, wave_speed_fit_in, MeasuredWave, WaveArrival, WaveGeometry};

/// Welford's streaming moments: mean and variance in one numerically
/// stable pass, plus min/max, in O(1) state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples folded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Streaming mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample (Bessel-corrected) variance `m2 / (count − 1)`; 0 for fewer
    /// than two samples. This is the estimator the ensemble aggregation
    /// columns use — replicas are a finite sample of the seed population.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean: `1.96 · sqrt(sample_variance / count)`; 0 for fewer than
    /// two samples. `pom-sweep` writes this as the `<obs>_ci95` column of
    /// `replicas = R` campaigns.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Smallest sample (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Streaming Kuramoto order parameter: per-sample `r` folded into
/// [`Welford`] statistics plus the latest value.
#[derive(Debug, Clone, Default)]
pub struct OrderParameterProbe {
    /// Statistics of `r` over all observed samples (including `t0`).
    pub stats: Welford,
    /// `r` at the most recent sample.
    pub last: f64,
}

impl OrderParameterProbe {
    /// Empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, y: &[f64]) {
        let (r, _) = order_parameter(y);
        self.stats.push(r);
        self.last = r;
    }
}

impl StepObserver for OrderParameterProbe {
    fn begin(&mut self, _t0: f64, y0: &[f64]) {
        // Full reset, like every probe here: reuse across integrations
        // must not fold two runs into one statistic.
        *self = Self::new();
        self.push(y0);
    }
    fn observe_step(&mut self, _t: f64, y: &[f64]) {
        self.push(y);
    }
}

/// Streaming adjacent-gap diagnostics: per-sample mean and max of
/// `|θ_{i+1} − θ_i|` plus the phase spread, each folded into [`Welford`]
/// statistics.
#[derive(Debug, Clone, Default)]
pub struct PhaseGapProbe {
    /// Statistics of the per-sample *mean* absolute adjacent gap.
    pub mean_gap: Welford,
    /// Statistics of the per-sample *max* absolute adjacent gap.
    pub max_gap: Welford,
    /// Statistics of the phase spread `max θ − min θ`.
    pub spread: Welford,
    /// Mean gap at the most recent sample.
    pub last_mean_gap: f64,
    /// Spread at the most recent sample.
    pub last_spread: f64,
}

impl PhaseGapProbe {
    /// Empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, y: &[f64]) {
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for w in y.windows(2) {
            let g = (w[1] - w[0]).abs();
            sum += g;
            max = max.max(g);
        }
        let mean = if y.len() < 2 {
            0.0
        } else {
            sum / (y.len() - 1) as f64
        };
        self.mean_gap.push(mean);
        self.max_gap.push(max);
        let spread = phase_spread(y);
        self.spread.push(spread);
        self.last_mean_gap = mean;
        self.last_spread = spread;
    }
}

impl StepObserver for PhaseGapProbe {
    fn begin(&mut self, _t0: f64, y0: &[f64]) {
        // Full reset on begin — see `OrderParameterProbe`.
        *self = Self::new();
        self.push(y0);
    }
    fn observe_step(&mut self, _t: f64, y: &[f64]) {
        self.push(y);
    }
}

/// Streaming idle-wave front detector: per-rank first crossing of
/// `|θ_i(t) − baseline_i(t)| >= threshold`, with the crossing time
/// linearly interpolated between the bracketing samples — the same
/// inclusive-threshold convention as
/// [`crate::idlewave::trajectory_wave_arrivals`], which this reproduces
/// (up to integrator round-off in the baseline) without holding any
/// trajectory in memory.
///
/// The baseline is an analytic closure `(t, rank) → phase`. The canonical
/// idle-wave experiment launches the wave by a one-off injection into an
/// otherwise noise-free synchronized run, whose unperturbed twin is
/// exactly the free run `θ_i(t) = θ_i(0) + ω t` — see
/// [`WaveFrontProbe::free_run`]. State: O(N) (two scalars per rank).
pub struct WaveFrontProbe<B> {
    threshold: f64,
    baseline: B,
    /// Arrival time per rank (`None` = not yet crossed).
    arrivals: Vec<Option<f64>>,
    /// Previous sample's `(t, delta)` per rank, for interpolation.
    prev: Vec<(f64, f64)>,
    started: bool,
}

impl<B: Fn(f64, usize) -> f64> WaveFrontProbe<B> {
    /// Detector for `n` ranks against an arbitrary analytic baseline.
    pub fn new(n: usize, threshold: f64, baseline: B) -> Self {
        Self {
            threshold,
            baseline,
            arrivals: vec![None; n],
            prev: vec![(0.0, 0.0); n],
            started: false,
        }
    }

    fn push(&mut self, t: f64, y: &[f64]) {
        debug_assert_eq!(y.len(), self.arrivals.len());
        for (i, &phase) in y.iter().enumerate() {
            if self.arrivals[i].is_some() {
                continue;
            }
            let delta = (phase - (self.baseline)(t, i)).abs();
            if delta >= self.threshold {
                let prev = self.started.then_some(self.prev[i]);
                self.arrivals[i] = Some(crossing_time(prev, t, delta, self.threshold));
            } else {
                self.prev[i] = (t, delta);
            }
        }
        self.started = true;
    }
}

impl<B> WaveFrontProbe<B> {
    /// Per-rank arrivals in [`crate::idlewave`]'s format.
    pub fn arrivals(&self) -> Vec<WaveArrival> {
        self.arrivals
            .iter()
            .enumerate()
            .map(|(rank, &time)| WaveArrival {
                rank,
                iteration: None,
                time,
            })
            .collect()
    }

    /// Number of ranks the front has reached so far.
    pub fn n_arrived(&self) -> usize {
        self.arrivals.iter().filter(|a| a.is_some()).count()
    }

    /// Fit the front speed from the detected arrivals (see
    /// [`wave_speed_fit_in`]).
    pub fn measured(
        &self,
        source: usize,
        max_distance: usize,
        geometry: WaveGeometry,
    ) -> MeasuredWave {
        let arrivals = self.arrivals();
        let fit = wave_speed_fit_in(&arrivals, source, max_distance, geometry);
        MeasuredWave { arrivals, fit }
    }
}

impl WaveFrontProbe<Box<dyn Fn(f64, usize) -> f64 + Send>> {
    /// Detector against the noise-free free run `θ_i(t) = y0_i + ω t` —
    /// the exact unperturbed twin of a synchronized, locally-noise-free
    /// model (coupling vanishes in lockstep), which is the §5.1 idle-wave
    /// baseline.
    pub fn free_run(y0: &[f64], omega: f64, threshold: f64) -> Self {
        let y0 = y0.to_vec();
        Self::new(y0.len(), threshold, Box::new(move |t, i| y0[i] + omega * t))
    }
}

impl<B: Fn(f64, usize) -> f64> StepObserver for WaveFrontProbe<B> {
    fn begin(&mut self, t0: f64, y0: &[f64]) {
        // Full reset: a probe reused across integrations (the way sweep
        // workers reuse their workspace) must not carry the previous
        // run's arrivals into the next one.
        self.started = false;
        self.arrivals.fill(None);
        for p in &mut self.prev {
            *p = (t0, 0.0);
        }
        self.push(t0, y0);
    }
    fn observe_step(&mut self, t: f64, y: &[f64]) {
        self.push(t, y);
    }
}

impl<B> std::fmt::Debug for WaveFrontProbe<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaveFrontProbe")
            .field("threshold", &self.threshold)
            .field("n", &self.arrivals.len())
            .field("n_arrived", &self.n_arrived())
            .finish_non_exhaustive()
    }
}

/// The probe bundle behind `pom-sweep`'s streaming observables: order
/// parameter plus gap/spread statistics, one pass, O(1) state.
#[derive(Debug, Clone, Default)]
pub struct RunSummaryProbe {
    /// Order-parameter statistics.
    pub r: OrderParameterProbe,
    /// Gap and spread statistics.
    pub gaps: PhaseGapProbe,
}

impl RunSummaryProbe {
    /// Empty bundle.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StepObserver for RunSummaryProbe {
    fn begin(&mut self, t0: f64, y0: &[f64]) {
        self.r.begin(t0, y0);
        self.gaps.begin(t0, y0);
    }
    fn observe_step(&mut self, t: f64, y: &[f64]) {
        self.r.observe_step(t, y);
        self.gaps.observe_step(t, y);
    }
    fn finish(&mut self, t_end: f64, y_end: &[f64]) {
        self.r.finish(t_end, y_end);
        self.gaps.finish(t_end, y_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn welford_matches_two_pass_moments() {
        let xs: Vec<f64> = (0..100)
            .map(|k| ((k * 7919) % 100) as f64 * 0.13 - 3.0)
            .collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 100);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-12);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(w.min(), lo);
        assert_eq!(w.max(), hi);
    }

    /// Golden values for the ensemble aggregation columns: mean, sample
    /// variance and ci95 half-width against closed-form results on a
    /// fixed sample set.
    #[test]
    fn welford_sample_moments_match_closed_form() {
        // Samples 1..=5: mean 3, sample variance Σ(x−3)²/4 = 10/4 = 2.5.
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        assert!((w.mean() - 3.0).abs() < 1e-15);
        assert!((w.sample_variance() - 2.5).abs() < 1e-15);
        // Population variance uses /n: 10/5 = 2.
        assert!((w.variance() - 2.0).abs() < 1e-15);
        // ci95 = 1.96 · sqrt(2.5 / 5) = 1.96 · sqrt(0.5).
        let expect = 1.96 * (2.5f64 / 5.0).sqrt();
        assert!((w.ci95_half_width() - expect).abs() < 1e-15);

        // Two equal samples: zero spread, zero interval.
        let mut w = Welford::new();
        w.push(7.25);
        w.push(7.25);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.ci95_half_width(), 0.0);
    }

    #[test]
    fn welford_degenerate_sizes() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        // default() must equal new() — a derived Default would silently
        // start min/max at 0.0 and clamp every later sample.
        assert_eq!(Welford::default().min(), f64::INFINITY);
        assert_eq!(Welford::default().max(), f64::NEG_INFINITY);
        let mut w = Welford::new();
        w.push(4.0);
        assert_eq!(w.mean(), 4.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.ci95_half_width(), 0.0);
        assert_eq!((w.min(), w.max()), (4.0, 4.0));
    }

    #[test]
    fn order_probe_tracks_r() {
        let mut p = OrderParameterProbe::new();
        p.begin(0.0, &[0.0, 0.0, 0.0]); // r = 1
        p.observe_step(1.0, &[0.0, std::f64::consts::PI, 0.0]);
        let r2 = order_parameter(&[0.0, std::f64::consts::PI, 0.0]).0;
        assert!((p.last - r2).abs() < 1e-12);
        assert!((p.stats.max() - 1.0).abs() < 1e-12);
        assert_eq!(p.stats.count(), 2);
    }

    #[test]
    fn gap_probe_mean_and_max() {
        let mut p = PhaseGapProbe::new();
        p.begin(0.0, &[0.0, 1.0, 3.0]); // gaps 1, 2 → mean 1.5, max 2
        assert!((p.last_mean_gap - 1.5).abs() < 1e-12);
        assert!((p.max_gap.max() - 2.0).abs() < 1e-12);
        assert!((p.last_spread - 3.0).abs() < 1e-12);
        // Single oscillator: gaps defined as 0.
        let mut p = PhaseGapProbe::new();
        p.begin(0.0, &[2.0]);
        assert_eq!(p.last_mean_gap, 0.0);
    }

    #[test]
    fn wave_probe_interpolates_first_crossing() {
        // Rank 0 ramps away from a zero baseline at 1 rad/unit starting
        // t = 1; rank 1 never deviates.
        let mut p = WaveFrontProbe::new(2, 0.5, |_t, _i| 0.0);
        p.begin(0.0, &[0.0, 0.0]);
        for k in 1..=4 {
            let t = k as f64;
            p.observe_step(t, &[(t - 1.0).max(0.0), 0.0]);
        }
        let a = p.arrivals();
        assert!((a[0].time.unwrap() - 1.5).abs() < 1e-12, "{a:?}");
        assert_eq!(a[1].time, None);
        assert_eq!(p.n_arrived(), 1);
    }

    /// Regression: `begin` must reset the statistics probes — a probe
    /// reused across integrations must not fold two runs together.
    #[test]
    fn stats_probes_reset_on_begin() {
        let mut p = RunSummaryProbe::new();
        p.begin(0.0, &[0.0, std::f64::consts::PI]); // r = 0, big gap
        p.observe_step(1.0, &[0.0, std::f64::consts::PI]);
        assert!(p.r.stats.min() < 1e-12);
        // Second run: synchronized throughout — run 1's extremes must
        // not leak into run 2's statistics.
        p.begin(0.0, &[0.5, 0.5]);
        p.observe_step(1.0, &[0.7, 0.7]);
        assert!((p.r.stats.min() - 1.0).abs() < 1e-12);
        assert_eq!(p.r.stats.count(), 2);
        assert_eq!(p.gaps.max_gap.max(), 0.0);
    }

    /// Regression: `begin` must clear the previous run's arrivals — a
    /// probe reused across integrations (like a sweep worker's
    /// workspace) must not report stale first-run crossing times.
    #[test]
    fn wave_probe_reuse_resets_arrivals() {
        let mut p = WaveFrontProbe::new(1, 0.5, |_t, _i| 0.0);
        p.begin(0.0, &[0.0]);
        p.observe_step(1.0, &[1.0]); // crosses at run 1
        assert_eq!(p.n_arrived(), 1);
        // Second integration: never crosses.
        p.begin(0.0, &[0.0]);
        assert_eq!(p.n_arrived(), 0, "stale arrivals must be cleared");
        p.observe_step(1.0, &[0.1]);
        assert_eq!(p.arrivals()[0].time, None);
    }

    #[test]
    fn free_run_baseline_is_linear() {
        let p = WaveFrontProbe::free_run(&[0.1, 0.2], 2.0, 0.05);
        assert!(((p.baseline)(3.0, 1) - (0.2 + 6.0)).abs() < 1e-12);
    }

    /// Tentpole contract: the streaming detector attached to
    /// `simulate_observed` reproduces the post-hoc
    /// `model_wave_arrivals` of a recorded perturbed/baseline pair — with
    /// no baseline trajectory (and no trajectory at all) in memory.
    #[test]
    fn wave_probe_reproduces_model_wave_arrivals() {
        use crate::idlewave::model_wave_arrivals;
        use pom_core::{InitialCondition, PomBuilder, Potential, SimOptions, SolverChoice};
        use pom_noise::{DelayEvent, OneOffDelays};
        use pom_topology::Topology;

        let n = 20;
        let build = |inject: bool| {
            let mut b = PomBuilder::new(n)
                .topology(Topology::ring(n, &[-1, 1]))
                .potential(Potential::Tanh)
                .compute_time(1.0)
                .comm_time(0.0)
                .coupling(2.0);
            if inject {
                b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                    rank: 5,
                    t_start: 2.0,
                    duration: 2.0,
                    extra: 1.0,
                }]));
            }
            b.build().unwrap()
        };
        // Fixed-step so the recorded grid (samples == steps) equals the
        // observer grid exactly.
        let h = 0.02;
        let t_end = 30.0;
        let steps = (t_end / h) as usize;
        let opts = SimOptions::new(t_end)
            .samples(steps + 1)
            .solver(SolverChoice::FixedRk4 { h });

        // Post-hoc reference: two recorded runs, scan afterwards.
        let pert_rec = build(true)
            .simulate_with(InitialCondition::Synchronized, &opts)
            .unwrap();
        let base_rec = build(false)
            .simulate_with(InitialCondition::Synchronized, &opts)
            .unwrap();
        let reference = model_wave_arrivals(&pert_rec, &base_rec, 0.05);

        // Streaming: one observed run against the analytic free-run
        // baseline (lockstep + no noise ⇒ θ_i(t) = ω t exactly).
        let model = build(true);
        let y0 = InitialCondition::Synchronized.phases(n);
        let mut probe = WaveFrontProbe::free_run(&y0, model.omega(), 0.05);
        let summary = model
            .simulate_observed(InitialCondition::Synchronized, &opts, &mut probe)
            .unwrap();
        assert_eq!(summary.n_steps(), steps);
        let streamed = probe.arrivals();

        assert_eq!(streamed.len(), reference.len());
        let mut n_arrived = 0;
        for (s, r) in streamed.iter().zip(&reference) {
            match (s.time, r.time) {
                (Some(ts), Some(tr)) => {
                    n_arrived += 1;
                    // The recorded baseline accumulates ω step by step
                    // while the analytic baseline is ω·t — identical up
                    // to round-off, so crossing times agree to ~1e-9.
                    assert!(
                        (ts - tr).abs() < 1e-6,
                        "rank {}: streamed {ts} vs reference {tr}",
                        s.rank
                    );
                }
                (a, b) => assert_eq!(
                    a.is_some(),
                    b.is_some(),
                    "rank {}: arrival disagreement",
                    s.rank
                ),
            }
        }
        assert!(n_arrived >= 5, "the wave must have moved: {n_arrived}");
    }
}
