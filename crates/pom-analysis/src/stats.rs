//! Small statistics toolbox: moments and least-squares regression.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Result of a least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R² ∈ [0, 1]` (1 for a perfect fit;
    /// defined as 1 when the data has zero variance).
    pub r2: f64,
    /// Number of points used.
    pub n: usize,
}

/// Ordinary least squares over `(x, y)` pairs. Returns `None` for fewer
/// than two points or degenerate `x` (all equal).
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-12 * (1.0 + sxx.abs()) {
        return None;
    }
    let slope = (nf * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / nf;

    let my = sy / nf;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let r2 = if ss_tot <= f64::EPSILON * (1.0 + my * my) {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LinFit {
        slope,
        intercept,
        r2,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_line_fit() {
        let pts: Vec<(f64, f64)> = (0..10).map(|k| (k as f64, 3.0 * k as f64 - 2.0)).collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert_eq!(f.n, 10);
    }

    #[test]
    fn noisy_fit_recovers_slope() {
        // Deterministic "noise" via a fixed pattern.
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|k| {
                let x = k as f64 * 0.1;
                let noise = if k % 2 == 0 { 0.05 } else { -0.05 };
                (x, 2.0 * x + 1.0 + noise)
            })
            .collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 0.02, "slope {}", f.slope);
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        // Vertical line: all x equal.
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0), (1.0, 4.0)]).is_none());
    }

    #[test]
    fn constant_y_has_unit_r2() {
        let f = linear_fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r2, 1.0);
    }
}
