//! Analysis toolkit: extracting the paper's observables from simulator
//! traces and model runs.
//!
//! The evaluation section of the paper (§5) rests on a handful of derived
//! quantities:
//!
//! * **idle-wave arrival and speed** — when does an injected one-off delay
//!   first disturb rank `r`, and how fast does the front move (ranks per
//!   iteration / per second)? §5.1.1 correlates the speed with `β·κ`.
//! * **de-/resynchronization verdicts** — does the system return to
//!   lockstep after the wave (scalable) or retain a residual
//!   *computational wavefront* (bottlenecked)? §5.1.2, §5.2.
//! * **phase spread and wavefront slope** — the asymptotic phase pattern
//!   of the oscillator model; §5.2.2 connects the spread to the
//!   interaction horizon `σ` (settling at `2σ/3`).
//!
//! [`idlewave`] implements front extraction on both substrates (simulator
//! [`pom_mpisim::SimTrace`] and model [`pom_core::PomRun`]), [`desync`]
//! the wavefront/resync diagnostics, [`stats`] the small regression
//! toolbox used by the speed fits, and [`compare`] the model-vs-simulator
//! agreement verdicts that EXPERIMENTS.md reports.

pub mod compare;
pub mod desync;
pub mod idlewave;
pub mod spectral;
pub mod stats;
pub mod streaming;

pub use compare::{fig2_verdict, Fig2Verdict};
pub use desync::{model_residual_spread, residual_spread, socket_offsets, DesyncVerdict};
pub use idlewave::{
    model_wave_arrivals, model_wave_speed, model_wave_speed_in, sim_wave_arrivals, sim_wave_speed,
    sim_wave_speed_in, trajectory_wave_arrivals, wave_speed_fit, wave_speed_fit_in, MeasuredWave,
    WaveArrival, WaveGeometry, WaveSpeed, WaveVerdict,
};
pub use spectral::{dominant_mode, mode_fraction, mode_power};
pub use stats::{linear_fit, mean, std_dev, LinFit};
pub use streaming::{OrderParameterProbe, PhaseGapProbe, RunSummaryProbe, WaveFrontProbe, Welford};
