//! Idle-wave front extraction and speed measurement.
//!
//! An injected one-off delay launches an *idle wave* (§5.1): a front of
//! excess waiting/phase lag that travels outward from the injection rank
//! through the communication dependencies. On the simulator side the wave
//! lives in iteration-end timestamps; on the model side in the phases.
//! Either way, the front is "the first time rank r deviates from its
//! unperturbed twin by more than a threshold", and its speed is the slope
//! of a least-squares fit of rank distance against arrival time.

use pom_core::PomRun;
use pom_mpisim::SimTrace;
use pom_ode::Trajectory;

use crate::stats::{linear_fit, LinFit};

/// Arrival of the wave front at one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveArrival {
    /// Rank index.
    pub rank: usize,
    /// Iteration whose *end* is first delayed (simulator only).
    pub iteration: Option<usize>,
    /// Absolute time of first deviation.
    pub time: Option<f64>,
}

/// What the fit says about one propagation direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WaveVerdict {
    /// A positive-slope fit: the front moved outward at `1/slope`
    /// ranks per time unit.
    Propagated(LinFit),
    /// A fit exists but its slope is ≤ 0 — arrival times do not increase
    /// with distance (simultaneous arrival, backward ordering, or a
    /// threshold artifact). The front speed is not measurable from it;
    /// the offending fit is carried for diagnosis.
    Degenerate(LinFit),
    /// Too few arrivals on this side to fit anything (the wave never got
    /// there, or all arrivals were at one distance).
    NotReached,
}

impl WaveVerdict {
    /// The measured speed in ranks per time unit, if this direction
    /// propagated.
    pub fn speed(&self) -> Option<f64> {
        match self {
            WaveVerdict::Propagated(f) => Some(1.0 / f.slope),
            _ => None,
        }
    }

    /// `true` for [`WaveVerdict::Degenerate`] — a fit that exists but
    /// cannot yield a speed. [`WaveSpeed::mean_speed`] skips these
    /// silently; callers that must not confuse "no wave on this side"
    /// with "unusable fit on this side" check this flag.
    pub fn is_degenerate(&self) -> bool {
        matches!(self, WaveVerdict::Degenerate(_))
    }

    fn from_fit(fit: Option<LinFit>) -> Self {
        match fit {
            None => WaveVerdict::NotReached,
            Some(f) if f.slope > 0.0 => WaveVerdict::Propagated(f),
            Some(f) => WaveVerdict::Degenerate(f),
        }
    }
}

/// Fitted wave speed in both directions from the source.
///
/// The underlying fits regress arrival time against rank distance, so
/// `slope` is *time per rank*; speeds are the reciprocal `1/slope` (ranks
/// per time unit). That reciprocal convention is what
/// [`WaveSpeed::mean_speed`] averages: the arithmetic mean of the
/// per-direction *speeds*, not of the slopes.
#[derive(Debug, Clone, Copy)]
pub struct WaveSpeed {
    /// Fit away from the source towards higher ranks (`None` if the wave
    /// never reached that side with ≥ 2 distinct distances).
    pub up: Option<LinFit>,
    /// Fit towards lower ranks.
    pub down: Option<LinFit>,
}

impl WaveSpeed {
    /// Per-direction verdicts `(up, down)`: unlike the raw `Option<LinFit>`
    /// fields these distinguish "the wave never reached that side"
    /// ([`WaveVerdict::NotReached`]) from "a fit exists but is unusable"
    /// ([`WaveVerdict::Degenerate`], slope ≤ 0).
    pub fn verdicts(&self) -> (WaveVerdict, WaveVerdict) {
        (
            WaveVerdict::from_fit(self.up),
            WaveVerdict::from_fit(self.down),
        )
    }

    /// The mean propagation speed over the directions that propagated
    /// (ranks per time unit): the arithmetic mean of the per-direction
    /// reciprocal slopes `1/slope`.
    ///
    /// Directions that are [`WaveVerdict::NotReached`] *or*
    /// [`WaveVerdict::Degenerate`] are excluded — a one-sided wave
    /// legitimately reports the one usable side. `None` means **no**
    /// direction yielded a usable positive-slope fit; inspect
    /// [`WaveSpeed::verdicts`] to tell an absent wave from a degenerate
    /// measurement.
    pub fn mean_speed(&self) -> Option<f64> {
        let (up, down) = self.verdicts();
        let speeds: Vec<f64> = [up.speed(), down.speed()].into_iter().flatten().collect();
        if speeds.is_empty() {
            None
        } else {
            Some(speeds.iter().sum::<f64>() / speeds.len() as f64)
        }
    }
}

/// Wave arrivals from a perturbed/baseline simulator trace pair: for each
/// rank, the first iteration whose end is delayed by **at least**
/// `threshold` seconds (inclusive `delta >= threshold`), and its
/// (perturbed) end time.
///
/// Iteration ends are discrete events — every iteration is present in the
/// trace, so there is no sampling stride to compensate and the reported
/// time is the exact perturbed iteration end.
pub fn sim_wave_arrivals(
    perturbed: &SimTrace,
    baseline: &SimTrace,
    threshold: f64,
) -> Vec<WaveArrival> {
    assert_eq!(perturbed.n_ranks(), baseline.n_ranks());
    let iters = perturbed.n_iterations().min(baseline.n_iterations());
    (0..perturbed.n_ranks())
        .map(|r| {
            for k in 0..iters {
                let delta = perturbed.rank(r).iter_end(k) - baseline.rank(r).iter_end(k);
                if delta >= threshold {
                    return WaveArrival {
                        rank: r,
                        iteration: Some(k),
                        time: Some(perturbed.rank(r).iter_end(k)),
                    };
                }
            }
            WaveArrival {
                rank: r,
                iteration: None,
                time: None,
            }
        })
        .collect()
}

/// Wave arrivals from a perturbed/baseline trajectory pair sharing one
/// sampling grid: for each component, the time of the first threshold
/// crossing of `|perturbed − baseline|`.
///
/// Threshold semantics are **inclusive**: a sample with
/// `delta >= threshold` counts as crossed. The reported time is the
/// *interpolated* crossing time, not the sample time: with a recording
/// stride (`record_every > 1`, coarse `samples`) the first offending
/// sample can postdate the true crossing by up to a whole stride, which
/// systematically biased fitted wave speeds low; linear interpolation of
/// `delta` between the bracketing samples removes the stride quantization
/// (crossings inside the very first sample report that sample's time —
/// there is nothing earlier to bracket with).
pub fn trajectory_wave_arrivals(
    perturbed: &Trajectory,
    baseline: &Trajectory,
    threshold: f64,
) -> Vec<WaveArrival> {
    assert_eq!(perturbed.dim(), baseline.dim());
    let n_samples = perturbed.len().min(baseline.len());
    (0..perturbed.dim())
        .map(|i| {
            let mut prev: Option<(f64, f64)> = None; // (t, delta) of k−1
            for k in 0..n_samples {
                let t = perturbed.time(k);
                let delta = (perturbed.state(k)[i] - baseline.state(k)[i]).abs();
                if delta >= threshold {
                    return WaveArrival {
                        rank: i,
                        iteration: None,
                        time: Some(crossing_time(prev, t, delta, threshold)),
                    };
                }
                prev = Some((t, delta));
            }
            WaveArrival {
                rank: i,
                iteration: None,
                time: None,
            }
        })
        .collect()
}

/// The one interpolation rule both arrival detectors (post-hoc
/// [`trajectory_wave_arrivals`] and streaming
/// [`crate::streaming::WaveFrontProbe`]) share: linear crossing of
/// `threshold` between the previous sub-threshold sample `(t, delta)`
/// and the first sample at or above it. Falls back to the crossing
/// sample's own time when no earlier bracket exists (crossing in the
/// very first sample) or `delta` did not rise. `d_prev < threshold <=
/// delta` in the bracketed case, so the divisor is positive.
pub(crate) fn crossing_time(prev: Option<(f64, f64)>, t: f64, delta: f64, threshold: f64) -> f64 {
    match prev {
        Some((t_prev, d_prev)) if delta > d_prev => {
            t_prev + (threshold - d_prev) / (delta - d_prev) * (t - t_prev)
        }
        _ => t,
    }
}

/// Wave arrivals from a perturbed/baseline model run pair
/// (see [`trajectory_wave_arrivals`] for the crossing semantics).
///
/// Both runs must share the sampling grid (they do when produced with the
/// same [`pom_core::SimOptions`]).
pub fn model_wave_arrivals(
    perturbed: &PomRun,
    baseline: &PomRun,
    threshold: f64,
) -> Vec<WaveArrival> {
    trajectory_wave_arrivals(perturbed.trajectory(), baseline.trajectory(), threshold)
}

/// Rank-space geometry of the substrate the wave ran on, deciding how
/// rank indices map to distances from the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaveGeometry {
    /// Open chain: distance is linear, `|rank − source|`; "up" means
    /// higher ranks.
    #[default]
    Chain,
    /// Periodic ring of `arrivals.len()` ranks: distance wraps
    /// (`min(lin, n − lin)`, the [`pom_topology::Topology::rank_distance`]
    /// convention) and "up" means the shorter way around is towards
    /// increasing rank. Without this, arrivals that came the short way
    /// across the wrap are binned at the long linear distance and poison
    /// the fit.
    Ring,
}

/// Fit the front speed from arrivals: regress arrival time against rank
/// distance from `source`, separately for the two directions away from
/// the source (up to `max_distance` away; on a ring, at most
/// `⌊(n−1)/2⌋` — beyond that the two fronts meet and a direction is no
/// longer well defined).
///
/// The returned fits have *slope = time per rank*; speed is the
/// reciprocal (see [`WaveSpeed`] for the convention and
/// [`WaveSpeed::verdicts`] for per-direction quality).
pub fn wave_speed_fit_in(
    arrivals: &[WaveArrival],
    source: usize,
    max_distance: usize,
    geometry: WaveGeometry,
) -> WaveSpeed {
    let n = arrivals.len();
    let max_distance = match geometry {
        WaveGeometry::Chain => max_distance,
        // On a ring distances beyond ⌊(n−1)/2⌋ do not exist.
        WaveGeometry::Ring => max_distance.min(n.saturating_sub(1) / 2),
    };
    let mut up = Vec::new();
    let mut down = Vec::new();
    for a in arrivals {
        let Some(t) = a.time else { continue };
        if a.rank == source {
            continue;
        }
        let (dist, is_up) = match geometry {
            WaveGeometry::Chain => (a.rank.abs_diff(source), a.rank > source),
            WaveGeometry::Ring => {
                let fwd = (a.rank + n - source) % n; // steps going upward
                if fwd <= n - fwd {
                    (fwd, true)
                } else {
                    (n - fwd, false)
                }
            }
        };
        if dist <= max_distance {
            if is_up {
                up.push((dist as f64, t));
            } else {
                down.push((dist as f64, t));
            }
        }
    }
    WaveSpeed {
        up: linear_fit(&up),
        down: linear_fit(&down),
    }
}

/// [`wave_speed_fit_in`] with [`WaveGeometry::Chain`] (linear rank
/// distance, the historical behavior).
///
/// **Precondition** on periodic substrates: only valid while the wave
/// cannot have wrapped, i.e. `source ± max_distance` stays inside
/// `[0, n)` and the run is short enough that the far side was not
/// reached the short way around — otherwise wrapped arrivals are binned
/// at the long linear distance. Use [`wave_speed_fit_in`] with
/// [`WaveGeometry::Ring`] on rings.
pub fn wave_speed_fit(arrivals: &[WaveArrival], source: usize, max_distance: usize) -> WaveSpeed {
    wave_speed_fit_in(arrivals, source, max_distance, WaveGeometry::Chain)
}

/// A complete wave measurement: per-rank arrivals plus the fitted speed.
#[derive(Debug, Clone)]
pub struct MeasuredWave {
    /// First-deviation arrivals per rank.
    pub arrivals: Vec<WaveArrival>,
    /// The least-squares front fit.
    pub fit: WaveSpeed,
}

/// One-call model wave measurement: arrivals from a perturbed/baseline
/// pair, fitted from `source` out to `max_distance` ranks with the given
/// rank-space geometry.
pub fn model_wave_speed_in(
    perturbed: &PomRun,
    baseline: &PomRun,
    threshold: f64,
    source: usize,
    max_distance: usize,
    geometry: WaveGeometry,
) -> MeasuredWave {
    let arrivals = model_wave_arrivals(perturbed, baseline, threshold);
    let fit = wave_speed_fit_in(&arrivals, source, max_distance, geometry);
    MeasuredWave { arrivals, fit }
}

/// [`model_wave_speed_in`] with [`WaveGeometry::Chain`] (see
/// [`wave_speed_fit`] for the no-wrap precondition).
pub fn model_wave_speed(
    perturbed: &PomRun,
    baseline: &PomRun,
    threshold: f64,
    source: usize,
    max_distance: usize,
) -> MeasuredWave {
    model_wave_speed_in(
        perturbed,
        baseline,
        threshold,
        source,
        max_distance,
        WaveGeometry::Chain,
    )
}

/// One-call simulator wave measurement with explicit geometry (see
/// [`model_wave_speed_in`]).
pub fn sim_wave_speed_in(
    perturbed: &SimTrace,
    baseline: &SimTrace,
    threshold: f64,
    source: usize,
    max_distance: usize,
    geometry: WaveGeometry,
) -> MeasuredWave {
    let arrivals = sim_wave_arrivals(perturbed, baseline, threshold);
    let fit = wave_speed_fit_in(&arrivals, source, max_distance, geometry);
    MeasuredWave { arrivals, fit }
}

/// [`sim_wave_speed_in`] with [`WaveGeometry::Chain`] (see
/// [`wave_speed_fit`] for the no-wrap precondition).
pub fn sim_wave_speed(
    perturbed: &SimTrace,
    baseline: &SimTrace,
    threshold: f64,
    source: usize,
    max_distance: usize,
) -> MeasuredWave {
    sim_wave_speed_in(
        perturbed,
        baseline,
        threshold,
        source,
        max_distance,
        WaveGeometry::Chain,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_core::{InitialCondition, PomBuilder, Potential};
    use pom_kernels::Kernel;
    use pom_mpisim::{idle_wave_run, IdleWaveConfig};
    use pom_noise::{DelayEvent, OneOffDelays};
    use pom_topology::Topology;

    #[test]
    fn sim_wave_travels_one_rank_per_iteration() {
        let cfg = IdleWaveConfig {
            n_ranks: 24,
            iterations: 24,
            ..IdleWaveConfig::default()
        };
        let (pert, base) = idle_wave_run(&cfg).unwrap();
        let arrivals = sim_wave_arrivals(&pert, &base, 0.5 * cfg.delay_factor * cfg.t_comp);
        // Source rank is disturbed in the injection iteration itself.
        assert_eq!(
            arrivals[cfg.delay_rank].iteration,
            Some(cfg.delay_iteration)
        );
        // One rank per iteration upward: rank 5+r's iteration end is
        // first delayed in iteration delay_iteration + r − 1 (rank 6
        // already stalls in the injection iteration itself).
        for r in 1..6 {
            assert_eq!(
                arrivals[cfg.delay_rank + r].iteration,
                Some(cfg.delay_iteration + r - 1),
                "rank {}",
                cfg.delay_rank + r
            );
        }
        // Speed fit: one iteration (~t_comp) per rank.
        let speed = wave_speed_fit(&arrivals, cfg.delay_rank, 8);
        let up = speed.up.unwrap();
        assert!(up.r2 > 0.99, "r² = {}", up.r2);
        // Seconds per rank ≈ the iteration period (t_comp + small comm).
        assert!(
            (up.slope - cfg.t_comp).abs() < 0.1 * cfg.t_comp,
            "slope {} vs t_comp {}",
            up.slope,
            cfg.t_comp
        );
        assert!(speed.mean_speed().unwrap() > 0.0);
    }

    #[test]
    fn wider_stencil_doubles_sim_speed() {
        let mk = |distances: Vec<i32>| {
            let cfg = IdleWaveConfig {
                n_ranks: 30,
                iterations: 24,
                distances,
                ..IdleWaveConfig::default()
            };
            let (pert, base) = idle_wave_run(&cfg).unwrap();
            let arrivals = sim_wave_arrivals(&pert, &base, 2e-3);
            wave_speed_fit(&arrivals, 5, 10)
        };
        let narrow = mk(vec![-1, 1]);
        let wide = mk(vec![-2, -1, 1]);
        // The −2 leg doubles upward speed: seconds/rank halves.
        let s_narrow = narrow.up.unwrap().slope;
        let s_wide = wide.up.unwrap().slope;
        assert!(
            (s_narrow / s_wide - 2.0).abs() < 0.3,
            "expected ≈2× faster, got {}",
            s_narrow / s_wide
        );
    }

    #[test]
    fn unaffected_ranks_report_none() {
        let cfg = IdleWaveConfig {
            n_ranks: 30,
            iterations: 6, // too short for the wave to cross everything
            delay_iteration: 3,
            ..IdleWaveConfig::default()
        };
        let (pert, base) = idle_wave_run(&cfg).unwrap();
        let arrivals = sim_wave_arrivals(&pert, &base, 2e-3);
        // Ranks ~10+ away cannot have been reached in 3 iterations.
        assert_eq!(arrivals[20].iteration, None);
        assert_eq!(arrivals[20].time, None);
    }

    #[test]
    fn model_wave_arrivals_move_outward() {
        // Oscillator model analog: inject a one-off slowdown on rank 5 and
        // watch the phase deviation front move.
        let n = 24;
        let mk = |inject: bool| {
            let mut b = PomBuilder::new(n)
                .topology(Topology::ring(n, &[-1, 1]))
                .potential(Potential::Tanh)
                .compute_time(1.0)
                .comm_time(0.0)
                .coupling(2.0);
            if inject {
                b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                    rank: 5,
                    t_start: 2.0,
                    duration: 2.0,
                    extra: 1.0,
                }]));
            }
            b.build()
                .unwrap()
                .simulate(InitialCondition::Synchronized, 40.0)
                .unwrap()
        };
        let pert = mk(true);
        let base = mk(false);
        let arrivals = model_wave_arrivals(&pert, &base, 0.05);
        let t5 = arrivals[5].time.expect("source disturbed");
        let t7 = arrivals[7].time.expect("rank 7 reached");
        let t9 = arrivals[9].time.expect("rank 9 reached");
        assert!(
            t5 < t7 && t7 < t9,
            "front must move outward: {t5} {t7} {t9}"
        );
        // Speed fit is usable.
        let speed = wave_speed_fit(&arrivals, 5, 6);
        assert!(speed.up.unwrap().slope > 0.0);
    }

    #[test]
    fn stronger_coupling_speeds_up_model_wave() {
        // §5.1.1: "The larger βκ the faster the wave".
        let n = 24;
        let run = |vp: f64, inject: bool| {
            let mut b = PomBuilder::new(n)
                .topology(Topology::ring(n, &[-1, 1]))
                .potential(Potential::Tanh)
                .compute_time(1.0)
                .comm_time(0.0)
                .coupling(vp);
            if inject {
                b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                    rank: 5,
                    t_start: 2.0,
                    duration: 2.0,
                    extra: 1.0,
                }]));
            }
            b.build()
                .unwrap()
                .simulate(InitialCondition::Synchronized, 60.0)
                .unwrap()
        };
        let speed_for = |vp: f64| {
            let arrivals = model_wave_arrivals(&run(vp, true), &run(vp, false), 0.05);
            wave_speed_fit(&arrivals, 5, 6)
                .mean_speed()
                .expect("wave detected")
        };
        let slow = speed_for(1.0);
        let fast = speed_for(4.0);
        assert!(fast > 1.5 * slow, "vp=4 speed {fast} vs vp=1 speed {slow}");
    }

    #[test]
    fn speed_fit_handles_missing_sides() {
        // All arrivals on one side only.
        let arrivals = vec![
            WaveArrival {
                rank: 5,
                iteration: None,
                time: Some(0.0),
            },
            WaveArrival {
                rank: 6,
                iteration: None,
                time: Some(1.0),
            },
            WaveArrival {
                rank: 7,
                iteration: None,
                time: Some(2.0),
            },
            WaveArrival {
                rank: 3,
                iteration: None,
                time: None,
            },
        ];
        let speed = wave_speed_fit(&arrivals, 5, 4);
        assert!(speed.up.is_some());
        assert!(speed.down.is_none());
        assert!((speed.mean_speed().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lockstep_sim_has_no_arrivals() {
        let tr = pom_mpisim::lockstep_run(8, 10, Kernel::pisolver(), 1e-3).unwrap();
        let arrivals = sim_wave_arrivals(&tr, &tr, 1e-9);
        assert!(arrivals.iter().all(|a| a.iteration.is_none()));
        let speed = wave_speed_fit(&arrivals, 4, 4);
        assert!(speed.mean_speed().is_none());
        let (up, down) = speed.verdicts();
        assert_eq!(up, WaveVerdict::NotReached);
        assert_eq!(down, WaveVerdict::NotReached);
    }

    fn arrival(rank: usize, time: f64) -> WaveArrival {
        WaveArrival {
            rank,
            iteration: None,
            time: Some(time),
        }
    }

    /// Regression (pre-PR: silently dropped): a direction whose fit has
    /// slope ≤ 0 must be reported as Degenerate, not vanish — and the
    /// other direction's speed must still be measurable.
    #[test]
    fn degenerate_direction_gets_a_verdict() {
        // Up: simultaneous arrival (slope 0). Down: clean 1 rank/unit.
        let arrivals = vec![
            arrival(3, 2.0),
            arrival(4, 1.0),
            arrival(5, 0.0), // source
            arrival(6, 3.0),
            arrival(7, 3.0),
            arrival(8, 3.0),
        ];
        let speed = wave_speed_fit(&arrivals, 5, 4);
        let (up, down) = speed.verdicts();
        assert!(up.is_degenerate(), "flat up fit must be Degenerate: {up:?}");
        assert_eq!(up.speed(), None);
        let WaveVerdict::Degenerate(f) = up else {
            panic!("expected Degenerate, got {up:?}");
        };
        assert_eq!(f.slope, 0.0);
        assert!(matches!(down, WaveVerdict::Propagated(_)));
        // mean_speed documents: average over propagated directions only.
        assert!((speed.mean_speed().unwrap() - 1.0).abs() < 1e-9);

        // Backward ordering (negative slope) is degenerate too.
        let backward = vec![arrival(6, 3.0), arrival(7, 2.0), arrival(8, 1.0)];
        let speed = wave_speed_fit(&backward, 5, 4);
        let (up, down) = speed.verdicts();
        assert!(up.is_degenerate());
        assert_eq!(down, WaveVerdict::NotReached);
        assert!(speed.mean_speed().is_none());
    }

    /// Regression: a single-direction wave must report that side's speed
    /// and NotReached (not a biased mean) for the other.
    #[test]
    fn single_direction_wave_verdicts() {
        let arrivals = vec![arrival(6, 1.0), arrival(7, 2.0), arrival(8, 3.0)];
        let speed = wave_speed_fit(&arrivals, 5, 4);
        let (up, down) = speed.verdicts();
        assert!(matches!(up, WaveVerdict::Propagated(_)));
        assert_eq!(down, WaveVerdict::NotReached);
        assert!((speed.mean_speed().unwrap() - 1.0).abs() < 1e-9);
        assert!((up.speed().unwrap() - 1.0).abs() < 1e-9);
    }

    /// Regression (pre-PR: wrapped arrivals binned at the long linear
    /// distance): on a periodic ring the fit must use wraparound
    /// distance, or a source near the index boundary poisons the fit.
    #[test]
    fn ring_wrap_distances_fit_cleanly() {
        // n = 10, source 8, 1 rank/unit both ways. Upward the front
        // crosses the wrap: ranks 9, 0, 1, 2 at times 1, 2, 3, 4.
        let mut arrivals: Vec<WaveArrival> = (0..10)
            .map(|r| WaveArrival {
                rank: r,
                iteration: None,
                time: None,
            })
            .collect();
        arrivals[8] = arrival(8, 0.0); // source
        for (rank, t) in [(9usize, 1.0), (0, 2.0), (1, 3.0), (2, 4.0)] {
            arrivals[rank] = arrival(rank, t);
        }
        for (rank, t) in [(7usize, 1.0), (6, 2.0), (5, 3.0)] {
            arrivals[rank] = arrival(rank, t);
        }

        let ring = wave_speed_fit_in(&arrivals, 8, 4, WaveGeometry::Ring);
        let up = ring.up.expect("wrapped up side fits");
        assert!((up.slope - 1.0).abs() < 1e-9, "slope {}", up.slope);
        assert!(up.r2 > 0.999, "r² {}", up.r2);
        let down = ring.down.expect("down side fits");
        assert!((down.slope - 1.0).abs() < 1e-9);
        assert!((ring.mean_speed().unwrap() - 1.0).abs() < 1e-9);

        // The chain geometry on the same data shows the failure mode this
        // fixes: ranks 0..2 land on the "down" side at linear distances
        // 8, 7, 6 with *increasing* times → corrupted fit.
        let chain = wave_speed_fit(&arrivals, 8, 8);
        let chain_down = chain.down.expect("poisoned but present");
        assert!(
            chain_down.r2 < 0.7 || chain_down.slope < 0.0,
            "linear-distance fit should be visibly poisoned: {chain_down:?}"
        );
    }

    /// Ring geometry never admits distances beyond ⌊(n−1)/2⌋, whatever
    /// `max_distance` says (the antipode has no unique direction).
    #[test]
    fn ring_caps_max_distance() {
        let arrivals: Vec<WaveArrival> = (0..6).map(|r| arrival(r, r as f64)).collect();
        let speed = wave_speed_fit_in(&arrivals, 0, 100, WaveGeometry::Ring);
        for side in [speed.up, speed.down].into_iter().flatten() {
            assert!(side.n <= 2, "≤ 2 ranks per side on n = 6: {side:?}");
        }
    }

    /// Regression (pre-PR: strict `>` and sample-time reporting): the
    /// threshold comparison is inclusive and the crossing time is
    /// interpolated between the bracketing samples, so a coarse recording
    /// stride does not quantize arrivals late.
    #[test]
    fn strided_arrivals_interpolate_the_crossing() {
        use pom_ode::Trajectory;
        // One component ramping at 1 rad/unit from t = 1: delta(t) =
        // max(0, t − 1). Threshold 0.5 crosses at exactly t = 1.5.
        let mk = |times: &[f64], ramp: bool| {
            let mut tr = Trajectory::new(1);
            for &t in times {
                let v = if ramp { (t - 1.0).max(0.0) } else { 0.0 };
                tr.push(t, &[v]).unwrap();
            }
            tr
        };
        // Fine grid: samples every 0.25.
        let fine: Vec<f64> = (0..17).map(|k| k as f64 * 0.25).collect();
        // Coarse grid (stride 4): samples every 1.0 — the first sample at
        // delta ≥ 0.5 is t = 2.0, half a unit late.
        let coarse: Vec<f64> = (0..5).map(|k| k as f64).collect();

        for grid in [&fine, &coarse] {
            let a = trajectory_wave_arrivals(&mk(grid, true), &mk(grid, false), 0.5);
            let t = a[0].time.expect("crossed");
            assert!(
                (t - 1.5).abs() < 1e-12,
                "grid step {} must interpolate to 1.5, got {t}",
                grid[1] - grid[0]
            );
        }

        // Inclusive threshold: delta exactly == threshold at a sample
        // counts, and reports that sample's time.
        let a = trajectory_wave_arrivals(&mk(&fine, true), &mk(&fine, false), 0.25);
        assert!((a[0].time.unwrap() - 1.25).abs() < 1e-12);

        // Never crossed → None.
        let a = trajectory_wave_arrivals(&mk(&fine, true), &mk(&fine, false), 100.0);
        assert_eq!(a[0].time, None);
    }

    /// The stride fix end-to-end: the same model run recorded at stride 1
    /// and stride ~8 must agree on arrival times to within the fine step
    /// (pre-PR the coarse run reported up to a whole coarse sample late).
    #[test]
    fn model_arrivals_stable_under_recording_stride() {
        let n = 16;
        let mk = |inject: bool, samples: usize| {
            let mut b = PomBuilder::new(n)
                .topology(Topology::ring(n, &[-1, 1]))
                .potential(Potential::Tanh)
                .compute_time(1.0)
                .comm_time(0.0)
                .coupling(2.0);
            if inject {
                b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                    rank: 5,
                    t_start: 2.0,
                    duration: 2.0,
                    extra: 1.0,
                }]));
            }
            b.build()
                .unwrap()
                .simulate_with(
                    InitialCondition::Synchronized,
                    &pom_core::SimOptions::new(30.0)
                        .samples(samples)
                        .solver(pom_core::SolverChoice::FixedRk4 { h: 0.01 }),
                )
                .unwrap()
        };
        let fine = model_wave_arrivals(&mk(true, 3000), &mk(false, 3000), 0.05);
        let coarse = model_wave_arrivals(&mk(true, 375), &mk(false, 375), 0.05);
        for (f, c) in fine.iter().zip(&coarse) {
            match (f.time, c.time) {
                (Some(tf), Some(tc)) => assert!(
                    (tf - tc).abs() < 0.05,
                    "rank {}: fine {tf} vs coarse {tc}",
                    f.rank
                ),
                (a, b) => assert_eq!(a.is_some(), b.is_some(), "rank {}", f.rank),
            }
        }
    }
}
