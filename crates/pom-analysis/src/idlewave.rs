//! Idle-wave front extraction and speed measurement.
//!
//! An injected one-off delay launches an *idle wave* (§5.1): a front of
//! excess waiting/phase lag that travels outward from the injection rank
//! through the communication dependencies. On the simulator side the wave
//! lives in iteration-end timestamps; on the model side in the phases.
//! Either way, the front is "the first time rank r deviates from its
//! unperturbed twin by more than a threshold", and its speed is the slope
//! of a least-squares fit of rank distance against arrival time.

use pom_core::PomRun;
use pom_mpisim::SimTrace;

use crate::stats::{linear_fit, LinFit};

/// Arrival of the wave front at one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveArrival {
    /// Rank index.
    pub rank: usize,
    /// Iteration whose *end* is first delayed (simulator only).
    pub iteration: Option<usize>,
    /// Absolute time of first deviation.
    pub time: Option<f64>,
}

/// Fitted wave speed in both directions from the source.
#[derive(Debug, Clone, Copy)]
pub struct WaveSpeed {
    /// Speed away from the source towards higher ranks, ranks/second
    /// (`None` if the wave never reached that side or the fit degenerated).
    pub up: Option<LinFit>,
    /// Speed towards lower ranks, ranks/second.
    pub down: Option<LinFit>,
}

impl WaveSpeed {
    /// The mean absolute propagation speed over the available directions
    /// (ranks per second).
    pub fn mean_speed(&self) -> Option<f64> {
        let mut speeds = Vec::new();
        if let Some(f) = self.up {
            if f.slope > 0.0 {
                speeds.push(1.0 / f.slope);
            }
        }
        if let Some(f) = self.down {
            if f.slope > 0.0 {
                speeds.push(1.0 / f.slope);
            }
        }
        if speeds.is_empty() {
            None
        } else {
            Some(speeds.iter().sum::<f64>() / speeds.len() as f64)
        }
    }
}

/// Wave arrivals from a perturbed/baseline simulator trace pair: for each
/// rank, the first iteration whose end is delayed by more than
/// `threshold` seconds, and its (perturbed) end time.
pub fn sim_wave_arrivals(
    perturbed: &SimTrace,
    baseline: &SimTrace,
    threshold: f64,
) -> Vec<WaveArrival> {
    assert_eq!(perturbed.n_ranks(), baseline.n_ranks());
    let iters = perturbed.n_iterations().min(baseline.n_iterations());
    (0..perturbed.n_ranks())
        .map(|r| {
            for k in 0..iters {
                let delta = perturbed.rank(r).iter_end(k) - baseline.rank(r).iter_end(k);
                if delta > threshold {
                    return WaveArrival {
                        rank: r,
                        iteration: Some(k),
                        time: Some(perturbed.rank(r).iter_end(k)),
                    };
                }
            }
            WaveArrival {
                rank: r,
                iteration: None,
                time: None,
            }
        })
        .collect()
}

/// Wave arrivals from a perturbed/baseline model run pair: for each
/// oscillator, the first sampled time where the phases differ by more
/// than `threshold` radians.
///
/// Both runs must share the sampling grid (they do when produced with the
/// same [`pom_core::SimOptions`]).
pub fn model_wave_arrivals(
    perturbed: &PomRun,
    baseline: &PomRun,
    threshold: f64,
) -> Vec<WaveArrival> {
    let tp = perturbed.trajectory();
    let tb = baseline.trajectory();
    assert_eq!(tp.dim(), tb.dim());
    let n_samples = tp.len().min(tb.len());
    (0..tp.dim())
        .map(|i| {
            for k in 0..n_samples {
                let delta = (tp.state(k)[i] - tb.state(k)[i]).abs();
                if delta > threshold {
                    return WaveArrival {
                        rank: i,
                        iteration: None,
                        time: Some(tp.time(k)),
                    };
                }
            }
            WaveArrival {
                rank: i,
                iteration: None,
                time: None,
            }
        })
        .collect()
}

/// Fit the front speed from arrivals: regress arrival time against rank
/// distance from `source`, separately for ranks above and below the
/// source (up to `max_distance` away, avoiding ring wraparound mixing).
///
/// The returned fits have *slope = seconds per rank*; speed in
/// ranks/second is `1/slope` ([`WaveSpeed::mean_speed`]).
pub fn wave_speed_fit(arrivals: &[WaveArrival], source: usize, max_distance: usize) -> WaveSpeed {
    let n = arrivals.len();
    let mut up = Vec::new();
    let mut down = Vec::new();
    for a in arrivals {
        let Some(t) = a.time else { continue };
        if a.rank == source {
            continue;
        }
        if a.rank > source && a.rank - source <= max_distance {
            up.push(((a.rank - source) as f64, t));
        } else if a.rank < source && source - a.rank <= max_distance {
            down.push(((source - a.rank) as f64, t));
        }
    }
    let _ = n;
    WaveSpeed {
        up: linear_fit(&up),
        down: linear_fit(&down),
    }
}

/// A complete wave measurement: per-rank arrivals plus the fitted speed.
#[derive(Debug, Clone)]
pub struct MeasuredWave {
    /// First-deviation arrivals per rank.
    pub arrivals: Vec<WaveArrival>,
    /// The least-squares front fit.
    pub fit: WaveSpeed,
}

/// One-call model wave measurement: arrivals from a perturbed/baseline
/// pair, fitted from `source` out to `max_distance` ranks.
pub fn model_wave_speed(
    perturbed: &PomRun,
    baseline: &PomRun,
    threshold: f64,
    source: usize,
    max_distance: usize,
) -> MeasuredWave {
    let arrivals = model_wave_arrivals(perturbed, baseline, threshold);
    let fit = wave_speed_fit(&arrivals, source, max_distance);
    MeasuredWave { arrivals, fit }
}

/// One-call simulator wave measurement (see [`model_wave_speed`]).
pub fn sim_wave_speed(
    perturbed: &SimTrace,
    baseline: &SimTrace,
    threshold: f64,
    source: usize,
    max_distance: usize,
) -> MeasuredWave {
    let arrivals = sim_wave_arrivals(perturbed, baseline, threshold);
    let fit = wave_speed_fit(&arrivals, source, max_distance);
    MeasuredWave { arrivals, fit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_core::{InitialCondition, PomBuilder, Potential};
    use pom_kernels::Kernel;
    use pom_mpisim::{idle_wave_run, IdleWaveConfig};
    use pom_noise::{DelayEvent, OneOffDelays};
    use pom_topology::Topology;

    #[test]
    fn sim_wave_travels_one_rank_per_iteration() {
        let cfg = IdleWaveConfig {
            n_ranks: 24,
            iterations: 24,
            ..IdleWaveConfig::default()
        };
        let (pert, base) = idle_wave_run(&cfg).unwrap();
        let arrivals = sim_wave_arrivals(&pert, &base, 0.5 * cfg.delay_factor * cfg.t_comp);
        // Source rank is disturbed in the injection iteration itself.
        assert_eq!(
            arrivals[cfg.delay_rank].iteration,
            Some(cfg.delay_iteration)
        );
        // One rank per iteration upward: rank 5+r's iteration end is
        // first delayed in iteration delay_iteration + r − 1 (rank 6
        // already stalls in the injection iteration itself).
        for r in 1..6 {
            assert_eq!(
                arrivals[cfg.delay_rank + r].iteration,
                Some(cfg.delay_iteration + r - 1),
                "rank {}",
                cfg.delay_rank + r
            );
        }
        // Speed fit: one iteration (~t_comp) per rank.
        let speed = wave_speed_fit(&arrivals, cfg.delay_rank, 8);
        let up = speed.up.unwrap();
        assert!(up.r2 > 0.99, "r² = {}", up.r2);
        // Seconds per rank ≈ the iteration period (t_comp + small comm).
        assert!(
            (up.slope - cfg.t_comp).abs() < 0.1 * cfg.t_comp,
            "slope {} vs t_comp {}",
            up.slope,
            cfg.t_comp
        );
        assert!(speed.mean_speed().unwrap() > 0.0);
    }

    #[test]
    fn wider_stencil_doubles_sim_speed() {
        let mk = |distances: Vec<i32>| {
            let cfg = IdleWaveConfig {
                n_ranks: 30,
                iterations: 24,
                distances,
                ..IdleWaveConfig::default()
            };
            let (pert, base) = idle_wave_run(&cfg).unwrap();
            let arrivals = sim_wave_arrivals(&pert, &base, 2e-3);
            wave_speed_fit(&arrivals, 5, 10)
        };
        let narrow = mk(vec![-1, 1]);
        let wide = mk(vec![-2, -1, 1]);
        // The −2 leg doubles upward speed: seconds/rank halves.
        let s_narrow = narrow.up.unwrap().slope;
        let s_wide = wide.up.unwrap().slope;
        assert!(
            (s_narrow / s_wide - 2.0).abs() < 0.3,
            "expected ≈2× faster, got {}",
            s_narrow / s_wide
        );
    }

    #[test]
    fn unaffected_ranks_report_none() {
        let cfg = IdleWaveConfig {
            n_ranks: 30,
            iterations: 6, // too short for the wave to cross everything
            delay_iteration: 3,
            ..IdleWaveConfig::default()
        };
        let (pert, base) = idle_wave_run(&cfg).unwrap();
        let arrivals = sim_wave_arrivals(&pert, &base, 2e-3);
        // Ranks ~10+ away cannot have been reached in 3 iterations.
        assert_eq!(arrivals[20].iteration, None);
        assert_eq!(arrivals[20].time, None);
    }

    #[test]
    fn model_wave_arrivals_move_outward() {
        // Oscillator model analog: inject a one-off slowdown on rank 5 and
        // watch the phase deviation front move.
        let n = 24;
        let mk = |inject: bool| {
            let mut b = PomBuilder::new(n)
                .topology(Topology::ring(n, &[-1, 1]))
                .potential(Potential::Tanh)
                .compute_time(1.0)
                .comm_time(0.0)
                .coupling(2.0);
            if inject {
                b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                    rank: 5,
                    t_start: 2.0,
                    duration: 2.0,
                    extra: 1.0,
                }]));
            }
            b.build()
                .unwrap()
                .simulate(InitialCondition::Synchronized, 40.0)
                .unwrap()
        };
        let pert = mk(true);
        let base = mk(false);
        let arrivals = model_wave_arrivals(&pert, &base, 0.05);
        let t5 = arrivals[5].time.expect("source disturbed");
        let t7 = arrivals[7].time.expect("rank 7 reached");
        let t9 = arrivals[9].time.expect("rank 9 reached");
        assert!(
            t5 < t7 && t7 < t9,
            "front must move outward: {t5} {t7} {t9}"
        );
        // Speed fit is usable.
        let speed = wave_speed_fit(&arrivals, 5, 6);
        assert!(speed.up.unwrap().slope > 0.0);
    }

    #[test]
    fn stronger_coupling_speeds_up_model_wave() {
        // §5.1.1: "The larger βκ the faster the wave".
        let n = 24;
        let run = |vp: f64, inject: bool| {
            let mut b = PomBuilder::new(n)
                .topology(Topology::ring(n, &[-1, 1]))
                .potential(Potential::Tanh)
                .compute_time(1.0)
                .comm_time(0.0)
                .coupling(vp);
            if inject {
                b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                    rank: 5,
                    t_start: 2.0,
                    duration: 2.0,
                    extra: 1.0,
                }]));
            }
            b.build()
                .unwrap()
                .simulate(InitialCondition::Synchronized, 60.0)
                .unwrap()
        };
        let speed_for = |vp: f64| {
            let arrivals = model_wave_arrivals(&run(vp, true), &run(vp, false), 0.05);
            wave_speed_fit(&arrivals, 5, 6)
                .mean_speed()
                .expect("wave detected")
        };
        let slow = speed_for(1.0);
        let fast = speed_for(4.0);
        assert!(fast > 1.5 * slow, "vp=4 speed {fast} vs vp=1 speed {slow}");
    }

    #[test]
    fn speed_fit_handles_missing_sides() {
        // All arrivals on one side only.
        let arrivals = vec![
            WaveArrival {
                rank: 5,
                iteration: None,
                time: Some(0.0),
            },
            WaveArrival {
                rank: 6,
                iteration: None,
                time: Some(1.0),
            },
            WaveArrival {
                rank: 7,
                iteration: None,
                time: Some(2.0),
            },
            WaveArrival {
                rank: 3,
                iteration: None,
                time: None,
            },
        ];
        let speed = wave_speed_fit(&arrivals, 5, 4);
        assert!(speed.up.is_some());
        assert!(speed.down.is_none());
        assert!((speed.mean_speed().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lockstep_sim_has_no_arrivals() {
        let tr = pom_mpisim::lockstep_run(8, 10, Kernel::pisolver(), 1e-3).unwrap();
        let arrivals = sim_wave_arrivals(&tr, &tr, 1e-9);
        assert!(arrivals.iter().all(|a| a.iteration.is_none()));
        let speed = wave_speed_fit(&arrivals, 4, 4);
        assert!(speed.mean_speed().is_none());
    }
}
