//! De-/resynchronization diagnostics.
//!
//! After an idle wave has passed, the paper distinguishes two asymptotic
//! fates (§5.1.2, §5.2): scalable programs *resynchronize* (all processes
//! settle back into lockstep, possibly uniformly shifted by the absorbed
//! delay), while bottlenecked programs keep a *computational wavefront* —
//! persistent skew between processes, organized socket-by-socket in the
//! paper's MPI traces.

use pom_core::PomRun;
use pom_mpisim::SimTrace;

use crate::stats::mean;

/// Verdict on the asymptotic state of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesyncVerdict {
    /// Processes returned to (or stayed in) lockstep.
    Synchronized,
    /// Persistent macroscopic skew remains.
    Desynchronized,
}

/// Mean iteration-start spread over the trailing window
/// `[start_iter, n_iterations)` of a simulator trace.
pub fn residual_spread(trace: &SimTrace, start_iter: usize) -> f64 {
    let n = trace.n_iterations();
    assert!(
        start_iter < n,
        "window start {start_iter} beyond {n} iterations"
    );
    let spreads: Vec<f64> = (start_iter..n)
        .map(|k| trace.iteration_start_spread(k))
        .collect();
    mean(&spreads)
}

/// Classify a simulator run: desynchronized if the trailing-window spread
/// exceeds `threshold` seconds.
pub fn sim_verdict(trace: &SimTrace, start_iter: usize, threshold: f64) -> DesyncVerdict {
    if residual_spread(trace, start_iter) > threshold {
        DesyncVerdict::Desynchronized
    } else {
        DesyncVerdict::Synchronized
    }
}

/// Per-socket mean iteration-start offsets (relative to the globally
/// earliest rank) at iteration `k` — the coordinate in which the paper's
/// Fig. 2(b/d) wavefront is visible ("runtime differences among processes
/// on three of four Meggie sockets").
pub fn socket_offsets(trace: &SimTrace, ranks_per_socket: usize, k: usize) -> Vec<f64> {
    assert!(ranks_per_socket > 0);
    let starts = trace.iteration_starts(k);
    let lo = starts.iter().cloned().fold(f64::INFINITY, f64::min);
    starts
        .chunks(ranks_per_socket)
        .map(|chunk| mean(&chunk.iter().map(|s| s - lo).collect::<Vec<_>>()))
        .collect()
}

/// Mean phase spread of a model run over the trailing `window` fraction
/// of its samples (e.g. 0.2 = last fifth).
pub fn model_residual_spread(run: &PomRun, window: f64) -> f64 {
    assert!((0.0..=1.0).contains(&window) && window > 0.0);
    let series = run.phase_spread_series();
    let n = series.len();
    let start = ((1.0 - window) * n as f64) as usize;
    let tail: Vec<f64> = series[start.min(n - 1)..].iter().map(|p| p.1).collect();
    mean(&tail)
}

/// Classify a model run by its trailing phase spread (radians).
pub fn model_verdict(run: &PomRun, threshold: f64) -> DesyncVerdict {
    if model_residual_spread(run, 0.2) > threshold {
        DesyncVerdict::Desynchronized
    } else {
        DesyncVerdict::Synchronized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_core::{InitialCondition, PomBuilder, Potential};
    use pom_kernels::Kernel;
    use pom_mpisim::{ProgramSpec, SimDelay, Simulator, WorkSpec};
    use pom_topology::{ClusterSpec, Placement, Topology};

    fn injected_run(kernel: Kernel, message_bytes: usize) -> SimTrace {
        let p = ProgramSpec::new(20, 40)
            .kernel(kernel)
            .work(WorkSpec::TargetSeconds(1e-3))
            .message_bytes(message_bytes)
            .inject(SimDelay {
                rank: 5,
                iteration: 5,
                extra_seconds: 5e-3,
            });
        Simulator::new(p, Placement::packed(ClusterSpec::meggie(), 20))
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn sim_verdicts_separate_the_two_classes() {
        // Scalable: resynchronizes (uniform shift ⇒ tiny spread).
        let scal = injected_run(Kernel::pisolver(), 4_000_000);
        assert_eq!(sim_verdict(&scal, 30, 5e-4), DesyncVerdict::Synchronized);
        // Memory-bound with non-negligible comm: residual wavefront.
        let mem = injected_run(Kernel::stream_triad(), 4_000_000);
        assert_eq!(sim_verdict(&mem, 30, 5e-4), DesyncVerdict::Desynchronized);
        assert!(residual_spread(&mem, 30) > residual_spread(&scal, 30));
    }

    #[test]
    fn socket_offsets_shape() {
        let mem = injected_run(Kernel::stream_triad(), 4_000_000);
        let offs = socket_offsets(&mem, 10, 35);
        assert_eq!(offs.len(), 2); // 20 ranks, 10 per socket
        assert!(offs.iter().all(|&o| o >= 0.0));
        // The wavefront lives *between* sockets: offsets differ.
        assert!((offs[0] - offs[1]).abs() > 1e-4, "offsets {offs:?}");
    }

    #[test]
    fn model_verdicts_follow_potentials() {
        let run = |potential| {
            PomBuilder::new(12)
                .topology(Topology::chain(12, &[-1, 1]))
                .potential(potential)
                .compute_time(1.0)
                .comm_time(0.0)
                .coupling(8.0)
                .build()
                .unwrap()
                .simulate(
                    InitialCondition::RandomSpread {
                        amplitude: 0.2,
                        seed: 3,
                    },
                    250.0,
                )
                .unwrap()
        };
        let tanh = run(Potential::Tanh);
        assert_eq!(model_verdict(&tanh, 0.5), DesyncVerdict::Synchronized);
        let desync = run(Potential::desync(1.5));
        assert_eq!(model_verdict(&desync, 0.5), DesyncVerdict::Desynchronized);
        assert!(model_residual_spread(&desync, 0.2) > model_residual_spread(&tanh, 0.2));
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn residual_spread_checks_window() {
        let tr = pom_mpisim::lockstep_run(4, 5, Kernel::pisolver(), 1e-3).unwrap();
        residual_spread(&tr, 10);
    }
}
