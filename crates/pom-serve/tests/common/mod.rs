//! A tiny blocking HTTP client for the daemon tests: enough HTTP/1.1 to
//! exercise every route (status-line + headers + body, de-chunking).

// Each integration-test binary compiles this module separately and uses
// a different subset of it.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A parsed response.
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Issue one request and read the full response (the server closes the
/// connection after each response).
pub fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    request_with(addr, method, path, body, &[])
}

/// [`request`] with extra headers (e.g. `Authorization`).
pub fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n",
        body.len()
    )
    .expect("write request");
    for (name, value) in headers {
        write!(stream, "{name}: {value}\r\n").expect("write header");
    }
    stream.write_all(b"\r\n").expect("write header terminator");
    stream.write_all(body.as_bytes()).expect("write body");

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, payload) = text.split_once("\r\n\r\n").expect("header terminator");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line `{status_line}`"));
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    let chunked = headers
        .iter()
        .any(|(k, v)| k.eq_ignore_ascii_case("transfer-encoding") && v.contains("chunked"));
    let body = if chunked {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    Response {
        status,
        headers,
        body,
    }
}

fn dechunk(mut payload: &str) -> String {
    let mut out = String::new();
    loop {
        let Some((size_line, rest)) = payload.split_once("\r\n") else {
            panic!("truncated chunk size in {payload:?}");
        };
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size `{size_line}`"));
        if size == 0 {
            return out;
        }
        out.push_str(&rest[..size]);
        // Skip the chunk's trailing CRLF.
        payload = &rest[size + 2..];
    }
}

/// POST a campaign spec; returns the response (201 carries the status
/// JSON with the job id).
pub fn submit(addr: SocketAddr, spec: &str) -> Response {
    request(addr, "POST", "/jobs", Some(spec))
}

/// Extract `"key":"value"` from a flat JSON object body.
pub fn json_str_field(body: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = body.find(&tag)? + tag.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

/// Extract `"key":number` from a flat JSON object body.
pub fn json_num_field(body: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = body.find(&tag)? + tag.len();
    let digits: String = body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Poll `GET /jobs/{id}` until its state matches (true) or the timeout
/// expires (false).
pub fn wait_state(addr: SocketAddr, id: &str, want: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        let resp = request(addr, "GET", &format!("/jobs/{id}"), None);
        if resp.status == 200 && json_str_field(&resp.body, "state").as_deref() == Some(want) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A fresh per-test spool directory.
pub fn temp_spool(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pom-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
