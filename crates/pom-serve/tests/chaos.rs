//! Chaos property suite: a daemon whose spool IO path is fed a
//! deterministic schedule of torn writes, short reads, EAGAIN storms,
//! fsync failures, and kill-points — restarted after every crash-class
//! injection — must still finish every campaign with a result file
//! bitwise identical to an uninterrupted in-process run.
//!
//! The harness plays the role of the power company: whenever the armed
//! [`Faults`] handle raises its kill flag, the daemon is stopped with
//! [`StopMode::Abort`] (in-flight rows discarded, exactly SIGKILL's
//! durable state) and a fresh daemon is started over the same spool. The
//! handle is shared across sessions, so the global IO-op counter — and
//! therefore the schedule — keeps advancing instead of replaying the
//! same fault forever, and the plan's kill budget guarantees the loop
//! terminates.

mod common;

use std::fs;
use std::time::{Duration, Instant};

use common::temp_spool;
use pom_serve::{
    FaultClass, FaultPlan, Faults, JobState, ServeConfig, Server, StopMode, FAULT_CLASSES,
};
use pom_sweep::Campaign;

/// Small but not trivial: 12 points × 1 run, enough rows that every
/// schedule lands at least one fault mid-stream.
const SPEC: &str = r#"
[campaign]
name = "chaos"
seed = 17
observables = ["final_r", "final_spread"]
[model]
n = 6
potential = "tanh"
[sim]
t_end = 300.0
samples = 12
[[axes]]
key = "model.coupling"
values = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0, 6.5]
"#;

const MAX_RESTARTS: usize = 60;

fn start(spool: &std::path::Path, threads: usize, faults: &Faults) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        spool: spool.into(),
        threads,
        max_jobs: 4,
        faults: faults.clone(),
        ..ServeConfig::default()
    })
    .expect("server start")
}

/// Drive one campaign to completion under `plan`, restarting the daemon
/// on every kill, and assert the final file is bitwise identical to the
/// reference. Returns the number of kill-driven restarts.
fn run_chaos(tag: &str, plan: FaultPlan, threads: usize) -> usize {
    let spool = temp_spool(tag);
    let faults = Faults::plan(plan.clone());
    let reference = Campaign::from_str(SPEC)
        .unwrap()
        .run_jsonl_string(0)
        .unwrap();
    let id = "j1";

    let mut restarts = 0;
    let mut submitted = false;
    'sessions: loop {
        assert!(
            restarts <= MAX_RESTARTS,
            "[{tag}] not converging after {restarts} restarts (plan {plan:?})"
        );
        let server = start(&spool, threads, &faults);
        if !submitted {
            match server.manager().submit(SPEC) {
                Ok(status) => {
                    assert_eq!(status.id, id);
                    submitted = true;
                }
                Err(e) => {
                    // The schedule tore the header (or spec/meta IO): to
                    // the client this is a 500, to the spool it is a
                    // crash — the next session must recover or accept a
                    // clean resubmit.
                    assert!(
                        faults.kill_requested(),
                        "[{tag}] submit failed without an injected kill: {e:?}"
                    );
                    server.stop(StopMode::Abort);
                    faults.clear_kill();
                    restarts += 1;
                    // Recovery adopts the directory iff the spec landed.
                    submitted = spool.join(id).join("spec").exists();
                    continue 'sessions;
                }
            }
        }

        let deadline = Instant::now() + Duration::from_secs(240);
        loop {
            if faults.kill_requested() {
                server.stop(StopMode::Abort);
                faults.clear_kill();
                restarts += 1;
                continue 'sessions;
            }
            let state = server.manager().status(id).map(|s| s.state);
            match state {
                Some(JobState::Done) => {
                    server.stop(StopMode::Drain);
                    break 'sessions;
                }
                Some(JobState::Failed) if !faults.kill_requested() => {
                    // A crash-class fault always raises the flag *before*
                    // the write error surfaces, so a failure without the
                    // flag is a genuine hardening bug.
                    panic!(
                        "[{tag}] job failed without an injected kill: {:?}",
                        server.manager().status(id).and_then(|s| s.reason)
                    );
                }
                _ => {}
            }
            assert!(
                Instant::now() < deadline,
                "[{tag}] session stalled in state {state:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    let final_file = fs::read_to_string(spool.join(id).join("results.jsonl")).unwrap();
    assert_eq!(
        final_file, reference,
        "[{tag}] recovery is not bitwise clean (threads={threads}, plan {plan:?})"
    );
    let _ = fs::remove_dir_all(&spool);
    restarts
}

/// Per-class plans: every fault class must be survivable on its own, at
/// 1, 4, and 8 worker threads.
fn class_sweep(class: FaultClass) {
    for (i, &threads) in [1usize, 4, 8].iter().enumerate() {
        let seed = 100 + i as u64;
        let restarts = run_chaos(
            &format!("chaos-{}-t{threads}", class.as_str()),
            FaultPlan::only(class, seed),
            threads,
        );
        if class.is_crash() {
            assert!(
                restarts > 0,
                "{} plan (seed {seed}) never fired — schedule too sparse for the campaign",
                class.as_str()
            );
        }
    }
}

#[test]
fn torn_writes_recover_bitwise() {
    class_sweep(FaultClass::TornWrite);
}

#[test]
fn kill_points_recover_bitwise() {
    class_sweep(FaultClass::KillPoint);
}

#[test]
fn fsync_failures_recover_bitwise() {
    class_sweep(FaultClass::FsyncFail);
}

#[test]
fn short_reads_are_absorbed_bitwise() {
    class_sweep(FaultClass::ShortRead);
}

#[test]
fn eagain_storms_are_absorbed_bitwise() {
    class_sweep(FaultClass::EagainStorm);
}

/// Mixed-class schedules (the kill point is effectively random): several
/// seeds, several thread counts, all five classes interleaved.
#[test]
fn randomized_fault_schedules_recover_bitwise() {
    for (seed, threads) in [(1u64, 1usize), (2, 4), (3, 8), (4, 4)] {
        run_chaos(
            &format!("chaos-mixed-s{seed}-t{threads}"),
            FaultPlan::from_seed(seed),
            threads,
        );
    }
}

/// The injection counters are part of the contract: a chaos campaign
/// must be visible on the metrics registry, per class.
#[test]
fn injections_are_counted_per_class() {
    run_chaos("chaos-counted", FaultPlan::from_seed(9), 2);
    let mut seen = 0;
    for class in FAULT_CLASSES {
        seen += pom_obs::registry()
            .counter_value(
                "pom_serve_faults_injected_total",
                &[("class", class.as_str())],
            )
            .unwrap_or(0);
    }
    assert!(seen > 0, "no injections recorded on the registry");
}
