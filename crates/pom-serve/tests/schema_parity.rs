//! Registry parity between the daemon and the CLI.
//!
//! `GET /schema` must serve exactly `Registry::schema_json()` — the
//! same string `pom help format=json` prints (the CLI side of that
//! equality is pinned in `pom-cli`'s tests; both call the one
//! function, and this suite pins the HTTP side at several thread
//! counts). The differential half drives malformed query strings
//! through real sockets and asserts the HTTP error body carries the
//! exact explanation the registry renders for the same mistake — the
//! text a CLI user would see for the same key.

mod common;

use std::fs;

use common::{json_str_field, request, submit, temp_spool};
use pom_serve::{ServeConfig, Server, StopMode};
use pom_sweep::registry::{defs, toolkit, RouteSpec};

fn start(spool: &std::path::Path, threads: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        spool: spool.into(),
        threads,
        ..ServeConfig::default()
    })
    .expect("server start")
}

fn small_spec(name: &str) -> String {
    format!(
        r#"
[campaign]
name = "{name}"
observables = ["final_r"]
[model]
n = 4
[sim]
t_end = 2.0
samples = 5
[[axes]]
key = "model.coupling"
values = [2.0]
"#
    )
}

#[test]
fn schema_route_serves_the_registry_at_every_thread_count() {
    let expected = toolkit().schema_json();
    assert!(expected.starts_with("{\"commands\":["), "{expected}");
    for threads in [1usize, 4, 8] {
        let spool = temp_spool(&format!("schema-{threads}"));
        let server = start(&spool, threads);
        let got = request(server.addr(), "GET", "/schema", None);
        assert_eq!(got.status, 200);
        assert_eq!(
            got.body, expected,
            "/schema body diverged from Registry::schema_json at threads={threads}"
        );
        server.stop(StopMode::Abort);
        let _ = fs::remove_dir_all(&spool);
    }
}

#[test]
fn schema_document_lists_every_command_route_and_section() {
    let doc = toolkit().schema_json();
    for c in toolkit().commands {
        assert!(
            doc.contains(&format!("\"name\":\"{}\"", c.name)),
            "{}",
            c.name
        );
    }
    for r in toolkit().routes {
        assert!(
            doc.contains(&format!("\"path\":\"{}\"", r.path)),
            "{}",
            r.path
        );
    }
    for s in toolkit().sections {
        assert!(
            doc.contains(&format!("\"name\":\"{}\"", s.name)),
            "{}",
            s.name
        );
    }
}

/// What the registry says about this exact query string — rendered the
/// same way `api::parse_query` renders it into the 400 body.
fn registry_verdict(route: &RouteSpec, pairs: &[(&str, &str)]) -> Option<String> {
    route
        .parse_pairs(pairs.iter().copied())
        .err()
        .map(|e| route.explain(&e))
}

#[test]
fn bad_query_strings_fail_identically_over_http_and_in_the_registry() {
    let spool = temp_spool("parity-fuzz");
    let server = start(&spool, 2);
    let addr = server.addr();
    let body = small_spec("parity");
    let id = json_str_field(&submit(addr, &body).body, "job").expect("job id");

    // (route spec, method, concrete path, query pairs) — every case a
    // registry rejection: typo'd keys, duplicates, type mismatches,
    // out-of-range enum variants.
    type Case<'a> = (&'a RouteSpec, &'a str, &'a str, Vec<(&'a str, &'a str)>);
    let rows_path = format!("/jobs/{id}/rows");
    let stats_path = format!("/jobs/{id}/stats");
    let cases: Vec<Case> = vec![
        (&defs::ROUTE_ROWS, "GET", &rows_path, vec![("fllow", "1")]),
        (&defs::ROUTE_ROWS, "GET", &rows_path, vec![("follow", "2")]),
        (
            &defs::ROUTE_ROWS,
            "GET",
            &rows_path,
            vec![("follow", "maybe")],
        ),
        (
            &defs::ROUTE_ROWS,
            "GET",
            &rows_path,
            vec![("follow", "1"), ("follow", "0")],
        ),
        (
            &defs::ROUTE_STATS,
            "GET",
            &stats_path,
            vec![("follow", "1")],
        ),
        (
            &defs::ROUTE_STATS,
            "GET",
            &stats_path,
            vec![("verbose", "1")],
        ),
        (
            &defs::ROUTE_SUBMIT,
            "POST",
            "/jobs",
            vec![("priority", "urgent")],
        ),
        (
            &defs::ROUTE_SUBMIT,
            "POST",
            "/jobs",
            vec![("prority", "high")],
        ),
        (
            &defs::ROUTE_SUBMIT,
            "POST",
            "/jobs",
            vec![("deadline_ms", "abc")],
        ),
        (
            &defs::ROUTE_SUBMIT,
            "POST",
            "/jobs",
            vec![("deadline_ms", "-5")],
        ),
        (
            &defs::ROUTE_SUBMIT,
            "POST",
            "/jobs",
            vec![("priority", "low"), ("priority", "high")],
        ),
    ];

    for (route, method, path, pairs) in cases {
        let expected = registry_verdict(route, &pairs)
            .unwrap_or_else(|| panic!("{path} {pairs:?}: registry accepted a fuzz case"));
        let query: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let url = format!("{path}?{}", query.join("&"));
        let req_body = (method == "POST").then_some(body.as_str());
        let resp = request(addr, method, &url, req_body);
        assert_eq!(resp.status, 400, "{url}: {}", resp.body);
        assert!(
            resp.body.contains(&expected.replace('"', "\\\"")) || resp.body.contains(&expected),
            "{url}: HTTP body {:?} does not carry the registry explanation {expected:?}",
            resp.body
        );
    }

    // The suggestion machinery reaches HTTP too: a typo within edit
    // distance 2 names the intended key.
    let resp = request(addr, "GET", &format!("{rows_path}?fllow=1"), None);
    assert!(
        resp.body.contains("did you mean `follow`?"),
        "{}",
        resp.body
    );

    // And the happy path still works after all that fuzzing.
    let ok = request(addr, "GET", &format!("{rows_path}?follow=0"), None);
    assert_eq!(ok.status, 200, "{}", ok.body);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}
