//! Crash-safety: a daemon killed mid-campaign and restarted over the same
//! spool must finish the job with a result file bitwise identical to an
//! uninterrupted single-process run — the ISSUE's headline guarantee.
//!
//! The "kill" is [`StopMode::Abort`]: workers discard in-flight results
//! without writing them, so the durable state is exactly what `SIGKILL`
//! would have left (a whole-line prefix of the stream; every row is one
//! flushed write).

mod common;

use std::fs;
use std::time::{Duration, Instant};

use common::{json_str_field, submit, temp_spool};
use pom_serve::{ServeConfig, Server, StopMode};
use pom_sweep::Campaign;

const SPEC: &str = r#"
[campaign]
name = "restartable"
seed = 23
observables = ["final_r", "mean_abs_gap", "final_spread"]
[model]
n = 8
potential = "tanh"
[sim]
t_end = 400.0
samples = 40
[[axes]]
key = "model.coupling"
values = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5]
[[axes]]
key = "model.tcomp"
values = [0.8, 0.9, 1.0]
"#;

fn start(spool: &std::path::Path, threads: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        spool: spool.into(),
        threads,
        max_jobs: 16,
        ..ServeConfig::default()
    })
    .expect("server start")
}

/// Poll the manager until at least `rows` rows are durable.
fn wait_written(server: &Server, id: &str, rows: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    loop {
        let written = server.manager().status(id).map_or(0, |s| s.written);
        if written >= rows || Instant::now() >= deadline {
            return written;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn killed_daemon_restarts_and_finishes_bitwise_identical() {
    let spool = temp_spool("restart");
    let total = 24;

    // Session 1: submit, let a few rows land, then die mid-campaign.
    let server = start(&spool, 3);
    let created = submit(server.addr(), SPEC);
    assert_eq!(created.status, 201, "{}", created.body);
    let id = json_str_field(&created.body, "job").unwrap();
    let progressed = wait_written(&server, &id, 3, Duration::from_secs(120));
    assert!(progressed >= 3, "no progress before the kill");
    server.stop(StopMode::Abort);

    let path = spool.join(&id).join("results.jsonl");
    let partial = fs::read_to_string(&path).unwrap();
    let partial_rows = partial.lines().count() - 1; // minus header
    assert!(
        partial_rows < total,
        "campaign finished before the kill; nothing left to resume"
    );

    // Session 2: a fresh daemon over the same spool auto-resumes the job
    // with no client interaction at all.
    let server = start(&spool, 2);
    let resumed = server.manager().status(&id).expect("job recovered");
    assert!(
        resumed.written >= partial_rows,
        "recovery lost durable rows: {} < {partial_rows}",
        resumed.written
    );
    assert!(
        server.manager().wait_done(&id, Duration::from_secs(240)),
        "resumed job did not finish"
    );
    server.stop(StopMode::Drain);

    // Bitwise identity with an uninterrupted in-process run (which is
    // itself thread-count invariant).
    let reference = Campaign::from_str(SPEC)
        .unwrap()
        .run_jsonl_string(0)
        .unwrap();
    let final_file = fs::read_to_string(&path).unwrap();
    assert_eq!(final_file, reference);
    let _ = fs::remove_dir_all(&spool);
}

/// An ensemble campaign (`replicas = R`) behind the same spool: the
/// lockstep batch per point and the aggregate columns must survive a
/// kill-and-restart bitwise, exactly like plain campaigns.
const ENSEMBLE_SPEC: &str = r#"
[campaign]
name = "restartable-ensemble"
seed = 31
replicas = 3
observables = ["final_r", "final_spread"]
[model]
n = 8
potential = "tanh"
[init]
kind = "spread"
amplitude = 0.8
[sim]
t_end = 250.0
samples = 30
solver = "rk4"
h = 0.05
[[axes]]
key = "model.coupling"
values = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5]
[[axes]]
key = "model.tcomp"
values = [0.85, 0.95]
"#;

#[test]
fn killed_ensemble_campaign_resumes_bitwise_identical() {
    let spool = temp_spool("restart-ensemble");
    let total = 12;

    let server = start(&spool, 3);
    let created = submit(server.addr(), ENSEMBLE_SPEC);
    assert_eq!(created.status, 201, "{}", created.body);
    let id = json_str_field(&created.body, "job").unwrap();
    let progressed = wait_written(&server, &id, 2, Duration::from_secs(120));
    assert!(progressed >= 2, "no progress before the kill");
    server.stop(StopMode::Abort);

    let path = spool.join(&id).join("results.jsonl");
    let partial = fs::read_to_string(&path).unwrap();
    assert!(
        partial.lines().count() - 1 < total,
        "campaign finished before the kill; nothing left to resume"
    );
    // The durable header already carries the ensemble marker.
    assert!(
        partial.lines().next().unwrap().contains("\"replicas\":3"),
        "{partial}"
    );

    let server = start(&spool, 2);
    assert!(
        server.manager().wait_done(&id, Duration::from_secs(240)),
        "resumed ensemble job did not finish"
    );
    server.stop(StopMode::Drain);

    let reference = Campaign::from_str(ENSEMBLE_SPEC)
        .unwrap()
        .run_jsonl_string(0)
        .unwrap();
    let final_file = fs::read_to_string(&path).unwrap();
    assert_eq!(final_file, reference);
    assert!(final_file.contains("\"final_r_ci95\""), "{final_file}");
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn cancelled_job_survives_restart_and_resumes() {
    let spool = temp_spool("restart-cancel");

    // Cancel, then kill the daemon.
    let server = start(&spool, 2);
    let addr = server.addr();
    let id = json_str_field(&submit(addr, SPEC).body, "job").unwrap();
    let cancelled = common::request(addr, "POST", &format!("/jobs/{id}/cancel"), None);
    assert_eq!(cancelled.status, 200);
    assert_eq!(
        json_str_field(&cancelled.body, "state").as_deref(),
        Some("cancelled"),
        "cancel landed after the campaign completed — spec too cheap"
    );
    server.stop(StopMode::Abort);

    // The restarted daemon must respect the cancel marker: the job comes
    // back cancelled, not running.
    let server = start(&spool, 2);
    let state = server.manager().status(&id).unwrap().state;
    assert_eq!(state, pom_serve::JobState::Cancelled);

    // An explicit resume then completes it, bitwise identical.
    let resumed = common::request(server.addr(), "POST", &format!("/jobs/{id}/resume"), None);
    assert_eq!(resumed.status, 200, "{}", resumed.body);
    assert!(server.manager().wait_done(&id, Duration::from_secs(240)));
    server.stop(StopMode::Drain);

    let reference = Campaign::from_str(SPEC)
        .unwrap()
        .run_jsonl_string(0)
        .unwrap();
    let final_file = fs::read_to_string(spool.join(&id).join("results.jsonl")).unwrap();
    assert_eq!(final_file, reference);
    let _ = fs::remove_dir_all(&spool);
}
