//! Hostile-traffic hardening: admission control, token quotas, submit
//! deadlines, priority scheduling, slowloris/slow-consumer bounds, spool
//! GC, and the corrupt-stream recovery contract — each bound answers its
//! documented status code and bumps its metric.

mod common;

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use common::{
    json_num_field, json_str_field, request, request_with, submit, temp_spool, wait_state,
};
use pom_serve::{JobState, ServeConfig, Server, StopMode, TokenBook};
use pom_sweep::Campaign;

/// A small campaign: `points` couplings × one run each.
fn spec(name: &str, values: &str, t_end: f64) -> String {
    format!(
        r#"
[campaign]
name = "{name}"
seed = 11
observables = ["final_r", "final_spread"]
[model]
n = 6
potential = "tanh"
[sim]
t_end = {t_end}
samples = 12
[[axes]]
key = "model.coupling"
values = {values}
"#
    )
}

/// ~10 ms per point in a debug build: long enough that cancels,
/// deadlines, and kills land mid-campaign.
fn slow_spec(name: &str) -> String {
    spec(
        name,
        "[1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 8.0, 8.5]",
        1500.0,
    )
}

fn start_with(spool: &std::path::Path, f: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        spool: spool.into(),
        threads: 1,
        max_jobs: 16,
        ..ServeConfig::default()
    };
    f(&mut cfg);
    Server::start(cfg).expect("server start")
}

fn counter(name: &str, labels: &[(&str, &str)]) -> u64 {
    pom_obs::registry().counter_value(name, labels).unwrap_or(0)
}

#[test]
fn connection_limit_answers_503_with_retry_after_before_thread_spawn() {
    let spool = temp_spool("conn-limit");
    let server = start_with(&spool, |c| {
        c.max_conns = 2;
        c.read_timeout = Duration::from_secs(30); // idle conns stay counted
    });
    let addr = server.addr();
    let rejected_before = counter("pom_serve_connections_rejected_total", &[]);

    // Two idle connections occupy every slot (their handlers block in the
    // request read)…
    let _idle1 = TcpStream::connect(addr).unwrap();
    let _idle2 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let both be accepted

    // …so the third is refused on the accept thread: a full 503 response
    // arrives without the client sending a single byte.
    let mut refused = TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = String::new();
    refused.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("Retry-After: 1"), "{raw}");
    assert!(raw.contains("max-conns=2"), "{raw}");
    assert!(
        counter("pom_serve_connections_rejected_total", &[]) > rejected_before,
        "rejection not counted"
    );

    // Releasing a slot readmits clients.
    drop(_idle1);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(request(addr, "GET", "/healthz", None).status, 200);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn auth_rejects_missing_and_unknown_tokens_with_401() {
    let spool = temp_spool("auth-401");
    let book = TokenBook::parse("[tokens.alice]\nmax_active_jobs = 1\n").unwrap();
    let server = start_with(&spool, |c| c.auth = Some(book));
    let addr = server.addr();
    let failures_before = counter("pom_serve_auth_failures_total", &[]);

    let body = spec("auth", "[2.0]", 2.0);
    let missing = submit(addr, &body);
    assert_eq!(missing.status, 401, "{}", missing.body);
    assert!(missing.body.contains("missing token"), "{}", missing.body);

    let unknown = request_with(
        addr,
        "POST",
        "/jobs",
        Some(&body),
        &[("Authorization", "Bearer mallory")],
    );
    assert_eq!(unknown.status, 401, "{}", unknown.body);
    assert!(
        unknown.body.contains("unknown token `mallory`"),
        "{}",
        unknown.body
    );
    assert!(counter("pom_serve_auth_failures_total", &[]) >= failures_before + 2);

    // Both token spellings authenticate.
    let bearer = request_with(
        addr,
        "POST",
        "/jobs",
        Some(&body),
        &[("Authorization", "Bearer alice")],
    );
    assert_eq!(bearer.status, 201, "{}", bearer.body);
    assert!(wait_state(addr, "j1", "done", Duration::from_secs(120)));
    let plain = request_with(
        addr,
        "POST",
        "/jobs",
        Some(&body),
        &[("X-Pom-Token", "alice")],
    );
    assert_eq!(plain.status, 201, "{}", plain.body);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn quota_rejections_name_the_offending_bound() {
    let spool = temp_spool("quota-429");
    let book = TokenBook::parse(
        "[tokens.alice]\nmax_active_jobs = 1\n[tokens.carol]\nmax_total_points = 4\n",
    )
    .unwrap();
    let server = start_with(&spool, |c| c.auth = Some(book));
    let addr = server.addr();
    let auth = [("Authorization", "Bearer alice")];

    // alice: one running job fills max_active_jobs.
    let first = request_with(addr, "POST", "/jobs", Some(&slow_spec("occupant")), &auth);
    assert_eq!(first.status, 201, "{}", first.body);
    let id = json_str_field(&first.body, "job").unwrap();
    let second = request_with(addr, "POST", "/jobs", Some(&spec("q", "[2.0]", 2.0)), &auth);
    assert_eq!(second.status, 429, "{}", second.body);
    assert!(second.body.contains("max_active_jobs=1"), "{}", second.body);
    assert_eq!(
        counter(
            "pom_serve_quota_rejected_total",
            &[("bound", "max_active_jobs")]
        ),
        1
    );

    // carol: an 8-point submission cannot fit a 4-point budget, even with
    // nothing running.
    let eight = spec("points", "[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]", 2.0);
    let over = request_with(
        addr,
        "POST",
        "/jobs",
        Some(&eight),
        &[("X-Pom-Token", "carol")],
    );
    assert_eq!(over.status, 429, "{}", over.body);
    assert!(over.body.contains("max_total_points=4"), "{}", over.body);
    assert_eq!(
        counter(
            "pom_serve_quota_rejected_total",
            &[("bound", "max_total_points")]
        ),
        1
    );
    // The 429s surface on /metrics with the bound label.
    let metrics = request(addr, "GET", "/metrics", None);
    assert!(
        metrics
            .body
            .contains("pom_serve_quota_rejected_total{bound=\"max_total_points\"} 1"),
        "{}",
        metrics.body
    );

    // Quota is returned when the job stops running.
    request(addr, "POST", &format!("/jobs/{id}/cancel"), None);
    let third = request_with(
        addr,
        "POST",
        "/jobs",
        Some(&spec("q2", "[2.0]", 2.0)),
        &auth,
    );
    assert_eq!(third.status, 201, "{}", third.body);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn deadline_cancels_job_with_structured_reason_that_survives_restart() {
    let spool = temp_spool("deadline");
    let server = start_with(&spool, |_| {});
    let addr = server.addr();
    let cancelled_before = counter("pom_serve_jobs_deadline_cancelled_total", &[]);

    // A 5 ms deadline is past before the 16-point campaign can finish
    // in either build profile (a single point costs more than that in
    // debug, the full campaign far more in release), while the worker
    // still gets to claim — expiry is checked between point claims.
    let body = slow_spec("deadlined");
    let created = request(addr, "POST", "/jobs?deadline_ms=5", Some(&body));
    assert_eq!(created.status, 201, "{}", created.body);
    let id = json_str_field(&created.body, "job").unwrap();
    assert_eq!(json_num_field(&created.body, "deadline_ms"), Some(5));

    assert!(
        wait_state(addr, &id, "cancelled", Duration::from_secs(60)),
        "deadline never fired"
    );
    let status = request(addr, "GET", &format!("/jobs/{id}"), None);
    assert!(
        status.body.contains("deadline exceeded: deadline_ms=5"),
        "{}",
        status.body
    );
    let written = json_num_field(&status.body, "written").unwrap();
    assert!(written < 16, "deadline landed after completion: {written}");
    assert!(counter("pom_serve_jobs_deadline_cancelled_total", &[]) > cancelled_before);
    // The marker is structured JSON, not the legacy empty file.
    let marker = fs::read_to_string(spool.join(&id).join("cancelled")).unwrap();
    assert!(marker.contains("\"reason\":\"deadline\""), "{marker}");
    assert!(marker.contains("\"deadline_ms\":5"), "{marker}");
    server.stop(StopMode::Abort);

    // A restarted daemon recovers the job as cancelled-for-deadline, and
    // an explicit resume (which un-arms the spent deadline) completes it
    // bitwise identical to an uninterrupted run.
    let server = start_with(&spool, |_| {});
    let recovered = server.manager().status(&id).unwrap();
    assert_eq!(recovered.state, JobState::Cancelled);
    assert!(
        recovered
            .reason
            .as_deref()
            .is_some_and(|r| r.contains("deadline exceeded")),
        "{:?}",
        recovered.reason
    );
    let resumed = request(server.addr(), "POST", &format!("/jobs/{id}/resume"), None);
    assert_eq!(resumed.status, 200, "{}", resumed.body);
    assert!(server.manager().wait_done(&id, Duration::from_secs(240)));
    server.stop(StopMode::Drain);

    let reference = Campaign::from_str(&body)
        .unwrap()
        .run_jsonl_string(0)
        .unwrap();
    let final_file = fs::read_to_string(spool.join(&id).join("results.jsonl")).unwrap();
    assert_eq!(final_file, reference);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn high_priority_jobs_finish_ahead_of_low() {
    let spool = temp_spool("priority");
    let server = start_with(&spool, |_| {}); // 1 worker: dispatch is sequential
    let addr = server.addr();

    // A long normal-priority job occupies the daemon, then a low and a
    // high job of equal size race: high holds 4 of every 7 dispatch
    // slots, low 1, so high must complete first — deterministically,
    // since one worker claims points in pattern order.
    let blocker = request(addr, "POST", "/jobs", Some(&slow_spec("blocker")));
    assert_eq!(blocker.status, 201, "{}", blocker.body);
    let eight = "[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]";
    let low = request(
        addr,
        "POST",
        "/jobs?priority=low",
        Some(&spec("bg", eight, 1500.0)),
    );
    let high = request(
        addr,
        "POST",
        "/jobs?priority=high",
        Some(&spec("fg", eight, 1500.0)),
    );
    assert_eq!((low.status, high.status), (201, 201));
    let low_id = json_str_field(&low.body, "job").unwrap();
    let high_id = json_str_field(&high.body, "job").unwrap();
    assert!(high.body.contains("\"priority\":\"high\""), "{}", high.body);

    assert!(
        server
            .manager()
            .wait_done(&high_id, Duration::from_secs(240)),
        "high-priority job did not finish"
    );
    let low_written = server.manager().status(&low_id).unwrap().written;
    assert!(
        low_written < 8,
        "low-priority job ({low_written}/8 rows) was not deprioritized"
    );

    // Bad priority names are rejected like any other bad argument.
    let bad = request(
        addr,
        "POST",
        "/jobs?priority=urgent",
        Some(&spec("x", "[2.0]", 2.0)),
    );
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(bad.body.contains("high, normal, low"), "{}", bad.body);

    server.stop(StopMode::Abort);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn slowloris_connection_answers_408_at_the_read_deadline() {
    let spool = temp_spool("slowloris");
    let server = start_with(&spool, |c| c.read_timeout = Duration::from_millis(200));
    let addr = server.addr();
    let timeouts_before = counter("pom_serve_read_timeouts_total", &[]);

    // Send half a request and stall. The daemon must not hold the socket
    // past the read deadline.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n")
        .unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw); // best-effort 408 before the drop
    assert!(raw.starts_with("HTTP/1.1 408"), "{raw}");
    assert!(
        counter("pom_serve_read_timeouts_total", &[]) > timeouts_before,
        "timeout not counted"
    );
    // The daemon is fully healthy afterwards.
    assert_eq!(request(addr, "GET", "/healthz", None).status, 200);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn dropped_follow_consumer_never_hurts_the_job() {
    let spool = temp_spool("slow-consumer");
    let server = start_with(&spool, |c| c.write_timeout = Duration::from_millis(250));
    let addr = server.addr();

    let body = slow_spec("streamed");
    let id = json_str_field(&request(addr, "POST", "/jobs", Some(&body)).body, "job").unwrap();

    // A consumer that reads one chunk of the follow stream and vanishes
    // costs the daemon exactly that stream.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /jobs/{id}/rows?follow=1 HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut buf = [0u8; 512];
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "no stream bytes before the drop");
        // Dropped here: the socket closes with the stream mid-flight.
    }

    // The job still runs to completion, bitwise identical.
    assert!(server.manager().wait_done(&id, Duration::from_secs(240)));
    server.stop(StopMode::Drain);
    let reference = Campaign::from_str(&body)
        .unwrap()
        .run_jsonl_string(0)
        .unwrap();
    let final_file = fs::read_to_string(spool.join(&id).join("results.jsonl")).unwrap();
    assert_eq!(final_file, reference);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn shutdown_closes_follow_streams_with_their_chunked_terminator() {
    let spool = temp_spool("drain-follow");
    let server = start_with(&spool, |_| {});
    let addr = server.addr();

    let id = json_str_field(
        &request(addr, "POST", "/jobs", Some(&slow_spec("tailed"))).body,
        "job",
    )
    .unwrap();
    // Tail in a background thread; `request` panics if the chunked body
    // is truncated, so a clean join proves the terminator arrived.
    let follow = {
        let path = format!("/jobs/{id}/rows?follow=1");
        std::thread::spawn(move || request(addr, "GET", &path, None))
    };
    std::thread::sleep(Duration::from_millis(150)); // let the tail attach

    let resp = request(addr, "POST", "/shutdown", None);
    assert_eq!(resp.status, 200);
    let streamed = follow.join().expect("follow stream must end cleanly");
    assert_eq!(streamed.status, 200);
    // Whatever prefix was streamed is whole-line JSONL.
    assert!(
        streamed.body.is_empty() || streamed.body.ends_with('\n'),
        "drain cut a row in half: {:?}",
        &streamed.body[streamed.body.len().saturating_sub(80)..]
    );
    server.join();
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn retain_policy_gcs_done_jobs_but_never_cancelled_and_never_reuses_ids() {
    let spool = temp_spool("spool-gc");
    let server = start_with(&spool, |c| c.retain_count = 2);
    let addr = server.addr();
    let gc_before = counter("pom_serve_spool_gc_removed_total", &[]);

    // A cancelled job sits in the spool the whole time; count-based GC
    // must never touch it.
    let held = json_str_field(
        &request(addr, "POST", "/jobs", Some(&slow_spec("held"))).body,
        "job",
    )
    .unwrap();
    request(addr, "POST", &format!("/jobs/{held}/cancel"), None);

    let mut done_ids = Vec::new();
    for i in 0..4 {
        let body = spec(&format!("gc{i}"), "[2.0]", 2.0);
        let id = json_str_field(&request(addr, "POST", "/jobs", Some(&body)).body, "job").unwrap();
        assert!(wait_state(addr, &id, "done", Duration::from_secs(120)));
        done_ids.push(id);
    }
    // Completion-triggered GC kept the newest two done jobs…
    std::thread::sleep(Duration::from_millis(50));
    for old in &done_ids[..2] {
        assert!(!spool.join(old).exists(), "{old} should be GC'd");
        assert_eq!(
            request(addr, "GET", &format!("/jobs/{old}"), None).status,
            404
        );
    }
    for new in &done_ids[2..] {
        assert!(spool.join(new).exists(), "{new} should be retained");
    }
    // …and the cancelled job untouched.
    assert!(spool.join(&held).exists(), "cancelled job must survive GC");
    assert!(counter("pom_serve_spool_gc_removed_total", &[]) >= gc_before + 2);
    server.stop(StopMode::Drain);

    // Restart: ids keep moving forward even though GC removed the newest
    // directories' predecessors (the `seq` file pins the high-water mark).
    let last_seq: u64 = done_ids.last().unwrap()[1..].parse().unwrap();
    let server = start_with(&spool, |c| c.retain_count = 2);
    let next = json_str_field(
        &request(
            server.addr(),
            "POST",
            "/jobs",
            Some(&spec("next", "[2.0]", 2.0)),
        )
        .body,
        "job",
    )
    .unwrap();
    let next_seq: u64 = next[1..].parse().unwrap();
    assert!(next_seq > last_seq, "job id reused after GC: {next}");
    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn age_based_gc_sweeps_expired_terminal_jobs_at_startup() {
    let spool = temp_spool("spool-gc-age");
    // Session 1: no GC; leave one done and one cancelled job behind.
    let server = start_with(&spool, |_| {});
    let addr = server.addr();
    let done = json_str_field(
        &request(addr, "POST", "/jobs", Some(&spec("old", "[2.0]", 2.0))).body,
        "job",
    )
    .unwrap();
    assert!(wait_state(addr, &done, "done", Duration::from_secs(120)));
    let cancelled = json_str_field(
        &request(addr, "POST", "/jobs", Some(&slow_spec("expired"))).body,
        "job",
    )
    .unwrap();
    request(addr, "POST", &format!("/jobs/{cancelled}/cancel"), None);
    server.stop(StopMode::Drain);

    // Session 2: everything terminal is now older than the (tiny) age
    // bound — the startup sweep removes done AND expired-cancelled jobs.
    std::thread::sleep(Duration::from_millis(100));
    let server = start_with(&spool, |c| c.retain_age = Some(Duration::from_millis(50)));
    assert!(!spool.join(&done).exists(), "done job past retain-age kept");
    assert!(
        !spool.join(&cancelled).exists(),
        "cancelled job past retain-age kept"
    );
    assert!(server.manager().status(&done).is_none());
    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn torn_final_row_is_truncated_but_mid_file_corruption_refuses() {
    let spool = temp_spool("corruption");
    let body = spec("torn", "[2.0, 4.0, 6.0]", 4.0);
    let reference = Campaign::from_str(&body)
        .unwrap()
        .run_jsonl_string(0)
        .unwrap();
    let lines: Vec<&str> = reference.lines().collect(); // header + 3 rows

    // Job A: crash tore the final row mid-write — recovery truncates it
    // and re-runs only the missing points.
    let dir_a = spool.join("j1");
    fs::create_dir_all(&dir_a).unwrap();
    fs::write(dir_a.join("spec"), &body).unwrap();
    let torn = format!(
        "{}\n{}\n{}",
        lines[0],
        lines[1],
        &lines[2][..lines[2].len() / 2]
    );
    fs::write(dir_a.join("results.jsonl"), torn).unwrap();

    // Job B: a row in the MIDDLE is mangled but the file continues — that
    // cannot be torn-write damage, so recovery must refuse, naming the
    // corrupt byte offset, rather than silently truncate good rows.
    let dir_b = spool.join("j2");
    fs::create_dir_all(&dir_b).unwrap();
    fs::write(dir_b.join("spec"), &body).unwrap();
    let corrupt_at = lines[0].len() + 1; // offset of the mangled row
    let corrupt = format!("{}\nGARBAGE-NOT-JSON\n{}\n", lines[0], lines[2]);
    fs::write(dir_b.join("results.jsonl"), corrupt).unwrap();

    let server = start_with(&spool, |_| {});
    assert!(
        server.manager().wait_done("j1", Duration::from_secs(120)),
        "torn job did not resume"
    );
    let fixed = fs::read_to_string(dir_a.join("results.jsonl")).unwrap();
    assert_eq!(fixed, reference, "torn-row recovery is not bitwise clean");

    let status_b = server.manager().status("j2").unwrap();
    assert_eq!(status_b.state, JobState::Failed);
    let reason = status_b.reason.unwrap();
    assert!(
        reason.contains(&format!("byte offset {corrupt_at}")),
        "reason must name the corrupt offset: {reason}"
    );
    assert!(
        reason.contains("cannot be torn-write truncation"),
        "{reason}"
    );
    // Failed jobs refuse resume with the same explanation.
    let resume = request(server.addr(), "POST", "/jobs/j2/resume", None);
    assert_eq!(resume.status, 409, "{}", resume.body);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}
