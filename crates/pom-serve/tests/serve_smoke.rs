//! End-to-end daemon tests over real sockets: submit, poll, stream,
//! cancel, resume, backpressure, and request validation — the same
//! sequence the CI `serve-smoke` job runs.

mod common;

use std::fs;
use std::time::Duration;

use common::{json_num_field, json_str_field, request, submit, temp_spool, wait_state};
use pom_serve::{ServeConfig, Server, StopMode};
use pom_sweep::Campaign;

/// A small campaign: `points` couplings × one run each.
fn spec(name: &str, values: &str, t_end: f64) -> String {
    format!(
        r#"
[campaign]
name = "{name}"
seed = 11
observables = ["final_r", "final_spread"]
[model]
n = 6
potential = "tanh"
[sim]
t_end = {t_end}
samples = 12
[[axes]]
key = "model.coupling"
values = {values}
"#
    )
}

fn start(spool: &std::path::Path, threads: usize, max_jobs: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        spool: spool.into(),
        threads,
        max_jobs,
        ..ServeConfig::default()
    })
    .expect("server start")
}

#[test]
fn submit_poll_stream_roundtrip() {
    let spool = temp_spool("roundtrip");
    let server = start(&spool, 2, 16);
    let addr = server.addr();

    let health = request(addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\":true"));

    let body = spec("roundtrip", "[2.0, 4.0, 6.0, 8.0]", 5.0);
    let created = submit(addr, &body);
    assert_eq!(created.status, 201, "{}", created.body);
    let id = json_str_field(&created.body, "job").expect("job id");
    assert_eq!(id, "j1");
    assert_eq!(json_num_field(&created.body, "points"), Some(4));

    assert!(wait_state(addr, &id, "done", Duration::from_secs(120)));
    let listed = request(addr, "GET", "/jobs", None);
    assert_eq!(listed.status, 200);
    assert!(listed.body.starts_with('['), "{}", listed.body);
    assert!(listed.body.contains("\"job\":\"j1\""));

    // The streamed rows are bitwise identical to a direct CLI-style run
    // of the same spec.
    let rows = request(addr, "GET", &format!("/jobs/{id}/rows"), None);
    assert_eq!(rows.status, 200);
    let reference = Campaign::from_str(&body)
        .unwrap()
        .run_jsonl_string(1)
        .unwrap();
    assert_eq!(rows.body, reference);

    let summary = server.stop(StopMode::Drain);
    assert_eq!(summary.done, 1);
    assert_eq!(summary.rows_written, 4);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn concurrent_campaigns_cancel_one_stream_other_resume() {
    let spool = temp_spool("fair");
    let server = start(&spool, 2, 16);
    let addr = server.addr();

    // A is 4× the size of B; round-robin point scheduling means B cannot
    // be starved behind it.
    // ~10 ms per point (debug build): long enough that the cancel below
    // reliably lands mid-campaign.
    let spec_a = spec(
        "big",
        "[1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 8.0, 8.5]",
        1500.0,
    );
    let spec_b = spec("small", "[2.0, 4.0, 6.0, 8.0]", 1500.0);
    let a = json_str_field(&submit(addr, &spec_a).body, "job").unwrap();
    let b = json_str_field(&submit(addr, &spec_b).body, "job").unwrap();

    // Cancel the big one mid-campaign.
    let cancelled = request(addr, "POST", &format!("/jobs/{a}/cancel"), None);
    assert_eq!(cancelled.status, 200);
    assert_eq!(
        json_str_field(&cancelled.body, "state").as_deref(),
        Some("cancelled")
    );

    // The small one runs to completion; its stream is the full campaign.
    assert!(wait_state(addr, &b, "done", Duration::from_secs(120)));
    let rows_b = request(addr, "GET", &format!("/jobs/{b}/rows"), None);
    let reference_b = Campaign::from_str(&spec_b)
        .unwrap()
        .run_jsonl_string(1)
        .unwrap();
    assert_eq!(rows_b.body, reference_b);

    // The cancelled one kept a valid partial file and resumes to the
    // bitwise-identical full result.
    let status_a = request(addr, "GET", &format!("/jobs/{a}"), None);
    let written = json_num_field(&status_a.body, "written").unwrap();
    assert!(written < 16, "cancel landed after completion: {written}");
    let resumed = request(addr, "POST", &format!("/jobs/{a}/resume"), None);
    assert_eq!(resumed.status, 200, "{}", resumed.body);
    assert!(wait_state(addr, &a, "done", Duration::from_secs(240)));
    let rows_a = request(addr, "GET", &format!("/jobs/{a}/rows"), None);
    let reference_a = Campaign::from_str(&spec_a)
        .unwrap()
        .run_jsonl_string(1)
        .unwrap();
    assert_eq!(rows_a.body, reference_a);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn submission_backpressure_answers_429() {
    let spool = temp_spool("backpressure");
    let server = start(&spool, 1, 1);
    let addr = server.addr();

    // ~10 ms per point: the occupant must still be running when the
    // second submission arrives.
    let slow = spec(
        "occupant",
        "[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]",
        1500.0,
    );
    let first = submit(addr, &slow);
    assert_eq!(first.status, 201, "{}", first.body);
    let id = json_str_field(&first.body, "job").unwrap();

    let second = submit(addr, &spec("rejected", "[2.0]", 5.0));
    assert_eq!(second.status, 429, "{}", second.body);
    assert!(second.body.contains("max-jobs=1"), "{}", second.body);

    // Cancelling the occupant frees the slot.
    request(addr, "POST", &format!("/jobs/{id}/cancel"), None);
    let third = submit(addr, &spec("accepted", "[2.0]", 5.0));
    assert_eq!(third.status, 201, "{}", third.body);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn invalid_requests_are_rejected_like_the_cli() {
    let spool = temp_spool("badreq");
    let server = start(&spool, 1, 16);
    let addr = server.addr();

    // Spec validation is the CLI's parser verbatim.
    let bad = submit(addr, "[campaign\nname=");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("invalid campaign spec"), "{}", bad.body);

    assert_eq!(request(addr, "GET", "/jobs/j999", None).status, 404);
    assert_eq!(request(addr, "GET", "/nope", None).status, 404);
    assert_eq!(request(addr, "DELETE", "/jobs", None).status, 405);

    // Query strings go through the shared typed-argument layer: the same
    // boolean grammar (and the same rejections) as CLI `key=value`s.
    let body = spec("q", "[2.0]", 2.0);
    let id = json_str_field(&submit(addr, &body).body, "job").unwrap();
    let bad_follow = request(addr, "GET", &format!("/jobs/{id}/rows?follow=maybe"), None);
    assert_eq!(bad_follow.status, 400);
    assert!(bad_follow.body.contains("boolean"), "{}", bad_follow.body);
    let unknown = request(addr, "GET", &format!("/jobs/{id}/rows?fllow=1"), None);
    assert_eq!(unknown.status, 400);
    assert!(unknown.body.contains("fllow"), "{}", unknown.body);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn follow_stream_tails_until_done() {
    let spool = temp_spool("follow");
    let server = start(&spool, 2, 16);
    let addr = server.addr();

    let body = spec("tailed", "[2.0, 4.0, 6.0]", 8.0);
    let id = json_str_field(&submit(addr, &body).body, "job").unwrap();

    // follow=1 blocks until the job quiesces and must deliver every row
    // without polling the status endpoint at all.
    let rows = request(addr, "GET", &format!("/jobs/{id}/rows?follow=1"), None);
    assert_eq!(rows.status, 200);
    let reference = Campaign::from_str(&body)
        .unwrap()
        .run_jsonl_string(1)
        .unwrap();
    assert_eq!(rows.body, reference);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn metrics_exposition_stats_and_elapsed_header() {
    let spool = temp_spool("metrics");
    let server = start(&spool, 2, 16);
    let addr = server.addr();

    let body = spec("metered", "[2.0, 4.0, 6.0]", 5.0);
    let created = submit(addr, &body);
    assert_eq!(created.status, 201, "{}", created.body);
    let id = json_str_field(&created.body, "job").unwrap();
    assert!(wait_state(addr, &id, "done", Duration::from_secs(120)));

    // Every route answers with the server-side handling time.
    let health = request(addr, "GET", "/healthz", None);
    let elapsed: u64 = health
        .header("X-Pom-Elapsed-Us")
        .expect("elapsed header on plain responses")
        .parse()
        .expect("integer µs");
    assert!(elapsed < 60_000_000, "implausible elapsed {elapsed}");
    let rows = request(addr, "GET", &format!("/jobs/{id}/rows"), None);
    assert!(
        rows.header("X-Pom-Elapsed-Us").is_some(),
        "elapsed header on chunked streams"
    );

    // /metrics: Prometheus text covering every instrumented layer that
    // ran — serve routes, job lifecycle, sweep executor, solver counters.
    let metrics = request(addr, "GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    for family in [
        "pom_serve_requests_total",
        "pom_serve_request_duration_us",
        "pom_serve_jobs_submitted_total",
        "pom_serve_jobs_completed_total",
        "pom_serve_rows_written_total",
        "pom_sweep_points_total",
        "pom_sweep_point_duration_us",
        "pom_ode_steps_total",
        "pom_ode_rhs_evals_total",
        "pom_core_simulations_total",
    ] {
        assert!(
            metrics.body.contains(&format!("# TYPE {family} ")),
            "family {family} missing from:\n{}",
            metrics.body
        );
    }
    // Route series use patterns, never raw ids.
    assert!(
        metrics.body.contains("route=\"/jobs/{id}\""),
        "{}",
        metrics.body
    );
    assert!(!metrics.body.contains(&format!("/jobs/{id}\"")));
    // Spot-check shape: every sample line is `name{labels} value`.
    for line in metrics.body.lines().filter(|l| !l.starts_with('#')) {
        let (name_labels, value) = line.rsplit_once(' ').expect("sample line");
        assert!(value.parse::<i64>().is_ok(), "non-integer value: {line}");
        let name = name_labels.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
    }

    // /jobs/{id}/stats: the per-job latency summary counts exactly this
    // job's executed points.
    let stats = request(addr, "GET", &format!("/jobs/{id}/stats"), None);
    assert_eq!(stats.status, 200, "{}", stats.body);
    assert_eq!(
        json_str_field(&stats.body, "state").as_deref(),
        Some("done")
    );
    assert_eq!(
        json_num_field(&stats.body, "count"),
        Some(3),
        "{}",
        stats.body
    );
    assert!(stats.body.contains("\"p50_us\":"), "{}", stats.body);
    assert!(stats.body.contains("\"p99_us\":"), "{}", stats.body);
    assert_eq!(request(addr, "GET", "/jobs/j999/stats", None).status, 404);

    server.stop(StopMode::Drain);
    let _ = fs::remove_dir_all(&spool);
}

#[test]
fn shutdown_route_requests_graceful_stop() {
    let spool = temp_spool("shutdown");
    let server = start(&spool, 1, 16);
    let addr = server.addr();

    let id = json_str_field(&submit(addr, &spec("drained", "[4.0]", 4.0)).body, "job").unwrap();
    let resp = request(addr, "POST", "/shutdown", None);
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("stopping"));

    // join() drains: the submitted point must be durable afterwards.
    let summary = server.join();
    assert_eq!(summary.jobs, 1);
    let file = fs::read_to_string(spool.join(&id).join("results.jsonl")).unwrap();
    assert!(file.lines().count() >= 1, "{file}");
    let _ = fs::remove_dir_all(&spool);
}
