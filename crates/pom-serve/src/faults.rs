//! Deterministic fault injection for the spool IO path.
//!
//! A [`FaultPlan`] is a pure function from a global IO-operation counter
//! to an optional [`FaultClass`]: the schedule is derived from a seed
//! with a splitmix64 finalizer, so a chaos run is reproducible from its
//! plan alone — no RNG state, no wall clock. The [`Faults`] handle is an
//! `Option<Arc<_>>`: production daemons run with [`Faults::disabled`],
//! where every injection point is a single `is_none` branch
//! (zero-cost-when-disabled), while chaos tests share one armed handle
//! across daemon restarts so the op counter — and therefore the schedule
//! — advances across sessions instead of replaying the same fault
//! forever.
//!
//! Fault classes split into two families:
//!
//! * **Crash-class** ([`FaultClass::TornWrite`], [`FaultClass::FsyncFail`],
//!   [`FaultClass::KillPoint`]) — the write fails *and* the kill flag is
//!   raised: the harness must stop the daemon with
//!   [`crate::StopMode::Abort`] and restart it, exactly like a power cut.
//!   A torn write persists a prefix of the row line first (the scanner's
//!   truncate-and-resume path); a failed fsync leaves durability unknown,
//!   which this codebase — like databases that learned the lesson the
//!   hard way — treats as fatal rather than retryable. Crash injections
//!   stop after [`FaultPlan::max_kills`], so every chaos run terminates.
//! * **Survivable** ([`FaultClass::ShortRead`], [`FaultClass::EagainStorm`])
//!   — injected on the recovery read path, where short reads are legal
//!   under the `Read` contract and `EAGAIN` bursts must be retried; the
//!   daemon absorbs them without any externally visible effect.
//!
//! Every injection increments the
//! `pom_serve_faults_injected_total{class=…}` counter, so `/metrics`
//! shows a chaos campaign actually exercised the plan.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A row write persists only a prefix of the line, then fails; the
    /// kill flag is raised (power-cut semantics).
    TornWrite,
    /// A read returns fewer bytes than asked — legal under `Read`, fatal
    /// to code that assumes full reads.
    ShortRead,
    /// A burst of would-block conditions before a read succeeds.
    EagainStorm,
    /// `flush` fails after the bytes were handed to the OS; treated as
    /// fatal (kill flag raised) because durability is unknown.
    FsyncFail,
    /// A clean kill at an IO boundary: nothing written, kill flag raised.
    KillPoint,
}

/// Every class, for harnesses that iterate per-class plans.
pub const FAULT_CLASSES: [FaultClass; 5] = [
    FaultClass::TornWrite,
    FaultClass::ShortRead,
    FaultClass::EagainStorm,
    FaultClass::FsyncFail,
    FaultClass::KillPoint,
];

impl FaultClass {
    /// Metric-label name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::TornWrite => "torn_write",
            FaultClass::ShortRead => "short_read",
            FaultClass::EagainStorm => "eagain_storm",
            FaultClass::FsyncFail => "fsync_fail",
            FaultClass::KillPoint => "kill_point",
        }
    }

    /// True when the injection demands a daemon kill + restart.
    pub fn is_crash(self) -> bool {
        matches!(
            self,
            FaultClass::TornWrite | FaultClass::FsyncFail | FaultClass::KillPoint
        )
    }
}

/// splitmix64 finalizer: a cheap, well-mixed hash for schedule derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic, seed-derived fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Schedule seed; same seed → same schedule.
    pub seed: u64,
    /// Roughly one injection per `period` IO operations (≥ 1).
    pub period: u64,
    /// Crash-class injections stop after this many kills, so a harness
    /// that restarts the daemon after each kill always terminates.
    pub max_kills: u64,
    /// Restrict the schedule to a single class (`None` = all five).
    pub only: Option<FaultClass>,
}

impl FaultPlan {
    /// A mixed-class plan with defaults tuned for small chaos campaigns.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            period: 4,
            max_kills: 3,
            only: None,
        }
    }

    /// A plan injecting only one fault class.
    pub fn only(class: FaultClass, seed: u64) -> Self {
        Self {
            only: Some(class),
            ..Self::from_seed(seed)
        }
    }

    /// The fault scheduled for global IO op `op`, if any. Pure function
    /// of `(plan, op)` — this is what makes a chaos run replayable.
    pub fn at(&self, op: u64) -> Option<FaultClass> {
        let r = mix(self.seed ^ mix(op));
        if !r.is_multiple_of(self.period.max(1)) {
            return None;
        }
        Some(match self.only {
            Some(class) => class,
            None => FAULT_CLASSES[((r / 7) % FAULT_CLASSES.len() as u64) as usize],
        })
    }
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// Global IO-op counter, shared across daemon restarts.
    ops: AtomicU64,
    kills_done: AtomicU64,
    kill_flag: AtomicBool,
}

/// Shared fault-injection handle. Clones share one schedule state, so a
/// harness can keep the handle across daemon restarts. The disabled
/// handle ([`Faults::disabled`], also `Default`) injects nothing and
/// costs one branch per IO call.
#[derive(Debug, Clone, Default)]
pub struct Faults {
    state: Option<Arc<FaultState>>,
}

impl Faults {
    /// No injection — the production configuration.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Arm a plan.
    pub fn plan(plan: FaultPlan) -> Self {
        Self {
            state: Some(Arc::new(FaultState {
                plan,
                ops: AtomicU64::new(0),
                kills_done: AtomicU64::new(0),
                kill_flag: AtomicBool::new(false),
            })),
        }
    }

    /// True when a plan is armed.
    pub fn enabled(&self) -> bool {
        self.state.is_some()
    }

    /// True once a crash-class fault fired: the harness must stop the
    /// daemon with `StopMode::Abort` and restart it over the same spool.
    pub fn kill_requested(&self) -> bool {
        self.state
            .as_ref()
            .is_some_and(|s| s.kill_flag.load(Ordering::SeqCst))
    }

    /// Re-arm after the harness restarted the daemon.
    pub fn clear_kill(&self) {
        if let Some(s) = &self.state {
            s.kill_flag.store(false, Ordering::SeqCst);
        }
    }

    /// Crash-class faults injected so far (bounded by the plan's
    /// `max_kills`).
    pub fn injected_kills(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.kills_done.load(Ordering::SeqCst))
    }

    /// Consume one IO op from the schedule; returns the fault to apply,
    /// already filtered for the path (`write_path` decides which classes
    /// are meaningful) and for the kill budget.
    fn next(&self, write_path: bool) -> Option<FaultClass> {
        let st = self.state.as_ref()?;
        let op = st.ops.fetch_add(1, Ordering::Relaxed);
        let class = st.plan.at(op)?;
        let applicable = match class {
            FaultClass::TornWrite | FaultClass::FsyncFail | FaultClass::KillPoint => write_path,
            FaultClass::ShortRead | FaultClass::EagainStorm => !write_path,
        };
        if !applicable {
            return None;
        }
        if class.is_crash() {
            if st.kills_done.load(Ordering::SeqCst) >= st.plan.max_kills {
                return None; // budget spent: let the campaign finish
            }
            st.kills_done.fetch_add(1, Ordering::SeqCst);
            st.kill_flag.store(true, Ordering::SeqCst);
        }
        if pom_obs::enabled() {
            pom_obs::registry()
                .counter_with(
                    "pom_serve_faults_injected_total",
                    "Faults injected into the spool IO path, by class.",
                    &[("class", class.as_str())],
                )
                .inc();
        }
        Some(class)
    }

    /// Wrap a results-file handle so the plan can tear its writes.
    pub fn wrap(&self, file: fs::File) -> SpoolFile {
        SpoolFile {
            file,
            faults: self.clone(),
        }
    }

    /// Read a whole file through the fault layer. Injected short reads
    /// are absorbed by the loop (they are legal), and would-block storms
    /// are retried with a bound — exactly the tolerance the recovery
    /// path promises.
    pub fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let mut f = fs::File::open(path)?;
        if self.state.is_none() {
            let mut s = String::new();
            f.read_to_string(&mut s)?;
            return Ok(s);
        }
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut storm = 0u32;
        loop {
            let want = match self.next(false) {
                Some(FaultClass::ShortRead) => 1,
                Some(FaultClass::EagainStorm) if storm < 32 => {
                    storm += 1; // transient would-block: retry the op
                    continue;
                }
                _ => chunk.len(),
            };
            storm = 0;
            let n = f.read(&mut chunk[..want])?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&chunk[..n]);
        }
        String::from_utf8(out)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// A results-file handle routed through the fault layer. With faults
/// disabled this is a transparent passthrough to the inner [`fs::File`].
#[derive(Debug)]
pub struct SpoolFile {
    file: fs::File,
    faults: Faults,
}

impl Write for SpoolFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.faults.next(true) {
            Some(FaultClass::TornWrite) => {
                // Persist a prefix — the on-disk state a power cut leaves
                // behind mid-write — then fail the call.
                if buf.len() > 1 {
                    self.file.write_all(&buf[..buf.len() / 2])?;
                    let _ = self.file.flush();
                }
                Err(injected("torn write"))
            }
            Some(FaultClass::KillPoint) => Err(injected("kill point")),
            _ => self.file.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.faults.next(true) {
            Some(FaultClass::FsyncFail) => Err(injected("fsync failure")),
            _ => self.file.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::from_seed(7);
        let b = FaultPlan::from_seed(7);
        let c = FaultPlan::from_seed(8);
        let fire_a: Vec<_> = (0..256).map(|op| a.at(op)).collect();
        let fire_b: Vec<_> = (0..256).map(|op| b.at(op)).collect();
        let fire_c: Vec<_> = (0..256).map(|op| c.at(op)).collect();
        assert_eq!(fire_a, fire_b, "same seed must replay the same schedule");
        assert_ne!(fire_a, fire_c, "different seeds must diverge");
        // Roughly one op in `period` fires.
        let n = fire_a.iter().flatten().count();
        assert!((32..=96).contains(&n), "{n} injections in 256 ops");
    }

    #[test]
    fn mixed_plans_reach_every_class() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..16u64 {
            let plan = FaultPlan::from_seed(seed);
            for op in 0..512 {
                if let Some(c) = plan.at(op) {
                    seen.insert(c.as_str());
                }
            }
        }
        assert_eq!(seen.len(), FAULT_CLASSES.len(), "{seen:?}");
    }

    #[test]
    fn crash_faults_respect_the_kill_budget() {
        let faults = Faults::plan(FaultPlan {
            seed: 3,
            period: 1, // every op faults
            max_kills: 2,
            only: Some(FaultClass::KillPoint),
        });
        let path = std::env::temp_dir().join(format!("pom-faults-{}", std::process::id()));
        let mut f = faults.wrap(fs::File::create(&path).unwrap());
        let mut failures = 0;
        for _ in 0..8 {
            if f.write(b"row\n").is_err() {
                failures += 1;
                assert!(faults.kill_requested());
                faults.clear_kill();
            }
        }
        assert_eq!(failures, 2, "kill budget must cap crash injections");
        assert_eq!(faults.injected_kills(), 2);
        assert!(!faults.kill_requested());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn faulted_reads_still_return_exact_bytes() {
        let path = std::env::temp_dir().join(format!("pom-faults-read-{}", std::process::id()));
        let body: String = (0..200).map(|i| format!("line {i}\n")).collect();
        fs::write(&path, &body).unwrap();
        let faults = Faults::plan(FaultPlan {
            seed: 11,
            period: 2,
            max_kills: 0,
            only: None,
        });
        // Short reads and EAGAIN storms must be absorbed losslessly.
        assert_eq!(faults.read_to_string(&path).unwrap(), body);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn disabled_handle_is_transparent() {
        let faults = Faults::disabled();
        assert!(!faults.enabled());
        assert!(!faults.kill_requested());
        let path = std::env::temp_dir().join(format!("pom-faults-off-{}", std::process::id()));
        let mut f = faults.wrap(fs::File::create(&path).unwrap());
        f.write_all(b"hello\n").unwrap();
        f.flush().unwrap();
        assert_eq!(faults.read_to_string(&path).unwrap(), "hello\n");
        let _ = fs::remove_file(&path);
    }
}
