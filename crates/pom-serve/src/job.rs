//! The multi-tenant job manager.
//!
//! One [`JobManager`] owns every campaign the daemon knows about and the
//! scheduling state shared by the worker pool:
//!
//! * **Submission** parses the spec (the same TOML/JSON bodies the CLI
//!   accepts, byte-for-byte), persists it to the spool, writes the JSONL
//!   header, and enqueues the job's grid points. A bounded number of
//!   *active* jobs gives explicit backpressure: submits beyond
//!   [`JobManager::max_jobs`] are rejected (the API answers HTTP 429)
//!   instead of queueing unboundedly.
//! * **Fair scheduling**: active jobs sit in a round-robin ring; each
//!   worker pull takes the ring's front job, claims its next pending
//!   point, and rotates the job to the back. Concurrent campaigns
//!   therefore interleave at *point* granularity — a huge sweep cannot
//!   starve a small one — while each job's points are still claimed in
//!   ascending index order, which keeps the in-order JSONL emission
//!   window tight.
//! * **Determinism**: a row depends only on `(spec, point index)` — the
//!   per-point seed derives from the index — and rows are written strictly
//!   in ascending pending order through a per-job reorder buffer. However
//!   jobs interleave, whatever the worker count, and across any number of
//!   cancel/crash/resume cycles, a job's `results.jsonl` is bitwise
//!   identical to a single uninterrupted `pom sweep` run.
//! * **Crash safety**: every row is flushed as one write before the
//!   reorder window advances, so the file is always a valid prefix in
//!   emission order. [`JobManager::open`] re-scans the spool and
//!   auto-resumes incomplete jobs via the standard
//!   [`pom_sweep::scan_completed`] machinery.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pom_core::SimWorkspace;
use pom_obs::Level;
use pom_sweep::sink::header_json;
use pom_sweep::value::write_json_str;
use pom_sweep::{run_point_ws, scan_completed, CampaignSpec, PointRow};

use crate::metrics::metrics;
use crate::spool;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Points pending or in flight; the scheduler may dispatch from it.
    Running,
    /// Every grid point has a durable row.
    Done,
    /// Cancelled by a client; keeps its partial results and may resume.
    Cancelled,
    /// Unrecoverable (result-file hash mismatch, sink I/O failure, …).
    Failed,
}

impl JobState {
    /// Lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// A point-granular progress snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id (`j1`, `j2`, …).
    pub id: String,
    /// Campaign name from the spec.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Spec content hash (resume identity), 16 hex digits.
    pub spec_hash: String,
    /// Grid size.
    pub total: usize,
    /// Rows durable in `results.jsonl` (including prior sessions).
    pub written: usize,
    /// Durable rows carrying a point error.
    pub errors: usize,
    /// Points currently executing on workers.
    pub in_flight: usize,
    /// Points not yet durable (includes in-flight ones).
    pub remaining: usize,
    /// Failure reason, for [`JobState::Failed`].
    pub reason: Option<String>,
}

impl JobStatus {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"job\":");
        write_json_str(&self.id, &mut out);
        out.push_str(",\"name\":");
        write_json_str(&self.name, &mut out);
        out.push_str(",\"state\":");
        write_json_str(self.state.as_str(), &mut out);
        out.push_str(",\"spec_hash\":");
        write_json_str(&self.spec_hash, &mut out);
        let _ = write_num(&mut out, "points", self.total);
        let _ = write_num(&mut out, "written", self.written);
        let _ = write_num(&mut out, "errors", self.errors);
        let _ = write_num(&mut out, "in_flight", self.in_flight);
        let _ = write_num(&mut out, "remaining", self.remaining);
        if let Some(r) = &self.reason {
            out.push_str(",\"reason\":");
            write_json_str(r, &mut out);
        }
        out.push('}');
        out
    }
}

fn write_num(out: &mut String, key: &str, v: usize) -> std::fmt::Result {
    use std::fmt::Write;
    out.push(',');
    write_json_str(key, out);
    write!(out, ":{v}")
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The active-job bound is reached — explicit backpressure (HTTP 429).
    QueueFull {
        /// Jobs currently active.
        active: usize,
        /// The configured bound.
        max: usize,
    },
    /// The spec failed to parse or validate (HTTP 400).
    Spec(String),
    /// Spool I/O failed (HTTP 500).
    Io(io::Error),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { active, max } => write!(
                f,
                "job queue full: {active} active jobs at the max-jobs={max} bound; retry later"
            ),
            SubmitError::Spec(m) => write!(f, "invalid campaign spec: {m}"),
            SubmitError::Io(e) => write!(f, "spool i/o: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a cancel/resume request was rejected.
#[derive(Debug)]
pub enum JobOpError {
    /// No such job (HTTP 404).
    NotFound,
    /// The operation does not apply in the job's current state (HTTP 409).
    Conflict(String),
    /// Spool I/O failed (HTTP 500).
    Io(io::Error),
}

impl std::fmt::Display for JobOpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobOpError::NotFound => write!(f, "no such job"),
            JobOpError::Conflict(m) => write!(f, "{m}"),
            JobOpError::Io(e) => write!(f, "spool i/o: {e}"),
        }
    }
}

impl std::error::Error for JobOpError {}

/// How the daemon is being stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopMode {
    /// Graceful: stop dispatching, finish in-flight points, flush rows.
    Drain,
    /// Simulated kill: discard in-flight results without writing them.
    /// Durable state is exactly what a `SIGKILL` would have left behind.
    Abort,
}

struct JobEntry {
    spec: Arc<CampaignSpec>,
    dir: PathBuf,
    /// Open append handle while the job is active.
    file: Option<fs::File>,
    state: JobState,
    reason: Option<String>,
    total: usize,
    /// Missing point indices at activation, ascending; the emission order.
    pending: Vec<usize>,
    /// Next index into `pending` to hand to a worker.
    next_dispatch: usize,
    /// Next index into `pending` to write (reorder window base).
    emit_at: usize,
    /// Completed rows waiting for their predecessors.
    buffer: BTreeMap<usize, PointRow>,
    in_flight: usize,
    /// Rows durable in the file (including rows found by the rescan).
    written: usize,
    errors: usize,
    /// Wall time of this job's executed points, for `GET
    /// /jobs/{id}/stats`. Standalone (not registered): per-job series
    /// would be unbounded-cardinality in the global registry.
    point_us: pom_obs::Histogram,
}

impl JobEntry {
    fn status(&self, id: &str) -> JobStatus {
        JobStatus {
            id: id.to_string(),
            name: self.spec.name.clone(),
            state: self.state,
            spec_hash: format!("{:016x}", self.spec.spec_hash),
            total: self.total,
            written: self.written,
            errors: self.errors,
            in_flight: self.in_flight,
            remaining: self.total - self.written,
            reason: self.reason.clone(),
        }
    }

    fn dispatchable(&self) -> bool {
        self.state == JobState::Running && self.next_dispatch < self.pending.len()
    }
}

struct ManagerState {
    jobs: BTreeMap<String, JobEntry>,
    /// Round-robin ring of jobs with dispatchable points.
    ring: VecDeque<String>,
    next_seq: u64,
    stop: Option<StopMode>,
}

/// The shared job table + scheduler. See the module docs.
pub struct JobManager {
    state: Mutex<ManagerState>,
    /// Signalled when dispatchable work appears or stop is requested.
    work: Condvar,
    /// Signalled on every durable row / state change (pollers, drains).
    progress: Condvar,
    spool: PathBuf,
    /// Active-job bound for submission backpressure.
    pub max_jobs: usize,
}

type Task = (String, Arc<CampaignSpec>, usize);

impl JobManager {
    /// Open (or create) a spool directory and recover its jobs: completed
    /// jobs register as done, cancelled ones as resumable, and incomplete
    /// ones re-enter the scheduler automatically with only their missing
    /// points pending.
    pub fn open(spool: impl AsRef<Path>, max_jobs: usize) -> io::Result<Arc<Self>> {
        let spool = spool.as_ref().to_path_buf();
        fs::create_dir_all(&spool)?;
        let mut st = ManagerState {
            jobs: BTreeMap::new(),
            ring: VecDeque::new(),
            next_seq: spool::next_seq(&spool)?,
            stop: None,
        };
        for id in spool::scan_job_ids(&spool)? {
            let dir = spool::job_dir(&spool, &id);
            match Self::recover_job(&dir) {
                Ok(entry) => {
                    if pom_obs::enabled() {
                        metrics().spool_recovered.inc();
                    }
                    if entry.dispatchable() {
                        st.ring.push_back(id.clone());
                    }
                    st.jobs.insert(id, entry);
                }
                Err(e) => {
                    // An unreadable/unparsable spool entry is skipped, not
                    // fatal: the daemon must come up with whatever state
                    // survived.
                    if pom_obs::enabled() {
                        metrics().spool_skipped.inc();
                    }
                    pom_obs::event(Level::Warn, "spool_skip", &[("job", &id), ("error", &e)]);
                }
            }
        }
        Ok(Arc::new(Self {
            state: Mutex::new(st),
            work: Condvar::new(),
            progress: Condvar::new(),
            spool,
            max_jobs: max_jobs.max(1),
        }))
    }

    /// Rebuild one job's in-memory entry from its spool directory.
    fn recover_job(dir: &Path) -> Result<JobEntry, String> {
        let spec_text = fs::read_to_string(dir.join(spool::SPEC_FILE))
            .map_err(|e| format!("read spec: {e}"))?;
        let spec =
            Arc::new(CampaignSpec::parse(&spec_text).map_err(|e| format!("parse spec: {e}"))?);
        let total = spec.total_points();
        let results = dir.join(spool::RESULTS_FILE);
        let cancelled = dir.join(spool::CANCELLED_MARKER).exists();

        let mut entry = JobEntry {
            spec: spec.clone(),
            dir: dir.to_path_buf(),
            file: None,
            state: JobState::Running,
            reason: None,
            total,
            pending: (0..total).collect(),
            next_dispatch: 0,
            emit_at: 0,
            buffer: BTreeMap::new(),
            in_flight: 0,
            written: 0,
            errors: 0,
            point_us: pom_obs::Histogram::new(),
        };

        if results.exists() {
            let existing = fs::read_to_string(&results).map_err(|e| e.to_string())?;
            match scan_completed(&existing, &spec) {
                Ok(done) => {
                    entry.pending = (0..total).filter(|i| !done.contains(i)).collect();
                    entry.written = done.len();
                    if entry.pending.is_empty() {
                        entry.state = JobState::Done;
                        return Ok(entry);
                    }
                    if cancelled {
                        entry.state = JobState::Cancelled;
                        return Ok(entry);
                    }
                    // Auto-resume: reopen the stream for appending. An
                    // interrupt can tear mid-line; appended rows must
                    // start on a fresh line (the torn fragment is already
                    // ignored by the scanner).
                    let mut file = fs::OpenOptions::new()
                        .append(true)
                        .open(&results)
                        .map_err(|e| e.to_string())?;
                    if !existing.is_empty() && !existing.ends_with('\n') {
                        file.write_all(b"\n").map_err(|e| e.to_string())?;
                    }
                    entry.file = Some(file);
                }
                Err(e) => {
                    // Hash mismatch or garbled header: keep the job
                    // visible but refuse to touch the foreign file.
                    entry.state = JobState::Failed;
                    entry.reason = Some(e);
                }
            }
        } else {
            // Crash between spec write and results creation: fresh start.
            if cancelled {
                entry.state = JobState::Cancelled;
                return Ok(entry);
            }
            entry.file = Some(Self::create_results(&results, &spec).map_err(|e| e.to_string())?);
        }
        Ok(entry)
    }

    fn create_results(path: &Path, spec: &CampaignSpec) -> io::Result<fs::File> {
        let mut file = fs::File::create(path)?;
        // Header first, durable immediately: a crash right after submit
        // leaves a valid (0 rows completed) resume target.
        file.write_all(format!("{}\n", header_json(spec)).as_bytes())?;
        file.flush()?;
        Ok(file)
    }

    /// Submit a campaign spec (TOML or JSON text, exactly the CLI's
    /// format). Persists the job and enqueues its points.
    pub fn submit(&self, spec_text: &str) -> Result<JobStatus, SubmitError> {
        let spec =
            Arc::new(CampaignSpec::parse(spec_text).map_err(|e| SubmitError::Spec(e.to_string()))?);

        let mut st = self.lock();
        let active = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count();
        if active >= self.max_jobs {
            if pom_obs::enabled() {
                metrics().jobs_rejected.inc();
            }
            pom_obs::event(
                Level::Warn,
                "job_rejected",
                &[
                    ("active", &active.to_string()),
                    ("max_jobs", &self.max_jobs.to_string()),
                ],
            );
            return Err(SubmitError::QueueFull {
                active,
                max: self.max_jobs,
            });
        }
        let id = spool::job_id(st.next_seq);
        st.next_seq += 1;

        let dir = spool::job_dir(&self.spool, &id);
        fs::create_dir_all(&dir).map_err(SubmitError::Io)?;
        fs::write(dir.join(spool::SPEC_FILE), spec_text).map_err(SubmitError::Io)?;
        let file =
            Self::create_results(&dir.join(spool::RESULTS_FILE), &spec).map_err(SubmitError::Io)?;

        let total = spec.total_points();
        let entry = JobEntry {
            spec,
            dir,
            file: Some(file),
            state: if total == 0 {
                JobState::Done
            } else {
                JobState::Running
            },
            reason: None,
            total,
            pending: (0..total).collect(),
            next_dispatch: 0,
            emit_at: 0,
            buffer: BTreeMap::new(),
            in_flight: 0,
            written: 0,
            errors: 0,
            point_us: pom_obs::Histogram::new(),
        };
        let status = entry.status(&id);
        if pom_obs::enabled() {
            metrics().jobs_submitted.inc();
        }
        pom_obs::event(
            Level::Info,
            "job_submit",
            &[
                ("job", &id),
                ("name", &status.name),
                ("points", &total.to_string()),
            ],
        );
        if entry.dispatchable() {
            st.ring.push_back(id.clone());
        }
        st.jobs.insert(id, entry);
        drop(st);
        self.work.notify_all();
        Ok(status)
    }

    /// Point-granular status of one job.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let st = self.lock();
        st.jobs.get(id).map(|e| e.status(id))
    }

    /// Per-job point-latency summary as a JSON object (`GET
    /// /jobs/{id}/stats`). Counts cover points executed *this session*
    /// with instrumentation on — rows recovered from the spool carry no
    /// timing. `None` for unknown jobs.
    pub fn job_stats(&self, id: &str) -> Option<String> {
        use std::fmt::Write as _;
        let st = self.lock();
        let e = st.jobs.get(id)?;
        let mut out = String::with_capacity(256);
        out.push_str("{\"job\":");
        write_json_str(id, &mut out);
        out.push_str(",\"state\":");
        write_json_str(e.state.as_str(), &mut out);
        let _ = write!(
            out,
            ",\"written\":{},\"point_latency\":{{{}}}}}",
            e.written,
            e.point_us.summary_json()
        );
        Some(out)
    }

    /// Status of every known job, ascending by id sequence.
    pub fn list(&self) -> Vec<JobStatus> {
        let st = self.lock();
        let mut out: Vec<JobStatus> = st.jobs.iter().map(|(id, e)| e.status(id)).collect();
        out.sort_by_key(|s| spool::parse_job_id(&s.id).unwrap_or(u64::MAX));
        out
    }

    /// Cancel a job: stop dispatching its points. In-flight points finish
    /// and their rows still land if contiguous; the partial file stays a
    /// valid resume target, marked by the `cancelled` spool file.
    pub fn cancel(&self, id: &str) -> Result<JobStatus, JobOpError> {
        let mut st = self.lock();
        let entry = st.jobs.get_mut(id).ok_or(JobOpError::NotFound)?;
        if entry.state == JobState::Running {
            entry.state = JobState::Cancelled;
            fs::write(entry.dir.join(spool::CANCELLED_MARKER), b"").map_err(JobOpError::Io)?;
            let status = entry.status(id);
            st.ring.retain(|r| r != id);
            drop(st);
            if pom_obs::enabled() {
                metrics().jobs_cancelled.inc();
            }
            pom_obs::event(
                Level::Info,
                "job_cancel",
                &[("job", id), ("written", &status.written.to_string())],
            );
            self.progress.notify_all();
            return Ok(status);
        }
        Ok(entry.status(id))
    }

    /// Resume a cancelled job: re-queue every point that is not durable.
    /// Rows computed but never written (past a reorder gap at cancel
    /// time) simply re-run — deterministically, so the final file is
    /// unaffected. No-op on running/done jobs.
    pub fn resume(&self, id: &str) -> Result<JobStatus, JobOpError> {
        let mut st = self.lock();
        let entry = st.jobs.get_mut(id).ok_or(JobOpError::NotFound)?;
        match entry.state {
            JobState::Running | JobState::Done => Ok(entry.status(id)),
            JobState::Failed => Err(JobOpError::Conflict(format!(
                "job {id} failed and cannot resume: {}",
                entry.reason.as_deref().unwrap_or("unknown")
            ))),
            JobState::Cancelled => {
                if entry.in_flight > 0 {
                    return Err(JobOpError::Conflict(format!(
                        "job {id} still has {} in-flight points from before the cancel; retry shortly",
                        entry.in_flight
                    )));
                }
                // Unwritten tail re-runs from scratch.
                entry.pending = entry.pending.split_off(entry.emit_at);
                entry.next_dispatch = 0;
                entry.emit_at = 0;
                entry.buffer.clear();
                if entry.file.is_none() {
                    let results = entry.dir.join(spool::RESULTS_FILE);
                    let existing = fs::read_to_string(&results).map_err(JobOpError::Io)?;
                    let mut file = fs::OpenOptions::new()
                        .append(true)
                        .open(&results)
                        .map_err(JobOpError::Io)?;
                    if !existing.is_empty() && !existing.ends_with('\n') {
                        file.write_all(b"\n").map_err(JobOpError::Io)?;
                    }
                    entry.file = Some(file);
                }
                let _ = fs::remove_file(entry.dir.join(spool::CANCELLED_MARKER));
                entry.state = if entry.pending.is_empty() {
                    JobState::Done
                } else {
                    JobState::Running
                };
                let status = entry.status(id);
                if entry.dispatchable() {
                    st.ring.push_back(id.to_string());
                }
                drop(st);
                if pom_obs::enabled() {
                    metrics().jobs_resumed.inc();
                }
                pom_obs::event(
                    Level::Info,
                    "job_resume",
                    &[("job", id), ("remaining", &status.remaining.to_string())],
                );
                self.work.notify_all();
                self.progress.notify_all();
                Ok(status)
            }
        }
    }

    /// Path of a job's JSONL result stream.
    pub fn results_path(&self, id: &str) -> Option<PathBuf> {
        let st = self.lock();
        st.jobs.get(id).map(|e| e.dir.join(spool::RESULTS_FILE))
    }

    /// True when no further bytes can appear in the job's result stream
    /// (terminal state and no in-flight points). Follow-mode streams use
    /// this as their stop condition. `None` if the job is unknown.
    pub fn quiescent(&self, id: &str) -> Option<bool> {
        let st = self.lock();
        st.jobs
            .get(id)
            .map(|e| e.state != JobState::Running && e.in_flight == 0)
    }

    /// Block until `id` reaches a terminal quiescent state (true) or the
    /// timeout expires (false). Unknown jobs return false.
    pub fn wait_done(&self, id: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            match st.jobs.get(id) {
                None => return false,
                Some(e) if e.state != JobState::Running && e.in_flight == 0 => return true,
                Some(_) => {}
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, timed_out) = self.progress.wait_timeout(st, left).unwrap();
            st = guard;
            if timed_out.timed_out() {
                // Re-check once after the timeout before giving up.
                return st
                    .jobs
                    .get(id)
                    .is_some_and(|e| e.state != JobState::Running && e.in_flight == 0);
            }
        }
    }

    /// Block until any job makes progress (a row lands or a state
    /// changes) or the timeout expires. Row streams in follow mode park
    /// here instead of sleeping, so new rows are pushed with condvar
    /// latency rather than a poll interval.
    pub fn wait_progress(&self, timeout: Duration) {
        let st = self.lock();
        let _ = self.progress.wait_timeout(st, timeout);
    }

    /// Request daemon stop. [`StopMode::Drain`] lets in-flight points
    /// finish and flush; [`StopMode::Abort`] discards them un-written
    /// (crash semantics, used by the restart-resume tests).
    pub fn request_stop(&self, mode: StopMode) {
        let mut st = self.lock();
        st.stop = Some(mode);
        drop(st);
        self.work.notify_all();
        self.progress.notify_all();
    }

    /// Aggregate counts for the shutdown report: `(jobs, done, running,
    /// cancelled, failed, rows_written)`.
    pub fn totals(&self) -> (usize, usize, usize, usize, usize, usize) {
        let st = self.lock();
        let mut done = 0;
        let mut running = 0;
        let mut cancelled = 0;
        let mut failed = 0;
        let mut rows = 0;
        for e in st.jobs.values() {
            match e.state {
                JobState::Done => done += 1,
                JobState::Running => running += 1,
                JobState::Cancelled => cancelled += 1,
                JobState::Failed => failed += 1,
            }
            rows += e.written;
        }
        (st.jobs.len(), done, running, cancelled, failed, rows)
    }

    fn lock(&self) -> MutexGuard<'_, ManagerState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Claim the next point, fair round-robin across active jobs.
    fn next_task(st: &mut ManagerState) -> Option<Task> {
        while let Some(id) = st.ring.pop_front() {
            let Some(entry) = st.jobs.get_mut(&id) else {
                continue;
            };
            if !entry.dispatchable() {
                continue;
            }
            let index = entry.pending[entry.next_dispatch];
            entry.next_dispatch += 1;
            entry.in_flight += 1;
            let spec = entry.spec.clone();
            if entry.dispatchable() {
                st.ring.push_back(id.clone());
            }
            return Some((id, spec, index));
        }
        None
    }

    /// Deliver a completed row: reorder, write contiguous rows, flip the
    /// job to done when the last row lands. `elapsed_us` is the point's
    /// execution wall time (absent when instrumentation is off).
    fn deliver(&self, st: &mut ManagerState, id: &str, row: PointRow, elapsed_us: Option<u64>) {
        let Some(entry) = st.jobs.get_mut(id) else {
            return;
        };
        entry.in_flight = entry.in_flight.saturating_sub(1);
        if let Some(us) = elapsed_us {
            entry.point_us.observe(us);
        }
        let was_done = entry.state == JobState::Done;
        let written_before = entry.written;
        // Stale-delivery guard (e.g. a point re-dispatched after a
        // cancel+resume while the original was still in flight): only
        // rows for not-yet-durable pending positions enter the buffer.
        if let Ok(pos) = entry.pending.binary_search(&row.index) {
            if pos >= entry.emit_at {
                entry.buffer.insert(row.index, row);
            }
        }
        while entry.emit_at < entry.pending.len() {
            let want = entry.pending[entry.emit_at];
            let Some(ready) = entry.buffer.remove(&want) else {
                break;
            };
            let is_err = ready.error.is_some();
            let line = format!("{}\n", ready.to_json());
            let Some(file) = entry.file.as_mut() else {
                break;
            };
            // One write + flush per row: the file is always a whole-line
            // prefix, which is what makes it a crash checkpoint.
            if let Err(e) = file.write_all(line.as_bytes()).and_then(|()| file.flush()) {
                let msg = format!("writing row {want}: {e}");
                entry.state = JobState::Failed;
                entry.reason = Some(msg.clone());
                entry.file = None;
                if pom_obs::enabled() {
                    metrics().jobs_failed.inc();
                }
                pom_obs::event(Level::Error, "job_failed", &[("job", id), ("error", &msg)]);
                break;
            }
            entry.emit_at += 1;
            entry.written += 1;
            if is_err {
                entry.errors += 1;
            }
        }
        if entry.emit_at == entry.pending.len() && entry.state != JobState::Failed {
            entry.file = None; // close the handle
            if entry.state == JobState::Cancelled {
                // An in-flight tail completed the job after cancel.
                let _ = fs::remove_file(entry.dir.join(spool::CANCELLED_MARKER));
            }
            entry.state = JobState::Done;
            if !was_done {
                if pom_obs::enabled() {
                    metrics().jobs_completed.inc();
                }
                pom_obs::event(
                    Level::Info,
                    "job_done",
                    &[
                        ("job", id),
                        ("written", &entry.written.to_string()),
                        ("errors", &entry.errors.to_string()),
                    ],
                );
            }
        }
        if pom_obs::enabled() {
            metrics()
                .rows_written
                .add((entry.written - written_before) as u64);
        }
    }

    /// The worker-thread body: claim points fairly, execute them with a
    /// reused integrator workspace, deliver rows. Returns when stop is
    /// requested (drain: after finishing the current point; abort: the
    /// current point's row is discarded, like a kill).
    pub fn worker_loop(&self) {
        let mut ws = SimWorkspace::new();
        loop {
            let task: Option<Task> = {
                let mut st = self.lock();
                loop {
                    if st.stop.is_some() {
                        break None;
                    }
                    if let Some(t) = Self::next_task(&mut st) {
                        break Some(t);
                    }
                    st = self.work.wait(st).unwrap_or_else(|p| p.into_inner());
                }
            };
            let Some((id, spec, index)) = task else {
                return;
            };

            // One clock pair per point, only when instrumentation is on.
            let t0 = pom_obs::enabled().then(Instant::now);
            let row = run_point_ws(&spec, index, &mut ws);
            let elapsed_us = t0.map(|t| t.elapsed().as_micros() as u64);
            if let Some(us) = elapsed_us {
                // Global sweep families too — the daemon bypasses
                // run_campaign, so it must report its own points.
                pom_sweep::record_external_point(us, row.error.is_some());
            }

            let mut st = self.lock();
            if st.stop == Some(StopMode::Abort) {
                // Crash semantics: the computed row never becomes durable.
                return;
            }
            self.deliver(&mut st, &id, row, elapsed_us);
            drop(st);
            self.progress.notify_all();
        }
    }
}
