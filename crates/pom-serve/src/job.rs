//! The multi-tenant job manager.
//!
//! One [`JobManager`] owns every campaign the daemon knows about and the
//! scheduling state shared by the worker pool:
//!
//! * **Submission** parses the spec (the same TOML/JSON bodies the CLI
//!   accepts, byte-for-byte), persists it to the spool, writes the JSONL
//!   header, and enqueues the job's grid points. A bounded number of
//!   *active* jobs gives explicit backpressure: submits beyond
//!   [`JobManager::max_jobs`] are rejected (the API answers HTTP 429)
//!   instead of queueing unboundedly. With an auth book configured,
//!   per-token quotas (active jobs, total points) are enforced first.
//! * **Weighted fair scheduling**: active jobs sit in three priority
//!   bands (high/normal/low). Dispatch slots follow a fixed repeating
//!   pattern — high gets 4 of every 7 claims, normal 2, low 1, falling
//!   through to the next non-empty band — and within a band jobs
//!   round-robin FIFO at *point* granularity. The schedule is seed-free
//!   and thread-count-invariant like everything else: no RNG, no clock,
//!   just a counter into a constant pattern.
//! * **Determinism**: a row depends only on `(spec, point index)` — the
//!   per-point seed derives from the index — and rows are written strictly
//!   in ascending pending order through a per-job reorder buffer. However
//!   jobs interleave, whatever the worker count, and across any number of
//!   cancel/crash/resume cycles, a job's `results.jsonl` is bitwise
//!   identical to a single uninterrupted `pom sweep` run. Submit-time
//!   extras (priority, deadline, token) deliberately live *outside* the
//!   spec — in the spool `meta` file — so they can never perturb the
//!   spec hash or the result bytes.
//! * **Crash safety**: every row is flushed as one write before the
//!   reorder window advances, so the file is always a valid prefix in
//!   emission order. [`JobManager::open`] re-scans the spool and
//!   auto-resumes incomplete jobs via the standard
//!   [`pom_sweep::scan_completed_at`] machinery, truncating a torn final
//!   row so the stream stays whole-line. All spool IO is routed through
//!   the [`crate::faults`] layer (a no-op in production) — the chaos
//!   suite's proof that these properties hold under torn writes, short
//!   reads and kills.
//! * **Lifecycle bounds**: jobs submitted with `deadline_ms=` are
//!   cancelled once overdue, with a structured reason persisted in the
//!   spool marker; a `retain` policy garbage-collects terminal job
//!   directories (count- and age-based) at startup and after each
//!   completion, never touching running or unexpired-cancelled jobs.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use pom_core::SimWorkspace;
use pom_obs::Level;
use pom_sweep::sink::{header_json, write_row_line};
use pom_sweep::value::{parse_json, write_json_str, Value};
use pom_sweep::{run_point_ws, scan_completed_at, CampaignSpec, PointRow};

use crate::auth::TokenBook;
use crate::faults::{Faults, SpoolFile};
use crate::metrics::{metrics, record_quota_rejection};
use crate::spool;
use crate::ServeConfig;

/// How often an idle worker re-checks armed deadlines.
const DEADLINE_POLL: Duration = Duration::from_millis(25);

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Points pending or in flight; the scheduler may dispatch from it.
    Running,
    /// Every grid point has a durable row.
    Done,
    /// Cancelled by a client or a deadline; keeps its partial results
    /// and may resume.
    Cancelled,
    /// Unrecoverable (result-file hash mismatch, sink I/O failure, …).
    Failed,
}

impl JobState {
    /// Lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// Scheduling band of a job. The dispatch pattern gives high 4 of every
/// 7 slots, normal 2, low 1 (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Priority {
    /// 4/7 of dispatch slots.
    High,
    /// 2/7 of dispatch slots (the default).
    #[default]
    Normal,
    /// 1/7 of dispatch slots.
    Low,
}

impl Priority {
    /// Lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parse the wire name.
    pub fn from_name(name: &str) -> Option<Priority> {
        match name {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    /// Ring index (highest priority first).
    fn band(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// A point-granular progress snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id (`j1`, `j2`, …).
    pub id: String,
    /// Campaign name from the spec.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Scheduling band.
    pub priority: Priority,
    /// Spec content hash (resume identity), 16 hex digits.
    pub spec_hash: String,
    /// Grid size.
    pub total: usize,
    /// Rows durable in `results.jsonl` (including prior sessions).
    pub written: usize,
    /// Durable rows carrying a point error.
    pub errors: usize,
    /// Points currently executing on workers.
    pub in_flight: usize,
    /// Points not yet durable (includes in-flight ones).
    pub remaining: usize,
    /// The submit-time `deadline_ms`, while one is armed.
    pub deadline_ms: Option<u64>,
    /// Failure/cancellation reason, when one is known.
    pub reason: Option<String>,
}

impl JobStatus {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"job\":");
        write_json_str(&self.id, &mut out);
        out.push_str(",\"name\":");
        write_json_str(&self.name, &mut out);
        out.push_str(",\"state\":");
        write_json_str(self.state.as_str(), &mut out);
        out.push_str(",\"priority\":");
        write_json_str(self.priority.as_str(), &mut out);
        out.push_str(",\"spec_hash\":");
        write_json_str(&self.spec_hash, &mut out);
        let _ = write_num(&mut out, "points", self.total);
        let _ = write_num(&mut out, "written", self.written);
        let _ = write_num(&mut out, "errors", self.errors);
        let _ = write_num(&mut out, "in_flight", self.in_flight);
        let _ = write_num(&mut out, "remaining", self.remaining);
        if let Some(ms) = self.deadline_ms {
            let _ = write_num(&mut out, "deadline_ms", ms as usize);
        }
        if let Some(r) = &self.reason {
            out.push_str(",\"reason\":");
            write_json_str(r, &mut out);
        }
        out.push('}');
        out
    }
}

fn write_num(out: &mut String, key: &str, v: usize) -> std::fmt::Result {
    use std::fmt::Write;
    out.push(',');
    write_json_str(key, out);
    write!(out, ":{v}")
}

/// Submit-time extras carried outside the spec (query parameters on
/// `POST /jobs`), so they never perturb the spec hash.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// The authenticated client token (recorded even without an auth
    /// book, for attribution).
    pub token: Option<String>,
    /// Scheduling band.
    pub priority: Priority,
    /// Cancel the job if not done this many ms after submission.
    pub deadline_ms: Option<u64>,
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The active-job bound is reached — explicit backpressure (HTTP 429).
    QueueFull {
        /// Jobs currently active.
        active: usize,
        /// The configured bound.
        max: usize,
    },
    /// Auth is on and the request carried no token / an unknown token
    /// (HTTP 401).
    Unauthorized(String),
    /// A per-token quota would be exceeded (HTTP 429); names the
    /// offending bound.
    Quota {
        /// The token whose quota tripped.
        token: String,
        /// `max_active_jobs` or `max_total_points`.
        bound: &'static str,
        /// The configured bound value.
        limit: usize,
        /// What the accounting would have been had the submit landed.
        have: usize,
    },
    /// The spec failed to parse or validate (HTTP 400).
    Spec(String),
    /// Spool I/O failed (HTTP 500).
    Io(io::Error),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { active, max } => write!(
                f,
                "job queue full: {active} active jobs at the max-jobs={max} bound; retry later"
            ),
            SubmitError::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            SubmitError::Quota {
                token,
                bound,
                limit,
                have,
            } => write!(
                f,
                "quota exceeded for token `{token}`: {bound}={limit} \
                 ({have} would be active); retry when jobs finish"
            ),
            SubmitError::Spec(m) => write!(f, "invalid campaign spec: {m}"),
            SubmitError::Io(e) => write!(f, "spool i/o: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a cancel/resume request was rejected.
#[derive(Debug)]
pub enum JobOpError {
    /// No such job (HTTP 404).
    NotFound,
    /// The operation does not apply in the job's current state (HTTP 409).
    Conflict(String),
    /// Spool I/O failed (HTTP 500).
    Io(io::Error),
}

impl std::fmt::Display for JobOpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobOpError::NotFound => write!(f, "no such job"),
            JobOpError::Conflict(m) => write!(f, "{m}"),
            JobOpError::Io(e) => write!(f, "spool i/o: {e}"),
        }
    }
}

impl std::error::Error for JobOpError {}

/// How the daemon is being stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopMode {
    /// Graceful: stop dispatching, finish in-flight points, flush rows.
    Drain,
    /// Simulated kill: discard in-flight results without writing them.
    /// Durable state is exactly what a `SIGKILL` would have left behind.
    Abort,
}

/// An armed submit deadline: the requested relative bound (for
/// messages) and the absolute wall-clock expiry (for persistence —
/// it must survive a daemon restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Deadline {
    ms: u64,
    at: SystemTime,
}

struct JobEntry {
    spec: Arc<CampaignSpec>,
    dir: PathBuf,
    /// Open append handle while the job is active, routed through the
    /// fault layer.
    file: Option<SpoolFile>,
    state: JobState,
    reason: Option<String>,
    priority: Priority,
    deadline: Option<Deadline>,
    /// Owning auth token (quota accounting survives restarts via `meta`).
    token: Option<String>,
    /// When the job reached a terminal state (spool GC age policy).
    finished_at: Option<SystemTime>,
    total: usize,
    /// Missing point indices at activation, ascending; the emission order.
    pending: Vec<usize>,
    /// Next index into `pending` to hand to a worker.
    next_dispatch: usize,
    /// Next index into `pending` to write (reorder window base).
    emit_at: usize,
    /// Completed rows waiting for their predecessors.
    buffer: BTreeMap<usize, PointRow>,
    in_flight: usize,
    /// Rows durable in the file (including rows found by the rescan).
    written: usize,
    errors: usize,
    /// Wall time of this job's executed points, for `GET
    /// /jobs/{id}/stats`. Standalone (not registered): per-job series
    /// would be unbounded-cardinality in the global registry.
    point_us: pom_obs::Histogram,
}

impl JobEntry {
    fn new(spec: Arc<CampaignSpec>, dir: PathBuf) -> JobEntry {
        let total = spec.total_points();
        JobEntry {
            spec,
            dir,
            file: None,
            state: JobState::Running,
            reason: None,
            priority: Priority::Normal,
            deadline: None,
            token: None,
            finished_at: None,
            total,
            pending: (0..total).collect(),
            next_dispatch: 0,
            emit_at: 0,
            buffer: BTreeMap::new(),
            in_flight: 0,
            written: 0,
            errors: 0,
            point_us: pom_obs::Histogram::new(),
        }
    }

    fn status(&self, id: &str) -> JobStatus {
        JobStatus {
            id: id.to_string(),
            name: self.spec.name.clone(),
            state: self.state,
            priority: self.priority,
            spec_hash: format!("{:016x}", self.spec.spec_hash),
            total: self.total,
            written: self.written,
            errors: self.errors,
            in_flight: self.in_flight,
            remaining: self.total - self.written,
            deadline_ms: self.deadline.map(|d| d.ms),
            reason: self.reason.clone(),
        }
    }

    fn dispatchable(&self) -> bool {
        self.state == JobState::Running && self.next_dispatch < self.pending.len()
    }
}

/// The dispatch-slot pattern over band indices (0 = high, 1 = normal,
/// 2 = low): high claims 4 of every 7 slots, normal 2, low 1. A fixed
/// constant — no RNG, no clock — so the weighted schedule is exactly as
/// deterministic as the old round-robin ring.
const SCHED_PATTERN: [usize; 7] = [0, 1, 0, 2, 0, 1, 0];

struct ManagerState {
    jobs: BTreeMap<String, JobEntry>,
    /// Per-band FIFO rings of jobs with dispatchable points
    /// (high/normal/low).
    rings: [VecDeque<String>; 3],
    /// Claims made so far; indexes [`SCHED_PATTERN`].
    dispatch_seq: u64,
    next_seq: u64,
    stop: Option<StopMode>,
}

impl ManagerState {
    fn enqueue(&mut self, id: String, priority: Priority) {
        self.rings[priority.band()].push_back(id);
    }

    fn unqueue(&mut self, id: &str) {
        for ring in &mut self.rings {
            ring.retain(|r| r != id);
        }
    }
}

/// The shared job table + scheduler. See the module docs.
pub struct JobManager {
    state: Mutex<ManagerState>,
    /// Signalled when dispatchable work appears or stop is requested.
    work: Condvar,
    /// Signalled on every durable row / state change (pollers, drains).
    progress: Condvar,
    spool: PathBuf,
    /// Per-token quotas; `None` = open access.
    auth: Option<TokenBook>,
    /// Spool GC: keep at most this many done/failed directories (0 = ∞).
    retain_count: usize,
    /// Spool GC: drop terminal directories older than this.
    retain_age: Option<Duration>,
    /// Fault-injection handle (disabled in production).
    faults: Faults,
    /// Active-job bound for submission backpressure.
    pub max_jobs: usize,
}

type Task = (String, Arc<CampaignSpec>, usize);

impl JobManager {
    /// Open (or create) a spool directory and recover its jobs: completed
    /// jobs register as done, cancelled ones as resumable, and incomplete
    /// ones re-enter the scheduler automatically with only their missing
    /// points pending. Runs one retain-policy GC sweep before returning.
    pub fn open(cfg: &ServeConfig) -> io::Result<Arc<Self>> {
        let spool = cfg.spool.clone();
        fs::create_dir_all(&spool)?;
        let manager = Arc::new(Self {
            state: Mutex::new(ManagerState {
                jobs: BTreeMap::new(),
                rings: Default::default(),
                dispatch_seq: 0,
                next_seq: spool::next_seq(&spool)?,
                stop: None,
            }),
            work: Condvar::new(),
            progress: Condvar::new(),
            spool,
            auth: cfg.auth.clone(),
            retain_count: cfg.retain_count,
            retain_age: cfg.retain_age,
            faults: cfg.faults.clone(),
            max_jobs: cfg.max_jobs.max(1),
        });
        {
            let mut st = manager.lock();
            for id in spool::scan_job_ids(&manager.spool)? {
                let dir = spool::job_dir(&manager.spool, &id);
                match Self::recover_job(&dir, &manager.faults) {
                    Ok(entry) => {
                        if pom_obs::enabled() {
                            metrics().spool_recovered.inc();
                        }
                        if entry.dispatchable() {
                            st.enqueue(id.clone(), entry.priority);
                        }
                        st.jobs.insert(id, entry);
                    }
                    Err(e) => {
                        // An unreadable/unparsable spool entry is skipped, not
                        // fatal: the daemon must come up with whatever state
                        // survived.
                        if pom_obs::enabled() {
                            metrics().spool_skipped.inc();
                        }
                        pom_obs::event(Level::Warn, "spool_skip", &[("job", &id), ("error", &e)]);
                    }
                }
            }
            manager.gc_locked(&mut st);
        }
        Ok(manager)
    }

    /// Rebuild one job's in-memory entry from its spool directory.
    fn recover_job(dir: &Path, faults: &Faults) -> Result<JobEntry, String> {
        let spec_text = spool::read_job_file(dir, spool::SPEC_FILE, faults)
            .map_err(|e| format!("read spec: {e}"))?
            .ok_or_else(|| "missing spec file".to_string())?;
        let spec =
            Arc::new(CampaignSpec::parse(&spec_text).map_err(|e| format!("parse spec: {e}"))?);
        let total = spec.total_points();
        let results = dir.join(spool::RESULTS_FILE);
        let cancelled = dir.join(spool::CANCELLED_MARKER).exists();

        let mut entry = JobEntry::new(spec.clone(), dir.to_path_buf());
        let (priority, deadline, token) = read_meta(dir, faults);
        entry.priority = priority;
        entry.deadline = deadline;
        entry.token = token;
        let cancel_reason = cancelled.then(|| read_cancel_reason(dir, faults)).flatten();

        let existing =
            spool::read_job_file(dir, spool::RESULTS_FILE, faults).map_err(|e| e.to_string())?;
        if let Some(existing) = existing {
            match scan_completed_at(&existing, &spec) {
                Ok(outcome) => {
                    entry.pending = (0..total).filter(|i| !outcome.done.contains(i)).collect();
                    entry.written = outcome.done.len();
                    // A torn final row (crash mid-write) is truncated NOW,
                    // whatever state the job lands in, so every later
                    // append and rescan sees a whole-line stream. A torn
                    // *header* leaves nothing to keep: recreate below.
                    if outcome.retain_len > 0 && outcome.retain_len < existing.len() {
                        let f = fs::OpenOptions::new()
                            .write(true)
                            .open(&results)
                            .map_err(|e| e.to_string())?;
                        f.set_len(outcome.retain_len as u64)
                            .map_err(|e| e.to_string())?;
                    }
                    if entry.pending.is_empty() {
                        entry.state = JobState::Done;
                        entry.finished_at = file_mtime(&results);
                        return Ok(entry);
                    }
                    if outcome.retain_len == 0 {
                        // Torn/absent header: rewrite the stream fresh.
                        entry.file = Some(
                            create_results(faults, &results, &spec).map_err(|e| e.to_string())?,
                        );
                        entry.written = 0;
                    } else {
                        let mut file = fs::OpenOptions::new()
                            .append(true)
                            .open(&results)
                            .map_err(|e| e.to_string())?;
                        if outcome.needs_newline {
                            file.write_all(b"\n").map_err(|e| e.to_string())?;
                        }
                        entry.file = Some(faults.wrap(file));
                    }
                    if cancelled {
                        entry.state = JobState::Cancelled;
                        entry.reason = cancel_reason;
                        entry.finished_at = file_mtime(&dir.join(spool::CANCELLED_MARKER));
                        entry.file = None;
                    }
                }
                Err(e) => {
                    // Hash mismatch or mid-file corruption: keep the job
                    // visible but refuse to touch the foreign file.
                    entry.state = JobState::Failed;
                    entry.reason = Some(e);
                    entry.finished_at = file_mtime(&results);
                }
            }
        } else {
            // Crash between spec write and results creation: fresh start.
            if cancelled {
                entry.state = JobState::Cancelled;
                entry.reason = cancel_reason;
                entry.finished_at = file_mtime(&dir.join(spool::CANCELLED_MARKER));
                return Ok(entry);
            }
            entry.file = Some(create_results(faults, &results, &spec).map_err(|e| e.to_string())?);
        }
        Ok(entry)
    }

    /// Submit with all defaults (no token, normal priority, no deadline).
    pub fn submit(&self, spec_text: &str) -> Result<JobStatus, SubmitError> {
        self.submit_with(spec_text, SubmitOptions::default())
    }

    /// Submit a campaign spec (TOML or JSON text, exactly the CLI's
    /// format). Persists the job and enqueues its points. Auth and
    /// quotas are checked before the global queue bound, so an
    /// unauthorized client learns nothing about queue state.
    pub fn submit_with(
        &self,
        spec_text: &str,
        opts: SubmitOptions,
    ) -> Result<JobStatus, SubmitError> {
        let spec =
            Arc::new(CampaignSpec::parse(spec_text).map_err(|e| SubmitError::Spec(e.to_string()))?);
        let total = spec.total_points();

        let mut st = self.lock();
        let token = self.check_quota(&st, opts.token.as_deref(), total)?;
        let active = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count();
        if active >= self.max_jobs {
            if pom_obs::enabled() {
                metrics().jobs_rejected.inc();
            }
            pom_obs::event(
                Level::Warn,
                "job_rejected",
                &[
                    ("active", &active.to_string()),
                    ("max_jobs", &self.max_jobs.to_string()),
                ],
            );
            return Err(SubmitError::QueueFull {
                active,
                max: self.max_jobs,
            });
        }
        let id = spool::job_id(st.next_seq);
        st.next_seq += 1;
        // Persist the id high-water mark: GC may later remove the newest
        // directories, and ids must never be reissued.
        spool::store_seq_floor(&self.spool, st.next_seq - 1);

        let dir = spool::job_dir(&self.spool, &id);
        fs::create_dir_all(&dir).map_err(SubmitError::Io)?;
        fs::write(dir.join(spool::SPEC_FILE), spec_text).map_err(SubmitError::Io)?;
        let deadline = opts.deadline_ms.map(|ms| Deadline {
            ms,
            at: SystemTime::now() + Duration::from_millis(ms),
        });
        write_meta(&dir, opts.priority, deadline, token.as_deref()).map_err(SubmitError::Io)?;
        let file = create_results(&self.faults, &dir.join(spool::RESULTS_FILE), &spec)
            .map_err(SubmitError::Io)?;

        let mut entry = JobEntry::new(spec, dir);
        entry.file = Some(file);
        entry.priority = opts.priority;
        entry.deadline = deadline;
        entry.token = token;
        if total == 0 {
            entry.state = JobState::Done;
            entry.finished_at = Some(SystemTime::now());
            entry.file = None;
        }
        let status = entry.status(&id);
        if pom_obs::enabled() {
            metrics().jobs_submitted.inc();
        }
        pom_obs::event(
            Level::Info,
            "job_submit",
            &[
                ("job", &id),
                ("name", &status.name),
                ("points", &total.to_string()),
                ("priority", status.priority.as_str()),
            ],
        );
        if entry.dispatchable() {
            st.enqueue(id.clone(), entry.priority);
        }
        st.jobs.insert(id, entry);
        drop(st);
        self.work.notify_all();
        Ok(status)
    }

    /// Enforce auth + per-token quotas for a submission of `total`
    /// points; returns the token to record on the job.
    fn check_quota(
        &self,
        st: &ManagerState,
        token: Option<&str>,
        total: usize,
    ) -> Result<Option<String>, SubmitError> {
        let Some(book) = &self.auth else {
            return Ok(token.map(str::to_string)); // open access
        };
        let Some(token) = token else {
            if pom_obs::enabled() {
                metrics().auth_failures.inc();
            }
            pom_obs::event(Level::Warn, "auth_reject", &[("error", "missing token")]);
            return Err(SubmitError::Unauthorized(
                "missing token; send `Authorization: Bearer <token>` or `X-Pom-Token: <token>`"
                    .into(),
            ));
        };
        let Some(quota) = book.get(token) else {
            if pom_obs::enabled() {
                metrics().auth_failures.inc();
            }
            pom_obs::event(Level::Warn, "auth_reject", &[("error", "unknown token")]);
            return Err(SubmitError::Unauthorized(format!(
                "unknown token `{token}`"
            )));
        };
        let running: Vec<&JobEntry> = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running && j.token.as_deref() == Some(token))
            .collect();
        if quota.max_active_jobs > 0 && running.len() >= quota.max_active_jobs {
            record_quota_rejection("max_active_jobs");
            pom_obs::event(
                Level::Warn,
                "quota_reject",
                &[("token", token), ("bound", "max_active_jobs")],
            );
            return Err(SubmitError::Quota {
                token: token.to_string(),
                bound: "max_active_jobs",
                limit: quota.max_active_jobs,
                have: running.len() + 1,
            });
        }
        if quota.max_total_points > 0 {
            let points = running.iter().map(|j| j.total).sum::<usize>() + total;
            if points > quota.max_total_points {
                record_quota_rejection("max_total_points");
                pom_obs::event(
                    Level::Warn,
                    "quota_reject",
                    &[("token", token), ("bound", "max_total_points")],
                );
                return Err(SubmitError::Quota {
                    token: token.to_string(),
                    bound: "max_total_points",
                    limit: quota.max_total_points,
                    have: points,
                });
            }
        }
        Ok(Some(token.to_string()))
    }

    /// Point-granular status of one job.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let st = self.lock();
        st.jobs.get(id).map(|e| e.status(id))
    }

    /// Per-job point-latency summary as a JSON object (`GET
    /// /jobs/{id}/stats`). Counts cover points executed *this session*
    /// with instrumentation on — rows recovered from the spool carry no
    /// timing. `None` for unknown jobs.
    pub fn job_stats(&self, id: &str) -> Option<String> {
        use std::fmt::Write as _;
        let st = self.lock();
        let e = st.jobs.get(id)?;
        let mut out = String::with_capacity(256);
        out.push_str("{\"job\":");
        write_json_str(id, &mut out);
        out.push_str(",\"state\":");
        write_json_str(e.state.as_str(), &mut out);
        let _ = write!(
            out,
            ",\"written\":{},\"point_latency\":{{{}}}}}",
            e.written,
            e.point_us.summary_json()
        );
        Some(out)
    }

    /// Status of every known job, ascending by id sequence.
    pub fn list(&self) -> Vec<JobStatus> {
        let st = self.lock();
        let mut out: Vec<JobStatus> = st.jobs.iter().map(|(id, e)| e.status(id)).collect();
        out.sort_by_key(|s| spool::parse_job_id(&s.id).unwrap_or(u64::MAX));
        out
    }

    /// Cancel a job: stop dispatching its points. In-flight points finish
    /// and their rows still land if contiguous; the partial file stays a
    /// valid resume target, marked by the `cancelled` spool file.
    pub fn cancel(&self, id: &str) -> Result<JobStatus, JobOpError> {
        let mut st = self.lock();
        let entry = st.jobs.get_mut(id).ok_or(JobOpError::NotFound)?;
        if entry.state == JobState::Running {
            entry.state = JobState::Cancelled;
            entry.finished_at = Some(SystemTime::now());
            fs::write(
                entry.dir.join(spool::CANCELLED_MARKER),
                b"{\"reason\":\"client\"}",
            )
            .map_err(JobOpError::Io)?;
            let status = entry.status(id);
            st.unqueue(id);
            drop(st);
            if pom_obs::enabled() {
                metrics().jobs_cancelled.inc();
            }
            pom_obs::event(
                Level::Info,
                "job_cancel",
                &[("job", id), ("written", &status.written.to_string())],
            );
            self.progress.notify_all();
            return Ok(status);
        }
        Ok(entry.status(id))
    }

    /// Resume a cancelled job: re-queue every point that is not durable.
    /// Rows computed but never written (past a reorder gap at cancel
    /// time) simply re-run — deterministically, so the final file is
    /// unaffected. A spent deadline is cleared (it already elapsed);
    /// priority and token are kept. No-op on running/done jobs.
    pub fn resume(&self, id: &str) -> Result<JobStatus, JobOpError> {
        let mut st = self.lock();
        let entry = st.jobs.get_mut(id).ok_or(JobOpError::NotFound)?;
        match entry.state {
            JobState::Running | JobState::Done => Ok(entry.status(id)),
            JobState::Failed => Err(JobOpError::Conflict(format!(
                "job {id} failed and cannot resume: {}",
                entry.reason.as_deref().unwrap_or("unknown")
            ))),
            JobState::Cancelled => {
                if entry.in_flight > 0 {
                    return Err(JobOpError::Conflict(format!(
                        "job {id} still has {} in-flight points from before the cancel; retry shortly",
                        entry.in_flight
                    )));
                }
                // Unwritten tail re-runs from scratch.
                entry.pending = entry.pending.split_off(entry.emit_at);
                entry.next_dispatch = 0;
                entry.emit_at = 0;
                entry.buffer.clear();
                if entry.deadline.take().is_some() {
                    // Un-arm the spent deadline on disk too, or a restart
                    // would re-expire the job immediately.
                    write_meta(&entry.dir, entry.priority, None, entry.token.as_deref())
                        .map_err(JobOpError::Io)?;
                }
                if entry.file.is_none() {
                    let results = entry.dir.join(spool::RESULTS_FILE);
                    let existing = self
                        .faults
                        .read_to_string(&results)
                        .map_err(JobOpError::Io)?;
                    let mut file = fs::OpenOptions::new()
                        .append(true)
                        .open(&results)
                        .map_err(JobOpError::Io)?;
                    // Recovery already truncated any torn tail; this only
                    // restores a newline the tear consumed.
                    if !existing.is_empty() && !existing.ends_with('\n') {
                        file.write_all(b"\n").map_err(JobOpError::Io)?;
                    }
                    entry.file = Some(self.faults.wrap(file));
                }
                let _ = fs::remove_file(entry.dir.join(spool::CANCELLED_MARKER));
                entry.reason = None;
                entry.finished_at = None;
                entry.state = if entry.pending.is_empty() {
                    JobState::Done
                } else {
                    JobState::Running
                };
                if entry.state == JobState::Done {
                    entry.finished_at = Some(SystemTime::now());
                    entry.file = None;
                }
                let status = entry.status(id);
                if entry.dispatchable() {
                    let priority = entry.priority;
                    st.enqueue(id.to_string(), priority);
                }
                drop(st);
                if pom_obs::enabled() {
                    metrics().jobs_resumed.inc();
                }
                pom_obs::event(
                    Level::Info,
                    "job_resume",
                    &[("job", id), ("remaining", &status.remaining.to_string())],
                );
                self.work.notify_all();
                self.progress.notify_all();
                Ok(status)
            }
        }
    }

    /// Path of a job's JSONL result stream.
    pub fn results_path(&self, id: &str) -> Option<PathBuf> {
        let st = self.lock();
        st.jobs.get(id).map(|e| e.dir.join(spool::RESULTS_FILE))
    }

    /// True when no further bytes can appear in the job's result stream
    /// (terminal state and no in-flight points). Follow-mode streams use
    /// this as their stop condition. `None` if the job is unknown.
    pub fn quiescent(&self, id: &str) -> Option<bool> {
        let st = self.lock();
        st.jobs
            .get(id)
            .map(|e| e.state != JobState::Running && e.in_flight == 0)
    }

    /// Block until `id` reaches a terminal quiescent state (true) or the
    /// timeout expires (false). Unknown jobs return false.
    pub fn wait_done(&self, id: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            match st.jobs.get(id) {
                None => return false,
                Some(e) if e.state != JobState::Running && e.in_flight == 0 => return true,
                Some(_) => {}
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, timed_out) = self.progress.wait_timeout(st, left).unwrap();
            st = guard;
            if timed_out.timed_out() {
                // Re-check once after the timeout before giving up.
                return st
                    .jobs
                    .get(id)
                    .is_some_and(|e| e.state != JobState::Running && e.in_flight == 0);
            }
        }
    }

    /// Block until any job makes progress (a row lands or a state
    /// changes) or the timeout expires. Row streams in follow mode park
    /// here instead of sleeping, so new rows are pushed with condvar
    /// latency rather than a poll interval.
    pub fn wait_progress(&self, timeout: Duration) {
        let st = self.lock();
        let _ = self.progress.wait_timeout(st, timeout);
    }

    /// Request daemon stop. [`StopMode::Drain`] lets in-flight points
    /// finish and flush; [`StopMode::Abort`] discards them un-written
    /// (crash semantics, used by the restart-resume tests). Waking the
    /// progress condvar here is what lets follow streams close
    /// deterministically with their chunked terminator on shutdown.
    pub fn request_stop(&self, mode: StopMode) {
        let mut st = self.lock();
        st.stop = Some(mode);
        drop(st);
        self.work.notify_all();
        self.progress.notify_all();
    }

    /// Aggregate counts for the shutdown report: `(jobs, done, running,
    /// cancelled, failed, rows_written)`.
    pub fn totals(&self) -> (usize, usize, usize, usize, usize, usize) {
        let st = self.lock();
        let mut done = 0;
        let mut running = 0;
        let mut cancelled = 0;
        let mut failed = 0;
        let mut rows = 0;
        for e in st.jobs.values() {
            match e.state {
                JobState::Done => done += 1,
                JobState::Running => running += 1,
                JobState::Cancelled => cancelled += 1,
                JobState::Failed => failed += 1,
            }
            rows += e.written;
        }
        (st.jobs.len(), done, running, cancelled, failed, rows)
    }

    fn lock(&self) -> MutexGuard<'_, ManagerState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The band [`SCHED_PATTERN`] prefers for claim number `seq`.
    fn preferred_band(seq: u64) -> usize {
        SCHED_PATTERN[(seq % SCHED_PATTERN.len() as u64) as usize]
    }

    /// Claim the next point: weighted across priority bands by the fixed
    /// dispatch pattern (falling through to the next non-empty band),
    /// FIFO round-robin within a band.
    fn next_task(st: &mut ManagerState) -> Option<Task> {
        loop {
            let preferred = Self::preferred_band(st.dispatch_seq);
            let band = if !st.rings[preferred].is_empty() {
                preferred
            } else {
                (0..st.rings.len()).find(|&b| !st.rings[b].is_empty())?
            };
            let Some(id) = st.rings[band].pop_front() else {
                continue;
            };
            let Some(entry) = st.jobs.get_mut(&id) else {
                continue;
            };
            if !entry.dispatchable() {
                continue;
            }
            let index = entry.pending[entry.next_dispatch];
            entry.next_dispatch += 1;
            entry.in_flight += 1;
            let spec = entry.spec.clone();
            if entry.dispatchable() {
                st.rings[band].push_back(id.clone());
            }
            st.dispatch_seq += 1;
            return Some((id, spec, index));
        }
    }

    /// Cancel every running job whose deadline elapsed, persisting a
    /// structured reason in the spool marker. Returns true when any job
    /// was expired (callers wake the progress condvar).
    fn expire_overdue(&self, st: &mut ManagerState) -> bool {
        let now = SystemTime::now();
        let overdue: Vec<String> = st
            .jobs
            .iter()
            .filter(|(_, e)| e.state == JobState::Running)
            .filter(|(_, e)| e.deadline.is_some_and(|d| d.at <= now))
            .map(|(id, _)| id.clone())
            .collect();
        for id in &overdue {
            let entry = st.jobs.get_mut(id).expect("collected above");
            let d = entry.deadline.expect("overdue implies armed");
            let remaining = entry.total - entry.written;
            let reason = format!(
                "deadline exceeded: deadline_ms={}; cancelled with {remaining} of {} points unwritten",
                d.ms, entry.total
            );
            entry.state = JobState::Cancelled;
            entry.reason = Some(reason.clone());
            entry.finished_at = Some(now);
            let marker = format!(
                "{{\"reason\":\"deadline\",\"deadline_ms\":{},\"written\":{},\"remaining\":{remaining}}}",
                d.ms, entry.written
            );
            let _ = fs::write(entry.dir.join(spool::CANCELLED_MARKER), marker);
            st.unqueue(id);
            if pom_obs::enabled() {
                metrics().deadline_cancelled.inc();
                metrics().jobs_cancelled.inc();
            }
            pom_obs::event(
                Level::Warn,
                "job_deadline",
                &[("job", id), ("reason", &reason)],
            );
        }
        !overdue.is_empty()
    }

    /// One retain-policy sweep (public entry over the locked internal
    /// sweep that also runs at startup and after each completion).
    pub fn gc(&self) {
        let mut st = self.lock();
        self.gc_locked(&mut st);
    }

    /// Apply the retain policy: age-evict any quiescent terminal job
    /// past `retain_age` (including expired cancelled jobs), then
    /// count-evict the oldest done/failed jobs beyond `retain_count`.
    /// Running jobs and unexpired cancelled jobs are never touched.
    fn gc_locked(&self, st: &mut ManagerState) {
        if self.retain_count == 0 && self.retain_age.is_none() {
            return;
        }
        let now = SystemTime::now();
        let mut victims: Vec<String> = Vec::new();
        if let Some(age) = self.retain_age {
            for (id, e) in &st.jobs {
                if e.state == JobState::Running || e.in_flight > 0 {
                    continue;
                }
                let Some(t) = e.finished_at else { continue };
                if now.duration_since(t).is_ok_and(|d| d >= age) {
                    victims.push(id.clone());
                }
            }
        }
        if self.retain_count > 0 {
            let mut terminal: Vec<(u64, String)> = st
                .jobs
                .iter()
                .filter(|(id, e)| {
                    matches!(e.state, JobState::Done | JobState::Failed)
                        && e.in_flight == 0
                        && !victims.contains(id)
                })
                .filter_map(|(id, _)| spool::parse_job_id(id).map(|seq| (seq, id.clone())))
                .collect();
            terminal.sort_unstable_by_key(|t| std::cmp::Reverse(t.0)); // newest first
            victims.extend(
                terminal
                    .into_iter()
                    .skip(self.retain_count)
                    .map(|(_, id)| id),
            );
        }
        for id in victims {
            if st.jobs.remove(&id).is_none() {
                continue;
            }
            st.unqueue(&id);
            match spool::remove_job_dir(&self.spool, &id) {
                Ok(()) => {
                    if pom_obs::enabled() {
                        metrics().spool_gc_removed.inc();
                    }
                    pom_obs::event(Level::Info, "spool_gc", &[("job", &id)]);
                }
                Err(e) => {
                    // Dropped from memory regardless; the startup scan
                    // will re-skip whatever half-removed state remains.
                    pom_obs::event(
                        Level::Warn,
                        "spool_gc_failed",
                        &[("job", &id), ("error", &e.to_string())],
                    );
                }
            }
        }
    }

    /// Deliver a completed row: reorder, write contiguous rows, flip the
    /// job to done when the last row lands. `elapsed_us` is the point's
    /// execution wall time (absent when instrumentation is off).
    fn deliver(&self, st: &mut ManagerState, id: &str, row: PointRow, elapsed_us: Option<u64>) {
        let mut completed = false;
        if let Some(entry) = st.jobs.get_mut(id) {
            entry.in_flight = entry.in_flight.saturating_sub(1);
            if let Some(us) = elapsed_us {
                entry.point_us.observe(us);
            }
            let was_done = entry.state == JobState::Done;
            let written_before = entry.written;
            // Stale-delivery guard (e.g. a point re-dispatched after a
            // cancel+resume while the original was still in flight): only
            // rows for not-yet-durable pending positions enter the buffer.
            if let Ok(pos) = entry.pending.binary_search(&row.index) {
                if pos >= entry.emit_at {
                    entry.buffer.insert(row.index, row);
                }
            }
            while entry.emit_at < entry.pending.len() {
                let want = entry.pending[entry.emit_at];
                let Some(ready) = entry.buffer.remove(&want) else {
                    break;
                };
                let is_err = ready.error.is_some();
                let Some(file) = entry.file.as_mut() else {
                    break;
                };
                // One write + flush per row (the sweep sink's own IO
                // helper): the file is always a whole-line prefix, which
                // is what makes it a crash checkpoint.
                if let Err(e) = write_row_line(file, &ready) {
                    let msg = format!("writing row {want}: {e}");
                    entry.state = JobState::Failed;
                    entry.reason = Some(msg.clone());
                    entry.finished_at = Some(SystemTime::now());
                    entry.file = None;
                    if pom_obs::enabled() {
                        metrics().jobs_failed.inc();
                    }
                    pom_obs::event(Level::Error, "job_failed", &[("job", id), ("error", &msg)]);
                    break;
                }
                entry.emit_at += 1;
                entry.written += 1;
                if is_err {
                    entry.errors += 1;
                }
            }
            if entry.emit_at == entry.pending.len() && entry.state != JobState::Failed {
                entry.file = None; // close the handle
                if entry.state == JobState::Cancelled {
                    // An in-flight tail completed the job after cancel.
                    let _ = fs::remove_file(entry.dir.join(spool::CANCELLED_MARKER));
                }
                entry.state = JobState::Done;
                entry.finished_at = Some(SystemTime::now());
                if !was_done {
                    completed = true;
                    if pom_obs::enabled() {
                        metrics().jobs_completed.inc();
                    }
                    pom_obs::event(
                        Level::Info,
                        "job_done",
                        &[
                            ("job", id),
                            ("written", &entry.written.to_string()),
                            ("errors", &entry.errors.to_string()),
                        ],
                    );
                }
            }
            if pom_obs::enabled() {
                metrics()
                    .rows_written
                    .add((entry.written - written_before) as u64);
            }
        }
        if completed {
            // The retain policy runs after every completion, so a
            // long-lived daemon's spool is bounded without a timer thread.
            self.gc_locked(st);
        }
    }

    /// The worker-thread body: claim points fairly, execute them with a
    /// reused integrator workspace, deliver rows. Returns when stop is
    /// requested (drain: after finishing the current point; abort: the
    /// current point's row is discarded, like a kill). While any running
    /// job has an armed deadline, idle waits are bounded so expiry is
    /// noticed without traffic.
    pub fn worker_loop(&self) {
        let mut ws = SimWorkspace::new();
        loop {
            let task: Option<Task> = {
                let mut st = self.lock();
                loop {
                    if st.stop.is_some() {
                        break None;
                    }
                    if self.expire_overdue(&mut st) {
                        self.progress.notify_all();
                    }
                    if let Some(t) = Self::next_task(&mut st) {
                        break Some(t);
                    }
                    let armed = st
                        .jobs
                        .values()
                        .any(|e| e.state == JobState::Running && e.deadline.is_some());
                    if armed {
                        let (guard, _) = self
                            .work
                            .wait_timeout(st, DEADLINE_POLL)
                            .unwrap_or_else(|p| p.into_inner());
                        st = guard;
                    } else {
                        st = self.work.wait(st).unwrap_or_else(|p| p.into_inner());
                    }
                }
            };
            let Some((id, spec, index)) = task else {
                return;
            };

            // One clock pair per point, only when instrumentation is on.
            let t0 = pom_obs::enabled().then(Instant::now);
            let row = run_point_ws(&spec, index, &mut ws);
            let elapsed_us = t0.map(|t| t.elapsed().as_micros() as u64);
            if let Some(us) = elapsed_us {
                // Global sweep families too — the daemon bypasses
                // run_campaign, so it must report its own points.
                pom_sweep::record_external_point(us, row.error.is_some());
            }

            let mut st = self.lock();
            if st.stop == Some(StopMode::Abort) {
                // Crash semantics: the computed row never becomes durable.
                return;
            }
            self.deliver(&mut st, &id, row, elapsed_us);
            drop(st);
            self.progress.notify_all();
        }
    }
}

/// Write the results header as the first durable line: a crash right
/// after submit leaves a valid (0 rows completed) resume target.
fn create_results(faults: &Faults, path: &Path, spec: &CampaignSpec) -> io::Result<SpoolFile> {
    let mut file = faults.wrap(fs::File::create(path)?);
    file.write_all(format!("{}\n", header_json(spec)).as_bytes())?;
    file.flush()?;
    Ok(file)
}

fn file_mtime(path: &Path) -> Option<SystemTime> {
    fs::metadata(path).and_then(|m| m.modified()).ok()
}

/// Persist the submit-time extras. All-default jobs get no meta file
/// (and a stale one is removed, e.g. when resume clears a deadline).
fn write_meta(
    dir: &Path,
    priority: Priority,
    deadline: Option<Deadline>,
    token: Option<&str>,
) -> io::Result<()> {
    if priority == Priority::Normal && deadline.is_none() && token.is_none() {
        match fs::remove_file(dir.join(spool::META_FILE)) {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        }
    }
    let mut out = String::with_capacity(96);
    out.push_str("{\"priority\":");
    write_json_str(priority.as_str(), &mut out);
    if let Some(d) = deadline {
        let unix_ms =
            d.at.duration_since(UNIX_EPOCH)
                .map_or(0, |t| t.as_millis() as u64);
        out.push_str(&format!(
            ",\"deadline_ms\":{},\"deadline_unix_ms\":{unix_ms}",
            d.ms
        ));
    }
    if let Some(t) = token {
        out.push_str(",\"token\":");
        write_json_str(t, &mut out);
    }
    out.push_str("}\n");
    fs::write(dir.join(spool::META_FILE), out)
}

/// Recover the submit-time extras; a missing or garbled meta file means
/// all defaults (the job still runs — hardening must not lose work).
fn read_meta(dir: &Path, faults: &Faults) -> (Priority, Option<Deadline>, Option<String>) {
    let Ok(Some(text)) = spool::read_job_file(dir, spool::META_FILE, faults) else {
        return (Priority::Normal, None, None);
    };
    let Ok(meta) = parse_json(text.trim()) else {
        return (Priority::Normal, None, None);
    };
    let priority = meta
        .get("priority")
        .and_then(Value::as_str)
        .and_then(Priority::from_name)
        .unwrap_or_default();
    let deadline = match (
        meta.get("deadline_ms").and_then(Value::as_i64),
        meta.get("deadline_unix_ms").and_then(Value::as_i64),
    ) {
        (Some(ms), Some(unix_ms)) if ms >= 0 && unix_ms >= 0 => Some(Deadline {
            ms: ms as u64,
            at: UNIX_EPOCH + Duration::from_millis(unix_ms as u64),
        }),
        _ => None,
    };
    let token = meta
        .get("token")
        .and_then(Value::as_str)
        .map(str::to_string);
    (priority, deadline, token)
}

/// The human-readable reason recorded in a structured cancel marker
/// (`None` for legacy empty markers and plain client cancels).
fn read_cancel_reason(dir: &Path, faults: &Faults) -> Option<String> {
    let text = spool::read_job_file(dir, spool::CANCELLED_MARKER, faults).ok()??;
    let marker = parse_json(text.trim()).ok()?;
    match marker.get("reason").and_then(Value::as_str)? {
        "deadline" => {
            let ms = marker.get("deadline_ms").and_then(Value::as_i64)?;
            let remaining = marker
                .get("remaining")
                .and_then(Value::as_i64)
                .unwrap_or(-1);
            Some(format!(
                "deadline exceeded: deadline_ms={ms}; cancelled with {remaining} points unwritten \
                 (previous session)"
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_names_round_trip() {
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(Priority::from_name(p.as_str()), Some(p));
        }
        assert_eq!(Priority::from_name("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn dispatch_pattern_weights_are_4_2_1() {
        let mut counts = [0usize; 3];
        for seq in 0..7u64 {
            counts[JobManager::preferred_band(seq)] += 1;
        }
        assert_eq!(counts, [4, 2, 1], "high/normal/low slots per 7 claims");
        // And the pattern is periodic — claim 7k+i prefers the same band
        // as claim i, whatever the thread count that got us there.
        for seq in 0..70u64 {
            assert_eq!(
                JobManager::preferred_band(seq),
                JobManager::preferred_band(seq % 7)
            );
        }
    }

    #[test]
    fn meta_round_trips_and_defaults_write_nothing() {
        let dir = std::env::temp_dir().join(format!("pom-job-meta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let faults = Faults::disabled();

        // All defaults → no meta file at all.
        write_meta(&dir, Priority::Normal, None, None).unwrap();
        assert!(!dir.join(spool::META_FILE).exists());
        assert_eq!(read_meta(&dir, &faults), (Priority::Normal, None, None));

        let deadline = Deadline {
            ms: 1500,
            at: SystemTime::now() + Duration::from_millis(1500),
        };
        write_meta(&dir, Priority::High, Some(deadline), Some("alice")).unwrap();
        let (p, d, t) = read_meta(&dir, &faults);
        assert_eq!(p, Priority::High);
        assert_eq!(d.map(|d| d.ms), Some(1500));
        assert_eq!(t.as_deref(), Some("alice"));

        // Clearing the deadline keeps priority and token.
        write_meta(&dir, Priority::High, None, Some("alice")).unwrap();
        let (p, d, t) = read_meta(&dir, &faults);
        assert_eq!((p, t.as_deref()), (Priority::High, Some("alice")));
        assert!(d.is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
