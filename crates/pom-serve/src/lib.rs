//! # pom-serve — the campaign daemon
//!
//! A persistent service that runs [`pom_sweep`] campaigns on behalf of
//! remote clients: submit a spec over HTTP, poll point-granular progress,
//! stream completed rows as JSONL, cancel, resume — with the same
//! bitwise-reproducibility contract as the CLI. The paper's workflow is
//! many parameter sweeps against one calibrated model; the daemon turns
//! the batch engine into shared infrastructure without giving up the
//! determinism that makes the sweeps citable.
//!
//! ## Shape
//!
//! * [`http`] — hand-rolled HTTP/1.1 (no registry access ⇒ no async
//!   stack), thread per connection, chunked row streams.
//! * [`job`] — the multi-tenant [`job::JobManager`]: bounded submission
//!   (HTTP 429 backpressure), fair round-robin point scheduling across
//!   concurrent campaigns, in-order durable row emission.
//! * [`spool`] — on-disk layout; each job's `results.jsonl` doubles as
//!   its crash checkpoint (identical to `pom sweep resume=1` files).
//! * [`api`] — route dispatch; query strings are validated against the
//!   command registry's [`pom_sweep::registry::RouteSpec`] tables (same
//!   wording as CLI errors) and `GET /schema` serves the registry as
//!   JSON — byte-identical to `pom help format=json`.
//! * [`auth`] — per-token submission quotas (`auth=tokens.toml`).
//! * [`faults`] — deterministic fault injection for the chaos suite
//!   (disabled and zero-cost in production).
//! * [`signal`] — SIGTERM/SIGINT → graceful drain.
//!
//! ## Hardening
//!
//! The daemon assumes hostile traffic: a connection bound enforced
//! *before* thread spawn (503 + `Retry-After`), socket read/write
//! deadlines (slowloris / slow-consumer bounds), optional per-token
//! quotas, submit deadlines (`deadline_ms=`), weighted priority
//! scheduling, and a spool retain policy GC'ing terminal job
//! directories. See `docs/ARCHITECTURE.md` ("Failure modes & hardening
//! contract") for the full limits table.
//!
//! ## Quick use
//!
//! ```no_run
//! use pom_serve::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".into(), // 0 = any free port
//!     spool: "pom-spool".into(),
//!     threads: 4,
//!     ..ServeConfig::default()
//! })?;
//! println!("listening on http://{}", server.addr());
//! let summary = server.join(); // blocks until POST /shutdown or SIGTERM
//! println!("served {} rows", summary.rows_written);
//! # std::io::Result::Ok(())
//! ```

pub mod api;
pub mod auth;
pub mod faults;
pub mod http;
pub mod job;
pub(crate) mod metrics;
pub mod signal;
pub mod spool;

pub use auth::{TokenBook, TokenQuota};
pub use faults::{FaultClass, FaultPlan, Faults, FAULT_CLASSES};
pub use job::{
    JobManager, JobOpError, JobState, JobStatus, Priority, StopMode, SubmitError, SubmitOptions,
};

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Shutdown-poll interval ([`Server::join`]) and accept-error backoff.
/// Not on the connection path: accepts themselves block.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Daemon configuration (every field has a sensible default).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks any free port.
    pub addr: String,
    /// Spool directory (created if missing; re-scanned for resumable jobs).
    pub spool: PathBuf,
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Active-job bound; submits past it answer HTTP 429.
    pub max_jobs: usize,
    /// Concurrent-connection bound, enforced on the accept thread before
    /// a handler thread is spawned; connections past it answer HTTP 503
    /// with `Retry-After`. `0` disables the bound.
    pub max_conns: usize,
    /// Per-token submission quotas; `None` = open access.
    pub auth: Option<auth::TokenBook>,
    /// Socket read deadline: a client holding a connection without
    /// completing a request within it is answered 408 and dropped
    /// (slowloris bound). Zero disables.
    pub read_timeout: Duration,
    /// Socket write deadline: a row-stream consumer stalling past it
    /// loses only its stream, never the job. Zero disables.
    pub write_timeout: Duration,
    /// Spool retain policy: keep at most this many terminal (done or
    /// failed) job directories. `0` disables count-based GC.
    pub retain_count: usize,
    /// Spool retain policy: remove terminal job directories (including
    /// expired cancelled ones) older than this. `None` disables
    /// age-based GC.
    pub retain_age: Option<Duration>,
    /// Fault-injection plan for the chaos suite. Disabled (and free) by
    /// default; never enable in production.
    pub faults: faults::Faults,
    /// Install SIGTERM/SIGINT handlers that trigger a graceful drain.
    /// Leave off when embedding (tests, benches).
    pub handle_signals: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7700".into(),
            spool: PathBuf::from("pom-spool"),
            threads: 0,
            max_jobs: 16,
            max_conns: 256,
            auth: None,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            retain_count: 0,
            retain_age: None,
            faults: faults::Faults::disabled(),
            handle_signals: false,
        }
    }
}

/// What the daemon had done by the time it stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs known to the spool at shutdown.
    pub jobs: usize,
    /// … of which complete.
    pub done: usize,
    /// … of which still incomplete (auto-resume on next start).
    pub running: usize,
    /// … of which cancelled.
    pub cancelled: usize,
    /// … of which failed.
    pub failed: usize,
    /// Durable result rows across all jobs (including prior sessions).
    pub rows_written: usize,
}

/// Releases one admission-control slot (and the active-connections
/// gauge) on drop — on every handler exit path, including panics.
struct ConnSlot(Arc<AtomicUsize>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
        if pom_obs::enabled() {
            metrics::metrics().conns_active.sub(1);
        }
    }
}

/// A running daemon. Dropping it without calling [`Server::stop`] or
/// [`Server::join`] detaches the threads (they stop at process exit).
pub struct Server {
    manager: Arc<JobManager>,
    addr: SocketAddr,
    stop_flag: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    handle_signals: bool,
}

impl Server {
    /// Open the spool (recovering jobs), bind the listener, and spawn the
    /// worker pool + accept loop. Returns as soon as the daemon is
    /// serving; recovered incomplete jobs are already being executed.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        // The daemon always runs instrumented — `/metrics` is part of its
        // API. Enabled before the spool scan so recovery counters record.
        pom_obs::set_enabled(true);
        let manager = JobManager::open(&cfg)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        if cfg.handle_signals {
            signal::install();
        }

        let threads = if cfg.threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.threads
        };
        let workers: Vec<JoinHandle<()>> = (0..threads)
            .map(|i| {
                let manager = manager.clone();
                thread::Builder::new()
                    .name(format!("pom-serve-worker-{i}"))
                    .spawn(move || manager.worker_loop())
            })
            .collect::<io::Result<_>>()?;

        // A blocking accept adds zero latency per connection; shutdown
        // wakes it with a throwaway connection to our own port (see
        // `Server::stop`) instead of making the loop poll a flag.
        let stop_flag = Arc::new(AtomicBool::new(false));
        let accept = {
            let ctx = api::ConnCtx {
                manager: manager.clone(),
                stopping: stop_flag.clone(),
                read_timeout: cfg.read_timeout,
                write_timeout: cfg.write_timeout,
            };
            let stop_flag = stop_flag.clone();
            let max_conns = cfg.max_conns;
            let active = Arc::new(AtomicUsize::new(0));
            thread::Builder::new()
                .name("pom-serve-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((mut stream, _peer)) => {
                            if stop_flag.load(Ordering::SeqCst) {
                                return;
                            }
                            // Admission control happens HERE, before a
                            // handler thread exists: past the bound, an
                            // attacker's connection costs one counter read
                            // and one fixed 503 write on this thread.
                            if max_conns > 0 && active.load(Ordering::SeqCst) >= max_conns {
                                if pom_obs::enabled() {
                                    metrics::metrics().conns_rejected.inc();
                                }
                                let _ = http::respond_busy(
                                    &mut stream,
                                    1,
                                    &format!(
                                        "connection limit reached (max-conns={max_conns}); retry shortly"
                                    ),
                                );
                                continue;
                            }
                            active.fetch_add(1, Ordering::SeqCst);
                            if pom_obs::enabled() {
                                metrics::metrics().conns_active.add(1);
                            }
                            let ctx = ctx.clone();
                            let slot = ConnSlot(active.clone());
                            // Detached: connection lifetime is bounded by
                            // the request (streams exit on the stop flag).
                            let spawned = thread::Builder::new()
                                .name("pom-serve-conn".into())
                                .spawn(move || {
                                    // The guard releases the slot on every
                                    // exit path, including handler panics.
                                    let _slot = slot;
                                    api::handle_connection(stream, &ctx);
                                });
                            // On spawn failure (EAGAIN under load) the
                            // closure is dropped unrun, which still drops
                            // the guard and releases the slot.
                            let _ = spawned;
                        }
                        Err(_) => {
                            if stop_flag.load(Ordering::SeqCst) {
                                return;
                            }
                            // Transient accept failure (EMFILE, aborted
                            // handshake): back off briefly, keep serving.
                            thread::sleep(ACCEPT_POLL);
                        }
                    }
                })?
        };

        Ok(Server {
            manager,
            addr,
            stop_flag,
            accept: Some(accept),
            workers,
            handle_signals: cfg.handle_signals,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared job manager (for embedding: tests, benches, the CLI).
    pub fn manager(&self) -> &Arc<JobManager> {
        &self.manager
    }

    /// True once `POST /shutdown` or a termination signal has been seen.
    pub fn stop_requested(&self) -> bool {
        self.stop_flag.load(Ordering::SeqCst)
            || (self.handle_signals && signal::termination_requested())
    }

    /// Stop the daemon. [`StopMode::Drain`] finishes and flushes every
    /// in-flight point before returning; [`StopMode::Abort`] discards
    /// in-flight results, leaving the spool exactly as a kill would.
    pub fn stop(mut self, mode: StopMode) -> ServeSummary {
        // Workers first: an Abort must take effect immediately, not after
        // the accept thread has been torn down.
        self.manager.request_stop(mode);
        self.stop_flag.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // Wake the blocking accept with a throwaway connection; it
            // sees the stop flag and returns.
            let _ = std::net::TcpStream::connect(self.addr);
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let (jobs, done, running, cancelled, failed, rows_written) = self.manager.totals();
        ServeSummary {
            jobs,
            done,
            running,
            cancelled,
            failed,
            rows_written,
        }
    }

    /// Block until a shutdown request or termination signal arrives, then
    /// drain gracefully.
    pub fn join(self) -> ServeSummary {
        while !self.stop_requested() {
            thread::sleep(ACCEPT_POLL);
        }
        self.stop(StopMode::Drain)
    }
}
