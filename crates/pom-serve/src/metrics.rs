//! Daemon metrics: route traffic, job lifecycle, spool recovery.
//!
//! Per-route series are labeled with the route *pattern* (`/jobs/{id}`),
//! never the raw path — label cardinality stays bounded no matter how
//! many jobs exist. Per-job point latencies live in standalone
//! histograms inside each `JobEntry` (served by `GET /jobs/{id}/stats`),
//! not in the registry, for the same reason.

use std::sync::{Arc, OnceLock};

use pom_obs::{Counter, Gauge};

pub(crate) struct ServeMetrics {
    pub jobs_submitted: Arc<Counter>,
    pub jobs_rejected: Arc<Counter>,
    pub jobs_completed: Arc<Counter>,
    pub jobs_failed: Arc<Counter>,
    pub jobs_cancelled: Arc<Counter>,
    pub jobs_resumed: Arc<Counter>,
    pub rows_written: Arc<Counter>,
    pub follow_streams: Arc<Gauge>,
    pub spool_recovered: Arc<Counter>,
    pub spool_skipped: Arc<Counter>,
    // Hardening layer: admission control, deadlines, spool GC.
    pub conns_active: Arc<Gauge>,
    pub conns_rejected: Arc<Counter>,
    pub auth_failures: Arc<Counter>,
    pub read_timeouts: Arc<Counter>,
    pub stream_write_drops: Arc<Counter>,
    pub deadline_cancelled: Arc<Counter>,
    pub spool_gc_removed: Arc<Counter>,
}

pub(crate) fn metrics() -> &'static ServeMetrics {
    static M: OnceLock<ServeMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = pom_obs::registry();
        ServeMetrics {
            jobs_submitted: r.counter("pom_serve_jobs_submitted_total", "Jobs accepted."),
            jobs_rejected: r.counter(
                "pom_serve_jobs_rejected_total",
                "Submits rejected by the active-job bound (HTTP 429).",
            ),
            jobs_completed: r.counter(
                "pom_serve_jobs_completed_total",
                "Jobs that reached the done state.",
            ),
            jobs_failed: r.counter(
                "pom_serve_jobs_failed_total",
                "Jobs that reached the failed state.",
            ),
            jobs_cancelled: r.counter("pom_serve_jobs_cancelled_total", "Jobs cancelled."),
            jobs_resumed: r.counter("pom_serve_jobs_resumed_total", "Cancelled jobs resumed."),
            rows_written: r.counter(
                "pom_serve_rows_written_total",
                "Result rows made durable across all jobs.",
            ),
            follow_streams: r.gauge(
                "pom_serve_follow_streams",
                "Row streams currently tailing in follow mode.",
            ),
            spool_recovered: r.counter(
                "pom_serve_spool_jobs_recovered_total",
                "Spool entries recovered at startup.",
            ),
            spool_skipped: r.counter(
                "pom_serve_spool_jobs_skipped_total",
                "Unreadable spool entries skipped at startup.",
            ),
            conns_active: r.gauge(
                "pom_serve_connections_active",
                "Connections currently holding a handler thread.",
            ),
            conns_rejected: r.counter(
                "pom_serve_connections_rejected_total",
                "Connections refused before thread spawn (HTTP 503, max-conns bound).",
            ),
            auth_failures: r.counter(
                "pom_serve_auth_failures_total",
                "Submits rejected for a missing or unknown token (HTTP 401).",
            ),
            read_timeouts: r.counter(
                "pom_serve_read_timeouts_total",
                "Connections dropped for not sending a request within the read deadline (HTTP 408).",
            ),
            stream_write_drops: r.counter(
                "pom_serve_stream_write_drops_total",
                "Row streams dropped because the consumer stalled past the write deadline.",
            ),
            deadline_cancelled: r.counter(
                "pom_serve_jobs_deadline_cancelled_total",
                "Jobs cancelled for exceeding their submit deadline_ms.",
            ),
            spool_gc_removed: r.counter(
                "pom_serve_spool_gc_removed_total",
                "Terminal job directories removed by the retain policy.",
            ),
        }
    })
}

/// Record a quota rejection (HTTP 429) against its offending bound
/// (`max_active_jobs` / `max_total_points`); bounded label cardinality.
pub(crate) fn record_quota_rejection(bound: &str) {
    if !pom_obs::enabled() {
        return;
    }
    pom_obs::registry()
        .counter_with(
            "pom_serve_quota_rejected_total",
            "Submits rejected by a per-token quota (HTTP 429), by bound.",
            &[("bound", bound)],
        )
        .inc();
}

/// Record one handled request against the per-route counter/histogram
/// pair; no-op when instrumentation is off.
pub(crate) fn record_request(method: &str, route: &str, elapsed_us: u64) {
    if !pom_obs::enabled() {
        return;
    }
    let labels = [("method", method), ("route", route)];
    let r = pom_obs::registry();
    r.counter_with(
        "pom_serve_requests_total",
        "Requests handled, by method and route pattern.",
        &labels,
    )
    .inc();
    r.histogram_with(
        "pom_serve_request_duration_us",
        "Request handling time, by method and route pattern.",
        &labels,
    )
    .observe(elapsed_us);
}
