//! Spool-directory layout: the daemon's durable state.
//!
//! Every job owns one directory under the spool root:
//!
//! ```text
//! spool/
//!   j1/
//!     spec            the submitted campaign spec, byte-for-byte
//!     results.jsonl   header + completed rows (the checkpoint format)
//!     cancelled       empty marker, present while the job is cancelled
//!   j2/
//!     …
//! ```
//!
//! There is deliberately no separate checkpoint file: `results.jsonl` is
//! exactly what `pom sweep out=… resume=1` writes, so the FNV spec hash in
//! its header plus the completed-point scan *is* the resume state. A
//! killed daemon restarted over the same spool re-derives every job's
//! remaining work from these files alone, and a spool directory can
//! equally be finished off by the CLI.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the raw spec file inside a job directory.
pub const SPEC_FILE: &str = "spec";
/// Name of the JSONL result stream inside a job directory.
pub const RESULTS_FILE: &str = "results.jsonl";
/// Name of the cancelled marker inside a job directory.
pub const CANCELLED_MARKER: &str = "cancelled";

/// A job's directory under the spool root.
pub fn job_dir(spool: &Path, id: &str) -> PathBuf {
    spool.join(id)
}

/// The job id for a sequence number (`7` → `"j7"`).
pub fn job_id(seq: u64) -> String {
    format!("j{seq}")
}

/// Parse a job id back to its sequence number (`"j7"` → `7`).
pub fn parse_job_id(id: &str) -> Option<u64> {
    id.strip_prefix('j')?.parse().ok()
}

/// Enumerate job ids present in the spool, ascending by sequence number.
/// Non-job entries (anything not named `j<seq>`) are ignored.
pub fn scan_job_ids(spool: &Path) -> io::Result<Vec<String>> {
    let mut seqs: Vec<u64> = Vec::new();
    for entry in fs::read_dir(spool)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        if let Some(seq) = entry.file_name().to_str().and_then(parse_job_id) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    Ok(seqs.into_iter().map(job_id).collect())
}

/// The next unused sequence number in the spool.
pub fn next_seq(spool: &Path) -> io::Result<u64> {
    let max = scan_job_ids(spool)?
        .iter()
        .filter_map(|id| parse_job_id(id))
        .max()
        .unwrap_or(0);
    Ok(max + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_scan_sorts() {
        assert_eq!(job_id(7), "j7");
        assert_eq!(parse_job_id("j7"), Some(7));
        assert_eq!(parse_job_id("x7"), None);
        assert_eq!(parse_job_id("j"), None);

        let dir = std::env::temp_dir().join(format!("pom-spool-scan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for name in ["j10", "j2", "j1", "not-a-job"] {
            fs::create_dir_all(dir.join(name)).unwrap();
        }
        fs::write(dir.join("stray-file"), b"x").unwrap();
        assert_eq!(scan_job_ids(&dir).unwrap(), vec!["j1", "j2", "j10"]);
        assert_eq!(next_seq(&dir).unwrap(), 11);
        let _ = fs::remove_dir_all(&dir);
    }
}
