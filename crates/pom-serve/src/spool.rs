//! Spool-directory layout: the daemon's durable state.
//!
//! Every job owns one directory under the spool root:
//!
//! ```text
//! spool/
//!   j1/
//!     spec            the submitted campaign spec, byte-for-byte
//!     results.jsonl   header + completed rows (the checkpoint format)
//!     cancelled       empty marker, present while the job is cancelled
//!   j2/
//!     …
//! ```
//!
//! There is deliberately no separate checkpoint file: `results.jsonl` is
//! exactly what `pom sweep out=… resume=1` writes, so the FNV spec hash in
//! its header plus the completed-point scan *is* the resume state. A
//! killed daemon restarted over the same spool re-derives every job's
//! remaining work from these files alone, and a spool directory can
//! equally be finished off by the CLI.
//!
//! Two small extras harden the layout: `meta` (JSON) persists the
//! submit-time extras that are deliberately *not* part of the spec —
//! priority band, absolute deadline, owning auth token — so scheduling
//! and quota accounting survive a restart without perturbing the spec
//! hash; and a root-level `seq` file pins the id high-water mark, so
//! spool GC removing the newest job directories can never cause a
//! restarted daemon to reissue an old job id.
//!
//! Recovery reads go through [`crate::faults::Faults`]: the chaos suite
//! injects short reads and `EAGAIN` storms exactly here.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::faults::Faults;

/// Name of the raw spec file inside a job directory.
pub const SPEC_FILE: &str = "spec";
/// Name of the JSONL result stream inside a job directory.
pub const RESULTS_FILE: &str = "results.jsonl";
/// Name of the cancelled marker inside a job directory. Empty for a
/// plain client cancel (back-compat), otherwise a JSON object with a
/// structured `reason` (e.g. a deadline expiry).
pub const CANCELLED_MARKER: &str = "cancelled";
/// Name of the optional JSON meta file inside a job directory
/// (priority / deadline / token; absent for all-default submissions).
pub const META_FILE: &str = "meta";
/// Root-level file pinning the highest job sequence ever issued.
pub const SEQ_FILE: &str = "seq";

/// A job's directory under the spool root.
pub fn job_dir(spool: &Path, id: &str) -> PathBuf {
    spool.join(id)
}

/// The job id for a sequence number (`7` → `"j7"`).
pub fn job_id(seq: u64) -> String {
    format!("j{seq}")
}

/// Parse a job id back to its sequence number (`"j7"` → `7`).
pub fn parse_job_id(id: &str) -> Option<u64> {
    id.strip_prefix('j')?.parse().ok()
}

/// Enumerate job ids present in the spool, ascending by sequence number.
/// Non-job entries (anything not named `j<seq>`) are ignored.
pub fn scan_job_ids(spool: &Path) -> io::Result<Vec<String>> {
    let mut seqs: Vec<u64> = Vec::new();
    for entry in fs::read_dir(spool)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        if let Some(seq) = entry.file_name().to_str().and_then(parse_job_id) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    Ok(seqs.into_iter().map(job_id).collect())
}

/// The next unused sequence number in the spool: past the highest job
/// directory present *and* past the persisted high-water mark, so ids
/// are never reissued after GC removed the newest directories.
pub fn next_seq(spool: &Path) -> io::Result<u64> {
    let max = scan_job_ids(spool)?
        .iter()
        .filter_map(|id| parse_job_id(id))
        .max()
        .unwrap_or(0);
    Ok(max.max(seq_floor(spool)) + 1)
}

/// The persisted id high-water mark (0 when absent/garbled).
pub fn seq_floor(spool: &Path) -> u64 {
    fs::read_to_string(spool.join(SEQ_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Persist the id high-water mark (best effort — a lost update only
/// weakens the no-reuse guarantee as far as the directories on disk).
pub fn store_seq_floor(spool: &Path, seq: u64) {
    let _ = fs::write(spool.join(SEQ_FILE), format!("{seq}\n"));
}

/// Read one job file through the fault layer. `Ok(None)` when absent.
pub fn read_job_file(dir: &Path, name: &str, faults: &Faults) -> io::Result<Option<String>> {
    let path = dir.join(name);
    if !path.exists() {
        return Ok(None);
    }
    faults.read_to_string(&path).map(Some)
}

/// Remove a job directory (spool GC). Errors are returned so the caller
/// can decide whether a half-removed directory matters; the scan simply
/// re-skips whatever survives.
pub fn remove_job_dir(spool: &Path, id: &str) -> io::Result<()> {
    fs::remove_dir_all(job_dir(spool, id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_scan_sorts() {
        assert_eq!(job_id(7), "j7");
        assert_eq!(parse_job_id("j7"), Some(7));
        assert_eq!(parse_job_id("x7"), None);
        assert_eq!(parse_job_id("j"), None);

        let dir = std::env::temp_dir().join(format!("pom-spool-scan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for name in ["j10", "j2", "j1", "not-a-job"] {
            fs::create_dir_all(dir.join(name)).unwrap();
        }
        fs::write(dir.join("stray-file"), b"x").unwrap();
        assert_eq!(scan_job_ids(&dir).unwrap(), vec!["j1", "j2", "j10"]);
        assert_eq!(next_seq(&dir).unwrap(), 11);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seq_floor_survives_gc_of_newest_dirs() {
        let dir = std::env::temp_dir().join(format!("pom-spool-seq-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("j3")).unwrap();
        store_seq_floor(&dir, 3);
        // GC removes the newest (and only) job directory…
        remove_job_dir(&dir, "j3").unwrap();
        // …but the high-water mark keeps ids moving forward.
        assert_eq!(seq_floor(&dir), 3);
        assert_eq!(next_seq(&dir).unwrap(), 4);
        let _ = fs::remove_dir_all(&dir);
    }
}
