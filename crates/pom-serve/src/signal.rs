//! Minimal SIGTERM/SIGINT hook.
//!
//! No `libc` crate is available, so on Unix this declares the C `signal`
//! entry point directly and installs an async-signal-safe handler that
//! only flips an atomic flag. The accept loop polls the flag and turns it
//! into a graceful drain — `kill <pid>` behaves exactly like
//! `POST /shutdown`. On non-Unix targets this module is a no-op.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{AtomicBool, Ordering};

    /// Flag the handler flips; separate from the public one so tests can
    /// exercise the public API without raising real signals.
    pub(super) static INSTALLED: AtomicBool = AtomicBool::new(false);

    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_terminate(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        super::TERMINATION.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        // SAFETY: `signal` is the C standard library's handler
        // registration; `on_terminate` is a valid `extern "C" fn(i32)`
        // that performs only async-signal-safe operations.
        unsafe {
            signal(SIGTERM, on_terminate);
            signal(SIGINT, on_terminate);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Install the SIGTERM/SIGINT handler (idempotent).
pub fn install() {
    imp::install();
}

/// True once a termination signal has been received.
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}
