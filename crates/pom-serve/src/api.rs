//! HTTP route dispatch: maps requests onto [`JobManager`] operations.
//!
//! | Method & path            | Meaning                                           |
//! |--------------------------|---------------------------------------------------|
//! | `GET  /healthz`          | liveness probe                                    |
//! | `GET  /metrics`          | Prometheus text exposition of the global registry |
//! | `GET  /schema`           | the command registry as JSON (same document as    |
//! |                          | `pom help format=json`)                           |
//! | `POST /jobs`             | submit a campaign spec (TOML/JSON body) → `201`;  |
//! |                          | `?priority=high|normal|low&deadline_ms=N` extras  |
//! | `GET  /jobs`             | status of every job                               |
//! | `GET  /jobs/{id}`        | status of one job                                 |
//! | `GET  /jobs/{id}/rows`   | chunked JSONL result stream (`?follow=1` tails)   |
//! | `GET  /jobs/{id}/stats`  | per-job point-latency summary (count, p50/90/99)  |
//! | `POST /jobs/{id}/cancel` | stop scheduling the job, keep partial results     |
//! | `POST /jobs/{id}/resume` | re-queue a cancelled job's missing points         |
//! | `POST /shutdown`         | graceful daemon stop (drain in-flight, flush)     |
//!
//! Backpressure and admission control are explicit, with one status per
//! bound: `401` for a missing/unknown token when `auth=` is on, `408`
//! when a client holds a socket without completing a request inside the
//! read deadline, `429` for the active-job bound and per-token quotas
//! (the body names the offending bound), `503` + `Retry-After` when the
//! connection limit itself is hit (sent from the accept thread before
//! this module ever runs). Query strings are validated against the same
//! command-registry tables the CLI parses with
//! ([`pom_sweep::registry::defs`]): unknown parameters, duplicates and
//! type errors produce the same messages (offending key plus its doc
//! line) on both front ends, so `follow=yes` and `follow=2` succeed and
//! fail identically everywhere — the `schema_parity` differential suite
//! pins this.
//!
//! Every response carries an `X-Pom-Elapsed-Us` header (server-side
//! handling time; time-to-first-byte for streams), and every handled
//! request lands in the `pom_serve_requests_total` /
//! `pom_serve_request_duration_us` series labeled by method and route
//! *pattern* (`/jobs/{id}`, bounded cardinality).

use std::fs;
use std::io::{self, Read as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pom_obs::Level;
use pom_sweep::registry::{defs, toolkit, Parsed, RouteSpec};
use pom_sweep::value::write_json_str;

use crate::http::{self, Request, RequestError};
use crate::job::{JobManager, JobOpError, Priority, StopMode, SubmitError, SubmitOptions};
use crate::metrics::{metrics, record_request};

/// Upper bound on one wait for new rows while tailing a stream; the
/// manager's progress condvar wakes the stream much sooner when a row
/// actually lands. The bound only caps how late the stream notices
/// daemon shutdown.
const FOLLOW_WAIT: Duration = Duration::from_millis(100);

/// Everything a connection handler needs, cloned per accepted socket.
#[derive(Clone)]
pub struct ConnCtx {
    /// The shared job manager.
    pub manager: Arc<JobManager>,
    /// Set by `POST /shutdown` / signals; streams exit on it.
    pub stopping: Arc<AtomicBool>,
    /// Socket read deadline (slowloris bound); zero disables.
    pub read_timeout: Duration,
    /// Socket write deadline (slow-consumer bound); zero disables.
    pub write_timeout: Duration,
}

/// Render `{"error": msg}`.
pub fn error_json(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len() + 12);
    out.push_str("{\"error\":");
    write_json_str(msg, &mut out);
    out.push('}');
    out
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serve one connection: read a request, dispatch it, answer, close.
/// Transport errors are swallowed — the client is gone either way —
/// except read-deadline expiry, which answers `408` (best effort) so a
/// slowloris client at least learns why it was dropped.
pub fn handle_connection(mut stream: TcpStream, ctx: &ConnCtx) {
    let started = Instant::now();
    // The accepted socket can inherit the listener's non-blocking mode.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let timeout = |d: Duration| (d > Duration::ZERO).then_some(d);
    let _ = stream.set_read_timeout(timeout(ctx.read_timeout));
    let _ = stream.set_write_timeout(timeout(ctx.write_timeout));
    let _ = stream.set_nodelay(true);
    let req = match http::read_request(&mut stream) {
        Ok(req) => req,
        Err(RequestError::Closed) => return,
        Err(RequestError::Io(e)) => {
            if is_timeout(&e) {
                if pom_obs::enabled() {
                    metrics().read_timeouts.inc();
                }
                pom_obs::event(Level::Warn, "read_timeout", &[]);
                let _ = http::respond_json(
                    &mut stream,
                    408,
                    &error_json("request not completed within the read deadline"),
                    started,
                );
                record_request("other", "read_timeout", elapsed_us(started));
            }
            return;
        }
        Err(RequestError::Bad(status, msg)) => {
            let _ = http::respond_json(&mut stream, status, &error_json(&msg), started);
            record_request("other", "bad_request", elapsed_us(started));
            return;
        }
    };
    let _ = route(&mut stream, &req, ctx, started);
}

fn elapsed_us(started: Instant) -> u64 {
    started.elapsed().as_micros() as u64
}

/// The method label: known verbs pass through, anything else collapses
/// to `other` (the method string is client-controlled; labels must stay
/// bounded).
fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        "PUT" => "PUT",
        "DELETE" => "DELETE",
        "HEAD" => "HEAD",
        _ => "other",
    }
}

fn route(stream: &mut TcpStream, req: &Request, ctx: &ConnCtx, started: Instant) -> io::Result<()> {
    let manager = &ctx.manager;
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let (pattern, res) = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (
            "/healthz",
            http::respond_json(stream, 200, "{\"ok\":true}", started),
        ),

        ("GET", ["metrics"]) => (
            "/metrics",
            http::respond(
                stream,
                200,
                "text/plain; version=0.0.4",
                &pom_obs::registry().render(),
                started,
            ),
        ),

        ("GET", ["schema"]) => (
            "/schema",
            // The registry document, byte-identical to `pom help
            // format=json` (both render `Registry::schema_json`).
            http::respond_json(stream, 200, &toolkit().schema_json(), started),
        ),

        ("POST", ["jobs"]) => ("/jobs", submit(stream, req, manager, started)),

        ("GET", ["jobs"]) => ("/jobs", {
            let mut out = String::from("[");
            for (i, status) in manager.list().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&status.to_json());
            }
            out.push(']');
            http::respond_json(stream, 200, &out, started)
        }),

        ("GET", ["jobs", id]) => (
            "/jobs/{id}",
            match manager.status(id) {
                Some(status) => http::respond_json(stream, 200, &status.to_json(), started),
                None => not_found(stream, id, started),
            },
        ),

        ("GET", ["jobs", id, "rows"]) => (
            "/jobs/{id}/rows",
            stream_rows(stream, req, ctx, id, started),
        ),

        ("GET", ["jobs", id, "stats"]) => (
            "/jobs/{id}/stats",
            match parse_query(req, &defs::ROUTE_STATS) {
                Err(msg) => http::respond_json(stream, 400, &error_json(&msg), started),
                Ok(_) => match manager.job_stats(id) {
                    Some(json) => http::respond_json(stream, 200, &json, started),
                    None => not_found(stream, id, started),
                },
            },
        ),

        ("POST", ["jobs", id, "cancel"]) => (
            "/jobs/{id}/cancel",
            job_op(stream, id, manager.cancel(id), started),
        ),
        ("POST", ["jobs", id, "resume"]) => (
            "/jobs/{id}/resume",
            job_op(stream, id, manager.resume(id), started),
        ),

        ("POST", ["shutdown"]) => ("/shutdown", {
            ctx.stopping.store(true, Ordering::SeqCst);
            // Requesting the drain here (not just flagging it) wakes the
            // progress condvar, so every parked follow stream observes the
            // stop immediately and closes with its chunked terminator —
            // clients see a complete response, not a severed socket.
            manager.request_stop(StopMode::Drain);
            http::respond_json(stream, 200, "{\"stopping\":true}", started)
        }),

        (_, ["healthz" | "jobs" | "shutdown" | "metrics" | "schema", ..]) => (
            "method_not_allowed",
            http::respond_json(
                stream,
                405,
                &error_json(&format!("{} not allowed on {}", req.method, req.path)),
                started,
            ),
        ),
        _ => (
            "not_found",
            http::respond_json(
                stream,
                404,
                &error_json(&format!("no route for {} {}", req.method, req.path)),
                started,
            ),
        ),
    };
    record_request(method_label(&req.method), pattern, elapsed_us(started));
    res
}

fn not_found(stream: &mut TcpStream, id: &str, started: Instant) -> io::Result<()> {
    http::respond_json(
        stream,
        404,
        &error_json(&format!("no such job `{id}`")),
        started,
    )
}

/// Validate a request's query string against a route's registry spec.
/// The error string is `RouteSpec::explain`'s rendering — identical to
/// what the CLI prints for the same mistake on the same key.
fn parse_query(req: &Request, route: &RouteSpec) -> Result<Parsed, String> {
    route
        .parse_pairs(req.query.iter().map(|(k, v)| (k, v)))
        .map_err(|e| route.explain(&e))
}

fn submit(
    stream: &mut TcpStream,
    req: &Request,
    manager: &Arc<JobManager>,
    started: Instant,
) -> io::Result<()> {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return http::respond_json(
            stream,
            400,
            &error_json("spec body is not valid UTF-8"),
            started,
        );
    };
    // Submit-time extras ride on the query string, never the spec body:
    // the body must stay byte-identical to the CLI's spec (its hash is
    // the resume identity).
    let args = match parse_query(req, &defs::ROUTE_SUBMIT) {
        Ok(args) => args,
        Err(msg) => return http::respond_json(stream, 400, &error_json(&msg), started),
    };
    let priority = Priority::from_name(args.str("priority")).unwrap_or_default();
    let deadline_ms = args.opt_u64("deadline_ms");
    let opts = SubmitOptions {
        token: req.token().map(str::to_string),
        priority,
        deadline_ms,
    };
    match manager.submit_with(body, opts) {
        Ok(status) => http::respond_json(stream, 201, &status.to_json(), started),
        Err(e @ SubmitError::Spec(_)) => {
            http::respond_json(stream, 400, &error_json(&e.to_string()), started)
        }
        Err(e @ SubmitError::Unauthorized(_)) => {
            http::respond_json(stream, 401, &error_json(&e.to_string()), started)
        }
        Err(e @ (SubmitError::QueueFull { .. } | SubmitError::Quota { .. })) => {
            http::respond_json(stream, 429, &error_json(&e.to_string()), started)
        }
        Err(e @ SubmitError::Io(_)) => {
            http::respond_json(stream, 500, &error_json(&e.to_string()), started)
        }
    }
}

fn job_op(
    stream: &mut TcpStream,
    id: &str,
    result: Result<crate::job::JobStatus, JobOpError>,
    started: Instant,
) -> io::Result<()> {
    match result {
        Ok(status) => http::respond_json(stream, 200, &status.to_json(), started),
        Err(JobOpError::NotFound) => not_found(stream, id, started),
        Err(e @ JobOpError::Conflict(_)) => {
            http::respond_json(stream, 409, &error_json(&e.to_string()), started)
        }
        Err(e @ JobOpError::Io(_)) => {
            http::respond_json(stream, 500, &error_json(&e.to_string()), started)
        }
    }
}

/// Decrements the follow-stream gauge however the stream exits.
struct FollowGuard;

impl FollowGuard {
    fn new() -> Option<FollowGuard> {
        if !pom_obs::enabled() {
            return None;
        }
        metrics().follow_streams.add(1);
        Some(FollowGuard)
    }
}

impl Drop for FollowGuard {
    fn drop(&mut self) {
        metrics().follow_streams.sub(1);
    }
}

/// Stream a job's `results.jsonl` as chunked JSONL. With `follow=1` the
/// stream tails the file until the job quiesces (done / cancelled with no
/// in-flight points) or the daemon stops; rows flushed by the workers
/// appear with at most one poll interval of latency. A consumer that
/// stalls past the write deadline costs the daemon exactly one dropped
/// stream — the job itself never notices.
fn stream_rows(
    stream: &mut TcpStream,
    req: &Request,
    ctx: &ConnCtx,
    id: &str,
    started: Instant,
) -> io::Result<()> {
    let manager = &ctx.manager;
    // Same registry table as the CLI: identical accept/reject.
    let args = match parse_query(req, &defs::ROUTE_ROWS) {
        Ok(args) => args,
        Err(msg) => return http::respond_json(stream, 400, &error_json(&msg), started),
    };
    let follow = args.bool("follow");

    let Some(path) = manager.results_path(id) else {
        return not_found(stream, id, started);
    };
    let mut file = match fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => return http::respond_json(stream, 500, &error_json(&e.to_string()), started),
    };

    let _follow_guard = follow.then(FollowGuard::new);
    http::begin_chunked(stream, 200, "application/x-ndjson", started)?;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        // Observe quiescence BEFORE the read: any row durable before this
        // observation is visible to the read below, so no row can slip
        // between "saw quiescent" and "saw EOF".
        let done = manager.quiescent(id).unwrap_or(true) || ctx.stopping.load(Ordering::Relaxed);
        let n = file.read(&mut buf)?;
        if n > 0 {
            if let Err(e) = http::write_chunk(stream, &buf[..n]) {
                if is_timeout(&e) {
                    // Slow consumer: drop only this stream. The worker
                    // side keeps writing rows to the spool regardless.
                    if pom_obs::enabled() {
                        metrics().stream_write_drops.inc();
                    }
                    pom_obs::event(Level::Warn, "stream_write_drop", &[("job", id)]);
                }
                return Err(e);
            }
            continue;
        }
        if done || !follow {
            break;
        }
        manager.wait_progress(FOLLOW_WAIT);
    }
    http::end_chunked(stream)
}
