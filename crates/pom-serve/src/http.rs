//! A minimal hand-rolled HTTP/1.1 layer.
//!
//! The build environment has no registry access, so instead of an async
//! stack this module implements exactly what the job API needs over
//! `std::net`: blocking request parsing (request line, headers,
//! `Content-Length` body), plain responses, and chunked transfer encoding
//! for the row streams. One thread per connection; every response closes
//! the connection (`Connection: close`), which keeps the state machine
//! trivial and is plenty for a campaign-submission workload where the
//! expensive part is the integration, not the socket.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Largest accepted request body (campaign specs are small; a bound keeps
/// a misbehaving client from ballooning the daemon).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// Largest accepted request line / header line.
const MAX_LINE: usize = 64 * 1024;

/// Largest accepted header count (a hostile client must not grow the
/// header vector unboundedly).
const MAX_HEADERS: usize = 100;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, …
    pub method: String,
    /// Path without the query string (e.g. `/jobs/j1/rows`).
    pub path: String,
    /// Query pairs in arrival order, split on `&` and `=`. No
    /// percent-decoding — the API's keys and values are all URL-safe.
    pub query: Vec<(String, String)>,
    /// Headers in arrival order, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The client token, if any: `Authorization: Bearer <token>` wins,
    /// then the `X-Pom-Token` convenience header.
    pub fn token(&self) -> Option<&str> {
        if let Some(auth) = self.header("authorization") {
            let token = auth.strip_prefix("Bearer ").unwrap_or(auth).trim();
            if !token.is_empty() {
                return Some(token);
            }
        }
        self.header("x-pom-token").filter(|t| !t.is_empty())
    }
}

/// Read error carrying the HTTP status the connection should answer with.
#[derive(Debug)]
pub enum RequestError {
    /// Client closed without sending a request (not an error to report).
    Closed,
    /// Malformed request; respond with the given status + message.
    Bad(u16, String),
    /// Transport failure.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

fn read_crlf_line(r: &mut impl BufRead) -> Result<String, RequestError> {
    let mut line = String::new();
    let n = r
        .by_ref()
        .take(MAX_LINE as u64)
        .read_line(&mut line)
        .map_err(RequestError::Io)?;
    if n == 0 {
        return Err(RequestError::Closed);
    }
    if !line.ends_with('\n') {
        return Err(RequestError::Bad(431, "header line too long".into()));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parse one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_crlf_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Bad(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(505, format!("unsupported {version}")));
    }

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query: Vec<(String, String)> = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), "1".to_string()),
        })
        .collect();

    // Headers: framed by Content-Length; the rest are kept (lower-cased)
    // for the auth layer, under a hard count bound.
    let mut content_length: usize = 0;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_crlf_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::Bad(
                431,
                format!("more than {MAX_HEADERS} headers"),
            ));
        }
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| RequestError::Bad(400, format!("bad Content-Length `{value}`")))?;
            if content_length > MAX_BODY {
                return Err(RequestError::Bad(
                    413,
                    format!("body of {content_length} bytes exceeds the {MAX_BODY} limit"),
                ));
            }
        }
        headers.push((name, value.to_string()));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(RequestError::Io)?;
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// The standard reason phrase for the statuses this API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write a complete (non-chunked) response and flush. `started` is when
/// the request began; every response carries the server-side handling
/// time as an `X-Pom-Elapsed-Us` header.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    started: Instant,
) -> io::Result<()> {
    respond_extra(stream, status, content_type, body, started, &[])
}

/// [`respond`] with additional headers (e.g. `Retry-After` on a 503).
pub fn respond_extra(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    started: Instant,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nX-Pom-Elapsed-Us: {}\r\n",
        reason(status),
        body.len(),
        started.elapsed().as_micros()
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"Connection: close\r\n\r\n")?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The admission-control rejection: written on the *accept* thread,
/// before any request bytes are read or a handler thread is spawned —
/// an over-limit client must not cost the daemon more than this write.
pub fn respond_busy(stream: &mut TcpStream, retry_after_secs: u32, msg: &str) -> io::Result<()> {
    let body = crate::api::error_json(msg);
    write!(
        stream,
        "HTTP/1.1 503 {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: {retry_after_secs}\r\nConnection: close\r\n\r\n",
        reason(503),
        body.len(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Write a JSON response.
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    started: Instant,
) -> io::Result<()> {
    respond(stream, status, "application/json", body, started)
}

/// Begin a chunked response (the row streams). The elapsed header covers
/// time-to-first-byte — headers go out before the stream body.
pub fn begin_chunked(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    started: Instant,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nX-Pom-Elapsed-Us: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        started.elapsed().as_micros()
    )
}

/// Write one chunk (skips empty input: an empty chunk terminates the
/// stream in the chunked encoding).
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminate a chunked response.
pub fn end_chunked(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}
