//! Per-client token quotas (`auth=tokens.toml`).
//!
//! The daemon is open-access by default; handing [`crate::ServeConfig`]
//! a [`TokenBook`] turns on admission control for `POST /jobs`: requests
//! must carry a known token (`Authorization: Bearer <token>` or
//! `X-Pom-Token: <token>`, answered with 401 otherwise), and each token's
//! quotas bound how much of the daemon it can hold at once — rejected
//! submits answer 429 naming the offending bound. The token file is the
//! same TOML subset every other surface uses ([`pom_sweep::value`]):
//!
//! ```toml
//! [tokens.alice]
//! max_active_jobs = 2      # running jobs at once (0 = unlimited)
//! max_total_points = 1000  # grid points across running jobs (0 = unlimited)
//!
//! [tokens.bob]             # listed with no bounds: authenticated, unlimited
//! ```
//!
//! Accounting is over *running* jobs, so quota is returned as jobs
//! finish, and each job's owning token is persisted in its spool meta
//! file — a daemon restart recovers the books along with the jobs.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use pom_sweep::value::{parse_toml, Value};

/// Bounds for one token. Zero means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenQuota {
    /// Running jobs this token may hold at once.
    pub max_active_jobs: usize,
    /// Grid points summed across this token's running jobs (including
    /// the submission being checked).
    pub max_total_points: usize,
}

/// The parsed token file: token → quota.
#[derive(Debug, Clone, Default)]
pub struct TokenBook {
    tokens: BTreeMap<String, TokenQuota>,
}

impl TokenBook {
    /// Parse the `tokens.toml` format (see the module docs).
    pub fn parse(text: &str) -> Result<TokenBook, String> {
        let root = parse_toml(text).map_err(|e| e.to_string())?;
        let Some(Value::Table(tokens)) = root.get("tokens") else {
            return Err("token file needs a [tokens.<name>] table per token".into());
        };
        let mut book = TokenBook::default();
        for (name, spec) in tokens {
            let Value::Table(fields) = spec else {
                return Err(format!(
                    "token `{name}` must be a table ([tokens.{name}]), got a scalar"
                ));
            };
            let mut quota = TokenQuota::default();
            for (key, value) in fields {
                let bound = value.as_i64().filter(|v| *v >= 0).ok_or_else(|| {
                    format!("token `{name}`: `{key}` must be a non-negative integer")
                })? as usize;
                match key.as_str() {
                    "max_active_jobs" => quota.max_active_jobs = bound,
                    "max_total_points" => quota.max_total_points = bound,
                    other => {
                        return Err(format!(
                            "token `{name}`: unknown key `{other}` \
                             (allowed: max_active_jobs, max_total_points)"
                        ));
                    }
                }
            }
            book.tokens.insert(name.clone(), quota);
        }
        if book.tokens.is_empty() {
            return Err("token file defines no tokens; remove auth= for open access".into());
        }
        Ok(book)
    }

    /// Load and parse a token file.
    pub fn from_file(path: impl AsRef<Path>) -> io::Result<TokenBook> {
        let text = std::fs::read_to_string(path.as_ref())?;
        Self::parse(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.as_ref().display()),
            )
        })
    }

    /// The quota for a token, `None` when the token is unknown.
    pub fn get(&self, token: &str) -> Option<TokenQuota> {
        self.tokens.get(token).copied()
    }

    /// Number of tokens in the book.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no tokens are defined (never the case for a parsed book).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_quotas_and_defaults() {
        let book = TokenBook::parse(
            "[tokens.alice]\nmax_active_jobs = 2\nmax_total_points = 100\n[tokens.bob]\n",
        )
        .unwrap();
        assert_eq!(book.len(), 2);
        assert_eq!(
            book.get("alice"),
            Some(TokenQuota {
                max_active_jobs: 2,
                max_total_points: 100
            })
        );
        // Listed with no bounds: authenticated and unlimited.
        assert_eq!(book.get("bob"), Some(TokenQuota::default()));
        assert_eq!(book.get("mallory"), None);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        let err = TokenBook::parse("[tokens.a]\nmax_jobs = 1\n").unwrap_err();
        assert!(err.contains("unknown key `max_jobs`"), "{err}");
        let err = TokenBook::parse("[tokens.a]\nmax_active_jobs = -1\n").unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = TokenBook::parse("just_a_key = 1\n").unwrap_err();
        assert!(err.contains("[tokens"), "{err}");
        let err = TokenBook::parse("").unwrap_err();
        assert!(err.contains("[tokens"), "{err}");
    }
}
