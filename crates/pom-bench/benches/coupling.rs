//! Criterion bench: CSR sparse vs dense topology coupling sum
//! (DESIGN.md §8 ablation) and potential evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pom_core::Potential;
use pom_topology::Topology;
use std::hint::black_box;

/// Coupling sum through the CSR topology.
fn coupling_csr(topo: &Topology, pot: Potential, theta: &[f64], out: &mut [f64]) {
    for i in 0..topo.n() {
        let mut acc = 0.0;
        for &j in topo.neighbors(i) {
            acc += pot.value(theta[j as usize] - theta[i]);
        }
        out[i] = acc;
    }
}

/// Coupling sum through a dense 0/1 matrix (the naive Eq. 2 reading).
fn coupling_dense(dense: &[Vec<f64>], pot: Potential, theta: &[f64], out: &mut [f64]) {
    let n = theta.len();
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            if dense[i][j] != 0.0 {
                acc += pot.value(theta[j] - theta[i]);
            }
        }
        out[i] = acc;
    }
}

fn bench_coupling(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupling_sum");
    for n in [64usize, 256, 1024] {
        let topo = Topology::ring(n, &[-2, -1, 1]);
        let dense = topo.to_dense();
        let theta: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut out = vec![0.0; n];
        let pot = Potential::desync(3.0);

        group.bench_with_input(BenchmarkId::new("csr", n), &n, |b, _| {
            b.iter(|| {
                coupling_csr(&topo, pot, black_box(&theta), &mut out);
                black_box(out[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                coupling_dense(&dense, pot, black_box(&theta), &mut out);
                black_box(out[0])
            })
        });
    }
    group.finish();
}

fn bench_potentials(c: &mut Criterion) {
    let mut group = c.benchmark_group("potential_eval");
    let xs: Vec<f64> = (0..4096).map(|k| (k as f64 - 2048.0) * 0.01).collect();
    for (name, pot) in [
        ("tanh", Potential::Tanh),
        ("desync", Potential::desync(3.0)),
        ("kuramoto_sin", Potential::KuramotoSin),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &x in &xs {
                    acc += pot.value(black_box(x));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coupling, bench_potentials);
criterion_main!(benches);
