//! Criterion bench: campaign throughput (points/second) of the
//! `pom-sweep` engine at 1, 4 and all-core worker counts, on a grid of
//! short model runs. The same spec runs at every thread count, so the
//! numbers expose executor scaling rather than per-point variance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pom_sweep::Campaign;
use std::hint::black_box;

const POINTS: usize = 24;

fn campaign() -> Campaign {
    // 24 cheap points: 8 σ × 3 couplings on a small chain.
    Campaign::from_str(
        r#"
        [campaign]
        name = "bench"
        seed = 5
        observables = ["final_r", "final_spread", "mean_abs_gap"]
        [model]
        n = 8
        potential = "desync"
        [topology]
        kind = "chain"
        [init]
        kind = "spread"
        amplitude = 0.2
        [sim]
        t_end = 15.0
        samples = 30
        [[axes]]
        key = "model.sigma"
        grid = { start = 0.5, stop = 4.0, steps = 8 }
        [[axes]]
        key = "model.coupling"
        values = [2.0, 4.0, 6.0]
        "#,
    )
    .expect("bench spec")
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let campaign = campaign();
    assert_eq!(campaign.total_points(), POINTS);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("sweep");
    group.throughput(Throughput::Elements(POINTS as u64));
    for threads in [1usize, 4, max_threads] {
        group.bench_with_input(
            BenchmarkId::new("campaign_24pt", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let rows = campaign.run_collect(threads).expect("campaign run");
                    black_box(rows.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_point_workspace_reuse(c: &mut Criterion) {
    // One worker, points/sec: fresh SimWorkspace per point vs one reused
    // workspace (what each executor worker does since the allocation-free
    // core landed). Isolates the marginal value of scratch reuse on top
    // of the per-step allocation removal.
    use pom_core::SimWorkspace;
    use pom_sweep::{run_point, run_point_ws};

    let campaign = campaign();
    let mut group = c.benchmark_group("sweep");
    group.throughput(Throughput::Elements(POINTS as u64));
    group.bench_function("points_fresh_ws", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..POINTS {
                acc += run_point(&campaign.spec, i).observables[0].1;
            }
            black_box(acc)
        })
    });
    group.bench_function("points_reused_ws", |b| {
        b.iter(|| {
            let mut ws = SimWorkspace::new();
            let mut acc = 0.0;
            for i in 0..POINTS {
                acc += run_point_ws(&campaign.spec, i, &mut ws).observables[0].1;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_expansion(c: &mut Criterion) {
    // Grid expansion alone (no simulation): spec → assignments for a
    // 10×10×10 product.
    let campaign = Campaign::from_str(
        r#"
        [campaign]
        observables = ["final_r"]
        [model]
        n = 4
        [[axes]]
        key = "model.sigma"
        grid = { start = 0.5, stop = 5.0, steps = 10 }
        [[axes]]
        key = "model.coupling"
        grid = { start = 1.0, stop = 8.0, steps = 10 }
        [[axes]]
        key = "model.tcomp"
        grid = { start = 0.5, stop = 1.5, steps = 10 }
        "#,
    )
    .expect("expansion spec");
    let mut group = c.benchmark_group("sweep");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("expand_1000pt", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..campaign.total_points() {
                acc += campaign.spec.assignments_at(i).len();
                acc ^= campaign.spec.point_seed(i) as usize;
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_campaign_throughput,
    bench_point_workspace_reuse,
    bench_expansion
);
criterion_main!(benches);
