//! Criterion bench: discrete-event simulator throughput — scalable vs
//! memory-bound (the fluid contention machinery), eager vs rendezvous.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pom_kernels::Kernel;
use pom_mpisim::{MpiProtocol, ProgramSpec, Simulator, WorkSpec};
use pom_topology::{ClusterSpec, Placement};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let iterations = 30usize;
    for n in [20usize, 40, 80] {
        group.throughput(Throughput::Elements((n * iterations) as u64));
        for (label, kernel) in [
            ("pisolver", Kernel::pisolver()),
            ("stream", Kernel::stream_triad()),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let prog = ProgramSpec::new(n, iterations)
                    .kernel(kernel)
                    .work(WorkSpec::TargetSeconds(1e-3));
                let placement = Placement::packed(ClusterSpec::meggie(), n);
                b.iter(|| {
                    let sim = Simulator::new(prog.clone(), placement.clone()).unwrap();
                    black_box(sim.run().unwrap().makespan())
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("rendezvous", n), &n, |b, &n| {
            let prog = ProgramSpec::new(n, iterations)
                .work(WorkSpec::TargetSeconds(1e-3))
                .protocol(MpiProtocol::Rendezvous);
            let placement = Placement::packed(ClusterSpec::meggie(), n);
            b.iter(|| {
                let sim = Simulator::new(prog.clone(), placement.clone()).unwrap();
                black_box(sim.run().unwrap().makespan())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
