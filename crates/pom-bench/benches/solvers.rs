//! Criterion bench: integrator cost on the oscillator model — adaptive
//! Dopri5 vs fixed-step RK4 at matched spans, across system sizes
//! (DESIGN.md §8 ablation "adaptive vs fixed-step at matched accuracy") —
//! plus the raw RK4 hot loop, legacy (per-step allocation + dyn dispatch)
//! vs the workspace fast path. `bench_steps` (a `pom-bench` binary) emits
//! the same comparison as JSON for the `BENCH_*.json` records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pom_bench::rk4_step_legacy;
use pom_core::{
    InitialCondition, Normalization, PomBuilder, Potential, SimOptions, SimWorkspace, SolverChoice,
};
use pom_ode::{Rk4, Stepper, Workspace};
use pom_topology::Topology;
use std::hint::black_box;

fn build_model(n: usize) -> pom_core::Pom {
    PomBuilder::new(n)
        .topology(Topology::ring(n, &[-1, 1]))
        .potential(Potential::desync(3.0))
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(4.0)
        .normalization(Normalization::ByDegree)
        .build()
        .unwrap()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    for n in [64usize, 256, 1024] {
        let model = build_model(n);
        let init = InitialCondition::RandomSpread {
            amplitude: 0.3,
            seed: 1,
        };
        group.bench_with_input(BenchmarkId::new("dopri5", n), &n, |b, _| {
            b.iter(|| {
                let run = model
                    .simulate_with(
                        init.clone(),
                        &SimOptions::new(10.0)
                            .samples(50)
                            .solver(SolverChoice::Dopri5 {
                                rtol: 1e-6,
                                atol: 1e-8,
                            }),
                    )
                    .unwrap();
                black_box(run.final_order_parameter())
            })
        });
        group.bench_with_input(BenchmarkId::new("bs23", n), &n, |b, _| {
            let y0 = init.phases(n);
            b.iter(|| {
                let (traj, _) = pom_ode::Bs23::new()
                    .rtol(1e-6)
                    .atol(1e-8)
                    .integrate(&model, 0.0, &y0, 10.0)
                    .unwrap();
                black_box(traj.last().unwrap()[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("rk4_h0.02", n), &n, |b, _| {
            b.iter(|| {
                let run = model
                    .simulate_with(
                        init.clone(),
                        &SimOptions::new(10.0)
                            .samples(50)
                            .solver(SolverChoice::FixedRk4 { h: 0.02 }),
                    )
                    .unwrap();
                black_box(run.final_order_parameter())
            })
        });
        group.bench_with_input(BenchmarkId::new("rk4_h0.02_ws_reuse", n), &n, |b, _| {
            // Same integration through the workspace fast path, one
            // workspace across all iterations (the sweep-worker pattern).
            let mut ws = SimWorkspace::new();
            b.iter(|| {
                let run = model
                    .simulate_with_ws(
                        init.clone(),
                        &SimOptions::new(10.0)
                            .samples(50)
                            .solver(SolverChoice::FixedRk4 { h: 0.02 }),
                        &mut ws,
                    )
                    .unwrap();
                black_box(run.final_order_parameter())
            })
        });
    }
    group.finish();
}

fn bench_rk4_hot_loop(c: &mut Criterion) {
    const STEPS: usize = 2_000;
    let mut group = c.benchmark_group("rk4_hot_loop");
    group.throughput(Throughput::Elements(STEPS as u64));
    for n in [16usize, 256] {
        // Norm-preserving pair rotation: cheap RHS, no underflow into
        // denormals over long step counts.
        let sys = pom_ode::FnSystem::new(n, |_t, y: &[f64], d: &mut [f64]| {
            let mut i = 0;
            while i + 1 < y.len() {
                d[i] = y[i + 1];
                d[i + 1] = -y[i];
                i += 2;
            }
        });
        let y0: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.01).collect();
        let h = 0.02;

        group.bench_with_input(BenchmarkId::new("legacy_alloc_dyn", n), &n, |b, _| {
            b.iter(|| {
                let mut y = y0.clone();
                let mut y_next = vec![0.0; n];
                let mut t = 0.0;
                for _ in 0..STEPS {
                    rk4_step_legacy(&sys, t, &y, h, &mut y_next);
                    std::mem::swap(&mut y, &mut y_next);
                    t += h;
                }
                black_box(y[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("workspace_mono", n), &n, |b, _| {
            let mut ws = Workspace::new();
            b.iter(|| {
                let (stage, drive) = ws.split();
                let [mut y, mut y_next] = drive.slices::<2>(n);
                y.copy_from_slice(&y0);
                let mut t = 0.0;
                for _ in 0..STEPS {
                    Rk4.step(&sys, t, y, h, y_next, stage);
                    std::mem::swap(&mut y, &mut y_next);
                    t += h;
                }
                black_box(y[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_rk4_hot_loop);
criterion_main!(benches);
