//! Criterion bench: integrator cost on the oscillator model — adaptive
//! Dopri5 vs fixed-step RK4 at matched spans, across system sizes
//! (DESIGN.md §8 ablation "adaptive vs fixed-step at matched accuracy").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pom_core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions, SolverChoice};
use pom_topology::Topology;
use std::hint::black_box;

fn build_model(n: usize) -> pom_core::Pom {
    PomBuilder::new(n)
        .topology(Topology::ring(n, &[-1, 1]))
        .potential(Potential::desync(3.0))
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(4.0)
        .normalization(Normalization::ByDegree)
        .build()
        .unwrap()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    for n in [64usize, 256, 1024] {
        let model = build_model(n);
        let init = InitialCondition::RandomSpread {
            amplitude: 0.3,
            seed: 1,
        };
        group.bench_with_input(BenchmarkId::new("dopri5", n), &n, |b, _| {
            b.iter(|| {
                let run = model
                    .simulate_with(
                        init.clone(),
                        &SimOptions::new(10.0)
                            .samples(50)
                            .solver(SolverChoice::Dopri5 {
                                rtol: 1e-6,
                                atol: 1e-8,
                            }),
                    )
                    .unwrap();
                black_box(run.final_order_parameter())
            })
        });
        group.bench_with_input(BenchmarkId::new("bs23", n), &n, |b, _| {
            let y0 = init.phases(n);
            b.iter(|| {
                let (traj, _) = pom_ode::Bs23::new()
                    .rtol(1e-6)
                    .atol(1e-8)
                    .integrate(&model, 0.0, &y0, 10.0)
                    .unwrap();
                black_box(traj.last().unwrap()[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("rk4_h0.02", n), &n, |b, _| {
            b.iter(|| {
                let run = model
                    .simulate_with(
                        init.clone(),
                        &SimOptions::new(10.0)
                            .samples(50)
                            .solver(SolverChoice::FixedRk4 { h: 0.02 }),
                    )
                    .unwrap();
                black_box(run.final_order_parameter())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
