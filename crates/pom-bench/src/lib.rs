//! Shared harness for the per-figure reproduction binaries.
//!
//! Every `repro_*` binary regenerates one table/figure of the paper (see
//! DESIGN.md §3 for the experiment index) and:
//!
//! 1. prints the series as an aligned text table to stdout,
//! 2. writes CSV (and, where it makes sense, SVG) into `target/repro/`,
//! 3. prints a `VERDICT:` line summarizing how the measured shape relates
//!    to the paper's claim — EXPERIMENTS.md collects these.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use pom_core::SimWorkspace;
use pom_ode::{OdeSystem, Rk4, Stepper, Trajectory, Workspace};
use pom_sweep::{
    run_point_ws, CampaignSpec, CampaignSummary, PointRow, ResultSink, RunOptions, SweepError,
};

/// Faithful replica of the pre-workspace `Rk4::step`: five heap
/// allocations per step, right-hand side reached through a vtable.
///
/// This is the load-bearing baseline for the hot-loop speedup numbers —
/// `benches/solvers.rs` and the `bench_steps` binary both measure against
/// this one copy, so the criterion comparison and the recorded
/// `BENCH_*.json` always benchmark the same code.
pub fn rk4_step_legacy(sys: &dyn OdeSystem, t: f64, y: &[f64], h: f64, y_out: &mut [f64]) {
    let n = y.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut ytmp = vec![0.0; n];
    sys.eval(t, y, &mut k1);
    for i in 0..n {
        ytmp[i] = y[i] + 0.5 * h * k1[i];
    }
    sys.eval(t + 0.5 * h, &ytmp, &mut k2);
    for i in 0..n {
        ytmp[i] = y[i] + 0.5 * h * k2[i];
    }
    sys.eval(t + 0.5 * h, &ytmp, &mut k3);
    for i in 0..n {
        ytmp[i] = y[i] + h * k3[i];
    }
    sys.eval(t + h, &ytmp, &mut k4);
    for i in 0..n {
        y_out[i] = y[i] + (h / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Faithful replica of the pre-observability
/// `FixedStepSolver::integrate_with` driver: same index-recomputed step
/// targets, same record cadence, same non-finite scan at record points —
/// but no RHS-evaluation accounting and no metric flush. The
/// `obs_overhead` gate in `bench_steps` times this against the current
/// (instrumented, obs-disabled) path to bound the disabled-mode cost.
///
/// The one unavoidable divergence: the replica records through the
/// public `Trajectory::push` (two branch checks per recorded sample)
/// where the solver uses the crate-private unchecked variant — a bias
/// *against* the instrumented path, so the gate stays conservative.
pub fn integrate_fixed_rk4_pre_obs<Sys: OdeSystem + ?Sized>(
    sys: &Sys,
    t0: f64,
    y0: &[f64],
    t_end: f64,
    h: f64,
    record_every: usize,
    ws: &mut Workspace,
) -> Trajectory {
    let n = sys.dim();
    let span = t_end - t0;
    let n_steps = (span / h).ceil().max(1.0) as usize;
    let record_every = record_every.max(1);

    let mut traj = Trajectory::with_capacity(n, n_steps / record_every + 2);
    traj.push(t0, y0).expect("first sample");

    let (stage, drive) = ws.split();
    let [mut y, mut y_next] = drive.slices::<2>(n);
    y.copy_from_slice(y0);
    let mut t = t0;

    for step_idx in 1..=n_steps {
        let t_target = if step_idx == n_steps {
            t_end
        } else {
            t0 + span * (step_idx as f64 / n_steps as f64)
        };
        let h_step = t_target - t;
        Rk4.step(sys, t, y, h_step, y_next, stage);
        std::mem::swap(&mut y, &mut y_next);
        t = t_target;
        if step_idx % record_every == 0 || step_idx == n_steps {
            assert!(y.iter().all(|v| v.is_finite()), "non-finite state");
            traj.push(t, y).expect("sample");
        }
    }
    traj
}

/// Faithful replica of the pre-observability `run_campaign`: identical
/// atomic-cursor work distribution, per-worker workspace reuse, and
/// in-order reorder-buffer emission — with every instrumentation site
/// (campaign counter, queue-depth gauge, per-point timing) absent rather
/// than disabled. The other half of the `obs_overhead` gate.
pub fn run_campaign_pre_obs(
    spec: &CampaignSpec,
    opts: &RunOptions,
    sink: &mut dyn ResultSink,
) -> Result<CampaignSummary, SweepError> {
    let total = spec.total_points();
    let pending: Vec<usize> = (0..total).filter(|i| !opts.completed.contains(i)).collect();
    let n_workers = opts.effective_threads().min(pending.len().max(1));

    sink.begin(spec)?;

    let mut summary = CampaignSummary {
        total,
        executed: 0,
        skipped: total - pending.len(),
        errors: 0,
        cancelled: false,
    };
    if pending.is_empty() {
        sink.end(&summary)?;
        return Ok(summary);
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<PointRow>();

    let mut sink_error: Option<std::io::Error> = None;
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let pending = &pending;
            let cancel = opts.cancel.clone();
            scope.spawn(move || {
                let mut ws = SimWorkspace::new();
                loop {
                    if cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed)) {
                        break;
                    }
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = pending.get(k) else { break };
                    let row = run_point_ws(spec, index, &mut ws);
                    if tx.send(row).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut buffer: BTreeMap<usize, PointRow> = BTreeMap::new();
        let mut emit_at = 0usize;
        for row in rx {
            buffer.insert(row.index, row);
            while emit_at < pending.len() {
                let next_index = pending[emit_at];
                let Some(row) = buffer.remove(&next_index) else {
                    break;
                };
                summary.executed += 1;
                if row.error.is_some() {
                    summary.errors += 1;
                }
                if let Err(e) = sink.row(&row) {
                    sink_error = Some(e);
                    return;
                }
                emit_at += 1;
            }
        }
    });

    summary.cancelled = opts
        .cancel
        .as_ref()
        .is_some_and(|c| c.load(Ordering::Relaxed));
    if let Some(e) = sink_error {
        return Err(SweepError::Io(e));
    }
    sink.end(&summary)?;
    Ok(summary)
}

/// Output directory for reproduction artifacts (`target/repro`), created
/// on demand.
pub fn repro_dir() -> PathBuf {
    // CARGO_TARGET_DIR may relocate the target; fall back to ./target.
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    let dir = target.join("repro");
    fs::create_dir_all(&dir).expect("create target/repro");
    dir
}

/// Write an artifact file and echo its path.
pub fn save(name: &str, content: &str) -> PathBuf {
    let path = repro_dir().join(name);
    fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
    path
}

/// Format one aligned table row from string cells.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a standard experiment header.
pub fn header(id: &str, claim: &str) {
    println!("================================================================");
    println!("experiment {id}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Print the final verdict line (grepped by EXPERIMENTS.md tooling).
pub fn verdict(ok: bool, detail: &str) {
    println!(
        "VERDICT: {} — {detail}",
        if ok { "REPRODUCED" } else { "DEVIATES" }
    );
}

/// Check a file landed where expected (used by the smoke test).
pub fn exists(path: &Path) -> bool {
    path.is_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_dir_is_created() {
        let d = repro_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn save_roundtrip() {
        let p = save("selftest.txt", "hello");
        assert!(exists(&p));
        assert_eq!(fs::read_to_string(&p).unwrap(), "hello");
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
