//! Shared harness for the per-figure reproduction binaries.
//!
//! Every `repro_*` binary regenerates one table/figure of the paper (see
//! DESIGN.md §3 for the experiment index) and:
//!
//! 1. prints the series as an aligned text table to stdout,
//! 2. writes CSV (and, where it makes sense, SVG) into `target/repro/`,
//! 3. prints a `VERDICT:` line summarizing how the measured shape relates
//!    to the paper's claim — EXPERIMENTS.md collects these.

use std::fs;
use std::path::{Path, PathBuf};

use pom_ode::OdeSystem;

/// Faithful replica of the pre-workspace `Rk4::step`: five heap
/// allocations per step, right-hand side reached through a vtable.
///
/// This is the load-bearing baseline for the hot-loop speedup numbers —
/// `benches/solvers.rs` and the `bench_steps` binary both measure against
/// this one copy, so the criterion comparison and the recorded
/// `BENCH_*.json` always benchmark the same code.
pub fn rk4_step_legacy(sys: &dyn OdeSystem, t: f64, y: &[f64], h: f64, y_out: &mut [f64]) {
    let n = y.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut ytmp = vec![0.0; n];
    sys.eval(t, y, &mut k1);
    for i in 0..n {
        ytmp[i] = y[i] + 0.5 * h * k1[i];
    }
    sys.eval(t + 0.5 * h, &ytmp, &mut k2);
    for i in 0..n {
        ytmp[i] = y[i] + 0.5 * h * k2[i];
    }
    sys.eval(t + 0.5 * h, &ytmp, &mut k3);
    for i in 0..n {
        ytmp[i] = y[i] + h * k3[i];
    }
    sys.eval(t + h, &ytmp, &mut k4);
    for i in 0..n {
        y_out[i] = y[i] + (h / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Output directory for reproduction artifacts (`target/repro`), created
/// on demand.
pub fn repro_dir() -> PathBuf {
    // CARGO_TARGET_DIR may relocate the target; fall back to ./target.
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    let dir = target.join("repro");
    fs::create_dir_all(&dir).expect("create target/repro");
    dir
}

/// Write an artifact file and echo its path.
pub fn save(name: &str, content: &str) -> PathBuf {
    let path = repro_dir().join(name);
    fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
    path
}

/// Format one aligned table row from string cells.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a standard experiment header.
pub fn header(id: &str, claim: &str) {
    println!("================================================================");
    println!("experiment {id}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Print the final verdict line (grepped by EXPERIMENTS.md tooling).
pub fn verdict(ok: bool, detail: &str) {
    println!(
        "VERDICT: {} — {detail}",
        if ok { "REPRODUCED" } else { "DEVIATES" }
    );
}

/// Check a file landed where expected (used by the smoke test).
pub fn exists(path: &Path) -> bool {
    path.is_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_dir_is_created() {
        let d = repro_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn save_roundtrip() {
        let p = save("selftest.txt", "hello");
        assert!(exists(&p));
        assert_eq!(fs::read_to_string(&p).unwrap(), "hello");
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
