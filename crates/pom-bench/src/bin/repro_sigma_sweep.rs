//! Reproduce §5.2.2 (experiment C4): the interaction horizon σ governs
//! the bottlenecked asymptotic state.
//!
//! Paper claims: phase differences settle at the first zero `2σ/3`;
//! small σ ≈ stiff, almost synchronized code; large σ = strong
//! desynchronization; σ correlates with idle-wave speed and phase
//! spread (a 3× stiffness increase gave 3× speed and correspondingly
//! smaller spread between Fig. 2(b) and (d)).
//!
//! Both sweeps run as declarative `pom-sweep` campaigns across all cores.

use pom_bench::{header, save, verdict};
use pom_sweep::Campaign;
use pom_viz::write_table;

const SIGMAS: [f64; 6] = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0];

/// Asymptotic |adjacent gap| on a chain (the clean 2σ/3 geometry). The
/// original loop used `amplitude = 0.1·σ`, so σ and amplitude sweep as a
/// zipped axis.
fn gap_campaign() -> Campaign {
    let zipped: Vec<String> = SIGMAS
        .iter()
        .map(|s| format!("[{s}, {}]", 0.1 * s))
        .collect();
    let spec = format!(
        r#"
        [campaign]
        name = "sigma-gap"
        observables = ["mean_abs_gap", "rel_err_two_thirds"]
        [model]
        n = 16
        potential = "desync"
        tcomp = 0.9
        tcomm = 0.1
        coupling = 4.0
        [topology]
        kind = "chain"
        [init]
        kind = "spread"
        seed = 11
        [sim]
        t_end = 400.0
        samples = 200
        [[axes]]
        keys = ["model.sigma", "init.amplitude"]
        values = [{}]
        "#,
        zipped.join(", ")
    );
    Campaign::from_str(&spec).expect("gap campaign spec")
}

/// Idle-wave speed through a developed wavefront with horizon σ.
fn wave_campaign() -> Campaign {
    let spec = format!(
        r#"
        [campaign]
        name = "sigma-wave"
        observables = ["wave_speed"]
        [model]
        n = 32
        potential = "desync"
        tcomp = 0.9
        tcomm = 0.1
        coupling = 4.0
        [topology]
        kind = "ring"
        [init]
        kind = "sync"
        [inject]
        rank = 5
        at = 2.0
        len = 3.0
        extra = 1.0
        [sim]
        t_end = 60.0
        samples = 600
        [wave]
        threshold = 0.05
        max_distance = 10
        [[axes]]
        key = "model.sigma"
        values = [{}]
        "#,
        SIGMAS.map(|s| s.to_string()).join(", ")
    );
    Campaign::from_str(&spec).expect("wave campaign spec")
}

fn main() {
    header(
        "C4",
        "gaps settle at 2σ/3; small σ = stiff/near-sync, large σ = strong desync; \
         σ anticorrelates with wave speed (3× stiffer ⇒ 3× faster, smaller spread)",
    );

    let gap_rows = gap_campaign().run_collect(0).expect("gap campaign");
    let wave_rows = wave_campaign().run_collect(0).expect("wave campaign");

    println!(
        "{:>6}  {:>12}  {:>10}  {:>10}  {:>14}",
        "σ", "gap [rad]", "2σ/3", "rel.err", "wave [rk/cyc]"
    );
    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    let mut speeds = Vec::new();
    for (g, w) in gap_rows.iter().zip(&wave_rows) {
        assert!(
            g.error.is_none() && w.error.is_none(),
            "{:?} {:?}",
            g.error,
            w.error
        );
        let sigma = g.params[0].1.as_f64().unwrap();
        let gap = g.observables[0].1;
        let rel = g.observables[1].1;
        let expect = 2.0 * sigma / 3.0;
        let speed = Some(w.observables[0].1).filter(|s| s.is_finite());
        println!(
            "{sigma:>6.1}  {gap:>12.4}  {expect:>10.4}  {rel:>10.4}  {:>14}",
            speed.map_or("n/a".into(), |s| format!("{s:.3}"))
        );
        rows.push(vec![sigma, gap, expect, rel, speed.unwrap_or(-1.0)]);
        gaps.push((sigma, gap, rel));
        if let Some(s) = speed {
            speeds.push((sigma, s));
        }
    }
    save(
        "sigma_sweep.csv",
        &write_table(
            &["sigma", "gap", "two_thirds_sigma", "rel_err", "wave_speed"],
            &rows,
        ),
    );

    // The paper's Fig. 2(b) → (d) stiffness step: σ 3 → 1.
    let gap_b = gaps.iter().find(|g| g.0 == 3.0).unwrap().1;
    let gap_d = gaps.iter().find(|g| g.0 == 1.0).unwrap().1;
    println!(
        "\nFig. 2(b)→(d) analog: σ 3 → 1 shrinks the gap {gap_b:.3} → {gap_d:.3} rad ({:.2}×)",
        gap_b / gap_d
    );

    let law_ok = gaps.iter().all(|g| g.2 < 0.05);
    let monotone_gap = gaps.windows(2).all(|w| w[1].1 > w[0].1);
    // Wave speed should not *increase* with σ (stiffness = small σ is
    // faster); tolerate plateaus.
    let speed_trend_ok = speeds.windows(2).all(|w| w[1].1 <= w[0].1 * 1.15);
    let ratio_bd = gap_b / gap_d;

    verdict(
        law_ok && monotone_gap && speed_trend_ok && (ratio_bd - 3.0).abs() < 0.3,
        &format!(
            "2σ/3 law holds within 5% across σ ∈ [0.5, 6]; gap scales {ratio_bd:.2}× for the 3× stiffness step"
        ),
    );
}
