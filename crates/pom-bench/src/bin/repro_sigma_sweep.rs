//! Reproduce §5.2.2 (experiment C4): the interaction horizon σ governs
//! the bottlenecked asymptotic state.
//!
//! Paper claims: phase differences settle at the first zero `2σ/3`;
//! small σ ≈ stiff, almost synchronized code; large σ = strong
//! desynchronization; σ correlates with idle-wave speed and phase
//! spread (a 3× stiffness increase gave 3× speed and correspondingly
//! smaller spread between Fig. 2(b) and (d)).

use pom_analysis::{model_wave_arrivals, wave_speed_fit};
use pom_bench::{header, save, verdict};
use pom_core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom_noise::{DelayEvent, OneOffDelays};
use pom_topology::Topology;
use pom_viz::write_table;

/// Asymptotic |adjacent gap| on a chain (the clean 2σ/3 geometry).
fn asymptotic_gap(sigma: f64) -> f64 {
    let n = 16;
    let run = PomBuilder::new(n)
        .topology(Topology::chain(n, &[-1, 1]))
        .potential(Potential::desync(sigma))
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(4.0)
        .normalization(Normalization::ByDegree)
        .build()
        .unwrap()
        .simulate_with(
            InitialCondition::RandomSpread { amplitude: 0.1 * sigma, seed: 11 },
            &SimOptions::new(400.0).samples(200),
        )
        .unwrap();
    let gaps = run.final_adjacent_differences();
    gaps.iter().map(|g| g.abs()).sum::<f64>() / gaps.len() as f64
}

/// Idle-wave speed through a developed wavefront with horizon σ.
fn wave_speed_at_sigma(sigma: f64) -> Option<f64> {
    let n = 32;
    let run = |inject: bool| {
        let mut b = PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(Potential::desync(sigma))
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(4.0)
            .normalization(Normalization::ByDegree);
        if inject {
            b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                rank: 5,
                t_start: 2.0,
                duration: 3.0,
                extra: 1.0,
            }]));
        }
        b.build()
            .unwrap()
            .simulate_with(InitialCondition::Synchronized, &SimOptions::new(60.0).samples(600))
            .unwrap()
    };
    let arrivals = model_wave_arrivals(&run(true), &run(false), 0.05);
    wave_speed_fit(&arrivals, 5, 10).mean_speed()
}

fn main() {
    header(
        "C4",
        "gaps settle at 2σ/3; small σ = stiff/near-sync, large σ = strong desync; \
         σ anticorrelates with wave speed (3× stiffer ⇒ 3× faster, smaller spread)",
    );

    println!(
        "{:>6}  {:>12}  {:>10}  {:>10}  {:>14}",
        "σ", "gap [rad]", "2σ/3", "rel.err", "wave [rk/cyc]"
    );
    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    let mut speeds = Vec::new();
    for &sigma in &[0.5, 1.0, 2.0, 3.0, 4.0, 6.0] {
        let gap = asymptotic_gap(sigma);
        let expect = 2.0 * sigma / 3.0;
        let rel = (gap - expect).abs() / expect;
        let speed = wave_speed_at_sigma(sigma);
        println!(
            "{sigma:>6.1}  {gap:>12.4}  {expect:>10.4}  {rel:>10.4}  {:>14}",
            speed.map_or("n/a".into(), |s| format!("{s:.3}"))
        );
        rows.push(vec![sigma, gap, expect, rel, speed.unwrap_or(-1.0)]);
        gaps.push((sigma, gap, rel));
        if let Some(s) = speed {
            speeds.push((sigma, s));
        }
    }
    save(
        "sigma_sweep.csv",
        &write_table(&["sigma", "gap", "two_thirds_sigma", "rel_err", "wave_speed"], &rows),
    );

    // The paper's Fig. 2(b) → (d) stiffness step: σ 3 → 1.
    let gap_b = gaps.iter().find(|g| g.0 == 3.0).unwrap().1;
    let gap_d = gaps.iter().find(|g| g.0 == 1.0).unwrap().1;
    println!(
        "\nFig. 2(b)→(d) analog: σ 3 → 1 shrinks the gap {gap_b:.3} → {gap_d:.3} rad ({:.2}×)",
        gap_b / gap_d
    );

    let law_ok = gaps.iter().all(|g| g.2 < 0.05);
    let monotone_gap = gaps.windows(2).all(|w| w[1].1 > w[0].1);
    // Wave speed should not *increase* with σ (stiffness = small σ is
    // faster); tolerate plateaus.
    let speed_trend_ok = speeds.windows(2).all(|w| w[1].1 <= w[0].1 * 1.15);
    let ratio_bd = gap_b / gap_d;

    verdict(
        law_ok && monotone_gap && speed_trend_ok && (ratio_bd - 3.0).abs() < 0.3,
        &format!(
            "2σ/3 law holds within 5% across σ ∈ [0.5, 6]; gap scales {ratio_bd:.2}× for the 3× stiffness step"
        ),
    );
}
