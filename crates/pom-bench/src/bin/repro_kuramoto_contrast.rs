//! Reproduce §2.2.2 (experiment C5): why the plain Kuramoto model is
//! unsuitable for parallel programs.
//!
//! Three deficiencies, each demonstrated against the POM:
//! 1. all-to-all coupling acts like a per-step barrier — disturbances are
//!    absorbed collectively and "extremely fast", no local wave exists;
//! 2. the periodic sin potential allows *phase slips* (2π-apart states
//!    are indistinguishable — impossible for communicating processes);
//! 3. no spontaneous desynchronization: the sin potential cannot produce
//!    the bottlenecked wavefront state.

use pom_bench::{header, save, verdict};
use pom_core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom_noise::{DelayEvent, OneOffDelays};
use pom_topology::Topology;
use pom_viz::write_table;

fn run_with_delay(topology: Topology, potential: Potential) -> pom_core::PomRun {
    let n = topology.n();
    PomBuilder::new(n)
        .topology(topology)
        .potential(potential)
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(4.0)
        .normalization(Normalization::ByDegree)
        .local_noise(OneOffDelays::new(vec![DelayEvent {
            rank: 5,
            t_start: 2.0,
            duration: 2.0,
            extra: 1.0,
        }]))
        .build()
        .unwrap()
        .simulate_with(
            InitialCondition::Synchronized,
            &SimOptions::new(50.0).samples(500),
        )
        .unwrap()
}

fn main() {
    header(
        "C5",
        "plain Kuramoto (all-to-all, sin) = synchronizing barrier with phase slips; \
         POM (sparse topology, tanh/desync) = finite-speed waves, slip-free, can desync",
    );
    let n = 24;

    // 1. Barrier effect: compare the peak phase spread after the same
    // one-off delay.
    let kuramoto = run_with_delay(Topology::all_to_all(n), Potential::KuramotoSin);
    let pom = run_with_delay(Topology::ring(n, &[-1, 1]), Potential::Tanh);
    let peak = |r: &pom_core::PomRun| {
        r.phase_spread_series()
            .iter()
            .map(|p| p.1)
            .fold(0.0f64, f64::max)
    };
    let (pk, pp) = (peak(&kuramoto), peak(&pom));
    println!("peak spread after one-off delay: all-to-all sin {pk:.3} rad, ring tanh {pp:.3} rad");
    let barrier_ok = pk < 0.5 * pp;

    // 2. Phase slips: pull one oscillator by almost 2π. Under sin the
    // system relaxes to a 2π-shifted ("slipped") state; under tanh the
    // oscillator is pulled all the way back.
    let pull = 6.0;
    let slip_run = |potential: Potential| {
        let mut init = vec![0.0; n];
        init[5] = pull;
        PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(potential)
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(4.0)
            .normalization(Normalization::ByDegree)
            .build()
            .unwrap()
            .simulate_with(
                InitialCondition::Phases(init),
                &SimOptions::new(150.0).samples(300),
            )
            .unwrap()
    };
    let sin_run = slip_run(Potential::KuramotoSin);
    let tanh_run = slip_run(Potential::Tanh);
    let final_offset = |r: &pom_core::PomRun| {
        let s = r.trajectory().last().unwrap();
        (s[5] - s[0]).abs()
    };
    let (off_sin, off_tanh) = (final_offset(&sin_run), final_offset(&tanh_run));
    println!("final raw offset of pulled oscillator: sin {off_sin:.3} rad, tanh {off_tanh:.3} rad");
    let slip_ok = off_sin > 5.0 && off_tanh < 1e-3; // sin stuck one turn ahead

    // 3. No desync mode: whatever σ-like scale, sin cannot hold a
    // wavefront — from a spread start it either resyncs or slips to
    // multiples of 2π; the desync potential holds gaps at 2σ/3.
    let spread_run = |potential: Potential| {
        PomBuilder::new(n)
            .topology(Topology::chain(n, &[-1, 1]))
            .potential(potential)
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(4.0)
            .normalization(Normalization::ByDegree)
            .build()
            .unwrap()
            .simulate_with(
                InitialCondition::RandomSpread {
                    amplitude: 0.3,
                    seed: 3,
                },
                &SimOptions::new(300.0).samples(300),
            )
            .unwrap()
    };
    let sin_gaps = spread_run(Potential::KuramotoSin).final_adjacent_differences();
    let desync_gaps = spread_run(Potential::desync(3.0)).final_adjacent_differences();
    let near = |x: f64, target: f64| (x - target).abs() < 0.05;
    // Under sin every gap collapses to (a multiple of) 2π or 0.
    let sin_no_wavefront = sin_gaps.iter().all(|g| {
        near(g.abs() % std::f64::consts::TAU, 0.0)
            || near(g.abs() % std::f64::consts::TAU, std::f64::consts::TAU)
    });
    let desync_wavefront = desync_gaps.iter().all(|g| near(g.abs(), 2.0));
    println!(
        "asymptotic gaps: sin all ∈ 2πZ: {sin_no_wavefront}; desync all at 2σ/3: {desync_wavefront}"
    );

    save(
        "kuramoto_contrast.csv",
        &write_table(
            &["metric", "kuramoto", "pom"],
            &[
                vec![0.0, pk, pp],
                vec![1.0, off_sin, off_tanh],
                vec![
                    2.0,
                    f64::from(u8::from(sin_no_wavefront)),
                    f64::from(u8::from(desync_wavefront)),
                ],
            ],
        ),
    );

    verdict(
        barrier_ok && slip_ok && sin_no_wavefront && desync_wavefront,
        "all three Kuramoto deficiencies demonstrated; POM fixes each",
    );
}
