//! Reproduce §5.1.2 (experiment C2): on bottlenecked programs idle waves
//! have an *additional decay mechanism even under noise-free conditions*,
//! and after the wave has run out a residual computational wavefront
//! remains.
//!
//! Protocol: inject the same one-off delay into a scalable and a
//! memory-bound run on a silent (noise-free) simulated cluster; track the
//! wave amplitude (max per-rank delay vs. the unperturbed twin) iteration
//! by iteration, plus what remains at the end.

use pom_bench::{header, save, verdict};
use pom_kernels::Kernel;
use pom_mpisim::{ProgramSpec, SimDelay, SimTrace, Simulator, WorkSpec};
use pom_topology::{ClusterSpec, Placement};
use pom_viz::write_table;

fn run(kernel: Kernel, msg: usize, inject: bool) -> SimTrace {
    let n = 40;
    let mut p = ProgramSpec::new(n, 50)
        .kernel(kernel)
        .work(WorkSpec::TargetSeconds(1e-3))
        .message_bytes(msg);
    if inject {
        p = p.inject(SimDelay {
            rank: 5,
            iteration: 5,
            extra_seconds: 5e-3,
        });
    }
    Simulator::new(p, Placement::packed(ClusterSpec::meggie(), n))
        .unwrap()
        .run()
        .unwrap()
}

/// Per-iteration wave amplitude: max over ranks of (perturbed − baseline)
/// iteration-end delta, and its spread (max − min) — the residual
/// wavefront is "delta spread without delta amplitude decay".
fn amplitude_series(pert: &SimTrace, base: &SimTrace) -> Vec<(f64, f64)> {
    (0..pert.n_iterations())
        .map(|k| {
            let deltas: Vec<f64> = (0..pert.n_ranks())
                .map(|r| pert.rank(r).iter_end(k) - base.rank(r).iter_end(k))
                .collect();
            let hi = deltas.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lo = deltas.iter().cloned().fold(f64::INFINITY, f64::min);
            (hi, hi - lo)
        })
        .collect()
}

fn main() {
    header(
        "C2",
        "memory-bound code damps idle waves even without noise; a residual \
         computational wavefront remains (scalable code keeps the full delay)",
    );

    let scal_p = run(Kernel::pisolver(), 4_000_000, true);
    let scal_b = run(Kernel::pisolver(), 4_000_000, false);
    let mem_p = run(Kernel::stream_triad(), 4_000_000, true);
    let mem_b = run(Kernel::stream_triad(), 4_000_000, false);

    let scal = amplitude_series(&scal_p, &scal_b);
    let mem = amplitude_series(&mem_p, &mem_b);

    println!(
        "{:>6}  {:>14} {:>14}  {:>14} {:>14}",
        "iter", "scal amp [s]", "scal skew [s]", "mem amp [s]", "mem skew [s]"
    );
    let mut rows = Vec::new();
    for k in (0..50).step_by(5) {
        println!(
            "{k:>6}  {:>14.3e} {:>14.3e}  {:>14.3e} {:>14.3e}",
            scal[k].0, scal[k].1, mem[k].0, mem[k].1
        );
        rows.push(vec![k as f64, scal[k].0, scal[k].1, mem[k].0, mem[k].1]);
    }
    save(
        "bottleneck_decay.csv",
        &write_table(
            &["iter", "scal_amp", "scal_skew", "mem_amp", "mem_skew"],
            &rows,
        ),
    );

    // Scalable: the delay is never absorbed — the whole program ends ~5 ms
    // late, and the *skew* (wavefront) vanishes once the wave passed.
    let scal_final_amp = scal.last().unwrap().0;
    let scal_final_skew = scal.last().unwrap().1;
    // Memory-bound: the delay amplitude decays by an order of magnitude
    // (absorbed into bandwidth slack) while a skew (wavefront) persists.
    let mem_peak_amp = mem.iter().map(|a| a.0).fold(0.0f64, f64::max);
    let mem_final_amp = mem.last().unwrap().0;
    let mem_final_skew = mem.last().unwrap().1;

    println!("\nscalable:     final amplitude {scal_final_amp:.3e} s, final skew {scal_final_skew:.3e} s");
    println!("memory-bound: peak amplitude {mem_peak_amp:.3e} s, final amplitude {mem_final_amp:.3e} s, final skew {mem_final_skew:.3e} s");

    let ok = scal_final_amp > 4.5e-3            // scalable keeps the delay
        && scal_final_skew < 5e-4               // …but resynchronizes
        && mem_final_amp < 0.4 * mem_peak_amp   // bottlenecked damps the wave
        && mem_final_skew > 1e-3; // …and keeps a wavefront
    verdict(
        ok,
        &format!(
            "noise-free decay on the bottlenecked run: amplitude {mem_peak_amp:.1e} → {mem_final_amp:.1e} s with persistent {mem_final_skew:.1e} s wavefront; scalable run keeps the full {scal_final_amp:.1e} s delay but realigns"
        ),
    );
}
