//! Steps/sec and campaign points/sec: pre-PR baseline vs the
//! allocation-free workspace core and the RHS kernel layer, emitted as
//! JSON.
//!
//! The "legacy" columns re-measure the exact pre-refactor hot path — a
//! faithful replica of the old `Rk4::step` (five `vec![0.0; n]`
//! allocations per step) driven through `&dyn OdeSystem` — so baseline
//! and current numbers come from one binary on one machine, instead of
//! comparing numbers recorded on different days. The `rhs_kernels`
//! section compares the `Exact` reference kernel against the
//! `SinCosSplit` fast path, serial and with intra-run parallelism.
//!
//! ```bash
//! cargo run --release -p pom-bench --bin bench_steps > BENCH_steps.json
//! # CI smoke mode: tiny iteration counts, correctness asserts only —
//! # breaks the build on kernel regressions, asserts nothing about time.
//! cargo run --release -p pom-bench --bin bench_steps -- smoke=1
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use pom_analysis::RunSummaryProbe;
use pom_bench::rk4_step_legacy;
use pom_core::{
    InitialCondition, Normalization, PomBuilder, Potential, RhsKernel, SimOptions, SimWorkspace,
    SolverChoice,
};
use pom_ode::{OdeSystem, Rk4, Workspace};
use pom_sweep::{run_point, run_point_ws, Campaign};
use pom_topology::Topology;

// --- Heap accounting -------------------------------------------------------
// The streaming_observables section *asserts* the observed path's peak
// memory is O(N); that needs real numbers, not reasoning. A counting
// wrapper around the system allocator tracks live bytes and the
// high-water mark; `peak_during` measures the extra peak one closure
// adds. Overhead is two relaxed-ish atomics per (de)allocation — noise
// for the timed sections, whose hot loops don't allocate at all.

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        let live = LIVE_BYTES.fetch_add(size, Ordering::SeqCst) + size;
        PEAK_BYTES.fetch_max(live, Ordering::SeqCst);
    }
    fn on_dealloc(size: usize) {
        LIVE_BYTES.fetch_sub(size, Ordering::SeqCst);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }
    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        unsafe { System.dealloc(p, layout) };
        Self::on_dealloc(layout.size());
    }
    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = unsafe { System.realloc(p, layout, new_size) };
        if !q.is_null() {
            // Count the new block before releasing the old one: a moving
            // realloc holds both simultaneously, and the peak must see it.
            Self::on_alloc(new_size);
            Self::on_dealloc(layout.size());
        }
        q
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` and report the extra heap peak it caused, in bytes, relative
/// to the live heap at entry.
fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = LIVE_BYTES.load(Ordering::SeqCst);
    PEAK_BYTES.store(base, Ordering::SeqCst);
    let out = f();
    let peak = PEAK_BYTES.load(Ordering::SeqCst);
    (out, peak.saturating_sub(base))
}

fn build_model(n: usize) -> pom_core::Pom {
    build_model_kernel(n, RhsKernel::Exact, 1)
}

fn build_model_kernel(n: usize, kernel: RhsKernel, rhs_threads: usize) -> pom_core::Pom {
    PomBuilder::new(n)
        .topology(Topology::ring(n, &[-1, 1]))
        .potential(Potential::desync(3.0))
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(4.0)
        .normalization(Normalization::ByDegree)
        .kernel(kernel)
        .rhs_threads(rhs_threads)
        .build()
        .unwrap()
}

/// Faithful replica of the pre-PR `Pom::rhs_ode`: the coupling prefactor
/// (`v_p/deg(i)`, one match + division) and the intrinsic term (one
/// division) re-derived per oscillator per evaluation, and the potential
/// evaluated through `Potential::value` (enum match + the desync
/// wavenumber division per neighbor call).
struct LegacyRhs<'a> {
    model: &'a pom_core::Pom,
}

impl OdeSystem for LegacyRhs<'_> {
    fn dim(&self) -> usize {
        self.model.n()
    }

    fn eval(&self, _t: f64, theta: &[f64], dtheta: &mut [f64]) {
        let m = self.model;
        let vp = m.params().coupling();
        let cycle = m.params().cycle_time();
        for i in 0..m.n() {
            let mut coupling = 0.0;
            for &j in m.topology().neighbors(i) {
                coupling += m.potential().value(theta[j as usize] - theta[i]);
            }
            let scale = vp / m.topology().degree(i).max(1) as f64;
            dtheta[i] = std::f64::consts::TAU / cycle + scale * coupling;
        }
    }
}

/// Integrate `steps` RK4 steps with the legacy per-step-allocating path.
fn run_legacy(model: &pom_core::Pom, y0: &[f64], h: f64, steps: usize) -> f64 {
    let legacy = LegacyRhs { model };
    let sys: &dyn OdeSystem = &legacy;
    let mut y = y0.to_vec();
    let mut y_next = vec![0.0; y0.len()];
    let mut t = 0.0;
    for _ in 0..steps {
        rk4_step_legacy(sys, t, &y, h, &mut y_next);
        std::mem::swap(&mut y, &mut y_next);
        t += h;
    }
    y[0]
}

/// Integrate `steps` RK4 steps with the workspace fast path (same driver
/// shape as `FixedStepSolver::integrate_with`, no recording).
fn run_workspace(
    model: &pom_core::Pom,
    y0: &[f64],
    h: f64,
    steps: usize,
    ws: &mut Workspace,
) -> f64 {
    use pom_ode::Stepper;
    let (stage, drive) = ws.split();
    let [mut y, mut y_next] = drive.slices::<2>(y0.len());
    y.copy_from_slice(y0);
    let mut t = 0.0;
    for _ in 0..steps {
        Rk4.step(model, t, y, h, y_next, stage);
        std::mem::swap(&mut y, &mut y_next);
        t += h;
    }
    y[0]
}

/// Like [`run_workspace`] but returning the full final state — the
/// correctness gates must compare every component, not a single
/// oscillator: on a ±1 ring a defect near a parallel chunk boundary takes
/// thousands of steps to propagate to `y[0]`.
fn run_workspace_state(
    model: &pom_core::Pom,
    y0: &[f64],
    h: f64,
    steps: usize,
    ws: &mut Workspace,
) -> Vec<f64> {
    use pom_ode::Stepper;
    let (stage, drive) = ws.split();
    let [mut y, mut y_next] = drive.slices::<2>(y0.len());
    y.copy_from_slice(y0);
    let mut t = 0.0;
    for _ in 0..steps {
        Rk4.step(model, t, y, h, y_next, stage);
        std::mem::swap(&mut y, &mut y_next);
        t += h;
    }
    y.to_vec()
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn time_best(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

const CAMPAIGN_SPEC: &str = r#"
    [campaign]
    name = "bench-points"
    seed = 5
    observables = ["final_r", "final_spread", "mean_abs_gap"]
    [model]
    n = 8
    potential = "desync"
    [topology]
    kind = "chain"
    [init]
    kind = "spread"
    amplitude = 0.2
    [sim]
    t_end = 15.0
    samples = 30
    [[axes]]
    key = "model.sigma"
    grid = { start = 0.5, stop = 4.0, steps = 8 }
    [[axes]]
    key = "model.coupling"
    values = [2.0, 4.0, 6.0]
"#;

/// Legacy hot loop on an arbitrary dyn system (old stepper: five heap
/// allocations per step, vtable RHS dispatch).
fn loop_legacy(sys: &dyn OdeSystem, y0: &[f64], h: f64, steps: usize) -> f64 {
    let mut y = y0.to_vec();
    let mut y_next = vec![0.0; y0.len()];
    let mut t = 0.0;
    for _ in 0..steps {
        rk4_step_legacy(sys, t, &y, h, &mut y_next);
        std::mem::swap(&mut y, &mut y_next);
        t += h;
    }
    y[0]
}

/// Workspace hot loop on a monomorphized system (new stepper: zero
/// allocations, direct RHS calls).
fn loop_workspace<S: OdeSystem>(
    sys: &S,
    y0: &[f64],
    h: f64,
    steps: usize,
    ws: &mut Workspace,
) -> f64 {
    use pom_ode::Stepper;
    let (stage, drive) = ws.split();
    let [mut y, mut y_next] = drive.slices::<2>(y0.len());
    y.copy_from_slice(y0);
    let mut t = 0.0;
    for _ in 0..steps {
        Rk4.step(sys, t, y, h, y_next, stage);
        std::mem::swap(&mut y, &mut y_next);
        t += h;
    }
    y[0]
}

fn main() {
    // `smoke=1` shrinks every loop to a compile-and-run regression check
    // (the bitwise and accuracy asserts still fire); `steps=` overrides
    // the timed iteration count directly.
    let mut smoke = false;
    let mut steps_override: Option<usize> = None;
    let mut only: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.split_once('=') {
            Some(("smoke", v)) => smoke = v != "0",
            Some(("steps", v)) => steps_override = v.parse().ok(),
            Some(("only", v)) => only = Some(v.to_string()),
            _ => {
                eprintln!(
                    "usage: bench_steps [smoke=1] [steps=N] [only=obs|ensemble|serve_hardening]"
                );
                std::process::exit(2);
            }
        }
    }
    // `only=obs` / `only=ensemble` / `only=serve_hardening` run just that
    // gate and emit it as a standalone JSON document (→ BENCH_obs.json /
    // BENCH_ensemble.json / BENCH_serve_hardening.json).
    if let Some(section) = only {
        match section.as_str() {
            "obs" => obs_overhead_bench(smoke, true),
            "ensemble" => ensemble_bench(smoke, true),
            "serve_hardening" => serve_hardening_bench(smoke, true),
            other => {
                eprintln!(
                    "unknown only= section `{other}` (try only=obs, only=ensemble or only=serve_hardening)"
                );
                std::process::exit(2);
            }
        }
        return;
    }
    let h = 0.02;
    let steps = steps_override.unwrap_or(if smoke { 50 } else { 100_000 });
    let reps = if smoke { 1 } else { 7 };

    println!("{{");
    println!("  \"bench\": \"rk4_hot_loop_and_campaign_throughput\",");
    println!("  \"smoke\": {smoke},");
    println!("  \"units\": {{\"steps_per_sec\": \"RK4 steps/s\", \"points_per_sec\": \"campaign points/s (1 worker)\"}},");
    println!("  \"notes\": [");
    println!("    \"legacy = pre-PR hot path replicated in this binary: vec![0.0; n] x5 per step + &dyn OdeSystem dispatch + per-oscillator rederivation of static RHS factors\",");
    println!("    \"workspace = current path: reused Workspace slices, monomorphized RHS, build-time coupling cache, fused intrinsic+coupling row pass\",");
    println!("    \"rk4_hot_loop isolates the stepper machinery with a cheap norm-preserving RHS; rk4_pom_model is end-to-end on the oscillator RHS, whose per-neighbor sin() bounds the attainable gain\",");
    println!("    \"campaign compares fresh vs reused workspace per point, interleaving the two measurements rep-by-rep so clock drift cannot bias either column (the historical 0.961x 'reuse regression' was exactly this bias: fresh was always timed first, reused second)\",");
    println!("    \"the historical n=256 rk4_pom_model 0.958x came from the fill-then-accumulate double pass over dtheta; the fused single row pass restores parity — residual deltas of a few percent at these sizes are run-to-run noise on a shared host, not a reuse or cache effect\",");
    println!("    \"rhs_kernels: same model family at large N; exact = libm reference (bitwise-stable), sincos = sin/cos-split kernel, parallel = split + rhs_threads=0 (all cores); when the host exposes 1 CPU the parallel column degenerates to the serial split path\"");
    println!("  ],");

    // --- The RK4 hot loop itself -----------------------------------------
    // A coupled-pair rotation RHS (ẏ_{2k} = y_{2k+1}, ẏ_{2k+1} = −y_{2k})
    // keeps the right-hand side at a handful of instructions *and* the
    // state norm constant (a decaying RHS would underflow into denormals
    // over 10⁵ steps and poison the timing). This measures the stepper
    // machinery the refactor targeted: five heap allocations + memsets +
    // vtable dispatch per step (legacy) vs reused workspace slices +
    // monomorphized calls (current).
    println!("  \"rk4_hot_loop\": [");
    let sizes = [16usize, 64, 256];
    for (idx, &n) in sizes.iter().enumerate() {
        let lin = pom_ode::FnSystem::new(n, |_t, y: &[f64], d: &mut [f64]| {
            let mut i = 0;
            while i + 1 < y.len() {
                d[i] = y[i + 1];
                d[i + 1] = -y[i];
                i += 2;
            }
        });
        let y0: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.01).collect();
        let mut ws = Workspace::new();
        let a = loop_legacy(&lin, &y0, h, 1000);
        let b = loop_workspace(&lin, &y0, h, 1000, &mut ws);
        assert_eq!(a.to_bits(), b.to_bits(), "paths diverged at n = {n}");

        let t_legacy = time_best(reps, || loop_legacy(&lin, &y0, h, steps));
        let t_ws = time_best(reps, || loop_workspace(&lin, &y0, h, steps, &mut ws));
        let legacy_sps = steps as f64 / t_legacy;
        let ws_sps = steps as f64 / t_ws;
        let comma = if idx + 1 == sizes.len() { "" } else { "," };
        println!(
            "    {{\"n\": {n}, \"legacy_steps_per_sec\": {legacy_sps:.0}, \"workspace_steps_per_sec\": {ws_sps:.0}, \"speedup\": {:.3}}}{comma}",
            ws_sps / legacy_sps
        );
    }
    println!("  ],");

    // --- End-to-end on the oscillator model ------------------------------
    // Same loops driving the POM right-hand side (ring, desync potential).
    // Here the RHS cost (one sin per neighbor per stage) bounds the gain —
    // reported for honest context, not as the hot-loop headline.
    println!("  \"rk4_pom_model\": [");
    for (idx, &n) in sizes.iter().enumerate() {
        let model = build_model(n);
        let y0 = InitialCondition::RandomSpread {
            amplitude: 0.3,
            seed: 1,
        }
        .phases(n);

        // Warm up and verify both paths agree bitwise before timing.
        let mut ws = Workspace::new();
        let a = run_legacy(&model, &y0, h, 1000);
        let b = run_workspace(&model, &y0, h, 1000, &mut ws);
        assert_eq!(a.to_bits(), b.to_bits(), "paths diverged at n = {n}");

        let t_legacy = time_best(reps, || run_legacy(&model, &y0, h, steps));
        let t_ws = time_best(reps, || run_workspace(&model, &y0, h, steps, &mut ws));
        let legacy_sps = steps as f64 / t_legacy;
        let ws_sps = steps as f64 / t_ws;
        let comma = if idx + 1 == sizes.len() { "" } else { "," };
        println!(
            "    {{\"n\": {n}, \"legacy_steps_per_sec\": {legacy_sps:.0}, \"workspace_steps_per_sec\": {ws_sps:.0}, \"speedup\": {:.3}}}{comma}",
            ws_sps / legacy_sps
        );
    }
    println!("  ],");

    // --- RHS kernel layer ------------------------------------------------
    // Exact (libm reference) vs the sin/cos-split kernel, serial and with
    // intra-run parallelism, at continuum-scale N. The model family is the
    // same as rk4_pom_model (ring ±1, desync σ=3, degree normalization);
    // "exact serial" IS the current workspace path, so the speedup columns
    // read directly as "what the kernel layer buys".
    let par_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("  \"rhs_kernels\": {{");
    println!("    \"model\": \"ring ±1, desync sigma=3, coupling 4, degree normalization\",");
    println!("    \"parallel_rhs_threads\": {par_threads},");
    println!("    \"rows\": [");
    let kernel_sizes = [16usize, 256, 4096, 65536];
    for (idx, &n) in kernel_sizes.iter().enumerate() {
        // Time-scaled step counts: large N costs more per step.
        let ksteps = if smoke {
            20
        } else {
            steps_override.unwrap_or((4_000_000 / n).max(40))
        };
        let exact = build_model_kernel(n, RhsKernel::Exact, 1);
        let split = build_model_kernel(n, RhsKernel::SinCosSplit, 1);
        let split_par = build_model_kernel(n, RhsKernel::SinCosSplit, 0);
        let y0 = InitialCondition::RandomSpread {
            amplitude: 0.3,
            seed: 1,
        }
        .phases(n);

        // Correctness gates (these are what the CI smoke job exercises):
        // the split kernel tracks the exact one within the documented
        // policy, and intra-run parallelism does not move a single bit.
        let check_steps = 200.min(ksteps.max(50));
        let mut ws = Workspace::new();
        let refv = run_workspace_state(&exact, &y0, h, check_steps, &mut ws);
        let a = run_workspace_state(&split, &y0, h, check_steps, &mut ws);
        let b = run_workspace_state(&split_par, &y0, h, check_steps, &mut ws);
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "split kernel diverged across rhs_threads at n = {n}"
        );
        let drift = refv
            .iter()
            .zip(&a)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        assert!(
            drift < 1e-9,
            "split kernel drifted {drift:e} from exact after {check_steps} steps at n = {n}"
        );

        let t_exact = time_best(reps, || run_workspace(&exact, &y0, h, ksteps, &mut ws));
        let t_split = time_best(reps, || run_workspace(&split, &y0, h, ksteps, &mut ws));
        let t_par = time_best(reps, || run_workspace(&split_par, &y0, h, ksteps, &mut ws));
        let (e_sps, s_sps, p_sps) = (
            ksteps as f64 / t_exact,
            ksteps as f64 / t_split,
            ksteps as f64 / t_par,
        );
        let comma = if idx + 1 == kernel_sizes.len() {
            ""
        } else {
            ","
        };
        println!(
            "      {{\"n\": {n}, \"steps\": {ksteps}, \"exact_steps_per_sec\": {e_sps:.0}, \"split_steps_per_sec\": {s_sps:.0}, \"split_parallel_steps_per_sec\": {p_sps:.0}, \"split_speedup\": {:.3}, \"split_parallel_speedup\": {:.3}}}{comma}",
            s_sps / e_sps,
            p_sps / e_sps
        );
    }
    println!("    ]");
    println!("  }},");

    // --- Streaming observables: O(1)-memory long-horizon runs ------------
    // The pipeline this PR adds: simulate_observed folds observables
    // online (order parameter, adjacent gaps) and allocates NO per-step
    // trajectory storage. The columns compare, at n ∈ {4096, 65536}:
    //   * observed_peak_bytes — extra heap peak of the full observed run
    //     (workspace + split scratch + probe), ASSERTED to stay O(N)
    //     whatever the step count;
    //   * trajectory_bytes_per_step — what the recording path pays per
    //     retained sample (measured on a short recorded run, asserted
    //     ≥ 8·n·0.9), i.e. what 10⁵ full-resolution steps would cost.
    // Smoke mode shrinks the horizons; the assertions still gate.
    println!("  \"streaming_observables\": {{");
    println!("    \"model\": \"ring ±1, desync sigma=3, coupling 4, sincos kernel, rk4 h=0.02\",");
    println!("    \"rows\": [");
    let obs_sizes = [4096usize, 65536];
    for (idx, &n) in obs_sizes.iter().enumerate() {
        let h = 0.02;
        // Long horizon: 1e5 steps at full scale (the acceptance bar for
        // the n = 65536 regime), tiny in smoke mode.
        let osteps = if smoke {
            200
        } else {
            steps_override.unwrap_or(100_000)
        };
        let t_end = h * osteps as f64;
        let opts = SimOptions::new(t_end).solver(SolverChoice::FixedRk4 { h });
        let model = build_model_kernel(n, RhsKernel::SinCosSplit, 1);
        let init = InitialCondition::RandomSpread {
            amplitude: 0.3,
            seed: 1,
        };

        // Observed run, cold workspace: the measured peak is everything
        // the observable path ever holds at once.
        let mut ws = SimWorkspace::new();
        let mut probe = RunSummaryProbe::new();
        let t0 = Instant::now();
        let (summary, observed_peak) = peak_during(|| {
            model
                .simulate_observed_ws(init.clone(), &opts, &mut probe, &mut ws)
                .expect("observed run")
        });
        let observed_secs = t0.elapsed().as_secs_f64();
        assert_eq!(summary.n_steps(), osteps);
        assert!(summary.final_order_parameter().is_finite());

        // THE assertion: peak observable-path memory is O(N) — a few
        // dozen length-n buffers (integrator workspace, sin/cos scratch,
        // summary state), nothing proportional to the step count.
        let budget = 64 * n * 8 + (1 << 20);
        assert!(
            observed_peak <= budget,
            "observed path peak {observed_peak} B exceeds O(N) budget {budget} B at n = {n}"
        );
        // And it is genuinely step-count independent: doubling a (short)
        // horizon must not move the peak. Short probes keep the full
        // bench's wall time sane — the property is per-step independence,
        // not horizon size.
        let p_steps = osteps.min(500);
        let peak_at = |steps: usize, ws: &mut SimWorkspace| {
            let o = SimOptions::new(h * steps as f64).solver(SolverChoice::FixedRk4 { h });
            let mut probe = RunSummaryProbe::new();
            peak_during(|| {
                model
                    .simulate_observed_ws(init.clone(), &o, &mut probe, ws)
                    .expect("observed probe run")
            })
            .1
        };
        let (p1, p2) = (peak_at(p_steps, &mut ws), peak_at(2 * p_steps, &mut ws));
        // The actual independence assertion: the doubled horizon's peak
        // must not exceed the single horizon's (small slack for allocator
        // rounding). A per-step leak anywhere in the observed path fails
        // here long before it would dent the O(N) budget above.
        assert!(
            p2 <= p1 + (64 << 10),
            "doubled horizon moved the observed peak {p1} → {p2} B at n = {n}"
        );

        // Recording path, full-resolution samples, short horizon: its
        // peak grows with every retained sample — the cost the observed
        // path removes. (Kept short so the bench itself stays sane.)
        let rec_steps = if smoke { 50 } else { 512 };
        let rec_opts = SimOptions::new(h * rec_steps as f64)
            .samples(rec_steps + 1)
            .solver(SolverChoice::FixedRk4 { h });
        let mut ws_rec = SimWorkspace::new();
        let (run, rec_peak) = peak_during(|| {
            model
                .simulate_with_ws(init.clone(), &rec_opts, &mut ws_rec)
                .expect("recorded run")
        });
        assert_eq!(run.trajectory().len(), rec_steps + 1);
        let rec_bytes_per_step = rec_peak as f64 / rec_steps as f64;
        assert!(
            rec_bytes_per_step >= 8.0 * n as f64 * 0.9,
            "recorded path must pay ≥ one state row per sample: {rec_bytes_per_step} B/step at n = {n}"
        );

        let comma = if idx + 1 == obs_sizes.len() { "" } else { "," };
        println!(
            "      {{\"n\": {n}, \"steps\": {osteps}, \"observed_peak_bytes\": {observed_peak}, \
             \"observed_steps_per_sec\": {:.0}, \"trajectory_bytes_per_step\": {rec_bytes_per_step:.0}, \
             \"projected_trajectory_bytes_at_steps\": {:.0}, \"memory_ratio\": {:.1}}}{comma}",
            osteps as f64 / observed_secs,
            rec_bytes_per_step * osteps as f64,
            rec_bytes_per_step * osteps as f64 / observed_peak as f64,
        );
    }
    println!("    ]");
    println!("  }},");

    // --- Ensemble batching -------------------------------------------------
    // Batched R-replica lockstep vs R independent runs, bitwise assert
    // embedded (this is what the CI smoke job gates).
    ensemble_bench(smoke, false);

    // --- Observability overhead gate --------------------------------------
    // Instrumented hot paths with the obs switch OFF vs faithful pre-obs
    // replicas; asserts the disabled-mode cost stays within the documented
    // budget. Runs before serve_bench, which flips the global switch on.
    obs_overhead_bench(smoke, false);

    // --- The campaign daemon ---------------------------------------------
    // Job throughput and submit-to-first-row latency through the full
    // pom-serve stack (socket → HTTP parse → spec parse → spool write →
    // scheduler → worker → flushed row → chunked stream back), at 1, 4
    // and 8 concurrent clients. Each job is a single cheap point, so the
    // columns measure daemon overhead, not integration time.
    serve_bench(smoke);

    // --- Hardening overhead gate ------------------------------------------
    // The same daemon with every hostile-traffic bound armed (none
    // triggering): auth + quota checks, priority/deadline parsing,
    // admission accounting, socket deadlines. Gate: ≥ 0.95× plain
    // throughput in full mode.
    serve_hardening_bench(smoke, false);

    // Campaign throughput: fresh workspace per point vs one reused
    // workspace (what the executor's workers now do). Both already use
    // the allocation-free step loop — the per-step-allocation removal
    // itself is captured by the "rk4" section above — so this isolates
    // the marginal win of per-worker workspace reuse. The two columns are
    // measured interleaved (fresh, reused, fresh, reused, …): the earlier
    // back-to-back arrangement let CPU clock drift between the two blocks
    // masquerade as a reuse regression.
    let campaign = Campaign::from_str(CAMPAIGN_SPEC).expect("bench spec");
    let points = campaign.total_points();
    let campaign_reps = if smoke { 1 } else { 9 };
    let mut t_fresh = f64::INFINITY;
    let mut t_reused = f64::INFINITY;
    for _ in 0..campaign_reps {
        let t0 = Instant::now();
        let mut acc = 0.0;
        for i in 0..points {
            acc += run_point(&campaign.spec, i).observables[0].1;
        }
        black_box(acc);
        t_fresh = t_fresh.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let mut ws = SimWorkspace::new();
        let mut acc = 0.0;
        for i in 0..points {
            acc += run_point_ws(&campaign.spec, i, &mut ws).observables[0].1;
        }
        black_box(acc);
        t_reused = t_reused.min(t0.elapsed().as_secs_f64());
    }
    let fresh_pps = points as f64 / t_fresh;
    let reused_pps = points as f64 / t_reused;
    println!(
        "  \"campaign\": {{\"points\": {points}, \"fresh_points_per_sec\": {fresh_pps:.2}, \"reused_points_per_sec\": {reused_pps:.2}, \"speedup\": {:.3}}}",
        reused_pps / fresh_pps
    );
    println!("}}");
}

// --- Ensemble batching bench -------------------------------------------------

/// Batched R-replica lockstep integration (`PomEnsemble`, interleaved SoA
/// state) vs R independent `simulate_observed_ws` runs of the same model.
/// The bitwise-identity assert fires in every mode — CI smoke gates
/// correctness even when timing would be meaningless; the ≥1.3× speedup
/// gate at n = 4096 only fires in full mode.
fn ensemble_bench(smoke: bool, standalone: bool) {
    use pom_core::{NoObserver, PomEnsemble};

    let r = 5usize;
    let h = 0.02;
    let reps = if smoke { 1 } else { 5 };
    let sizes = [256usize, 4096, 65536];
    // Eight neighbors per oscillator: enough per-row work that the
    // shared passes have something to amortize. The `delay` variant adds
    // a replica-shared random comm-delay field — deterministic hardware
    // latencies of the one modelled machine, identical across replicas —
    // which puts the run on the DDE path, where independent runs
    // re-evaluate the same delay field and re-search the same history
    // segments R times.
    let build = |n: usize, delay: bool| {
        let mut b = PomBuilder::new(n)
            .topology(Topology::ring(n, &[-4, -3, -2, -1, 1, 2, 3, 4]))
            .potential(Potential::desync(3.0))
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(4.0)
            .normalization(Normalization::ByDegree)
            .kernel(RhsKernel::SinCosSplit);
        if delay {
            b = b.interaction_noise(pom_noise::RandomCommDelay::new(77, n, 0.08, 0.02, 0.5));
        }
        b.build().unwrap()
    };

    let indent = if standalone { "" } else { "  " };
    if standalone {
        println!("{{");
        println!("  \"bench\": \"ensemble_batching\",");
        println!("  \"smoke\": {smoke},");
    } else {
        println!("  \"ensemble\": {{");
    }
    println!("{indent}  \"model\": \"ring ±1..±4, desync sigma=3, coupling 4, sincos kernel, rk4 lockstep h=0.02, R={r} replicas with distinct init seeds; delay_rows add a replica-shared random comm-delay field (mean 0.08, spread 0.02)\",");
    println!("{indent}  \"contract\": \"batched final states bitwise equal R independent runs (asserted every row, every mode); shared-delay batched >= 1.3x at n=4096 (full mode)\",");

    let mut gate_pass = true;
    for (delay, rows_key) in [(false, "ode_rows"), (true, "delay_rows")] {
        println!("{indent}  \"{rows_key}\": [");
        for (idx, &n) in sizes.iter().enumerate() {
            // Delay steps are ~100x an ODE step (history sampling per
            // pair per stage), so the DDE rows run far fewer of them.
            let esteps = match (smoke, delay) {
                (true, false) => 10,
                (true, true) => 3,
                (false, false) => (1_500_000 / n).max(20),
                (false, true) => (32_768 / n).clamp(3, 120),
            };
            let reps_row = if delay && n >= 65_536 {
                reps.min(2)
            } else {
                reps
            };
            let t_end = h * esteps as f64;
            let opts = SimOptions::new(t_end).solver(SolverChoice::FixedRk4 { h });
            let inits: Vec<InitialCondition> = (0..r)
                .map(|rep| InitialCondition::RandomSpread {
                    amplitude: 0.3,
                    seed: 1000 + rep as u64,
                })
                .collect();
            let single = build(n, delay);
            let ensemble = PomEnsemble::new((0..r).map(|_| build(n, delay)).collect());
            let mut ws = SimWorkspace::new();

            // Correctness gate, every mode: the batch IS the R
            // independent runs, bit for bit.
            let independent: Vec<Vec<f64>> = inits
                .iter()
                .map(|init| {
                    single
                        .simulate_observed_ws(init.clone(), &opts, &mut NoObserver, &mut ws)
                        .expect("independent run")
                        .final_state()
                        .to_vec()
                })
                .collect();
            let mut observers = vec![NoObserver; r];
            let batched = ensemble
                .simulate_observed_ws(&inits, &opts, &mut observers, &mut ws)
                .expect("batched run");
            for rep in 0..r {
                assert!(
                    batched[rep]
                        .final_state()
                        .iter()
                        .zip(&independent[rep])
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "batched replica {rep} diverged from its independent run \
                     at n = {n} (delay = {delay})"
                );
            }

            // Timing, with retries on the gated row: best-of-reps absorbs
            // most scheduler noise, a shared host can still produce one
            // bad attempt.
            let gated = !smoke && delay && n == 4096;
            let mut speedup = 0.0;
            let mut indep_sps = 0.0;
            let mut batched_sps = 0.0;
            for _attempt in 0..3 {
                let t_indep = time_best(reps_row, || {
                    inits
                        .iter()
                        .map(|init| {
                            single
                                .simulate_observed_ws(init.clone(), &opts, &mut NoObserver, &mut ws)
                                .expect("independent run")
                                .final_state()[0]
                        })
                        .sum()
                });
                let t_batched = time_best(reps_row, || {
                    let mut observers = vec![NoObserver; r];
                    ensemble
                        .simulate_observed_ws(&inits, &opts, &mut observers, &mut ws)
                        .expect("batched run")[0]
                        .final_state()[0]
                });
                // Replica-steps/sec: both columns advance R replicas
                // esteps steps, so the ratio reads directly as
                // amortization.
                let (i_sps, b_sps) = (
                    (r * esteps) as f64 / t_indep,
                    (r * esteps) as f64 / t_batched,
                );
                if b_sps / i_sps > speedup {
                    (speedup, indep_sps, batched_sps) = (b_sps / i_sps, i_sps, b_sps);
                }
                if !gated || speedup >= 1.3 {
                    break;
                }
            }
            if gated && speedup < 1.3 {
                gate_pass = false;
            }

            let comma = if idx + 1 == sizes.len() { "" } else { "," };
            println!(
                "{indent}    {{\"n\": {n}, \"steps\": {esteps}, \"replicas\": {r}, \
                 \"independent_replica_steps_per_sec\": {indep_sps:.0}, \
                 \"batched_replica_steps_per_sec\": {batched_sps:.0}, \
                 \"speedup\": {speedup:.3}}}{comma}"
            );
        }
        println!("{indent}  ],");
    }
    println!("{indent}  \"pass\": {gate_pass}");
    if standalone {
        println!("}}");
    } else {
        println!("  }},");
    }
    assert!(
        gate_pass,
        "ensemble batching gate failed: shared-delay batched < 1.3x over \
         independent at n = 4096"
    );
}

// --- Observability overhead gate --------------------------------------------

/// Swallows rows; the sweep gate measures execution, not serialization.
struct NullSink;

impl pom_sweep::ResultSink for NullSink {
    fn begin(&mut self, _spec: &pom_sweep::CampaignSpec) -> std::io::Result<()> {
        Ok(())
    }
    fn row(&mut self, row: &pom_sweep::PointRow) -> std::io::Result<()> {
        black_box(row.observables.first().map(|o| o.1));
        Ok(())
    }
    fn end(&mut self, _summary: &pom_sweep::CampaignSummary) -> std::io::Result<()> {
        Ok(())
    }
}

/// Interleaved best-of-`reps` measurement of two closures (baseline
/// first, candidate second, alternating) — clock drift between the two
/// cannot bias either column. Returns `(t_baseline, t_candidate)`.
fn time_pair(reps: usize, mut base: impl FnMut(), mut cand: impl FnMut()) -> (f64, f64) {
    let mut t_base = f64::INFINITY;
    let mut t_cand = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        base();
        t_base = t_base.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        cand();
        t_cand = t_cand.min(t0.elapsed().as_secs_f64());
    }
    (t_base, t_cand)
}

/// The ≤2%-disabled-overhead contract (pom-obs crate docs), measured:
///
/// * RK4: the current `FixedStepSolver::integrate_with` (obs disabled)
///   vs [`pom_bench::integrate_fixed_rk4_pre_obs`] — the pre-obs driver
///   replicated without the instrumentation sites.
/// * sweep: the current `run_campaign` (obs disabled) vs
///   [`pom_bench::run_campaign_pre_obs`], same replica treatment.
///
/// Each gate retries up to three times before failing — best-of-reps
/// interleaving removes most scheduler noise, but a shared CI host can
/// still produce one bad attempt; a real regression fails all three.
/// The ratio floor is 0.98 in full mode and 0.90 in smoke mode (tiny
/// iteration counts measure mostly fixed costs).
fn obs_overhead_bench(smoke: bool, standalone: bool) {
    use pom_bench::{integrate_fixed_rk4_pre_obs, run_campaign_pre_obs};
    use pom_ode::FixedStepSolver;
    use pom_sweep::run_campaign;

    // The gate measures the DISABLED path; enabled-mode numbers are
    // reported for context afterwards.
    pom_obs::set_enabled(false);

    let threshold = if smoke { 0.90 } else { 0.98 };
    let reps = if smoke { 2 } else { 5 };
    let attempts_max = 3;

    // RK4 gate: mid-size model, trajectory decimated ×8 as a sweep-like
    // workload would.
    let n = 64;
    let h = 0.02;
    let rk4_steps = if smoke { 300 } else { 30_000 };
    let t_end = h * rk4_steps as f64;
    let model = build_model(n);
    let y0 = InitialCondition::RandomSpread {
        amplitude: 0.3,
        seed: 1,
    }
    .phases(n);
    let solver = FixedStepSolver::new(Rk4, h).unwrap().record_every(8);
    // One workspace per path: the timed closures hold their borrows
    // simultaneously.
    let mut ws_pre = Workspace::new();
    let mut ws_cur = Workspace::new();

    // Both drivers must agree bitwise before either is timed.
    let a = integrate_fixed_rk4_pre_obs(&model, 0.0, &y0, t_end, h, 8, &mut ws_pre);
    let b = solver
        .integrate_with(&model, 0.0, &y0, t_end, &mut ws_cur)
        .unwrap();
    assert_eq!(a.len(), b.len(), "record cadence diverged");
    assert!(
        a.last()
            .unwrap()
            .iter()
            .zip(b.last().unwrap())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "instrumented RK4 driver diverged from the pre-obs replica"
    );

    let mut rk4_ratio = 0.0f64;
    let mut rk4_pre_sps = 0.0;
    let mut rk4_cur_sps = 0.0;
    let mut rk4_attempts = 0;
    while rk4_attempts < attempts_max && rk4_ratio < threshold {
        rk4_attempts += 1;
        let (t_pre, t_cur) = time_pair(
            reps,
            || {
                black_box(integrate_fixed_rk4_pre_obs(
                    &model,
                    0.0,
                    &y0,
                    t_end,
                    h,
                    8,
                    &mut ws_pre,
                ));
            },
            || {
                black_box(
                    solver
                        .integrate_with(&model, 0.0, &y0, t_end, &mut ws_cur)
                        .unwrap(),
                );
            },
        );
        let (pre, cur) = (rk4_steps as f64 / t_pre, rk4_steps as f64 / t_cur);
        if cur / pre > rk4_ratio {
            (rk4_ratio, rk4_pre_sps, rk4_cur_sps) = (cur / pre, pre, cur);
        }
    }

    // Enabled-mode context number (not gated).
    pom_obs::set_enabled(true);
    let t_on = time_best(reps, || {
        solver
            .integrate_with(&model, 0.0, &y0, t_end, &mut ws_cur)
            .unwrap();
        0.0
    });
    pom_obs::set_enabled(false);
    let rk4_on_sps = rk4_steps as f64 / t_on;

    // Sweep gate: the bench campaign through both executors, one worker
    // (multi-worker wall time is dominated by scheduling jitter, which
    // would swamp a 2% budget without measuring instrumentation at all).
    let campaign = Campaign::from_str(CAMPAIGN_SPEC).expect("bench spec");
    let points = campaign.total_points();
    let opts = pom_sweep::RunOptions::with_threads(1);

    let mut sweep_ratio = 0.0f64;
    let mut sweep_pre_pps = 0.0;
    let mut sweep_cur_pps = 0.0;
    let mut sweep_attempts = 0;
    while sweep_attempts < attempts_max && sweep_ratio < threshold {
        sweep_attempts += 1;
        let (t_pre, t_cur) = time_pair(
            reps,
            || {
                run_campaign_pre_obs(&campaign.spec, &opts, &mut NullSink).unwrap();
            },
            || {
                run_campaign(&campaign.spec, &opts, &mut NullSink).unwrap();
            },
        );
        let (pre, cur) = (points as f64 / t_pre, points as f64 / t_cur);
        if cur / pre > sweep_ratio {
            (sweep_ratio, sweep_pre_pps, sweep_cur_pps) = (cur / pre, pre, cur);
        }
    }

    pom_obs::set_enabled(true);
    let t_on = time_best(reps, || {
        run_campaign(&campaign.spec, &opts, &mut NullSink).unwrap();
        0.0
    });
    pom_obs::set_enabled(false);
    let sweep_on_pps = points as f64 / t_on;

    let pass = rk4_ratio >= threshold && sweep_ratio >= threshold;
    let indent = if standalone { "" } else { "  " };
    if standalone {
        println!("{{");
        println!("  \"bench\": \"obs_overhead_gate\",");
        println!("  \"smoke\": {smoke},");
    } else {
        println!("  \"obs_overhead\": {{");
    }
    println!("{indent}  \"contract\": \"instrumented hot paths with the obs switch off stay within threshold of faithful pre-obs replicas (interleaved best-of-{reps}, up to {attempts_max} attempts)\",");
    println!("{indent}  \"threshold\": {threshold},");
    println!(
        "{indent}  \"rk4\": {{\"n\": {n}, \"steps\": {rk4_steps}, \"pre_obs_steps_per_sec\": {rk4_pre_sps:.0}, \"disabled_steps_per_sec\": {rk4_cur_sps:.0}, \"enabled_steps_per_sec\": {rk4_on_sps:.0}, \"disabled_ratio\": {rk4_ratio:.4}, \"attempts\": {rk4_attempts}}},"
    );
    println!(
        "{indent}  \"sweep\": {{\"points\": {points}, \"pre_obs_points_per_sec\": {sweep_pre_pps:.1}, \"disabled_points_per_sec\": {sweep_cur_pps:.1}, \"enabled_points_per_sec\": {sweep_on_pps:.1}, \"disabled_ratio\": {sweep_ratio:.4}, \"attempts\": {sweep_attempts}}},"
    );
    println!("{indent}  \"pass\": {pass}");
    if standalone {
        println!("}}");
    } else {
        println!("  }},");
    }

    assert!(
        pass,
        "obs disabled-mode overhead gate failed: rk4 ratio {rk4_ratio:.4}, \
         sweep ratio {sweep_ratio:.4} (threshold {threshold})"
    );
}

// --- pom-serve daemon bench -------------------------------------------------

/// One-point campaign for the daemon bench: cheap enough (~100 µs) that
/// submit-to-first-row latency is daemon overhead, not integration time.
const SERVE_SPEC: &str = r#"
    [campaign]
    name = "serve-bench"
    seed = 9
    observables = ["final_r"]
    [model]
    n = 6
    [sim]
    t_end = 5.0
    samples = 10
    [[axes]]
    key = "model.coupling"
    values = [4.0]
"#;

/// Minimal blocking HTTP request against the embedded daemon, with an
/// optional `X-Pom-Token` auth header; returns the raw response (status
/// line, headers, body).
fn serve_http_with(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    token: Option<&str>,
    body: &str,
) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to daemon");
    let auth = token.map_or(String::new(), |t| format!("X-Pom-Token: {t}\r\n"));
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\n{auth}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

/// Submit one job and block until its first result row arrives on a
/// `follow=1` stream; returns the submit→first-row latency in seconds.
fn serve_one_job(addr: std::net::SocketAddr) -> f64 {
    serve_one_job_with(addr, "/jobs", None)
}

/// [`serve_one_job`] with a custom submit path (priority/deadline query
/// params) and auth token — the hardened-daemon request shape.
fn serve_one_job_with(addr: std::net::SocketAddr, submit_path: &str, token: Option<&str>) -> f64 {
    use std::io::{Read, Write};
    let t0 = Instant::now();
    let created = serve_http_with(addr, "POST", submit_path, token, SERVE_SPEC);
    assert!(
        created.starts_with("HTTP/1.1 201"),
        "submit failed: {created}"
    );
    let id_tag = "\"job\":\"";
    let start = created.find(id_tag).expect("job id") + id_tag.len();
    let end = created[start..].find('"').unwrap() + start;
    let id = &created[start..end];

    let mut stream = std::net::TcpStream::connect(addr).expect("connect for stream");
    write!(
        stream,
        "GET /jobs/{id}/rows?follow=1 HTTP/1.1\r\nHost: bench\r\nContent-Length: 0\r\n\r\n"
    )
    .expect("send stream request");
    let mut seen = String::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = stream.read(&mut buf).expect("read stream");
        assert!(n > 0, "stream closed before the first row: {seen}");
        seen.push_str(&String::from_utf8_lossy(&buf[..n]));
        // The header line has no "point" key; the first row does.
        if seen.contains("\"point\"") {
            return t0.elapsed().as_secs_f64();
        }
    }
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx] * 1e3
}

/// Jobs/sec and submit-to-first-row latency through the daemon at
/// several client concurrencies. Emits the `"serve"` JSON section.
fn serve_bench(smoke: bool) {
    use pom_serve::{ServeConfig, Server, StopMode};

    let spool = std::env::temp_dir().join(format!("pom-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        spool: spool.clone(),
        threads: 0,
        max_jobs: 64,
        ..ServeConfig::default()
    })
    .expect("start daemon");
    let addr = server.addr();

    let clients_list: &[usize] = if smoke { &[1, 2] } else { &[1, 4, 8] };
    let jobs_per_client = if smoke { 2 } else { 25 };

    println!("  \"serve\": {{");
    println!("    \"spec\": \"1-point campaign (n=6, t_end=5): latency is daemon overhead, not integration\",");
    println!("    \"jobs_per_client\": {jobs_per_client},");
    println!("    \"rows\": [");
    let mut expected_jobs = 0usize;
    for (idx, &clients) in clients_list.iter().enumerate() {
        let t0 = Instant::now();
        let handles: Vec<std::thread::JoinHandle<Vec<f64>>> = (0..clients)
            .map(|_| {
                std::thread::spawn(move || {
                    (0..jobs_per_client).map(|_| serve_one_job(addr)).collect()
                })
            })
            .collect();
        let mut latencies: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        let wall = t0.elapsed().as_secs_f64();
        expected_jobs += clients * jobs_per_client;

        latencies.sort_by(f64::total_cmp);
        let jobs = latencies.len();
        let comma = if idx + 1 == clients_list.len() {
            ""
        } else {
            ","
        };
        println!(
            "      {{\"clients\": {clients}, \"jobs\": {jobs}, \"jobs_per_sec\": {:.1}, \
             \"submit_to_first_row_p50_ms\": {:.2}, \"submit_to_first_row_p99_ms\": {:.2}}}{comma}",
            jobs as f64 / wall,
            percentile_ms(&latencies, 50.0),
            percentile_ms(&latencies, 99.0),
        );
    }
    println!("    ]");
    println!("  }},");

    // Correctness gate: every submitted job must have drained to done
    // with exactly its one row durable.
    let summary = server.stop(StopMode::Drain);
    assert_eq!(
        summary.done, expected_jobs,
        "daemon bench left jobs unfinished"
    );
    assert_eq!(summary.rows_written, expected_jobs);
    let _ = std::fs::remove_dir_all(&spool);
    // Server::start flipped the global obs switch on; the campaign
    // section that follows must measure under pre-PR conditions.
    pom_obs::set_enabled(false);
}

/// Submit-to-first-row latency and throughput with the full hardening
/// stack armed (token auth + quotas, priority/deadline parsing, the
/// admission counter, read/write deadlines) vs the plain daemon, at the
/// same client concurrencies as the `serve` section. None of the bounds
/// trigger — this prices the checks, not the rejections — and the full-
/// mode gate asserts the hardened path keeps ≥ 0.95× of plain
/// throughput at the highest concurrency. Emits `"serve_hardening"`
/// (→ BENCH_serve_hardening.json with `only=serve_hardening`).
fn serve_hardening_bench(smoke: bool, standalone: bool) {
    use pom_serve::{ServeConfig, Server, StopMode, TokenBook};

    let clients_list: &[usize] = if smoke { &[1, 2] } else { &[1, 4, 8] };
    let jobs_per_client = if smoke { 2 } else { 25 };
    let reps = if smoke { 1 } else { 3 };
    // Generous bounds: every request passes every check.
    let quota_toml = "[tokens.bench]\nmax_active_jobs = 4096\nmax_total_points = 0\n";
    let submit_path = "/jobs?priority=high&deadline_ms=600000";

    // One concurrency row under one configuration on a fresh daemon +
    // spool; returns (jobs_per_sec, sorted latencies).
    let measure = |clients: usize, hardened: bool, rep: usize| -> (f64, Vec<f64>) {
        let spool = std::env::temp_dir().join(format!(
            "pom-bench-hard-{}-{hardened}-{clients}-{rep}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&spool);
        let mut cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            spool: spool.clone(),
            threads: 0,
            max_jobs: 8192,
            ..ServeConfig::default()
        };
        if hardened {
            cfg.auth = Some(TokenBook::parse(quota_toml).expect("bench quota book"));
            cfg.max_conns = 4096;
        }
        let server = Server::start(cfg).expect("start daemon");
        let addr = server.addr();
        let t0 = Instant::now();
        let handles: Vec<std::thread::JoinHandle<Vec<f64>>> = (0..clients)
            .map(|_| {
                std::thread::spawn(move || {
                    (0..jobs_per_client)
                        .map(|_| {
                            if hardened {
                                serve_one_job_with(addr, submit_path, Some("bench"))
                            } else {
                                serve_one_job(addr)
                            }
                        })
                        .collect()
                })
            })
            .collect();
        let mut latencies: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        let wall = t0.elapsed().as_secs_f64();
        let summary = server.stop(StopMode::Drain);
        assert_eq!(
            summary.done,
            clients * jobs_per_client,
            "hardening bench left jobs unfinished (hardened={hardened})"
        );
        let _ = std::fs::remove_dir_all(&spool);
        latencies.sort_by(f64::total_cmp);
        (latencies.len() as f64 / wall, latencies)
    };

    let indent = if standalone { "" } else { "  " };
    if standalone {
        println!("{{");
        println!("  \"bench\": \"serve_hardening\",");
        println!("  \"smoke\": {smoke},");
    } else {
        println!("  \"serve_hardening\": {{");
    }
    println!(
        "{indent}  \"config\": \"hardened = token auth (max_active_jobs=4096), ?priority=high&deadline_ms=600000, max-conns=4096, 10s read/write deadlines; plain = PR 6 defaults; no bound triggers\","
    );
    println!(
        "{indent}  \"contract\": \"hardened throughput >= 0.95x plain at the top concurrency (gated in full mode), {jobs_per_client} jobs/client, best of {reps} reps\","
    );
    println!("{indent}  \"rows\": [");
    let mut top_ratio = 0.0f64;
    for (idx, &clients) in clients_list.iter().enumerate() {
        // Interleave plain/hardened reps so clock drift hits both sides.
        let mut plain = (0.0f64, Vec::new());
        let mut hard = (0.0f64, Vec::new());
        for rep in 0..reps {
            let p = measure(clients, false, rep);
            let h = measure(clients, true, rep);
            if p.0 > plain.0 {
                plain = p;
            }
            if h.0 > hard.0 {
                hard = h;
            }
        }
        let ratio = hard.0 / plain.0;
        top_ratio = ratio; // clients_list is ascending: last row wins
        let comma = if idx + 1 == clients_list.len() {
            ""
        } else {
            ","
        };
        println!(
            "{indent}      {{\"clients\": {clients}, \"plain_jobs_per_sec\": {:.1}, \"hardened_jobs_per_sec\": {:.1}, \
             \"plain_p50_ms\": {:.2}, \"hardened_p50_ms\": {:.2}, \"plain_p99_ms\": {:.2}, \"hardened_p99_ms\": {:.2}, \
             \"throughput_ratio\": {ratio:.3}}}{comma}",
            plain.0,
            hard.0,
            percentile_ms(&plain.1, 50.0),
            percentile_ms(&hard.1, 50.0),
            percentile_ms(&plain.1, 99.0),
            percentile_ms(&hard.1, 99.0),
        );
    }
    println!("{indent}  ],");
    println!("{indent}  \"top_concurrency_ratio\": {top_ratio:.3}");
    if standalone {
        println!("}}");
    } else {
        println!("  }},");
    }
    if !smoke {
        assert!(
            top_ratio >= 0.95,
            "hardening costs too much: {top_ratio:.3}x of plain throughput (gate 0.95x)"
        );
    }
    pom_obs::set_enabled(false);
}
