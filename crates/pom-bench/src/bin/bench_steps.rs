//! Steps/sec and campaign points/sec: pre-PR baseline vs the
//! allocation-free workspace core, emitted as JSON.
//!
//! The "legacy" columns re-measure the exact pre-refactor hot path — a
//! faithful replica of the old `Rk4::step` (five `vec![0.0; n]`
//! allocations per step) driven through `&dyn OdeSystem` — so baseline
//! and current numbers come from one binary on one machine, instead of
//! comparing numbers recorded on different days. Output:
//!
//! ```bash
//! cargo run --release -p pom-bench --bin bench_steps > BENCH_steps.json
//! ```

use std::hint::black_box;
use std::time::Instant;

use pom_bench::rk4_step_legacy;
use pom_core::{InitialCondition, Normalization, PomBuilder, Potential, SimWorkspace};
use pom_ode::{OdeSystem, Rk4, Workspace};
use pom_sweep::{run_point, run_point_ws, Campaign};
use pom_topology::Topology;

fn build_model(n: usize) -> pom_core::Pom {
    PomBuilder::new(n)
        .topology(Topology::ring(n, &[-1, 1]))
        .potential(Potential::desync(3.0))
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(4.0)
        .normalization(Normalization::ByDegree)
        .build()
        .unwrap()
}

/// Faithful replica of the pre-PR `Pom::rhs_ode`: the coupling prefactor
/// (`v_p/deg(i)`, one match + division) and the intrinsic term (one
/// division) re-derived per oscillator per evaluation, and the potential
/// evaluated through `Potential::value` (enum match + the desync
/// wavenumber division per neighbor call).
struct LegacyRhs<'a> {
    model: &'a pom_core::Pom,
}

impl OdeSystem for LegacyRhs<'_> {
    fn dim(&self) -> usize {
        self.model.n()
    }

    fn eval(&self, _t: f64, theta: &[f64], dtheta: &mut [f64]) {
        let m = self.model;
        let vp = m.params().coupling();
        let cycle = m.params().cycle_time();
        for i in 0..m.n() {
            let mut coupling = 0.0;
            for &j in m.topology().neighbors(i) {
                coupling += m.potential().value(theta[j as usize] - theta[i]);
            }
            let scale = vp / m.topology().degree(i).max(1) as f64;
            dtheta[i] = std::f64::consts::TAU / cycle + scale * coupling;
        }
    }
}

/// Integrate `steps` RK4 steps with the legacy per-step-allocating path.
fn run_legacy(model: &pom_core::Pom, y0: &[f64], h: f64, steps: usize) -> f64 {
    let legacy = LegacyRhs { model };
    let sys: &dyn OdeSystem = &legacy;
    let mut y = y0.to_vec();
    let mut y_next = vec![0.0; y0.len()];
    let mut t = 0.0;
    for _ in 0..steps {
        rk4_step_legacy(sys, t, &y, h, &mut y_next);
        std::mem::swap(&mut y, &mut y_next);
        t += h;
    }
    y[0]
}

/// Integrate `steps` RK4 steps with the workspace fast path (same driver
/// shape as `FixedStepSolver::integrate_with`, no recording).
fn run_workspace(
    model: &pom_core::Pom,
    y0: &[f64],
    h: f64,
    steps: usize,
    ws: &mut Workspace,
) -> f64 {
    use pom_ode::Stepper;
    let (stage, drive) = ws.split();
    let [mut y, mut y_next] = drive.slices::<2>(y0.len());
    y.copy_from_slice(y0);
    let mut t = 0.0;
    for _ in 0..steps {
        Rk4.step(model, t, y, h, y_next, stage);
        std::mem::swap(&mut y, &mut y_next);
        t += h;
    }
    y[0]
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn time_best(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

const CAMPAIGN_SPEC: &str = r#"
    [campaign]
    name = "bench-points"
    seed = 5
    observables = ["final_r", "final_spread", "mean_abs_gap"]
    [model]
    n = 8
    potential = "desync"
    [topology]
    kind = "chain"
    [init]
    kind = "spread"
    amplitude = 0.2
    [sim]
    t_end = 15.0
    samples = 30
    [[axes]]
    key = "model.sigma"
    grid = { start = 0.5, stop = 4.0, steps = 8 }
    [[axes]]
    key = "model.coupling"
    values = [2.0, 4.0, 6.0]
"#;

/// Legacy hot loop on an arbitrary dyn system (old stepper: five heap
/// allocations per step, vtable RHS dispatch).
fn loop_legacy(sys: &dyn OdeSystem, y0: &[f64], h: f64, steps: usize) -> f64 {
    let mut y = y0.to_vec();
    let mut y_next = vec![0.0; y0.len()];
    let mut t = 0.0;
    for _ in 0..steps {
        rk4_step_legacy(sys, t, &y, h, &mut y_next);
        std::mem::swap(&mut y, &mut y_next);
        t += h;
    }
    y[0]
}

/// Workspace hot loop on a monomorphized system (new stepper: zero
/// allocations, direct RHS calls).
fn loop_workspace<S: OdeSystem>(
    sys: &S,
    y0: &[f64],
    h: f64,
    steps: usize,
    ws: &mut Workspace,
) -> f64 {
    use pom_ode::Stepper;
    let (stage, drive) = ws.split();
    let [mut y, mut y_next] = drive.slices::<2>(y0.len());
    y.copy_from_slice(y0);
    let mut t = 0.0;
    for _ in 0..steps {
        Rk4.step(sys, t, y, h, y_next, stage);
        std::mem::swap(&mut y, &mut y_next);
        t += h;
    }
    y[0]
}

fn main() {
    let h = 0.02;
    let steps = 100_000;
    let reps = 7;

    println!("{{");
    println!("  \"bench\": \"rk4_hot_loop_and_campaign_throughput\",");
    println!("  \"units\": {{\"steps_per_sec\": \"RK4 steps/s\", \"points_per_sec\": \"campaign points/s (1 worker)\"}},");
    println!("  \"notes\": [");
    println!("    \"legacy = pre-PR hot path replicated in this binary: vec![0.0; n] x5 per step + &dyn OdeSystem dispatch + per-oscillator rederivation of static RHS factors\",");
    println!("    \"workspace = current path: reused Workspace slices, monomorphized RHS, build-time coupling cache\",");
    println!("    \"rk4_hot_loop isolates the stepper machinery with a cheap norm-preserving RHS; rk4_pom_model is end-to-end on the oscillator RHS, whose per-neighbor sin() bounds the attainable gain\",");
    println!("    \"campaign compares fresh vs reused workspace per point; the per-step allocation removal benefits both columns equally\"");
    println!("  ],");

    // --- The RK4 hot loop itself -----------------------------------------
    // A coupled-pair rotation RHS (ẏ_{2k} = y_{2k+1}, ẏ_{2k+1} = −y_{2k})
    // keeps the right-hand side at a handful of instructions *and* the
    // state norm constant (a decaying RHS would underflow into denormals
    // over 10⁵ steps and poison the timing). This measures the stepper
    // machinery the refactor targeted: five heap allocations + memsets +
    // vtable dispatch per step (legacy) vs reused workspace slices +
    // monomorphized calls (current).
    println!("  \"rk4_hot_loop\": [");
    let sizes = [16usize, 64, 256];
    for (idx, &n) in sizes.iter().enumerate() {
        let lin = pom_ode::FnSystem::new(n, |_t, y: &[f64], d: &mut [f64]| {
            let mut i = 0;
            while i + 1 < y.len() {
                d[i] = y[i + 1];
                d[i + 1] = -y[i];
                i += 2;
            }
        });
        let y0: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.01).collect();
        let mut ws = Workspace::new();
        let a = loop_legacy(&lin, &y0, h, 1000);
        let b = loop_workspace(&lin, &y0, h, 1000, &mut ws);
        assert_eq!(a.to_bits(), b.to_bits(), "paths diverged at n = {n}");

        let t_legacy = time_best(reps, || loop_legacy(&lin, &y0, h, steps));
        let t_ws = time_best(reps, || loop_workspace(&lin, &y0, h, steps, &mut ws));
        let legacy_sps = steps as f64 / t_legacy;
        let ws_sps = steps as f64 / t_ws;
        let comma = if idx + 1 == sizes.len() { "" } else { "," };
        println!(
            "    {{\"n\": {n}, \"legacy_steps_per_sec\": {legacy_sps:.0}, \"workspace_steps_per_sec\": {ws_sps:.0}, \"speedup\": {:.3}}}{comma}",
            ws_sps / legacy_sps
        );
    }
    println!("  ],");

    // --- End-to-end on the oscillator model ------------------------------
    // Same loops driving the POM right-hand side (ring, desync potential).
    // Here the RHS cost (one sin per neighbor per stage) bounds the gain —
    // reported for honest context, not as the hot-loop headline.
    println!("  \"rk4_pom_model\": [");
    for (idx, &n) in sizes.iter().enumerate() {
        let model = build_model(n);
        let y0 = InitialCondition::RandomSpread {
            amplitude: 0.3,
            seed: 1,
        }
        .phases(n);

        // Warm up and verify both paths agree bitwise before timing.
        let mut ws = Workspace::new();
        let a = run_legacy(&model, &y0, h, 1000);
        let b = run_workspace(&model, &y0, h, 1000, &mut ws);
        assert_eq!(a.to_bits(), b.to_bits(), "paths diverged at n = {n}");

        let t_legacy = time_best(reps, || run_legacy(&model, &y0, h, steps));
        let t_ws = time_best(reps, || run_workspace(&model, &y0, h, steps, &mut ws));
        let legacy_sps = steps as f64 / t_legacy;
        let ws_sps = steps as f64 / t_ws;
        let comma = if idx + 1 == sizes.len() { "" } else { "," };
        println!(
            "    {{\"n\": {n}, \"legacy_steps_per_sec\": {legacy_sps:.0}, \"workspace_steps_per_sec\": {ws_sps:.0}, \"speedup\": {:.3}}}{comma}",
            ws_sps / legacy_sps
        );
    }
    println!("  ],");

    // Campaign throughput: fresh workspace per point vs one reused
    // workspace (what the executor's workers now do). Both already use
    // the allocation-free step loop — the per-step-allocation removal
    // itself is captured by the "rk4" section above — so this isolates
    // the marginal win of per-worker workspace reuse.
    let campaign = Campaign::from_str(CAMPAIGN_SPEC).expect("bench spec");
    let points = campaign.total_points();
    let t_fresh = time_best(9, || {
        let mut acc = 0.0;
        for i in 0..points {
            acc += run_point(&campaign.spec, i).observables[0].1;
        }
        acc
    });
    let t_reused = time_best(9, || {
        let mut ws = SimWorkspace::new();
        let mut acc = 0.0;
        for i in 0..points {
            acc += run_point_ws(&campaign.spec, i, &mut ws).observables[0].1;
        }
        acc
    });
    let fresh_pps = points as f64 / t_fresh;
    let reused_pps = points as f64 / t_reused;
    println!(
        "  \"campaign\": {{\"points\": {points}, \"fresh_points_per_sec\": {fresh_pps:.2}, \"reused_points_per_sec\": {reused_pps:.2}, \"speedup\": {:.3}}}",
        reused_pps / fresh_pps
    );
    println!("}}");
}
