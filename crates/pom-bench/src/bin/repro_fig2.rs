//! Reproduce paper Fig. 2: the four corner cases (scalable vs.
//! bottlenecked × `d = ±1` vs. `d = ±1, −2`), each on both substrates:
//! the MPI simulator produces the ITAC-like trace (inner images), the
//! oscillator model the circular phase diagrams.

use pom_analysis::fig2_verdict;
use pom_bench::{header, save, verdict};
use pom_core::{fig2_model, fig2_params, Fig2Panel, InitialCondition, SimOptions};
use pom_kernels::Kernel;
use pom_mpisim::{ProgramSpec, SimDelay, Simulator, WorkSpec};
use pom_topology::{ClusterSpec, Placement};
use pom_viz::{circle_svg, gantt_ascii, gantt_svg};

fn main() {
    header(
        "F2",
        "idle wave from one-off delay on rank 5; scalable codes resynchronize, \
         bottlenecked codes keep a computational wavefront; wider stencil = faster wave",
    );
    let mut all_ok = true;
    let mut speeds = Vec::new();

    for panel in Fig2Panel::all() {
        println!("\n--- {}", fig2_params(panel));

        // Simulator trace (inner image analog).
        let kernel = if panel.scalable() {
            Kernel::pisolver()
        } else {
            Kernel::stream_triad()
        };
        let msg = if panel.scalable() { 8 } else { 4_000_000 };
        let prog = ProgramSpec::new(40, 40)
            .kernel(kernel)
            .work(WorkSpec::TargetSeconds(1e-3))
            .distances(panel.distances().to_vec())
            .message_bytes(msg)
            .inject(SimDelay {
                rank: 5,
                iteration: 5,
                extra_seconds: 5e-3,
            });
        let trace = Simulator::new(prog, Placement::packed(ClusterSpec::meggie(), 40))
            .expect("simulator builds")
            .run()
            .expect("simulation runs");
        save(
            &format!("fig2{}_trace.svg", panel.letter()),
            &gantt_svg(&trace, 800.0, 8.0),
        );
        // Compact terminal preview (first 12 ranks).
        let preview: String = gantt_ascii(&trace, 90)
            .lines()
            .take(12)
            .collect::<Vec<_>>()
            .join("\n");
        println!("{preview}");

        // Model circle diagram (asymptotic state).
        let model = fig2_model(panel, true).expect("preset builds");
        let run = model
            .simulate_with(
                InitialCondition::Synchronized,
                &SimOptions::new(120.0).samples(240),
            )
            .expect("model integrates");
        let final_state = run.trajectory().last().unwrap().to_vec();
        save(
            &format!("fig2{}_circle.svg", panel.letter()),
            &circle_svg(&final_state, None, 260.0),
        );

        // Joint verdict.
        let v = fig2_verdict(panel);
        println!(
            "model: {:?} (spread {:.3} rad, gap {:.3} rad) | sim: {:?} (spread {:.2e} s)",
            v.model, v.model_residual_spread, v.model_adjacent_gap, v.sim, v.sim_residual_spread
        );
        if let (Some(m), Some(s)) = (v.model_wave_speed, v.sim_wave_speed) {
            println!("wave speed: model {m:.3} ranks/cycle, sim {s:.1} ranks/s");
            speeds.push((panel, m, s));
        }
        println!(
            "agrees with paper: {}",
            if v.agrees() { "YES" } else { "NO" }
        );
        all_ok &= v.agrees();
    }

    // Cross-panel speed claim (§5.1.1): wider stencil is faster.
    if let (Some(a), Some(c)) = (
        speeds.iter().find(|s| s.0 == Fig2Panel::A),
        speeds.iter().find(|s| s.0 == Fig2Panel::C),
    ) {
        let ratio_model = c.1 / a.1;
        let ratio_sim = c.2 / a.2;
        println!("\nwave-speed ratio (c/a): model {ratio_model:.2}×, sim {ratio_sim:.2}×");
        all_ok &= ratio_model > 1.3 && ratio_sim > 1.3;
    }

    verdict(
        all_ok,
        "all four corner cases show the paper's asymptotic states on both substrates",
    );
}
