//! Ablation (DESIGN.md §8): interaction noise τ_ij — the delay-equation
//! coupling — versus the zero-delay approximation.
//!
//! Paper §3.1 includes τ_ij(t) but §6 leaves its exploration to future
//! work ("we have not yet explored the role of the noise functions").
//! This experiment maps the territory: constant and random communication
//! delays against the ODE baseline, for both potentials.

use pom_bench::{header, save, verdict};
use pom_core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom_noise::{ConstantDelay, NoDelay, RandomCommDelay};
use pom_topology::Topology;
use pom_viz::write_table;

fn run(potential: Potential, delay: Delay) -> pom_core::PomRun {
    let n = 16;
    let mut b = PomBuilder::new(n)
        .topology(Topology::chain(n, &[-1, 1]))
        .potential(potential)
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(4.0)
        .normalization(Normalization::ByDegree);
    b = match delay {
        Delay::None => b.interaction_noise(NoDelay),
        Delay::Constant(d) => b.interaction_noise(ConstantDelay::new(d)),
        Delay::Random(mean, spread) => {
            b.interaction_noise(RandomCommDelay::new(5, n, mean, spread, 1.0))
        }
    };
    b.build()
        .unwrap()
        .simulate_with(
            InitialCondition::RandomSpread {
                amplitude: 0.3,
                seed: 21,
            },
            &SimOptions::new(150.0).samples(300),
        )
        .unwrap()
}

#[derive(Clone, Copy)]
enum Delay {
    None,
    Constant(f64),
    Random(f64, f64),
}

fn main() {
    header(
        "A-delay",
        "ablation: delay coupling θ_j(t−τ) vs zero-delay. Small delays must not \
         change the asymptotic verdicts; large delays are *expected* to shift the \
         desync fixed point (the stale comparison θ_j(t−τ) adds ≈ τω to the \
         effective phase difference, pushing it past the repulsive core) — the \
         noise-function territory the paper defers to future work (§6)",
    );

    println!(
        "{:>10}  {:>18}  {:>10}  {:>12}",
        "potential", "delay", "final r", "mean |gap|"
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for potential in [Potential::Tanh, Potential::desync(3.0)] {
        for (name, d) in [
            ("none", Delay::None),
            ("const 0.05", Delay::Constant(0.05)),
            ("const 0.2", Delay::Constant(0.2)),
            ("random 0.1±0.03", Delay::Random(0.1, 0.03)),
        ] {
            let r = run(potential, d);
            let gaps = r.final_adjacent_differences();
            let gap = gaps.iter().map(|g| g.abs()).sum::<f64>() / gaps.len() as f64;
            let order = r.final_order_parameter();
            println!(
                "{:>10}  {name:>18}  {order:>10.4}  {gap:>12.4}",
                potential.name()
            );
            rows.push(vec![
                f64::from(u8::from(potential != Potential::Tanh)),
                order,
                gap,
            ]);
            results.push((potential, name, order, gap));
        }
    }
    save(
        "delay_ablation.csv",
        &write_table(&["is_desync", "final_r", "gap"], &rows),
    );

    // Verdicts: tanh keeps r ≈ 1 under every delay; the desync wavefront
    // survives small delays (≤ 0.05 cycles, gap stays at 2σ/3 = 2.0) but a
    // 0.2-cycle delay *re-stabilizes lockstep* — delay-induced
    // resynchronization, a genuine model prediction mapped here.
    // Random delays keep injecting micro-perturbations, so the tanh runs
    // hover just below perfect order; r > 0.95 is still unambiguous sync.
    let tanh_ok = results
        .iter()
        .filter(|r| r.0 == Potential::Tanh)
        .all(|r| r.2 > 0.95);
    let small_delay_ok = results
        .iter()
        .filter(|r| {
            r.0 != Potential::Tanh
                && (r.1 == "none" || r.1 == "const 0.05" || r.1.starts_with("random"))
        })
        .all(|r| (r.3 - 2.0).abs() < 0.15);
    let large_delay_resync = results
        .iter()
        .filter(|r| r.0 != Potential::Tanh && r.1 == "const 0.2")
        .all(|r| r.2 > 0.99 && r.3 < 0.1);
    println!(
        "\nfinding: const 0.2-cycle delay re-stabilizes lockstep under the desync\n\
         potential (τω ≈ 1.26 rad shifts the comparison past the repulsive core)."
    );
    verdict(
        tanh_ok && small_delay_ok && large_delay_resync,
        "verdicts robust for τ ≤ 0.05 cycles; τ = 0.2 exhibits delay-induced resynchronization (documented)",
    );
}
