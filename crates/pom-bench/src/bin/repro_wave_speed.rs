//! Reproduce §5.1.1 (experiment C1): idle-wave speed as a function of the
//! coupling βκ — on the model (βκ sweep at fixed topology) and on the
//! simulator (distance sets and protocols change the effective βκ).
//!
//! Paper claims: βκ ≈ 0 → free processes (no wave); βκ = 1 → minimum
//! speed; larger βκ → faster waves, stiffer system.

use pom_analysis::{model_wave_arrivals, sim_wave_arrivals, wave_speed_fit};
use pom_bench::{header, save, verdict};
use pom_core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom_mpisim::{MpiProtocol, ProgramSpec, SimDelay, Simulator, WorkSpec};
use pom_noise::{DelayEvent, OneOffDelays};
use pom_topology::{ClusterSpec, Placement, Topology};
use pom_viz::write_table;

fn model_speed(beta_kappa: f64) -> Option<f64> {
    let n = 40;
    let run = |inject: bool| {
        let mut b = PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(beta_kappa)
            .normalization(Normalization::ByDegree);
        if inject {
            b = b.local_noise(OneOffDelays::new(vec![DelayEvent {
                rank: 5,
                t_start: 2.0,
                duration: 3.0,
                extra: 1.0,
            }]));
        }
        b.build()
            .unwrap()
            .simulate_with(InitialCondition::Synchronized, &SimOptions::new(100.0).samples(500))
            .unwrap()
    };
    let arrivals = model_wave_arrivals(&run(true), &run(false), 0.05);
    wave_speed_fit(&arrivals, 5, 14).mean_speed()
}

fn sim_speed(distances: &[i32], protocol: MpiProtocol) -> Option<f64> {
    let n = 40;
    let mk = |inject: bool| {
        let mut p = ProgramSpec::new(n, 36)
            .work(WorkSpec::TargetSeconds(1e-3))
            .distances(distances.to_vec())
            .protocol(protocol);
        if inject {
            p = p.inject(SimDelay { rank: 12, iteration: 4, extra_seconds: 5e-3 });
        }
        Simulator::new(p, Placement::packed(ClusterSpec::meggie(), n))
            .unwrap()
            .run()
            .unwrap()
    };
    let arrivals = sim_wave_arrivals(&mk(true), &mk(false), 2e-3);
    // Convert to ranks per iteration (1 iteration ≈ 1 ms here).
    wave_speed_fit(&arrivals, 12, 12).mean_speed().map(|s| s * 1e-3)
}

fn main() {
    header(
        "C1",
        "idle-wave speed grows with βκ; βκ≈0 = free processes; \
         eager→rendezvous doubles the dependency range",
    );

    // --- model sweep ---
    println!("model (ring ±1, tanh), speed vs βκ:");
    println!("{:>8}  {:>16}", "βκ", "speed [rk/cycle]");
    let mut rows = Vec::new();
    let mut speeds = Vec::new();
    for bk in [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0] {
        match model_speed(bk) {
            Some(s) => {
                println!("{bk:>8.1}  {s:>16.4}");
                rows.push(vec![bk, s]);
                speeds.push((bk, s));
            }
            None => {
                println!("{bk:>8.1}  {:>16}", "no wave");
                rows.push(vec![bk, 0.0]);
            }
        }
    }
    save("wave_speed_vs_beta_kappa.csv", &write_table(&["beta_kappa", "speed"], &rows));

    let monotone = speeds.windows(2).all(|w| w[1].1 > w[0].1);
    let free_ok = rows[0][1] == 0.0; // βκ = 0 → no wave

    // --- simulator: distance sets and protocols ---
    println!("\nsimulator (PISOLVER), speed vs distance set and protocol:");
    println!("{:>16}  {:>12}  {:>16}", "distances", "protocol", "speed [rk/iter]");
    let cases: [(&[i32], MpiProtocol); 4] = [
        (&[-1, 1], MpiProtocol::Eager),
        (&[-1, 1], MpiProtocol::Rendezvous),
        (&[-2, -1, 1], MpiProtocol::Eager),
        (&[-3, -1, 1], MpiProtocol::Eager),
    ];
    let mut sim_rows = Vec::new();
    let mut sim_speeds = Vec::new();
    for (d, p) in cases {
        let s = sim_speed(d, p).unwrap_or(0.0);
        println!("{:>16}  {:>12}  {s:>16.3}", format!("{d:?}"), p.name());
        sim_rows.push(vec![d.iter().map(|x| x.abs()).sum::<i32>() as f64, p.beta(), s]);
        sim_speeds.push(s);
    }
    save("wave_speed_sim.csv", &write_table(&["kappa_sum", "beta", "speed_rk_per_iter"], &sim_rows));

    // Wider stencils are faster; the -3 leg beats the -2 leg.
    let stencil_ok = sim_speeds[2] > sim_speeds[0] && sim_speeds[3] > sim_speeds[2];

    verdict(
        monotone && free_ok && stencil_ok,
        &format!(
            "model speed monotone in βκ ({} points), free at βκ=0; simulator speed grows with stencil reach",
            speeds.len()
        ),
    );
}
