//! Reproduce §5.1.1 (experiment C1): idle-wave speed as a function of the
//! coupling βκ — on the model (βκ sweep at fixed topology) and on the
//! simulator (distance sets and protocols change the effective βκ).
//!
//! Paper claims: βκ ≈ 0 → free processes (no wave); βκ = 1 → minimum
//! speed; larger βκ → faster waves, stiffer system.
//!
//! Both sides run as declarative `pom-sweep` campaigns: the model sweep
//! over a coupling axis, the simulator sweep over a zipped
//! distances/protocol axis.

use pom_bench::{header, save, verdict};
use pom_mpisim::MpiProtocol;
use pom_sweep::Campaign;
use pom_viz::write_table;

fn model_campaign() -> Campaign {
    Campaign::from_str(
        r#"
        [campaign]
        name = "wave-speed-model"
        observables = ["wave_speed"]
        [model]
        n = 40
        potential = "tanh"
        tcomp = 0.9
        tcomm = 0.1
        [topology]
        kind = "ring"
        [init]
        kind = "sync"
        [inject]
        rank = 5
        at = 2.0
        len = 3.0
        extra = 1.0
        [sim]
        t_end = 100.0
        samples = 500
        [wave]
        threshold = 0.05
        max_distance = 14
        [[axes]]
        key = "model.coupling"
        values = [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0]
        "#,
    )
    .expect("model campaign spec")
}

fn sim_campaign() -> Campaign {
    Campaign::from_str(
        r#"
        [campaign]
        name = "wave-speed-sim"
        workload = "mpisim"
        observables = ["wave_speed"]
        [mpisim]
        n = 40
        iterations = 36
        kernel = "pisolver"
        work_seconds = 1e-3
        [inject]
        rank = 12
        iteration = 4
        extra_seconds = 5e-3
        [wave]
        threshold = 2e-3
        max_distance = 12
        [[axes]]
        keys = ["mpisim.distances", "mpisim.protocol"]
        values = [
            [[-1, 1], "eager"],
            [[-1, 1], "rendezvous"],
            [[-2, -1, 1], "eager"],
            [[-3, -1, 1], "eager"],
        ]
        "#,
    )
    .expect("sim campaign spec")
}

fn main() {
    header(
        "C1",
        "idle-wave speed grows with βκ; βκ≈0 = free processes; \
         eager→rendezvous doubles the dependency range",
    );

    // --- model sweep ---
    println!("model (ring ±1, tanh), speed vs βκ:");
    println!("{:>8}  {:>16}", "βκ", "speed [rk/cycle]");
    let model_rows = model_campaign().run_collect(0).expect("model campaign");
    let mut rows = Vec::new();
    let mut speeds = Vec::new();
    for row in &model_rows {
        assert!(row.error.is_none(), "{:?}", row.error);
        let bk = row.params[0].1.as_f64().unwrap();
        let s = row.observables[0].1;
        if s.is_finite() {
            println!("{bk:>8.1}  {s:>16.4}");
            rows.push(vec![bk, s]);
            speeds.push((bk, s));
        } else {
            println!("{bk:>8.1}  {:>16}", "no wave");
            rows.push(vec![bk, 0.0]);
        }
    }
    save(
        "wave_speed_vs_beta_kappa.csv",
        &write_table(&["beta_kappa", "speed"], &rows),
    );

    let monotone = speeds.windows(2).all(|w| w[1].1 > w[0].1);
    let free_ok = rows[0][1] == 0.0; // βκ = 0 → no wave

    // --- simulator: distance sets and protocols ---
    println!("\nsimulator (PISOLVER), speed vs distance set and protocol:");
    println!(
        "{:>16}  {:>12}  {:>16}",
        "distances", "protocol", "speed [rk/iter]"
    );
    let sim_rows_raw = sim_campaign().run_collect(0).expect("sim campaign");
    let mut sim_rows = Vec::new();
    let mut sim_speeds = Vec::new();
    for row in &sim_rows_raw {
        assert!(row.error.is_none(), "{:?}", row.error);
        let distances: Vec<i64> = row.params[0]
            .1
            .as_array()
            .unwrap()
            .iter()
            .map(|d| d.as_i64().unwrap())
            .collect();
        let protocol = match row.params[1].1.as_str().unwrap() {
            "eager" => MpiProtocol::Eager,
            "rendezvous" => MpiProtocol::Rendezvous,
            other => panic!("unexpected protocol label `{other}`"),
        };
        let beta = protocol.beta();
        // The engine reports ranks/second; 1 iteration ≈ 1 ms here.
        let s = Some(row.observables[0].1)
            .filter(|s| s.is_finite())
            .unwrap_or(0.0)
            * 1e-3;
        println!(
            "{:>16}  {:>12}  {s:>16.3}",
            format!("{distances:?}"),
            protocol.name()
        );
        sim_rows.push(vec![
            distances.iter().map(|x| x.abs()).sum::<i64>() as f64,
            beta,
            s,
        ]);
        sim_speeds.push(s);
    }
    save(
        "wave_speed_sim.csv",
        &write_table(&["kappa_sum", "beta", "speed_rk_per_iter"], &sim_rows),
    );

    // Wider stencils are faster; the -3 leg beats the -2 leg.
    let stencil_ok = sim_speeds[2] > sim_speeds[0] && sim_speeds[3] > sim_speeds[2];

    verdict(
        monotone && free_ok && stencil_ok,
        &format!(
            "model speed monotone in βκ ({} points), free at βκ=0; simulator speed grows with stencil reach",
            speeds.len()
        ),
    );
}
