//! Reproduce paper Fig. 1(b): memory-bandwidth scaling of STREAM triad,
//! "slow" Schönauer triad and PISOLVER over the cores of one Meggie
//! socket.
//!
//! Paper shape: STREAM saturates the ~68 GB/s socket within a few cores;
//! the slow triad's expensive cos/divide moves saturation to high core
//! counts; PISOLVER performs no memory traffic at all.

// Index-as-rank loops are intentional here (the index is the rank id).
#![allow(clippy::needless_range_loop)]

use pom_bench::{header, save, verdict};
use pom_kernels::{saturation_point, scaling_curve, Kernel, SocketSpec};
use pom_viz::{write_table, SvgCanvas};

fn main() {
    header(
        "F1b",
        "STREAM saturates at few cores; slow Schönauer saturates much later; \
         PISOLVER draws no bandwidth (resource-scalable)",
    );
    let socket = SocketSpec::meggie();
    let kernels = Kernel::paper_kernels();
    let curves: Vec<_> = kernels
        .iter()
        .map(|k| scaling_curve(k, &socket, socket.cores))
        .collect();

    println!(
        "{:>6}  {:>14}  {:>18}  {:>12}",
        "procs", "STREAM [MB/s]", "slow Schönauer", "PISOLVER"
    );
    let mut rows = Vec::new();
    for p in 0..socket.cores {
        let r = [
            (p + 1) as f64,
            curves[0][p].aggregate_bw / 1e6,
            curves[1][p].aggregate_bw / 1e6,
            curves[2][p].aggregate_bw / 1e6,
        ];
        println!(
            "{:>6}  {:>14.0}  {:>18.0}  {:>12.0}",
            p + 1,
            r[1],
            r[2],
            r[3]
        );
        rows.push(r.to_vec());
    }
    save(
        "fig1b_scaling.csv",
        &write_table(
            &["procs", "stream_mbs", "schoenauer_mbs", "pisolver_mbs"],
            &rows,
        ),
    );

    // SVG in the paper's axes (MB/s up to 6e4+).
    let mut svg = SvgCanvas::new(480.0, 300.0, (0.0, 10.5), (0.0, 7.2e4));
    for gy in [2e4, 4e4, 6e4] {
        svg.line((0.0, gy), (10.5, gy), "#ddd", 0.7);
        svg.text((0.1, gy + 500.0), 10.0, &format!("{:.0}e4", gy / 1e4));
    }
    let series = |ci: usize| -> Vec<(f64, f64)> {
        (0..socket.cores)
            .map(|p| ((p + 1) as f64, curves[ci][p].aggregate_bw / 1e6))
            .collect()
    };
    svg.polyline(&series(0), "crimson", 1.8); // STREAM
    svg.polyline(&series(1), "steelblue", 1.8); // slow Schönauer
    svg.polyline(&series(2), "seagreen", 1.8); // PISOLVER
    svg.text(
        (5.0, 6.9e4),
        11.0,
        "red: STREAM · blue: slow Schönauer · green: PISOLVER",
    );
    save("fig1b_scaling.svg", &svg.render());

    let sat_stream = saturation_point(&Kernel::stream_triad(), &socket, 0.95);
    let sat_slow = saturation_point(&Kernel::schoenauer_slow(), &socket, 0.95);
    let sat_pi = saturation_point(&Kernel::pisolver(), &socket, 0.05);
    println!("\nsaturation points (95% of socket bandwidth):");
    println!("  STREAM: {sat_stream:?} cores   slow Schönauer: {sat_slow:?} cores   PISOLVER: {sat_pi:?}");

    let ok = matches!(sat_stream, Some(c) if c <= 4)
        && matches!(sat_slow, Some(c) if c >= 7)
        && sat_pi.is_none()
        && curves[2].iter().all(|p| p.aggregate_bw == 0.0);
    verdict(
        ok,
        &format!(
            "saturation order matches the paper: STREAM at {} cores, slow triad at {} cores, PISOLVER never",
            sat_stream.unwrap_or(0),
            sat_slow.unwrap_or(0)
        ),
    );
}
