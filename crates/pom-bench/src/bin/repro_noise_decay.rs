//! Reproduce §5.1 / §1.2 (experiment C6): "Idle waves get damped as they
//! travel and will run out eventually" [Markidis et al. 2015] — idle
//! waves interact nonlinearly "with each other and with system noise,
//! leading to their eventual decay".
//!
//! Protocol: launch the same idle wave on the simulated cluster under
//! increasing background noise and measure how far the front survives
//! (the distance at which the excess delay falls below threshold) and the
//! surviving amplitude at a fixed distance.

use pom_analysis::sim_wave_arrivals;
use pom_bench::{header, save, verdict};
use pom_kernels::Kernel;
use pom_mpisim::{ProgramSpec, SimDelay, SimTrace, Simulator, WorkSpec};
use pom_topology::{ClusterSpec, Placement};
use pom_viz::write_table;

fn run(noise: f64, inject: bool) -> SimTrace {
    let n = 40;
    let mut p = ProgramSpec::new(n, 40)
        .kernel(Kernel::pisolver())
        .work(WorkSpec::TargetSeconds(1e-3))
        .noise(noise, 31);
    if inject {
        p = p.inject(SimDelay {
            rank: 20,
            iteration: 4,
            extra_seconds: 3e-3,
        });
    }
    Simulator::new(p, Placement::packed(ClusterSpec::meggie(), n))
        .unwrap()
        .run()
        .unwrap()
}

fn main() {
    header(
        "C6",
        "idle waves decay through interaction with system noise; a noise-free \
         scalable system carries the wave undamped",
    );

    println!(
        "{:>12}  {:>12}  {:>18}",
        "noise σ [s]", "reach [rk]", "amp @ 10 ranks [s]"
    );
    let mut rows = Vec::new();
    let mut reaches = Vec::new();
    for noise in [0.0, 5e-5, 1e-4, 2e-4, 4e-4] {
        let pert = run(noise, true);
        let base = run(noise, false);
        // Arrival threshold: a third of the injected delay.
        let arrivals = sim_wave_arrivals(&pert, &base, 1e-3);
        let reach = arrivals
            .iter()
            .filter(|a| a.iteration.is_some())
            .map(|a| a.rank.abs_diff(20))
            .max()
            .unwrap_or(0);
        // Excess delay 10 ranks away at the end of the run.
        let amp = pert.rank(10).iter_end(39) - base.rank(10).iter_end(39);
        println!("{noise:>12.1e}  {reach:>12}  {amp:>18.3e}");
        rows.push(vec![noise, reach as f64, amp]);
        reaches.push((noise, reach, amp));
    }
    save(
        "noise_decay.csv",
        &write_table(&["noise_sigma", "reach_ranks", "amp_10ranks"], &rows),
    );

    // Noise-free: the wave crosses everything and the delay arrives in
    // full. With growing noise the wave is damped: the surviving
    // amplitude at distance 10 shrinks monotonically.
    let silent = &reaches[0];
    let amps: Vec<f64> = reaches.iter().map(|r| r.2).collect();
    let damped = amps.windows(2).all(|w| w[1] <= w[0] * 1.05);
    let strongest = reaches.last().unwrap();
    println!(
        "\nsilent system: reach {} ranks, amplitude {:.2e} s; strongest noise: amplitude {:.2e} s",
        silent.1, silent.2, strongest.2
    );
    verdict(
        silent.1 >= 19 && damped && strongest.2 < 0.7 * silent.2,
        &format!(
            "noise damps the wave: surviving amplitude {:.1e} → {:.1e} s as σ grows to 0.4 t_comp",
            silent.2, strongest.2
        ),
    );
}
