//! Parameter portability (the paper's artifact appendix reports the same
//! experiments on SuperMUC-NG): rerun the Fig. 2(a/b) analog on the
//! SuperMUC-NG-like cluster spec — different core counts, bandwidth and
//! frequencies — and check the *qualitative* conclusions are unchanged.

use pom_analysis::{residual_spread, sim_wave_arrivals, wave_speed_fit};
use pom_bench::{header, save, verdict};
use pom_kernels::Kernel;
use pom_mpisim::{ProgramSpec, SimDelay, SimTrace, Simulator, WorkSpec};
use pom_topology::{ClusterSpec, Placement};
use pom_viz::write_table;

fn run(spec: ClusterSpec, kernel: Kernel, msg: usize, inject: bool) -> SimTrace {
    // Two full sockets of whatever the machine offers.
    let n = 2 * spec.cores_per_socket;
    let mut p = ProgramSpec::new(n, 50)
        .kernel(kernel)
        .work(WorkSpec::TargetSeconds(1e-3))
        .message_bytes(msg);
    if inject {
        p = p.inject(SimDelay {
            rank: 5,
            iteration: 5,
            extra_seconds: 5e-3,
        });
    }
    Simulator::new(p, Placement::packed(spec, n))
        .unwrap()
        .run()
        .unwrap()
}

fn main() {
    header(
        "A-portability",
        "the qualitative Fig. 2 conclusions survive a cluster swap \
         (Meggie → SuperMUC-NG-like): scalable resyncs, bottlenecked keeps \
         a wavefront, waves propagate at ~1 rank/iteration",
    );

    let mut rows = Vec::new();
    let mut ok = true;
    for (name, spec) in [
        ("meggie", ClusterSpec::meggie()),
        ("supermuc-ng", ClusterSpec::supermuc_ng_like()),
    ] {
        // Scalable side.
        let pert = run(spec.clone(), Kernel::pisolver(), 8, true);
        let base = run(spec.clone(), Kernel::pisolver(), 8, false);
        let arrivals = sim_wave_arrivals(&pert, &base, 2e-3);
        let speed = wave_speed_fit(&arrivals, 5, 12)
            .mean_speed()
            .map(|s| s * 1e-3) // ranks per iteration (1 ms per iteration)
            .unwrap_or(0.0);
        let scal_res = residual_spread(&pert, 40);

        // Bottlenecked side.
        let mem = run(spec.clone(), Kernel::stream_triad(), 4_000_000, true);
        let mem_res = residual_spread(&mem, 40);

        println!(
            "{name:>12}: wave speed {speed:.2} rk/iter, scalable residual {scal_res:.2e} s, memory-bound residual {mem_res:.2e} s"
        );
        rows.push(vec![speed, scal_res, mem_res]);
        ok &= (speed - 1.0).abs() < 0.2 && scal_res < 5e-4 && mem_res > 1e-3;
    }
    save(
        "supermuc_portability.csv",
        &write_table(
            &[
                "wave_speed_rk_iter",
                "scalable_residual",
                "membound_residual",
            ],
            &rows,
        ),
    );
    verdict(
        ok,
        "both clusters show the same qualitative split: resync (scalable) vs wavefront (memory-bound), ~1 rank/iter waves",
    );
}
