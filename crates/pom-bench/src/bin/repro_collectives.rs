//! Extension experiment (paper §6): "frequently synchronizing parallel
//! programs are incompatible with massive parallelism; in the future,
//! parallel code may be more strongly task-based and asynchronous,
//! allowing for slow idle wave progression and desynchronization."
//!
//! Protocol: take the memory-bound (bottleneck-evading) workload and
//! force a synchronizing collective every K iterations. The collective
//! wipes the computational wavefront each time — and with it the
//! bottleneck-evasion dividend: per-iteration cost rises as K shrinks.

use pom_analysis::residual_spread;
use pom_bench::{header, save, verdict};
use pom_kernels::Kernel;
use pom_mpisim::{ProgramSpec, SimDelay, SimTrace, Simulator, WorkSpec};
use pom_topology::{ClusterSpec, Placement};
use pom_viz::write_table;

fn run(allreduce_every: Option<usize>) -> SimTrace {
    let n = 40;
    let mut p = ProgramSpec::new(n, 60)
        .kernel(Kernel::stream_triad())
        .work(WorkSpec::TargetSeconds(1e-3))
        .message_bytes(4_000_000)
        .inject(SimDelay {
            rank: 5,
            iteration: 5,
            extra_seconds: 5e-3,
        });
    if let Some(k) = allreduce_every {
        p = p.allreduce_every(k);
    }
    Simulator::new(p, Placement::packed(ClusterSpec::meggie(), n))
        .unwrap()
        .run()
        .unwrap()
}

fn main() {
    header(
        "A-collectives",
        "synchronizing collectives destroy the computational wavefront and its \
         bottleneck-evasion dividend; barrier-free execution desynchronizes and runs faster",
    );

    println!(
        "{:>16}  {:>18}  {:>14}",
        "allreduce every", "residual skew [s]", "makespan [s]"
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for k in [None, Some(20), Some(8), Some(2)] {
        let tr = run(k);
        let res = residual_spread(&tr, 50);
        let label = k.map_or("never".to_string(), |k| k.to_string());
        println!("{label:>16}  {res:>18.3e}  {:>14.5}", tr.makespan());
        rows.push(vec![k.map_or(0.0, |k| k as f64), res, tr.makespan()]);
        results.push((k, res, tr.makespan()));
    }
    save(
        "collectives.csv",
        &write_table(&["allreduce_every", "residual_skew", "makespan"], &rows),
    );

    let free = &results[0];
    let tight = results.last().unwrap();
    // Barrier-free: macroscopic persistent wavefront. Every-2: skew wiped
    // and the run is slower.
    let ok = free.1 > 1e-3 && tight.1 < free.1 / 3.0 && tight.2 > free.2;
    verdict(
        ok,
        &format!(
            "barrier-free skew {:.1e} s vs every-2-collectives {:.1e} s; makespan {:.4} → {:.4} s (collectives cost {:.1}%)",
            free.1,
            tight.1,
            free.2,
            tight.2,
            100.0 * (tight.2 / free.2 - 1.0)
        ),
    );
}
