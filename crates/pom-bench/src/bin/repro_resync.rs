//! Reproduce §5.2.1 (experiment C3): self-synchronization of scalable
//! code — "a disturbance or 'pull' causes phase differences across
//! oscillators, but the system snaps back into a synchronized state".
//!
//! Protocol: pull one oscillator away by Δθ ∈ {0.5, 2, 10} rad and watch
//! the order parameter return to 1. The tanh potential must recover from
//! *any* pull (no phase slips); the plain Kuramoto sin potential fails
//! for pulls beyond π (it slips into a 2π-shifted state and, for a pull
//! near 2π, barely registers a disturbance at all).

use pom_bench::{header, save, verdict};
use pom_core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
use pom_ode::events;
use pom_topology::Topology;
use pom_viz::write_table;

/// Simulate a pulled oscillator and report (time to r > 0.999, final
/// max |θ_i − θ_0| as a slip detector).
fn recovery(potential: Potential, pull: f64) -> (Option<f64>, f64) {
    let n = 16;
    let mut init = vec![0.0; n];
    init[7] = pull;
    let model = PomBuilder::new(n)
        .topology(Topology::ring(n, &[-1, 1]))
        .potential(potential)
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(2.0)
        .normalization(Normalization::ByDegree)
        .build()
        .unwrap();
    let run = model
        .simulate_with(
            InitialCondition::Phases(init),
            &SimOptions::new(120.0).samples(1200),
        )
        .unwrap();
    let t_sync = run
        .order_parameter_series()
        .iter()
        .find(|(_, r)| *r > 0.999)
        .map(|(t, _)| *t);
    // Raw phase difference (not mod 2π): detects phase slips.
    let last = run.trajectory().last().unwrap();
    let max_diff = last
        .iter()
        .map(|&p| (p - last[0]).abs())
        .fold(0.0f64, f64::max);
    (t_sync, max_diff)
}

fn main() {
    header(
        "C3",
        "tanh potential snaps any disturbance back to sync without phase slips; \
         the periodic Kuramoto potential allows slips (its flaw, §2.2.2)",
    );

    println!(
        "{:>10}  {:>12}  {:>16}  {:>16}",
        "pull [rad]", "potential", "t(r>0.999)", "final max|Δθ|"
    );
    let mut rows = Vec::new();
    let mut tanh_ok = true;
    let mut slip_seen = false;
    for &pull in &[0.5, 2.0, 10.0] {
        for potential in [Potential::Tanh, Potential::KuramotoSin] {
            let (t_sync, max_diff) = recovery(potential, pull);
            println!(
                "{pull:>10.1}  {:>12}  {:>16}  {max_diff:>16.4}",
                potential.name(),
                t_sync.map_or("never".into(), |t| format!("{t:.1}")),
            );
            rows.push(vec![
                pull,
                if potential == Potential::Tanh {
                    0.0
                } else {
                    1.0
                },
                t_sync.unwrap_or(-1.0),
                max_diff,
            ]);
            match potential {
                Potential::Tanh => {
                    // True resync: phases rejoin exactly (no slip).
                    tanh_ok &= t_sync.is_some() && max_diff < 1e-2;
                }
                Potential::KuramotoSin
                    // r returns to 1 but for large pulls the phases end a
                    // multiple of 2π apart — the phase slip.
                    if pull > 3.5 && max_diff > 3.0 => {
                        slip_seen = true;
                    }
                _ => {}
            }
        }
    }
    save(
        "resync_pulls.csv",
        &write_table(&["pull", "is_sin", "t_sync", "max_diff"], &rows),
    );

    // Event-detection showcase: time when the pulled oscillator first
    // re-enters the 0.1 rad corridor, from the dense solution.
    let n = 16;
    let mut init = vec![0.0; n];
    init[7] = 2.0;
    let model = PomBuilder::new(n)
        .topology(Topology::ring(n, &[-1, 1]))
        .potential(Potential::Tanh)
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(2.0)
        .normalization(Normalization::ByDegree)
        .build()
        .unwrap();
    let sol = pom_ode::Dopri5::new()
        .rtol(1e-9)
        .atol(1e-9)
        .integrate(&model, 0.0, &init, 60.0)
        .unwrap();
    let t_corridor = events::first_zero_crossing(
        &sol,
        |_t, y| {
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            (y[7] - mean).abs() - 0.1
        },
        0.0,
        60.0,
        600,
    );
    println!("\npulled oscillator re-enters the 0.1 rad corridor at t = {t_corridor:?}");

    verdict(
        tanh_ok && slip_seen && t_corridor.is_some(),
        "tanh snaps back from every pull without slips; Kuramoto sin slips for large pulls",
    );
}
