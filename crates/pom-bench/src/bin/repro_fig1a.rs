//! Reproduce paper Fig. 1(a): the two interaction potentials.
//!
//! Red curve: `V(x) = tanh(x)` (scalable programs). Blue curve: the
//! desynchronizing potential with interaction horizon σ — repulsive
//! within `|x| < 2σ/3`, attractive beyond, constant past σ. The paper's
//! plot uses x ∈ [−10, 10] with σ = 3.

use pom_bench::{header, save, verdict};
use pom_core::Potential;
use pom_viz::{write_table, SvgCanvas};

fn main() {
    header(
        "F1a",
        "potential shapes: tanh attractive everywhere; desync potential repulsive \
         at short range with first zero at 2σ/3, attractive at long range",
    );
    let sigma = 3.0;
    let tanh = Potential::tanh();
    let desync = Potential::desync(sigma);

    // Table (paper's x range).
    let n = 201;
    println!("{:>8}  {:>10}  {:>10}", "x", "tanh", "desync");
    let mut rows = Vec::with_capacity(n);
    for k in 0..n {
        let x = -10.0 + 20.0 * k as f64 / (n - 1) as f64;
        rows.push(vec![x, tanh.value(x), desync.value(x)]);
        if k % 20 == 0 {
            println!(
                "{x:>8.2}  {:>10.5}  {:>10.5}",
                tanh.value(x),
                desync.value(x)
            );
        }
    }
    save(
        "fig1a_potentials.csv",
        &write_table(&["x", "tanh", "desync"], &rows),
    );

    // SVG in the paper's style.
    let mut svg = SvgCanvas::new(480.0, 280.0, (-10.5, 10.5), (-1.3, 1.3));
    svg.line((-10.5, 0.0), (10.5, 0.0), "#bbb", 0.7);
    svg.line((0.0, -1.3), (0.0, 1.3), "#bbb", 0.7);
    svg.polyline(&tanh.sample_curve(-10.0, 10.0, 400), "crimson", 1.8);
    svg.polyline(&desync.sample_curve(-10.0, 10.0, 400), "steelblue", 1.8);
    svg.line((sigma, -1.2), (sigma, 1.2), "#999", 0.7);
    svg.text((sigma + 0.2, -1.1), 11.0, "σ");
    svg.text(
        (-9.8, 1.15),
        11.0,
        "red: tanh (scalable) · blue: desync (bottlenecked)",
    );
    save("fig1a_potentials.svg", &svg.render());

    // Shape checks that define the figure.
    let zero = desync.stable_pair_separation();
    let checks = [
        (
            "first zero at 2σ/3",
            (zero - 2.0 * sigma / 3.0).abs() < 1e-12,
        ),
        ("desync repulsive inside", desync.value(1.0) < 0.0),
        (
            "desync attractive outside",
            desync.value(2.5) > 0.0 && desync.value(8.0) > 0.0,
        ),
        (
            "tanh attractive everywhere",
            (0..100).all(|k| tanh.value(0.1 + k as f64 * 0.1) > 0.0),
        ),
        (
            "both bounded by 1",
            (0..400).all(|k| {
                let x = -10.0 + k as f64 * 0.05;
                tanh.value(x).abs() <= 1.0 && desync.value(x).abs() <= 1.0 + 1e-12
            }),
        ),
        (
            "continuous at ±σ",
            (desync.value(sigma - 1e-9) - desync.value(sigma + 1e-9)).abs() < 1e-6,
        ),
    ];
    for (name, ok) in &checks {
        println!("  [{}] {name}", if *ok { "ok" } else { "FAIL" });
    }
    verdict(
        checks.iter().all(|c| c.1),
        &format!("both potentials have the paper's shape; desync zero at {zero:.4} = 2σ/3"),
    );
}
