//! Ablation (DESIGN.md §8): how much communication time the simulated
//! cluster needs for a *persistent* computational wavefront.
//!
//! The reproduction uncovered a sharp mechanism: with negligible message
//! cost the socket contention *re-synchronizes* perturbed memory-bound
//! ranks (the fair-share pool compresses gaps), and the injected delay is
//! absorbed without a lasting wavefront. Only when communication time is
//! non-negligible does the staggered state persist — consistent with the
//! paper's Meggie runs, where the memory-bound codes exchanged data every
//! sweep. This binary sweeps the message size and reports the residual
//! wavefront.

use pom_analysis::residual_spread;
use pom_bench::{header, save, verdict};
use pom_kernels::Kernel;
use pom_mpisim::{ProgramSpec, SimDelay, Simulator, WorkSpec};
use pom_topology::{ClusterSpec, Placement};
use pom_viz::write_table;

fn residual_for(message_bytes: usize) -> f64 {
    let n = 40;
    let p = ProgramSpec::new(n, 50)
        .kernel(Kernel::stream_triad())
        .work(WorkSpec::TargetSeconds(1e-3))
        .message_bytes(message_bytes)
        .inject(SimDelay {
            rank: 5,
            iteration: 5,
            extra_seconds: 5e-3,
        });
    let trace = Simulator::new(p, Placement::packed(ClusterSpec::meggie(), n))
        .unwrap()
        .run()
        .unwrap();
    residual_spread(&trace, 40)
}

fn main() {
    header(
        "A-comm",
        "ablation: residual wavefront vs message size — contention alone \
         resynchronizes; comm time makes the wavefront persist",
    );

    println!(
        "{:>12}  {:>16}  {:>18}",
        "msg [bytes]", "comm time [s]", "residual spread [s]"
    );
    let bw = ClusterSpec::meggie().network.bandwidth;
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for msg in [
        8usize, 10_000, 100_000, 500_000, 1_000_000, 2_000_000, 4_000_000,
    ] {
        let res = residual_for(msg);
        let comm = msg as f64 / bw;
        println!("{msg:>12}  {comm:>16.3e}  {res:>18.3e}");
        rows.push(vec![msg as f64, comm, res]);
        series.push((msg, res));
    }
    save(
        "comm_ablation.csv",
        &write_table(&["msg_bytes", "comm_time", "residual_spread"], &rows),
    );

    let tiny_msgs = series.first().unwrap().1;
    let big_msgs = series.last().unwrap().1;
    println!(
        "\n8 B messages: residual {tiny_msgs:.2e} s (contention resyncs); \
         4 MB messages: residual {big_msgs:.2e} s (persistent wavefront)"
    );
    verdict(
        big_msgs > 20.0 * tiny_msgs && big_msgs > 1e-3,
        &format!(
            "wavefront persistence requires non-negligible comm: {:.0}× more residual skew at 4 MB than at 8 B",
            big_msgs / tiny_msgs
        ),
    );
}
