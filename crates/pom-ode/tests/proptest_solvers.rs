//! Property-based tests for the solver suite.

use pom_ode::dde::{DdeRk4, DdeSystem, InitialHistory, PhaseHistory};
use pom_ode::observe::CollectObserver;
use pom_ode::{
    Bs23, Dopri5, Euler, FixedStepSolver, FnSystem, Heun, ObserveEvery, Rk4, Trajectory, Workspace,
};
use proptest::prelude::*;

/// Linear scalar ODE ẏ = a·y has solution y₀·e^{a t}.
fn linear_sys(a: f64) -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
    FnSystem::new(1, move |_t, y, d| d[0] = a * y[0])
}

proptest! {
    /// Dopri5 solves every (non-stiff) linear scalar ODE to tolerance.
    #[test]
    fn dopri5_linear_exact(a in -2.0f64..2.0, y0 in 0.1f64..10.0, t_end in 0.5f64..5.0) {
        let sys = linear_sys(a);
        let sol = Dopri5::new().rtol(1e-9).atol(1e-11)
            .integrate(&sys, 0.0, &[y0], t_end).unwrap();
        let exact = y0 * (a * t_end).exp();
        let err = (sol.y_end()[0] - exact).abs();
        prop_assert!(err < 1e-6 * exact.abs().max(1.0), "err = {err}");
    }

    /// Dense output agrees with the analytic solution at arbitrary interior
    /// times, not only step endpoints.
    #[test]
    fn dopri5_dense_output_interior(a in -1.5f64..1.5, frac in 0.0f64..1.0) {
        let sys = linear_sys(a);
        let sol = Dopri5::new().rtol(1e-9).atol(1e-11)
            .integrate(&sys, 0.0, &[1.0], 3.0).unwrap();
        let t = 3.0 * frac;
        let err = (sol.sample_component(t, 0) - (a * t).exp()).abs();
        prop_assert!(err < 1e-6, "t = {t}, err = {err}");
    }

    /// Halving the RK4 step shrinks the global error by roughly 2⁴ for a
    /// smooth problem (allowing generous slack for round-off at tiny errors).
    #[test]
    fn rk4_refinement_improves(a in -1.0f64..-0.1, h in 0.02f64..0.1) {
        let sys = linear_sys(a);
        let run = |h: f64| {
            let solver = FixedStepSolver::new(Rk4, h).unwrap();
            let traj = solver.integrate(&sys, 0.0, &[1.0], 2.0).unwrap();
            (traj.last().unwrap()[0] - (2.0 * a).exp()).abs()
        };
        let e_coarse = run(h);
        let e_fine = run(h / 2.0);
        // At least 8× improvement expected from a 4th-order method (theory: 16×).
        prop_assert!(e_fine <= e_coarse / 8.0 + 1e-14,
            "coarse {e_coarse:e}, fine {e_fine:e}");
    }

    /// Euler, Heun and RK4 agree on the direction of motion and converge to
    /// the same limit for smooth scalar problems.
    #[test]
    fn steppers_consistent(a in -1.0f64..1.0, y0 in 0.5f64..2.0) {
        let sys = linear_sys(a);
        let exact = y0 * (a * 1.0f64).exp();
        for (err_bound, traj) in [
            (0.1, FixedStepSolver::new(Euler, 1e-3).unwrap().integrate(&sys, 0.0, &[y0], 1.0).unwrap()),
            (1e-4, FixedStepSolver::new(Heun, 1e-3).unwrap().integrate(&sys, 0.0, &[y0], 1.0).unwrap()),
            (1e-8, FixedStepSolver::new(Rk4, 1e-3).unwrap().integrate(&sys, 0.0, &[y0], 1.0).unwrap()),
        ] {
            let e = (traj.last().unwrap()[0] - exact).abs();
            prop_assert!(e < err_bound * exact.abs().max(1.0), "err {e} vs bound {err_bound}");
        }
    }

    /// Trajectory linear interpolation always lies within the convex hull of
    /// the neighbouring samples.
    #[test]
    fn trajectory_interp_within_hull(samples in prop::collection::vec((0.01f64..1.0, -5.0f64..5.0), 2..20), q in 0.0f64..1.0) {
        let mut tr = Trajectory::new(1);
        let mut t = 0.0;
        for (dt, v) in &samples {
            t += dt;
            tr.push(t, &[*v]).unwrap();
        }
        let t_probe = tr.times()[0] + q * tr.span();
        let val = tr.sample_linear(t_probe).unwrap()[0];
        let lo = samples.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|s| s.1).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(val >= lo - 1e-12 && val <= hi + 1e-12);
    }
}

/// Scalar DDE ẏ = a·y(t−τ) with constant history.
struct PropLag {
    a: f64,
    tau: f64,
}

impl DdeSystem for PropLag {
    fn dim(&self) -> usize {
        1
    }
    fn eval(&self, t: f64, _y: &[f64], hist: &dyn PhaseHistory, dydt: &mut [f64]) {
        dydt[0] = self.a * hist.sample(t - self.tau, 0);
    }
}

proptest! {
    /// During the first delay interval the DDE has the exact solution
    /// y(t) = y₀·(1 + a·t) (the history is constant there).
    #[test]
    fn dde_first_interval_analytic(a in -1.0f64..1.0, tau in 0.3f64..1.0, y0 in 0.5f64..2.0) {
        let sys = PropLag { a, tau };
        let solver = DdeRk4::new(0.01).unwrap();
        let (traj, _) = solver
            .integrate(&sys, 0.0, InitialHistory::Constant(vec![y0]), tau)
            .unwrap();
        for (t, s) in traj.iter() {
            let exact = y0 * (1.0 + a * t);
            prop_assert!((s[0] - exact).abs() < 1e-9,
                "t = {t}: {} vs {exact}", s[0]);
        }
    }

    /// The history buffer returned by the DDE solver reproduces the
    /// recorded trajectory at every knot.
    #[test]
    fn dde_buffer_consistent_with_trajectory(a in -0.5f64..0.5, tau in 0.2f64..0.8) {
        let sys = PropLag { a, tau };
        let solver = DdeRk4::new(0.05).unwrap();
        let (traj, buf) = solver
            .integrate(&sys, 0.0, InitialHistory::Constant(vec![1.0]), 2.0)
            .unwrap();
        for (t, s) in traj.iter() {
            prop_assert!((buf.sample(t, 0) - s[0]).abs() < 1e-12);
        }
    }
}

// --- Workspace API: reuse must be invisible in the results ---

proptest! {
    /// A reused (dirty) workspace produces bitwise identical trajectories
    /// to the fresh-allocation path, for every fixed stepper.
    #[test]
    fn workspace_reuse_bitwise_identical_fixed(
        a in -2.0f64..2.0,
        y0 in 0.1f64..10.0,
        t_end in 0.5f64..4.0,
        h in 0.01f64..0.2,
    ) {
        let sys = linear_sys(a);
        let mut ws = Workspace::new();
        // Dirty the workspace with an unrelated integration (different
        // dimension, different solver) before the comparison runs.
        let decoy = FnSystem::new(3, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
            d[2] = 0.5 * y[2];
        });
        FixedStepSolver::new(Rk4, 0.1).unwrap()
            .integrate_with(&decoy, 0.0, &[1.0, 0.0, 1.0], 1.0, &mut ws)
            .unwrap();

        for_each_stepper(|solver_h| {
            let fresh = solver_h.integrate(&sys, 0.0, &[y0], t_end).unwrap();
            let reused = solver_h
                .integrate_with(&sys, 0.0, &[y0], t_end, &mut ws)
                .unwrap();
            assert!(fresh == reused, "workspace reuse changed the trajectory");
        }, h);
    }

    /// `integrate_many` over an ensemble equals N sequential `integrate`
    /// calls, bitwise, and preserves input order.
    #[test]
    fn integrate_many_matches_sequential(
        a in -1.0f64..1.0,
        inits in prop::collection::vec(0.1f64..5.0, 1..8),
        h in 0.02f64..0.2,
    ) {
        let sys = linear_sys(a);
        let solver = FixedStepSolver::new(Rk4, h).unwrap();
        let ensemble: Vec<Vec<f64>> = inits.iter().map(|&y| vec![y]).collect();
        let mut ws = Workspace::new();
        let batched = solver
            .integrate_many(&sys, 0.0, &ensemble, 2.0, &mut ws)
            .unwrap();
        prop_assert_eq!(batched.len(), ensemble.len());
        for (y0, traj) in ensemble.iter().zip(&batched) {
            let solo = solver.integrate(&sys, 0.0, y0, 2.0).unwrap();
            prop_assert!(&solo == traj, "batched member diverged from sequential run");
        }
    }

    /// Dopri5: the monomorphized workspace path is bitwise identical to
    /// the dyn-dispatch wrapper — same accepted steps, same dense output.
    #[test]
    fn dopri5_workspace_path_identical(a in -1.5f64..1.5, y0 in 0.2f64..5.0) {
        let sys = linear_sys(a);
        let solver = Dopri5::new().rtol(1e-7).atol(1e-9);
        let fresh = solver.integrate(&sys, 0.0, &[y0], 3.0).unwrap();
        let mut ws = Workspace::new();
        // Dirty run at another dimension first.
        let decoy = FnSystem::new(2, |_t, y, d| { d[0] = y[1]; d[1] = -y[0]; });
        solver.integrate_with(&decoy, 0.0, &[1.0, 0.0], 1.0, &mut ws).unwrap();
        let (reused, _) = solver.integrate_with(&sys, 0.0, &[y0], 3.0, &mut ws).unwrap();
        prop_assert_eq!(fresh.n_segments(), reused.n_segments());
        prop_assert_eq!(fresh.y_end()[0].to_bits(), reused.y_end()[0].to_bits());
        for k in 0..=50 {
            let t = 3.0 * k as f64 / 50.0;
            prop_assert_eq!(
                fresh.sample_component(t, 0).to_bits(),
                reused.sample_component(t, 0).to_bits(),
                "dense output differs at t = {}", t
            );
        }
    }

    /// DDE driver: workspace reuse is bitwise invisible as well.
    #[test]
    fn dde_workspace_path_identical(a in -0.8f64..0.8, tau in 0.2f64..0.8) {
        let sys = PropLag { a, tau };
        let solver = DdeRk4::new(0.02).unwrap();
        let (fresh, _) = solver
            .integrate(&sys, 0.0, InitialHistory::Constant(vec![1.0]), 2.0)
            .unwrap();
        let mut ws = Workspace::new();
        let decoy = PropLag { a: 0.3, tau: 0.5 };
        solver
            .integrate_with(&decoy, 0.0, InitialHistory::Constant(vec![2.0]), 1.0, &mut ws)
            .unwrap();
        let (reused, buf) = solver
            .integrate_with(&sys, 0.0, InitialHistory::Constant(vec![1.0]), 2.0, &mut ws)
            .unwrap();
        prop_assert!(fresh == reused, "DDE workspace reuse changed the trajectory");
        prop_assert!(buf.len() > 1);
    }
}

// --- Observed fast paths: no trajectory, bitwise identical states ---

proptest! {
    /// The fixed-step observed driver delivers exactly the samples the
    /// recording driver stores (record_every = 1), bitwise, and its
    /// summary repeats the final sample.
    #[test]
    fn fixed_observed_matches_recorded_samples(
        a in -2.0f64..2.0,
        y0 in 0.1f64..10.0,
        t_end in 0.5f64..4.0,
        h in 0.01f64..0.2,
    ) {
        let sys = linear_sys(a);
        let solver = FixedStepSolver::new(Rk4, h).unwrap();
        let traj = solver.integrate(&sys, 0.0, &[y0], t_end).unwrap();
        let mut ws = Workspace::new();
        let mut obs = CollectObserver::default();
        let sum = solver
            .integrate_observed(&sys, 0.0, &[y0], t_end, &mut ws, &mut obs)
            .unwrap();
        // Initial sample via begin, each step via observe_step.
        let (t0, ref s0) = obs.initial.clone().expect("begin called");
        prop_assert_eq!(t0.to_bits(), traj.times()[0].to_bits());
        prop_assert_eq!(s0[0].to_bits(), traj.state(0)[0].to_bits());
        prop_assert_eq!(obs.samples.len() + 1, traj.len());
        for (k, (t, s)) in obs.samples.iter().enumerate() {
            prop_assert_eq!(t.to_bits(), traj.time(k + 1).to_bits());
            prop_assert_eq!(s[0].to_bits(), traj.state(k + 1)[0].to_bits());
        }
        prop_assert!(obs.finished);
        prop_assert_eq!(sum.y_end[0].to_bits(), traj.last().unwrap()[0].to_bits());
        prop_assert_eq!(sum.n_steps, traj.len() - 1);
    }

    /// Dopri5's observed driver runs the identical step control: same
    /// accepted steps, bitwise-identical final state, one observer sample
    /// per dense segment.
    #[test]
    fn dopri5_observed_matches_dense_path(a in -1.5f64..1.5, y0 in 0.2f64..5.0, t_end in 0.5f64..4.0) {
        let sys = linear_sys(a);
        let solver = Dopri5::new().rtol(1e-7).atol(1e-9);
        let (sol, stats) = solver.integrate_with_stats(&sys, 0.0, &[y0], t_end).unwrap();
        let mut ws = Workspace::new();
        let mut obs = CollectObserver::default();
        let (sum, ostats) = solver
            .integrate_observed(&sys, 0.0, &[y0], t_end, &mut ws, &mut obs)
            .unwrap();
        prop_assert_eq!(stats, ostats);
        prop_assert_eq!(sum.y_end[0].to_bits(), sol.y_end()[0].to_bits());
        prop_assert_eq!(obs.samples.len(), sol.n_segments());
        // Each observed sample sits at a segment end with the state the
        // recording path accepted there.
        for (seg, (t, _)) in sol.segments().iter().zip(&obs.samples) {
            prop_assert_eq!(seg.t1().to_bits(), t.to_bits());
        }
    }

    /// Bs23's observed driver: same accepted samples as the recording
    /// path, bitwise.
    #[test]
    fn bs23_observed_matches_recorded(a in -1.5f64..1.5, y0 in 0.2f64..5.0) {
        let sys = linear_sys(a);
        let solver = Bs23::new().rtol(1e-6).atol(1e-8);
        let (traj, stats) = solver.integrate(&sys, 0.0, &[y0], 3.0).unwrap();
        let mut ws = Workspace::new();
        let mut obs = CollectObserver::default();
        let (sum, ostats) = solver
            .integrate_observed(&sys, 0.0, &[y0], 3.0, &mut ws, &mut obs)
            .unwrap();
        prop_assert_eq!(stats, ostats);
        prop_assert_eq!(obs.samples.len() + 1, traj.len());
        for (k, (t, s)) in obs.samples.iter().enumerate() {
            prop_assert_eq!(t.to_bits(), traj.time(k + 1).to_bits());
            prop_assert_eq!(s[0].to_bits(), traj.state(k + 1)[0].to_bits());
        }
        prop_assert_eq!(sum.y_end[0].to_bits(), traj.last().unwrap()[0].to_bits());
    }

    /// The DDE observed driver with a pruned history window covering the
    /// delay is bitwise identical to the full-history recording path.
    #[test]
    fn dde_observed_pruned_matches_recorded(
        a in -0.8f64..0.8,
        tau in 0.2f64..0.8,
        t_end in 2.0f64..6.0,
    ) {
        let sys = PropLag { a, tau };
        let solver = DdeRk4::new(0.02).unwrap();
        let (traj, _) = solver
            .integrate(&sys, 0.0, InitialHistory::Constant(vec![1.0]), t_end)
            .unwrap();
        let mut ws = Workspace::new();
        let mut obs = CollectObserver::default();
        let sum = solver
            .integrate_observed(
                &sys,
                0.0,
                InitialHistory::Constant(vec![1.0]),
                t_end,
                tau, // window exactly the delay
                &mut ws,
                &mut obs,
            )
            .unwrap();
        prop_assert_eq!(obs.samples.len() + 1, traj.len());
        for (k, (t, s)) in obs.samples.iter().enumerate() {
            prop_assert_eq!(t.to_bits(), traj.time(k + 1).to_bits());
            prop_assert_eq!(s[0].to_bits(), traj.state(k + 1)[0].to_bits());
        }
        prop_assert_eq!(sum.y_end[0].to_bits(), traj.last().unwrap()[0].to_bits());
    }
}

// --- record_every end conventions: ODE and DDE agree, no duplicates ---

proptest! {
    /// Satellite regression: the "final state is always recorded"
    /// convention must not duplicate the last sample when the step count
    /// is an exact multiple of `record_every`, the recorded grid must be
    /// exactly {0, k, 2k, …, n_steps}, and the new ODE knob must agree
    /// with the DDE convention sample-for-sample.
    #[test]
    fn record_every_conventions_agree(
        a in -1.0f64..1.0,
        h in 0.01f64..0.3,
        t_end in 0.5f64..5.0,
        k in 1usize..9,
    ) {
        let n_steps = (t_end / h).ceil().max(1.0) as usize;
        let expected_len = 1 + n_steps / k + usize::from(!n_steps.is_multiple_of(k));

        let sys = linear_sys(a);
        let ode = FixedStepSolver::new(Rk4, h).unwrap().record_every(k)
            .integrate(&sys, 0.0, &[1.0], t_end).unwrap();

        struct OdeAsDde<F: Fn(f64, &[f64], &mut [f64])>(FnSystem<F>);
        impl<F: Fn(f64, &[f64], &mut [f64])> DdeSystem for OdeAsDde<F> {
            fn dim(&self) -> usize { 1 }
            fn eval(&self, t: f64, y: &[f64], _h: &dyn PhaseHistory, d: &mut [f64]) {
                use pom_ode::OdeSystem;
                self.0.eval(t, y, d)
            }
        }
        let (dde, _) = DdeRk4::new(h).unwrap().record_every(k)
            .integrate(&OdeAsDde(linear_sys(a)), 0.0, InitialHistory::Constant(vec![1.0]), t_end)
            .unwrap();

        for traj in [&ode, &dde] {
            prop_assert_eq!(traj.len(), expected_len,
                "n_steps = {}, k = {}", n_steps, k);
            // Strictly increasing times ⇒ no duplicated final sample.
            for w in traj.times().windows(2) {
                prop_assert!(w[0] < w[1], "duplicate/regressing sample: {:?}", w);
            }
            prop_assert_eq!(traj.times().last().unwrap().to_bits(), t_end.to_bits());
        }
        // Same convention ⇒ same grid, sample for sample.
        prop_assert_eq!(ode.times().len(), dde.times().len());
        for (a_t, b_t) in ode.times().iter().zip(dde.times()) {
            prop_assert_eq!(a_t.to_bits(), b_t.to_bits());
        }
        // RK4 on an ODE and DdeRk4 ignoring its history run the same
        // arithmetic: recorded states agree bitwise too.
        for (a_s, b_s) in ode.iter().zip(dde.iter()) {
            prop_assert_eq!(a_s.1[0].to_bits(), b_s.1[0].to_bits());
        }
    }

    /// ObserveEvery follows the record_every convention exactly: the
    /// decimated observer stream equals the decimated trajectory.
    #[test]
    fn observe_every_matches_record_every(
        a in -1.0f64..1.0,
        h in 0.01f64..0.3,
        t_end in 0.5f64..5.0,
        k in 1usize..9,
    ) {
        let sys = linear_sys(a);
        let solver = FixedStepSolver::new(Rk4, h).unwrap();
        let traj = solver.clone().record_every(k).integrate(&sys, 0.0, &[1.0], t_end).unwrap();
        let mut ws = Workspace::new();
        let mut obs = ObserveEvery::new(CollectObserver::default(), k);
        solver.integrate_observed(&sys, 0.0, &[1.0], t_end, &mut ws, &mut obs).unwrap();
        let collected = obs.into_inner();
        // Trajectory: initial sample + decimated steps. Observer: begin +
        // decimated steps. Same grid.
        prop_assert_eq!(collected.samples.len() + 1, traj.len());
        for (s, k_idx) in collected.samples.iter().zip(1..traj.len()) {
            prop_assert_eq!(s.0.to_bits(), traj.time(k_idx).to_bits());
            prop_assert_eq!(s.1[0].to_bits(), traj.state(k_idx)[0].to_bits());
        }
    }
}

/// Run `f` once per fixed-step method at step size `h` (monomorphized per
/// stepper, so each solver type gets its own instantiation).
fn for_each_stepper(mut f: impl FnMut(&FixedStepSolver<Rk4>), h: f64) {
    // Rk4 has the most scratch slices and the FSAL-free layout; Euler and
    // Heun share the same driver code path, covered via Rk4 here and by
    // their convergence tests elsewhere. Exercise thinned recording too.
    f(&FixedStepSolver::new(Rk4, h).unwrap());
    f(&FixedStepSolver::new(Rk4, h).unwrap().record_every(3));
}
