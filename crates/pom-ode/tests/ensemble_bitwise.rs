//! Differential tests for the solver-level ensemble layer: a batched
//! R-replica integration through [`EnsembleSystem`] must be **bitwise**
//! identical to R independent runs — final states and every observer
//! callback — for every fixed-step method and the DDE integrator.
//!
//! Fixed-step Runge–Kutta stage arithmetic is elementwise, so interleaving
//! replicas into one `n·R` state vector cannot change any replica's
//! floating-point results as long as the per-replica RHS sees exactly its
//! own de-interleaved state (which `EnsembleSystem` guarantees by
//! gather/scatter). These tests pin that argument with real arithmetic.

use pom_ode::dde::{DdeRk4, DdeSystem, InitialHistory, PhaseHistory};
use pom_ode::observe::CollectObserver;
use pom_ode::{
    EnsembleLayout, EnsembleObserver, EnsembleSystem, Euler, FixedStepSolver, FnSystem, Heun, Rk4,
    Workspace,
};
use proptest::prelude::*;

/// Coupled two-component member: a rotation-plus-decay whose rate differs
/// per replica (captured coefficient), so replicas genuinely diverge.
fn member(a: f64) -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
    FnSystem::new(2, move |t, y, d| {
        d[0] = a * y[1] + (0.1 * t).sin();
        d[1] = -a * y[0] - 0.2 * y[1];
    })
}

/// Member initial state derived from the replica index (deterministic,
/// distinct per replica).
fn init(rep: usize) -> Vec<f64> {
    vec![1.0 + 0.25 * rep as f64, -0.5 + 0.125 * rep as f64]
}

fn collect_eq(a: &CollectObserver, b: &CollectObserver, ctx: &str) {
    assert_eq!(a.initial, b.initial, "{ctx}: initial");
    assert_eq!(a.finished, b.finished, "{ctx}: finished");
    assert_eq!(a.samples.len(), b.samples.len(), "{ctx}: sample count");
    for (sa, sb) in a.samples.iter().zip(&b.samples) {
        assert_eq!(sa, sb, "{ctx}: sample");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every fixed-step method, R ∈ {1, 2, 5}: batched ≡ independent,
    /// bitwise, including the full observer stream.
    #[test]
    fn fixed_step_batched_is_bitwise_identical(
        base in 0.2f64..2.0,
        h in 0.005f64..0.05,
        t_end in 0.5f64..3.0,
        ridx in 0usize..3,
        method in 0usize..3,
    ) {
        let r = [1usize, 2, 5][ridx];
        let rates: Vec<f64> = (0..r).map(|rep| base + 0.3 * rep as f64).collect();

        // Independent reference runs.
        let mut want_final = Vec::new();
        let mut want_obs = Vec::new();
        for (rep, &a) in rates.iter().enumerate() {
            let sys = member(a);
            let mut obs = CollectObserver::default();
            let mut ws = Workspace::new();
            let sum = match method {
                0 => FixedStepSolver::new(Euler, h).unwrap()
                    .integrate_observed(&sys, 0.0, &init(rep), t_end, &mut ws, &mut obs),
                1 => FixedStepSolver::new(Heun, h).unwrap()
                    .integrate_observed(&sys, 0.0, &init(rep), t_end, &mut ws, &mut obs),
                _ => FixedStepSolver::new(Rk4, h).unwrap()
                    .integrate_observed(&sys, 0.0, &init(rep), t_end, &mut ws, &mut obs),
            }.unwrap();
            want_final.push(sum.y_end);
            want_obs.push(obs);
        }

        // Batched run through the ensemble adapter.
        let ens = EnsembleSystem::new(rates.iter().map(|&a| member(a)).collect());
        let layout = EnsembleLayout::new(2, r);
        let states: Vec<Vec<f64>> = (0..r).map(init).collect();
        let y0 = layout.pack(&states);
        let mut observers: Vec<CollectObserver> = (0..r).map(|_| CollectObserver::default()).collect();
        let mut fan = EnsembleObserver::new(&mut observers, layout);
        let mut ws = Workspace::new();
        let sum = match method {
            0 => FixedStepSolver::new(Euler, h).unwrap()
                .integrate_observed(&ens, 0.0, &y0, t_end, &mut ws, &mut fan),
            1 => FixedStepSolver::new(Heun, h).unwrap()
                .integrate_observed(&ens, 0.0, &y0, t_end, &mut ws, &mut fan),
            _ => FixedStepSolver::new(Rk4, h).unwrap()
                .integrate_observed(&ens, 0.0, &y0, t_end, &mut ws, &mut fan),
        }.unwrap();

        for rep in 0..r {
            prop_assert_eq!(
                &layout.extract(&sum.y_end, rep),
                &want_final[rep],
                "replica {} final state (method {})", rep, method
            );
            collect_eq(&observers[rep], &want_obs[rep], &format!("replica {rep}"));
        }
    }
}

/// Delayed member: feedback from the past state, rate distinct per
/// replica. Exercises the history-interpolation path of the ensemble
/// adapter (per-replica [`PhaseHistory`] views into the interleaved
/// buffer).
struct DelayedMember {
    a: f64,
    tau: f64,
}

impl DdeSystem for DelayedMember {
    fn dim(&self) -> usize {
        2
    }
    fn eval(&self, t: f64, y: &[f64], hist: &dyn PhaseHistory, d: &mut [f64]) {
        d[0] = -self.a * hist.sample(t - self.tau, 0) + 0.1 * y[1];
        d[1] = -0.5 * hist.sample(t - self.tau, 1) - 0.05 * y[0];
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The DDE integrator: batched delayed replicas ≡ independent delayed
    /// runs, bitwise, through the cubic-Hermite history machinery.
    #[test]
    fn dde_batched_is_bitwise_identical(
        base in 0.2f64..1.0,
        tau in 0.05f64..0.4,
        h in 0.005f64..0.02,
        ridx in 0usize..3,
    ) {
        let r = [1usize, 2, 5][ridx];
        let t_end = 2.0;
        let members: Vec<DelayedMember> = (0..r)
            .map(|rep| DelayedMember { a: base + 0.2 * rep as f64, tau })
            .collect();

        let mut want_final = Vec::new();
        let mut want_obs = Vec::new();
        for (rep, m) in members.iter().enumerate() {
            let mut obs = CollectObserver::default();
            let mut ws = Workspace::new();
            let sum = DdeRk4::new(h).unwrap()
                .integrate_observed(m, 0.0, InitialHistory::Constant(init(rep)), t_end, tau, &mut ws, &mut obs)
                .unwrap();
            want_final.push(sum.y_end);
            want_obs.push(obs);
        }

        let ens = EnsembleSystem::new_dde(
            (0..r).map(|rep| DelayedMember { a: base + 0.2 * rep as f64, tau }).collect(),
        );
        let layout = EnsembleLayout::new(2, r);
        let states: Vec<Vec<f64>> = (0..r).map(init).collect();
        let y0 = layout.pack(&states);
        let mut observers: Vec<CollectObserver> = (0..r).map(|_| CollectObserver::default()).collect();
        let mut fan = EnsembleObserver::new(&mut observers, layout);
        let mut ws = Workspace::new();
        let sum = DdeRk4::new(h).unwrap()
            .integrate_observed(&ens, 0.0, InitialHistory::Constant(y0), t_end, tau, &mut ws, &mut fan)
            .unwrap();

        for rep in 0..r {
            prop_assert_eq!(
                &layout.extract(&sum.y_end, rep),
                &want_final[rep],
                "replica {} final state", rep
            );
            collect_eq(&observers[rep], &want_obs[rep], &format!("replica {rep}"));
        }
    }

    /// Pack/extract round-trips arbitrary state sets exactly.
    #[test]
    fn layout_pack_extract_roundtrip(
        n in 1usize..12,
        r in 1usize..6,
        seed in 0u64..1000,
    ) {
        let states: Vec<Vec<f64>> = (0..r)
            .map(|rep| (0..n).map(|i| ((seed + rep as u64 * 31 + i as u64) as f64).sin()).collect())
            .collect();
        let layout = EnsembleLayout::new(n, r);
        let packed = layout.pack(&states);
        prop_assert_eq!(packed.len(), n * r);
        for (rep, want) in states.iter().enumerate() {
            prop_assert_eq!(&layout.extract(&packed, rep), want);
        }
    }
}
