//! Dormand–Prince explicit Runge–Kutta 5(4) with adaptive step control.
//!
//! This is the same integrator family as MATLAB's `ode45`, which the paper
//! uses to solve the oscillator model (§3.2: "a robust explicit Runge-Kutta
//! (4,5) method (Dormand-Prince)"). The implementation follows Hairer,
//! Nørsett & Wanner, *Solving Ordinary Differential Equations I* (DOPRI5):
//!
//! * the RK5(4)7M coefficient set with the FSAL ("first same as last")
//!   property — 6 fresh RHS evaluations per accepted step,
//! * embedded 4th-order error estimate with mixed absolute/relative
//!   weighting,
//! * PI (proportional–integral) step-size controller with the standard
//!   safety/clamp constants,
//! * automatic initial step-size selection (Hairer's `hinit`),
//! * fourth-order dense output collected into a [`DenseSolution`].

use crate::dense::{DenseSegment, DenseSolution};
use crate::error::OdeError;
use crate::observe::{ObservedSummary, StepObserver};
use crate::workspace::Workspace;
use crate::OdeSystem;

// --- Butcher tableau (RK5(4)7M, Dormand & Prince 1980) ---

const C2: f64 = 1.0 / 5.0;
const C3: f64 = 3.0 / 10.0;
const C4: f64 = 4.0 / 5.0;
const C5: f64 = 8.0 / 9.0;

const A21: f64 = 1.0 / 5.0;
const A31: f64 = 3.0 / 40.0;
const A32: f64 = 9.0 / 40.0;
const A41: f64 = 44.0 / 45.0;
const A42: f64 = -56.0 / 15.0;
const A43: f64 = 32.0 / 9.0;
const A51: f64 = 19372.0 / 6561.0;
const A52: f64 = -25360.0 / 2187.0;
const A53: f64 = 64448.0 / 6561.0;
const A54: f64 = -212.0 / 729.0;
const A61: f64 = 9017.0 / 3168.0;
const A62: f64 = -355.0 / 33.0;
const A63: f64 = 46732.0 / 5247.0;
const A64: f64 = 49.0 / 176.0;
const A65: f64 = -5103.0 / 18656.0;
// Row 7 doubles as the 5th-order weights b_i (FSAL).
const A71: f64 = 35.0 / 384.0;
const A73: f64 = 500.0 / 1113.0;
const A74: f64 = 125.0 / 192.0;
const A75: f64 = -2187.0 / 6784.0;
const A76: f64 = 11.0 / 84.0;

// Error coefficients e_i = b_i − b̂_i (5th minus embedded 4th order).
const E1: f64 = 71.0 / 57600.0;
const E3: f64 = -71.0 / 16695.0;
const E4: f64 = 71.0 / 1920.0;
const E5: f64 = -17253.0 / 339200.0;
const E6: f64 = 22.0 / 525.0;
const E7: f64 = -1.0 / 40.0;

// Dense-output coefficients (Hairer's D array).
const D1: f64 = -12715105075.0 / 11282082432.0;
const D3: f64 = 87487479700.0 / 32700410799.0;
const D4: f64 = -10690763975.0 / 1880347072.0;
const D5: f64 = 701980252875.0 / 199316789632.0;
const D6: f64 = -1453857185.0 / 822651844.0;
const D7: f64 = 69997945.0 / 29380423.0;

// PI controller constants (Hairer's defaults for DOPRI5).
const BETA: f64 = 0.04;
const EXPO1: f64 = 0.2 - BETA * 0.75;
const SAFETY: f64 = 0.9;
/// Maximum step-decrease factor: h may shrink by at most 1/FAC1_INV.
const FAC1_INV: f64 = 5.0;
/// Maximum step-increase factor.
const FAC2: f64 = 10.0;

/// Counters describing the work an integration performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of RHS evaluations.
    pub n_eval: usize,
    /// Number of accepted steps.
    pub n_accepted: usize,
    /// Number of rejected steps.
    pub n_rejected: usize,
}

/// Adaptive Dormand–Prince 5(4) integrator (builder-style configuration).
///
/// ```
/// use pom_ode::{FnSystem, dopri5::Dopri5};
/// let sys = FnSystem::new(2, |_t, y, d| { d[0] = y[1]; d[1] = -y[0]; });
/// let sol = Dopri5::new().rtol(1e-8).atol(1e-8)
///     .integrate(&sys, 0.0, &[1.0, 0.0], std::f64::consts::TAU)
///     .unwrap();
/// // One full period of the harmonic oscillator returns to the start.
/// assert!((sol.y_end()[0] - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Dopri5 {
    rtol: f64,
    atol: f64,
    h0: Option<f64>,
    h_max: Option<f64>,
    max_steps: usize,
}

impl Default for Dopri5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Dopri5 {
    /// Integrator with default tolerances `rtol = atol = 1e-6`.
    pub fn new() -> Self {
        Self {
            rtol: 1e-6,
            atol: 1e-6,
            h0: None,
            h_max: None,
            max_steps: 1_000_000,
        }
    }

    /// Relative tolerance (per component).
    pub fn rtol(mut self, rtol: f64) -> Self {
        self.rtol = rtol;
        self
    }

    /// Absolute tolerance (per component).
    pub fn atol(mut self, atol: f64) -> Self {
        self.atol = atol;
        self
    }

    /// Fix the initial step size instead of estimating it.
    pub fn h0(mut self, h0: f64) -> Self {
        self.h0 = Some(h0);
        self
    }

    /// Upper bound on the step size (default: the whole span).
    pub fn h_max(mut self, h_max: f64) -> Self {
        self.h_max = Some(h_max);
        self
    }

    /// Step budget before the solver gives up (default 10⁶).
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    fn validate(&self) -> Result<(), OdeError> {
        for (name, v) in [("rtol", self.rtol), ("atol", self.atol)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(OdeError::InvalidParameter { name, value: v });
            }
        }
        if let Some(h0) = self.h0 {
            if !(h0.is_finite() && h0 > 0.0) {
                return Err(OdeError::InvalidParameter {
                    name: "h0",
                    value: h0,
                });
            }
        }
        if let Some(hm) = self.h_max {
            if !(hm.is_finite() && hm > 0.0) {
                return Err(OdeError::InvalidParameter {
                    name: "h_max",
                    value: hm,
                });
            }
        }
        Ok(())
    }

    /// Integrate `sys` from `(t0, y0)` to `t_end`, returning the dense
    /// solution (sampleable anywhere in the span) and work counters.
    ///
    /// Thin wrapper over [`Dopri5::integrate_with`] that allocates a fresh
    /// [`Workspace`] per call.
    pub fn integrate_with_stats(
        &self,
        sys: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<(DenseSolution, SolverStats), OdeError> {
        self.integrate_with(sys, t0, y0, t_end, &mut Workspace::new())
    }

    /// Integrate with caller-provided scratch memory and a monomorphized
    /// right-hand side — the fast path.
    ///
    /// The step loop itself is allocation-free; the only per-step
    /// allocation left is the dense-output segment pushed for each
    /// *accepted* step, which is the product of the integration (one flat
    /// coefficient vector per segment). Results are bitwise identical to
    /// [`Dopri5::integrate_with_stats`] regardless of workspace reuse.
    pub fn integrate_with<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        t_end: f64,
        ws: &mut Workspace,
    ) -> Result<(DenseSolution, SolverStats), OdeError> {
        self.validate()?;
        let n = sys.dim();
        if y0.len() != n {
            return Err(OdeError::DimensionMismatch {
                expected: n,
                got: y0.len(),
            });
        }
        // Deliberate negation: also rejects NaN endpoints.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t_end > t0) {
            return Err(OdeError::EmptySpan { t0, t_end });
        }

        let span = t_end - t0;
        let h_max = self.h_max.unwrap_or(span).min(span);
        let mut stats = SolverStats::default();

        let (stage, drive) = ws.split();
        let [mut k1, k2, k3, k4, k5, k6, mut k7, y_stage, mut y_new] = stage.slices::<9>(n);
        let [mut y, probe_y, probe_f] = drive.slices::<3>(n);

        let mut t = t0;
        y.copy_from_slice(y0);

        sys.eval(t, y, k1);
        stats.n_eval += 1;
        check_finite(t, k1)?;

        let mut h = match self.h0 {
            Some(h0) => h0.min(h_max),
            None => {
                let h = self.hinit(sys, t, y, k1, h_max, probe_y, probe_f, &mut stats)?;
                check_finite(t, k1)?;
                h
            }
        };

        let mut segments: Vec<DenseSegment> = Vec::new();
        let mut fac_old: f64 = 1e-4;
        let mut last_rejected = false;

        loop {
            if t >= t_end {
                break;
            }
            if stats.n_accepted + stats.n_rejected >= self.max_steps {
                return Err(OdeError::TooManySteps {
                    t_reached: t,
                    max_steps: self.max_steps,
                });
            }
            // Don't overshoot; also avoid a microscopic final step by
            // stretching slightly when within 1% of the end.
            if t + 1.01 * h >= t_end {
                h = t_end - t;
            }
            if h <= f64::EPSILON * t.abs().max(1.0) {
                return Err(OdeError::StepSizeUnderflow { t, h });
            }

            // --- the 6 fresh stages ---
            for i in 0..n {
                y_stage[i] = y[i] + h * A21 * k1[i];
            }
            sys.eval(t + C2 * h, y_stage, k2);
            for i in 0..n {
                y_stage[i] = y[i] + h * (A31 * k1[i] + A32 * k2[i]);
            }
            sys.eval(t + C3 * h, y_stage, k3);
            for i in 0..n {
                y_stage[i] = y[i] + h * (A41 * k1[i] + A42 * k2[i] + A43 * k3[i]);
            }
            sys.eval(t + C4 * h, y_stage, k4);
            for i in 0..n {
                y_stage[i] = y[i] + h * (A51 * k1[i] + A52 * k2[i] + A53 * k3[i] + A54 * k4[i]);
            }
            sys.eval(t + C5 * h, y_stage, k5);
            for i in 0..n {
                y_stage[i] = y[i]
                    + h * (A61 * k1[i] + A62 * k2[i] + A63 * k3[i] + A64 * k4[i] + A65 * k5[i]);
            }
            sys.eval(t + h, y_stage, k6);
            for i in 0..n {
                y_new[i] = y[i]
                    + h * (A71 * k1[i] + A73 * k3[i] + A74 * k4[i] + A75 * k5[i] + A76 * k6[i]);
            }
            sys.eval(t + h, y_new, k7);
            stats.n_eval += 6;
            check_finite(t, k7)?;

            // --- error norm ---
            let mut err_sq = 0.0;
            for i in 0..n {
                let e = h
                    * (E1 * k1[i] + E3 * k3[i] + E4 * k4[i] + E5 * k5[i] + E6 * k6[i] + E7 * k7[i]);
                let sc = self.atol + self.rtol * y[i].abs().max(y_new[i].abs());
                err_sq += (e / sc) * (e / sc);
            }
            let err = (err_sq / n as f64).sqrt();

            // --- PI controller ---
            let fac11 = err.powf(EXPO1);
            let fac = (fac11 / fac_old.powf(BETA) / SAFETY).clamp(1.0 / FAC2, FAC1_INV);
            let h_new = h / fac;

            if err <= 1.0 {
                // Accept: build the dense-output segment for [t, t+h] —
                // one flat 5×n coefficient vector, the segment's storage.
                fac_old = err.max(1e-4);
                let mut rcont = vec![0.0; 5 * n];
                for i in 0..n {
                    let ydiff = y_new[i] - y[i];
                    let bspl = h * k1[i] - ydiff;
                    rcont[i] = y[i];
                    rcont[n + i] = ydiff;
                    rcont[2 * n + i] = bspl;
                    rcont[3 * n + i] = ydiff - h * k7[i] - bspl;
                    rcont[4 * n + i] = h
                        * (D1 * k1[i]
                            + D3 * k3[i]
                            + D4 * k4[i]
                            + D5 * k5[i]
                            + D6 * k6[i]
                            + D7 * k7[i]);
                }
                segments.push(DenseSegment::from_flat(t, h, n, rcont));

                t += h;
                std::mem::swap(&mut y, &mut y_new);
                std::mem::swap(&mut k1, &mut k7); // FSAL: swap the slice handles
                stats.n_accepted += 1;

                h = if last_rejected { h_new.min(h) } else { h_new }.min(h_max);
                last_rejected = false;
            } else {
                stats.n_rejected += 1;
                last_rejected = true;
                h /= (fac11 / SAFETY).min(FAC1_INV);
            }
        }

        let sol = DenseSolution::new(n, t0, t_end, y0.to_vec(), y.to_vec(), segments);
        crate::obs::flush_integration(
            stats.n_accepted as u64,
            stats.n_rejected as u64,
            stats.n_eval as u64,
            0,
        );
        Ok((sol, stats))
    }

    /// Integrate without building a dense solution, streaming every
    /// *accepted* step to `obs` — the O(N)-memory fast path.
    ///
    /// [`Dopri5::integrate_with`] allocates one 5×n dense-output segment
    /// per accepted step (that is the product of the integration); for
    /// long-horizon observable extraction those segments are the memory
    /// bound. This driver runs the identical step-control arithmetic
    /// (same stages, same error norm, same PI controller — the accepted
    /// step sequence and the final state are bitwise identical to the
    /// recording path, asserted by the property suite) but keeps nothing
    /// per step. Rejected step attempts are invisible to the observer.
    pub fn integrate_observed<S: OdeSystem + ?Sized, O: StepObserver>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        t_end: f64,
        ws: &mut Workspace,
        obs: &mut O,
    ) -> Result<(ObservedSummary, SolverStats), OdeError> {
        self.validate()?;
        let n = sys.dim();
        if y0.len() != n {
            return Err(OdeError::DimensionMismatch {
                expected: n,
                got: y0.len(),
            });
        }
        // Deliberate negation: also rejects NaN endpoints.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t_end > t0) {
            return Err(OdeError::EmptySpan { t0, t_end });
        }

        let span = t_end - t0;
        let h_max = self.h_max.unwrap_or(span).min(span);
        let mut stats = SolverStats::default();

        let (stage, drive) = ws.split();
        let [mut k1, k2, k3, k4, k5, k6, mut k7, y_stage, mut y_new] = stage.slices::<9>(n);
        let [mut y, probe_y, probe_f] = drive.slices::<3>(n);

        let mut t = t0;
        y.copy_from_slice(y0);

        sys.eval(t, y, k1);
        stats.n_eval += 1;
        check_finite(t, k1)?;

        let mut h = match self.h0 {
            Some(h0) => h0.min(h_max),
            None => {
                let h = self.hinit(sys, t, y, k1, h_max, probe_y, probe_f, &mut stats)?;
                check_finite(t, k1)?;
                h
            }
        };

        let mut fac_old: f64 = 1e-4;
        let mut last_rejected = false;

        obs.begin(t0, y);
        loop {
            if t >= t_end {
                break;
            }
            if stats.n_accepted + stats.n_rejected >= self.max_steps {
                return Err(OdeError::TooManySteps {
                    t_reached: t,
                    max_steps: self.max_steps,
                });
            }
            if t + 1.01 * h >= t_end {
                h = t_end - t;
            }
            if h <= f64::EPSILON * t.abs().max(1.0) {
                return Err(OdeError::StepSizeUnderflow { t, h });
            }

            // --- the 6 fresh stages (identical to integrate_with) ---
            for i in 0..n {
                y_stage[i] = y[i] + h * A21 * k1[i];
            }
            sys.eval(t + C2 * h, y_stage, k2);
            for i in 0..n {
                y_stage[i] = y[i] + h * (A31 * k1[i] + A32 * k2[i]);
            }
            sys.eval(t + C3 * h, y_stage, k3);
            for i in 0..n {
                y_stage[i] = y[i] + h * (A41 * k1[i] + A42 * k2[i] + A43 * k3[i]);
            }
            sys.eval(t + C4 * h, y_stage, k4);
            for i in 0..n {
                y_stage[i] = y[i] + h * (A51 * k1[i] + A52 * k2[i] + A53 * k3[i] + A54 * k4[i]);
            }
            sys.eval(t + C5 * h, y_stage, k5);
            for i in 0..n {
                y_stage[i] = y[i]
                    + h * (A61 * k1[i] + A62 * k2[i] + A63 * k3[i] + A64 * k4[i] + A65 * k5[i]);
            }
            sys.eval(t + h, y_stage, k6);
            for i in 0..n {
                y_new[i] = y[i]
                    + h * (A71 * k1[i] + A73 * k3[i] + A74 * k4[i] + A75 * k5[i] + A76 * k6[i]);
            }
            sys.eval(t + h, y_new, k7);
            stats.n_eval += 6;
            check_finite(t, k7)?;

            // --- error norm ---
            let mut err_sq = 0.0;
            for i in 0..n {
                let e = h
                    * (E1 * k1[i] + E3 * k3[i] + E4 * k4[i] + E5 * k5[i] + E6 * k6[i] + E7 * k7[i]);
                let sc = self.atol + self.rtol * y[i].abs().max(y_new[i].abs());
                err_sq += (e / sc) * (e / sc);
            }
            let err = (err_sq / n as f64).sqrt();

            // --- PI controller ---
            let fac11 = err.powf(EXPO1);
            let fac = (fac11 / fac_old.powf(BETA) / SAFETY).clamp(1.0 / FAC2, FAC1_INV);
            let h_new = h / fac;

            if err <= 1.0 {
                // Accept: no dense segment — the observer is the output.
                fac_old = err.max(1e-4);
                t += h;
                std::mem::swap(&mut y, &mut y_new);
                std::mem::swap(&mut k1, &mut k7); // FSAL: swap the slice handles
                stats.n_accepted += 1;
                obs.observe_step(t, y);

                h = if last_rejected { h_new.min(h) } else { h_new }.min(h_max);
                last_rejected = false;
            } else {
                stats.n_rejected += 1;
                last_rejected = true;
                h /= (fac11 / SAFETY).min(FAC1_INV);
            }
        }
        obs.finish(t, y);

        // begin + every accepted step + finish observer callbacks.
        crate::obs::flush_integration(
            stats.n_accepted as u64,
            stats.n_rejected as u64,
            stats.n_eval as u64,
            stats.n_accepted as u64 + 2,
        );
        Ok((
            ObservedSummary {
                t_end: t,
                n_steps: stats.n_accepted,
                n_eval: stats.n_eval,
                y_end: y.to_vec(),
            },
            stats,
        ))
    }

    /// Integrate an ensemble of initial conditions over the same span,
    /// reusing one workspace; returns one dense solution per member (in
    /// input order). The first error aborts the batch.
    pub fn integrate_many<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t0: f64,
        inits: &[Vec<f64>],
        t_end: f64,
        ws: &mut Workspace,
    ) -> Result<Vec<DenseSolution>, OdeError> {
        inits
            .iter()
            .map(|y0| self.integrate_with(sys, t0, y0, t_end, ws).map(|(s, _)| s))
            .collect()
    }

    /// Integrate, discarding the statistics.
    pub fn integrate(
        &self,
        sys: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<DenseSolution, OdeError> {
        self.integrate_with_stats(sys, t0, y0, t_end)
            .map(|(s, _)| s)
    }

    /// Hairer's automatic initial-step heuristic: pick h so that an Euler
    /// step stays small relative to the solution scale, refined by a
    /// second-derivative estimate. `probe_y`/`probe_f` are scratch for the
    /// Euler probe.
    #[allow(clippy::too_many_arguments)]
    fn hinit<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        f0: &[f64],
        h_max: f64,
        probe_y: &mut [f64],
        probe_f: &mut [f64],
        stats: &mut SolverStats,
    ) -> Result<f64, OdeError> {
        let n = y0.len();
        let mut dnf = 0.0;
        let mut dny = 0.0;
        for i in 0..n {
            let sk = self.atol + self.rtol * y0[i].abs();
            dnf += (f0[i] / sk) * (f0[i] / sk);
            dny += (y0[i] / sk) * (y0[i] / sk);
        }
        let mut h = if dnf <= 1e-10 || dny <= 1e-10 {
            1e-6
        } else {
            (dny / dnf).sqrt() * 0.01
        };
        h = h.min(h_max);

        // Explicit Euler probe for a second-derivative estimate.
        for i in 0..n {
            probe_y[i] = y0[i] + h * f0[i];
        }
        sys.eval(t0 + h, probe_y, probe_f);
        stats.n_eval += 1;
        check_finite(t0 + h, probe_f)?;

        let mut der2 = 0.0;
        for i in 0..n {
            let sk = self.atol + self.rtol * y0[i].abs();
            let d = (probe_f[i] - f0[i]) / sk;
            der2 += d * d;
        }
        let der2 = der2.sqrt() / h;

        let der12 = der2.max(dnf.sqrt());
        let h1 = if der12 <= 1e-15 {
            (1e-6f64).max(h.abs() * 1e-3)
        } else {
            (0.01 / der12).powf(0.2)
        };
        Ok(h1.min(100.0 * h).min(h_max))
    }
}

fn check_finite(t: f64, v: &[f64]) -> Result<(), OdeError> {
    if let Some(bad) = v.iter().position(|x| !x.is_finite()) {
        return Err(OdeError::NonFiniteDerivative { t, component: bad });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;
    use std::f64::consts::TAU;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y, d| d[0] = -y[0])
    }

    fn harmonic() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        })
    }

    #[test]
    fn exponential_decay_high_accuracy() {
        let (sol, stats) = Dopri5::new()
            .rtol(1e-10)
            .atol(1e-12)
            .integrate_with_stats(&decay(), 0.0, &[1.0], 10.0)
            .unwrap();
        let exact = (-10.0f64).exp();
        assert!((sol.y_end()[0] - exact).abs() < 1e-9);
        assert!(stats.n_accepted > 0);
        // FSAL accounting: ~6 evals per attempted step (+ hinit probe + k1).
        let attempts = stats.n_accepted + stats.n_rejected;
        assert!(stats.n_eval <= 6 * attempts + 2);
    }

    #[test]
    fn harmonic_period_accuracy() {
        let sol = Dopri5::new()
            .rtol(1e-9)
            .atol(1e-9)
            .integrate(&harmonic(), 0.0, &[1.0, 0.0], 10.0 * TAU)
            .unwrap();
        assert!((sol.y_end()[0] - 1.0).abs() < 1e-6);
        assert!(sol.y_end()[1].abs() < 1e-6);
    }

    #[test]
    fn dense_output_matches_analytic_solution_everywhere() {
        let sol = Dopri5::new()
            .rtol(1e-9)
            .atol(1e-9)
            .integrate(&decay(), 0.0, &[1.0], 4.0)
            .unwrap();
        // Probe at many off-grid times.
        for k in 0..=400 {
            let t = 4.0 * k as f64 / 400.0;
            let y = sol.sample_component(t, 0);
            assert!(
                (y - (-t).exp()).abs() < 1e-7,
                "dense output wrong at t={t}: {y} vs {}",
                (-t).exp()
            );
        }
    }

    #[test]
    fn dense_output_continuous_across_segments() {
        let sol = Dopri5::new()
            .rtol(1e-6)
            .atol(1e-6)
            .integrate(&harmonic(), 0.0, &[0.0, 1.0], 20.0)
            .unwrap();
        for w in sol.segments().windows(2) {
            let t_knot = w[0].t1();
            let a = w[0].eval(t_knot);
            let b = w[1].eval(t_knot);
            for i in 0..2 {
                assert!((a[i] - b[i]).abs() < 1e-9, "jump at knot t={t_knot}");
            }
        }
    }

    #[test]
    fn tighter_tolerance_means_more_steps_and_less_error() {
        let loose = Dopri5::new().rtol(1e-4).atol(1e-4);
        let tight = Dopri5::new().rtol(1e-10).atol(1e-10);
        let (s_loose, st_loose) = loose
            .integrate_with_stats(&harmonic(), 0.0, &[1.0, 0.0], 10.0 * TAU)
            .unwrap();
        let (s_tight, st_tight) = tight
            .integrate_with_stats(&harmonic(), 0.0, &[1.0, 0.0], 10.0 * TAU)
            .unwrap();
        assert!(st_tight.n_accepted > st_loose.n_accepted);
        let e_loose = (s_loose.y_end()[0] - 1.0).abs();
        let e_tight = (s_tight.y_end()[0] - 1.0).abs();
        assert!(e_tight < e_loose);
    }

    #[test]
    fn moderately_stiff_problem_is_handled() {
        // λ = −200: explicit methods need small steps but must succeed.
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -200.0 * y[0]);
        let sol = Dopri5::new()
            .rtol(1e-7)
            .atol(1e-9)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap();
        assert!(sol.y_end()[0].abs() < 1e-8);
    }

    #[test]
    fn forced_oscillator_nonautonomous() {
        // ẏ = cos t, y(0) = 0 ⇒ y = sin t.
        let sys = FnSystem::new(1, |t, _y, d| d[0] = t.cos());
        let sol = Dopri5::new()
            .rtol(1e-10)
            .atol(1e-10)
            .integrate(&sys, 0.0, &[0.0], 7.0)
            .unwrap();
        for k in 0..=70 {
            let t = 7.0 * k as f64 / 70.0;
            assert!((sol.sample_component(t, 0) - t.sin()).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_invalid_configuration() {
        assert!(Dopri5::new()
            .rtol(0.0)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .is_err());
        assert!(Dopri5::new()
            .atol(-1.0)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .is_err());
        assert!(Dopri5::new()
            .h0(f64::NAN)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .is_err());
        assert!(Dopri5::new()
            .integrate(&decay(), 0.0, &[1.0, 2.0], 1.0)
            .is_err());
        assert!(Dopri5::new().integrate(&decay(), 1.0, &[1.0], 0.5).is_err());
    }

    #[test]
    fn step_budget_enforced() {
        let res = Dopri5::new()
            .max_steps(3)
            .integrate(&harmonic(), 0.0, &[1.0, 0.0], 1000.0);
        assert!(matches!(res, Err(OdeError::TooManySteps { .. })));
    }

    #[test]
    fn blowup_is_detected() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = y[0] * y[0]);
        // Pole at t = 1 for y0 = 1.
        let res = Dopri5::new().integrate(&sys, 0.0, &[1.0], 2.0);
        assert!(res.is_err());
    }

    #[test]
    fn explicit_h0_and_hmax_are_respected() {
        let (sol, _) = Dopri5::new()
            .h0(1e-3)
            .h_max(0.05)
            .integrate_with_stats(&harmonic(), 0.0, &[1.0, 0.0], 1.0)
            .unwrap();
        for seg in sol.segments() {
            assert!(seg.h() <= 0.05 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn segments_cover_span_exactly() {
        let sol = Dopri5::new().integrate(&decay(), 0.5, &[1.0], 3.5).unwrap();
        assert_eq!(sol.segments().first().unwrap().t0(), 0.5);
        let t1 = sol.segments().last().unwrap().t1();
        assert!((t1 - 3.5).abs() < 1e-9);
    }
}
