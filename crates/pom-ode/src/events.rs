//! Post-hoc event (root) finding on dense solutions.
//!
//! The analysis layer asks questions like "when did the phase spread first
//! drop below 0.01?" or "when did oscillator 7 first feel the injected
//! delay?". Both reduce to locating sign changes of a scalar functional
//! `g(t, y(t))` along a [`DenseSolution`]: scan a grid for bracketing
//! intervals, then refine by bisection (the dense output makes arbitrarily
//! fine evaluation cheap).

use crate::dense::DenseSolution;

/// Default number of bisection iterations (gives ~2⁻⁶⁰ interval shrink).
const BISECT_ITERS: usize = 60;

/// Find the first time in `[t_lo, t_hi]` where `g(t, y(t))` crosses zero.
///
/// The span is scanned at `n_scan` uniformly spaced points; the first
/// bracketing interval is refined by bisection. Returns `None` if no sign
/// change is found (a tangent touch without crossing may be missed — use a
/// finer scan for pathological functionals).
pub fn first_zero_crossing(
    sol: &DenseSolution,
    g: impl Fn(f64, &[f64]) -> f64,
    t_lo: f64,
    t_hi: f64,
    n_scan: usize,
) -> Option<f64> {
    let t_lo = t_lo.max(sol.t0());
    let t_hi = t_hi.min(sol.t_end());
    // Deliberate negation: also rejects NaN bounds.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(t_hi > t_lo) || n_scan < 2 {
        return None;
    }

    let mut buf = vec![0.0; sol.dim()];
    let eval = |t: f64, buf: &mut Vec<f64>| {
        sol.sample_into(t, buf);
        g(t, buf)
    };

    let mut t_prev = t_lo;
    let mut g_prev = eval(t_prev, &mut buf);
    if g_prev == 0.0 {
        return Some(t_prev);
    }
    for k in 1..n_scan {
        let t = t_lo + (t_hi - t_lo) * (k as f64) / ((n_scan - 1) as f64);
        let g_now = eval(t, &mut buf);
        if g_now == 0.0 {
            return Some(t);
        }
        if g_prev.signum() != g_now.signum() {
            // Bisection refine in [t_prev, t].
            let (mut a, mut b) = (t_prev, t);
            let mut ga = g_prev;
            for _ in 0..BISECT_ITERS {
                let m = 0.5 * (a + b);
                let gm = eval(m, &mut buf);
                if gm == 0.0 {
                    return Some(m);
                }
                if ga.signum() != gm.signum() {
                    b = m;
                } else {
                    a = m;
                    ga = gm;
                }
                if b - a < 1e-14 * (1.0 + a.abs()) {
                    break;
                }
            }
            return Some(0.5 * (a + b));
        }
        t_prev = t;
        g_prev = g_now;
    }
    None
}

/// First time component `i` rises above `threshold` (strictly from below).
pub fn first_time_above(
    sol: &DenseSolution,
    i: usize,
    threshold: f64,
    n_scan: usize,
) -> Option<f64> {
    first_zero_crossing(sol, |_t, y| y[i] - threshold, sol.t0(), sol.t_end(), n_scan)
}

/// First time component `i` falls below `threshold`.
pub fn first_time_below(
    sol: &DenseSolution,
    i: usize,
    threshold: f64,
    n_scan: usize,
) -> Option<f64> {
    first_zero_crossing(sol, |_t, y| threshold - y[i], sol.t0(), sol.t_end(), n_scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dopri5::Dopri5;
    use crate::FnSystem;
    use std::f64::consts::PI;

    fn harmonic_solution() -> DenseSolution {
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        Dopri5::new()
            .rtol(1e-10)
            .atol(1e-10)
            .integrate(&sys, 0.0, &[1.0, 0.0], 10.0)
            .unwrap()
    }

    #[test]
    fn finds_cosine_zero_at_pi_over_two() {
        let sol = harmonic_solution();
        let t = first_zero_crossing(&sol, |_t, y| y[0], 0.0, 3.0, 100).unwrap();
        assert!((t - PI / 2.0).abs() < 1e-8, "got {t}");
    }

    #[test]
    fn finds_first_crossing_not_a_later_one() {
        let sol = harmonic_solution();
        // cos t = 0 at π/2, 3π/2, …; must report the first.
        let t = first_zero_crossing(&sol, |_t, y| y[0], 0.0, 9.0, 400).unwrap();
        assert!((t - PI / 2.0).abs() < 1e-8);
    }

    #[test]
    fn threshold_helpers() {
        let sol = harmonic_solution();
        // y0 = cos t falls below 0.5 at t = π/3.
        let t = first_time_below(&sol, 0, 0.5, 200).unwrap();
        assert!((t - PI / 3.0).abs() < 1e-8, "got {t}");
        // y1 = −sin t rises above −0.5 only after being below; from t=0 it
        // starts at 0 > −0.5, so the crossing search starts already above:
        // no sign change from below, but the scan sees g(t0) > 0 … use the
        // inverse: −sin t falls below −0.5 at t = π/6.
        let t = first_time_below(&sol, 1, -0.5, 200).unwrap();
        assert!((t - PI / 6.0).abs() < 1e-8, "got {t}");
    }

    #[test]
    fn no_crossing_returns_none() {
        let sol = harmonic_solution();
        assert_eq!(
            first_zero_crossing(&sol, |_t, y| y[0] + 10.0, 0.0, 10.0, 100),
            None
        );
        assert_eq!(first_time_above(&sol, 0, 55.0, 100), None);
    }

    #[test]
    fn degenerate_span_returns_none() {
        let sol = harmonic_solution();
        assert_eq!(first_zero_crossing(&sol, |_t, y| y[0], 5.0, 5.0, 100), None);
        assert_eq!(first_zero_crossing(&sol, |_t, y| y[0], 0.0, 1.0, 1), None);
    }

    #[test]
    fn exact_zero_at_grid_point_is_reported() {
        let sol = harmonic_solution();
        // Functional that is exactly zero at t = 2 (a scan point when the
        // grid divides evenly).
        let t = first_zero_crossing(&sol, |t, _y| t - 2.0, 0.0, 10.0, 11).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
    }
}
