//! Explicit ODE and delay-DE solvers for the Physical Oscillator Model.
//!
//! The paper (§3.2) integrates the coupled oscillator system, Eq. (2), with
//! MATLAB's `ode45`, i.e. the Dormand–Prince explicit Runge–Kutta 5(4) pair.
//! This crate reimplements that integrator from scratch — together with the
//! simpler fixed-step methods used for cross-validation — and adds the delay
//! differential equation (DDE) machinery needed for the paper's *interaction
//! noise* term `τ_ij(t)`, which makes the right-hand side depend on past
//! states `θ_j(t − τ_ij(t))`.
//!
//! ## Contents
//!
//! * [`OdeSystem`] / [`FnSystem`] — right-hand-side abstraction.
//! * [`fixed`] — fixed-step steppers: explicit [`fixed::Euler`],
//!   [`fixed::Heun`], classical [`fixed::Rk4`], and the driver
//!   [`fixed::FixedStepSolver`].
//! * [`dopri5`] — adaptive Dormand–Prince 5(4) with PI step-size control,
//!   FSAL optimization and 5-coefficient dense output
//!   ([`dopri5::Dopri5`]).
//! * [`bs23`] — adaptive Bogacki–Shampine 3(2) (MATLAB's `ode23`), the
//!   cheap low-order alternative for loose-tolerance runs.
//! * [`dense`] — dense-output segments and the piecewise
//!   [`dense::DenseSolution`] they form.
//! * [`dde`] — delay systems ([`dde::DdeSystem`]), cubic-Hermite history
//!   buffers and the fixed-step DDE integrator [`dde::DdeRk4`].
//! * [`trajectory`] — flat-storage sampled trajectories shared by all
//!   solvers.
//! * [`events`] — post-hoc root finding on dense solutions (e.g. "when does
//!   the order parameter cross 0.99?").
//! * [`ensemble`] — lockstep multi-replica batching: the interleaved
//!   `[n × R]` layout ([`EnsembleLayout`]), the gather/scatter reference
//!   system ([`EnsembleSystem`]) and the per-replica observer fan-out
//!   ([`EnsembleObserver`]).
//! * [`observe`] — streaming step observers ([`StepObserver`]) and the
//!   `integrate_observed` entry points' shared types: online observables
//!   over long-horizon runs with **no** per-step trajectory storage.
//! * [`workspace`] — reusable scratch memory ([`Workspace`]) for the
//!   allocation-free `integrate_with`/`integrate_many` fast paths.
//!
//! ## Performance model
//!
//! Every solver has two entry points. The classic one (`integrate`,
//! `integrate_with_stats`) accepts `&dyn OdeSystem` and allocates a fresh
//! workspace per call — convenient for one-off runs. The `_with` variants
//! are generic over the system (monomorphized right-hand side, no virtual
//! dispatch) and borrow a caller-held [`Workspace`], so the step loop is
//! allocation-free; `integrate_many` amortizes one workspace over a whole
//! ensemble of initial conditions. Both paths produce bitwise identical
//! results (asserted by the property-test suite).
//!
//! ## Example
//!
//! ```
//! use pom_ode::{FnSystem, dopri5::Dopri5};
//!
//! // ẏ = −y, y(0) = 1  ⇒  y(t) = e^{−t}
//! let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
//! let sol = Dopri5::new().rtol(1e-9).atol(1e-9)
//!     .integrate(&sys, 0.0, &[1.0], 5.0)
//!     .unwrap();
//! let y5 = sol.sample(5.0)[0];
//! assert!((y5 - (-5.0f64).exp()).abs() < 1e-7);
//! ```

pub mod bs23;
pub mod dde;
pub mod dense;
pub mod dopri5;
pub mod ensemble;
pub mod error;
pub mod events;
pub mod fixed;
pub(crate) mod obs;
pub mod observe;
pub mod trajectory;
pub mod workspace;

pub use bs23::{Bs23, Bs23Stats};
pub use dde::{DdeRk4, DdeSystem, PhaseHistory};
pub use dense::{DenseSegment, DenseSolution};
pub use dopri5::{Dopri5, SolverStats};
pub use ensemble::{EnsembleLayout, EnsembleObserver, EnsembleSystem};
pub use error::OdeError;
pub use fixed::{Euler, FixedStepSolver, Heun, Rk4, Stepper};
pub use observe::{NoObserver, ObserveEvery, ObservedSummary, StepObserver};
pub use trajectory::Trajectory;
pub use workspace::{ScratchPool, Workspace};

/// Right-hand side of a first-order ODE system `ẏ = f(t, y)`.
///
/// Implementations must be deterministic for a given `(t, y)`: adaptive
/// solvers re-evaluate rejected steps and dense output assumes the RHS seen
/// during the step is reproducible. (Stochastic forcing in the oscillator
/// model is implemented as *frozen* noise: a deterministic function of `t`
/// drawn once up-front — see `pom-noise`.)
pub trait OdeSystem {
    /// Dimension `n` of the state vector.
    fn dim(&self) -> usize;

    /// Evaluate the derivative: write `f(t, y)` into `dydt`.
    ///
    /// `y` and `dydt` both have length [`OdeSystem::dim`].
    ///
    /// `dydt` is **not** zeroed on entry — solvers hand out reused scratch
    /// buffers ([`Workspace`]) that hold stale values from earlier stages.
    /// Implementations must assign every component (`d[i] = …`, never
    /// `d[i] += …` on unwritten slots) and must not read `dydt`.
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

/// Adapter turning a closure `f(t, y, dydt)` into an [`OdeSystem`].
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wrap closure `f` as an ODE system of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        Self { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        debug_assert_eq!(y.len(), self.dim);
        debug_assert_eq!(dydt.len(), self.dim);
        (self.f)(t, y, dydt)
    }
}

impl<S: OdeSystem + ?Sized> OdeSystem for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (**self).eval(t, y, dydt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_system_evaluates_closure() {
        let sys = FnSystem::new(2, |t, y, dydt| {
            dydt[0] = y[1];
            dydt[1] = -y[0] + t;
        });
        assert_eq!(sys.dim(), 2);
        let mut out = [0.0; 2];
        sys.eval(2.0, &[3.0, 4.0], &mut out);
        assert_eq!(out, [4.0, -1.0]);
    }

    #[test]
    fn system_usable_through_reference() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = 2.0 * y[0]);
        let r = &sys;
        let mut out = [0.0];
        r.eval(0.0, &[1.5], &mut out);
        assert_eq!(out[0], 3.0);
        assert_eq!(r.dim(), 1);
    }
}
