//! Lockstep ensemble integration: R replicas of an n-dimensional system
//! advanced as **one** interleaved `n·R`-dimensional system.
//!
//! ## Layout
//!
//! The batched state vector is structure-of-arrays with the replica index
//! innermost: component `(i, rep)` lives at `i * R + rep`, so all R
//! replica values of oscillator `i` are contiguous:
//!
//! ```text
//!   [ y0⁽⁰⁾ y0⁽¹⁾ … y0⁽ᴿ⁻¹⁾ | y1⁽⁰⁾ y1⁽¹⁾ … y1⁽ᴿ⁻¹⁾ | … ]
//!     └──── row 0 ─────────┘  └──── row 1 ─────────┘
//! ```
//!
//! Why this interleaving: a right-hand side that walks oscillator rows
//! (a stencil pass, a sin/cos array pass, a CSR row scan) touches the R
//! replica values of each row as one contiguous block, so per-row work —
//! index arithmetic, neighbor lookups, cache lines — amortizes across the
//! whole batch instead of being repeated R times.
//!
//! ## Bitwise contract
//!
//! Fixed-step explicit Runge–Kutta updates are elementwise: stage
//! combination `y' = y + h·Σ b_i k_i` for component `(i, rep)` reads only
//! component `(i, rep)` of each stage. The layout therefore cannot change
//! any arithmetic — a batched integration is **bitwise identical** to R
//! independent integrations as long as the batched RHS evaluates each
//! replica's derivative with the same per-component operation order as
//! the single-replica RHS. [`EnsembleSystem`] guarantees that trivially
//! (it gathers each replica out and calls the inner RHS unchanged);
//! natively batched RHS implementations (see `pom-core`'s ensemble
//! module) must preserve per-`(i, rep)` accumulation order and are
//! proptested against this adapter.
//!
//! Adaptive solvers are excluded from lockstep batching: their step-size
//! controller folds the whole state into one error norm, which would
//! couple replicas (replica 1's stiffness changing replica 2's step
//! sequence). Callers run adaptive ensembles sequentially instead.

use crate::dde::{DdeSystem, PhaseHistory};
use crate::observe::StepObserver;
use crate::OdeSystem;
use std::sync::Mutex;

/// Index arithmetic for the interleaved `[n × R]` ensemble layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnsembleLayout {
    /// Per-replica dimension (oscillator count).
    pub n: usize,
    /// Replica count.
    pub r: usize,
}

impl EnsembleLayout {
    /// Layout for `r` replicas of an `n`-dimensional system.
    pub fn new(n: usize, r: usize) -> Self {
        Self { n, r }
    }

    /// Total batched dimension `n · r`.
    pub fn dim(&self) -> usize {
        self.n * self.r
    }

    /// Flat index of component `i` of replica `rep`.
    #[inline]
    pub fn index(&self, i: usize, rep: usize) -> usize {
        debug_assert!(i < self.n && rep < self.r);
        i * self.r + rep
    }

    /// Interleave per-replica states (each length `n`) into one batched
    /// vector of length [`EnsembleLayout::dim`].
    pub fn pack(&self, members: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(members.len(), self.r, "one state per replica");
        let mut out = vec![0.0; self.dim()];
        for (rep, y) in members.iter().enumerate() {
            assert_eq!(y.len(), self.n, "replica state dimension");
            for (i, &v) in y.iter().enumerate() {
                out[self.index(i, rep)] = v;
            }
        }
        out
    }

    /// Copy replica `rep` out of a batched vector into `dst` (length `n`).
    pub fn extract_into(&self, batched: &[f64], rep: usize, dst: &mut [f64]) {
        debug_assert_eq!(batched.len(), self.dim());
        debug_assert_eq!(dst.len(), self.n);
        for (i, d) in dst.iter_mut().enumerate() {
            *d = batched[self.index(i, rep)];
        }
    }

    /// Replica `rep` of a batched vector as a fresh `Vec`.
    pub fn extract(&self, batched: &[f64], rep: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.extract_into(batched, rep, &mut out);
        out
    }
}

/// View of one replica's phases inside a batched [`PhaseHistory`]: delegates
/// `sample(t, j)` to the batched history at the interleaved index.
struct ReplicaHistoryView<'a> {
    inner: &'a dyn PhaseHistory,
    layout: EnsembleLayout,
    rep: usize,
}

impl PhaseHistory for ReplicaHistoryView<'_> {
    fn sample(&self, t: f64, i: usize) -> f64 {
        self.inner.sample(t, self.layout.index(i, self.rep))
    }
}

/// The reference batched system: wraps R single-replica systems into one
/// `n·R`-dimensional [`OdeSystem`] / [`DdeSystem`] by gather → inner eval
/// → scatter, per replica.
///
/// Each replica's RHS is evaluated through the *unmodified* inner system
/// on a densely packed per-replica state, so the batched derivative is
/// bitwise identical to R independent evaluations by construction. This
/// is the differential-testing oracle for natively batched RHS
/// implementations — and a correct (if unamortized) fallback for any
/// system.
pub struct EnsembleSystem<S> {
    members: Vec<S>,
    layout: EnsembleLayout,
    /// Gather/scatter scratch (`y_rep`, `dydt_rep`). Interior mutability
    /// because [`OdeSystem::eval`] takes `&self`; uncontended in practice
    /// (solvers evaluate serially).
    scratch: Mutex<(Vec<f64>, Vec<f64>)>,
}

impl<S: OdeSystem> EnsembleSystem<S> {
    /// Batch `members` (all of equal dimension) into one system.
    ///
    /// Panics if `members` is empty or dimensions disagree.
    pub fn new(members: Vec<S>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let n = members[0].dim();
        assert!(
            members.iter().all(|m| m.dim() == n),
            "all ensemble members must share one dimension"
        );
        let r = members.len();
        Self {
            members,
            layout: EnsembleLayout::new(n, r),
            scratch: Mutex::new((vec![0.0; n], vec![0.0; n])),
        }
    }
}

impl<S> EnsembleSystem<S> {
    /// The interleaving layout.
    pub fn layout(&self) -> EnsembleLayout {
        self.layout
    }

    /// The wrapped members, in replica order.
    pub fn members(&self) -> &[S] {
        &self.members
    }
}

impl<S: OdeSystem> OdeSystem for EnsembleSystem<S> {
    fn dim(&self) -> usize {
        self.layout.dim()
    }

    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let mut guard = self.scratch.lock().expect("ensemble scratch");
        let (y_rep, d_rep) = &mut *guard;
        for (rep, sys) in self.members.iter().enumerate() {
            self.layout.extract_into(y, rep, y_rep);
            sys.eval(t, y_rep, d_rep);
            for (i, &v) in d_rep.iter().enumerate() {
                dydt[self.layout.index(i, rep)] = v;
            }
        }
    }
}

impl<S: DdeSystem> EnsembleSystem<S> {
    /// Batch delay systems (all of equal dimension) into one.
    pub fn new_dde(members: Vec<S>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let n = members[0].dim();
        assert!(
            members.iter().all(|m| m.dim() == n),
            "all ensemble members must share one dimension"
        );
        let r = members.len();
        Self {
            members,
            layout: EnsembleLayout::new(n, r),
            scratch: Mutex::new((vec![0.0; n], vec![0.0; n])),
        }
    }
}

impl<S: DdeSystem> DdeSystem for EnsembleSystem<S> {
    fn dim(&self) -> usize {
        self.layout.dim()
    }

    fn eval(&self, t: f64, y: &[f64], hist: &dyn PhaseHistory, dydt: &mut [f64]) {
        let mut guard = self.scratch.lock().expect("ensemble scratch");
        let (y_rep, d_rep) = &mut *guard;
        for (rep, sys) in self.members.iter().enumerate() {
            self.layout.extract_into(y, rep, y_rep);
            let view = ReplicaHistoryView {
                inner: hist,
                layout: self.layout,
                rep,
            };
            sys.eval(t, y_rep, &view, d_rep);
            for (i, &v) in d_rep.iter().enumerate() {
                dydt[self.layout.index(i, rep)] = v;
            }
        }
    }
}

/// Fans batched observer callbacks out to one [`StepObserver`] per
/// replica, de-interleaving the state so each inner observer sees exactly
/// the `(t, y_rep)` sequence an independent run of that replica would
/// produce.
pub struct EnsembleObserver<'a, O> {
    observers: &'a mut [O],
    layout: EnsembleLayout,
    scratch: Vec<f64>,
}

impl<'a, O: StepObserver> EnsembleObserver<'a, O> {
    /// Fan out to `observers` (one per replica, replica order).
    pub fn new(observers: &'a mut [O], layout: EnsembleLayout) -> Self {
        assert_eq!(observers.len(), layout.r, "one observer per replica");
        Self {
            observers,
            layout,
            scratch: vec![0.0; layout.n],
        }
    }

    fn fan_out(&mut self, y: &[f64], mut f: impl FnMut(&mut O, &[f64])) {
        for rep in 0..self.layout.r {
            // De-interleaving exists only to feed the inner observer; a
            // disinterested one (NoObserver) skips the copy entirely.
            if !self.observers[rep].wants_samples() {
                continue;
            }
            self.layout.extract_into(y, rep, &mut self.scratch);
            f(&mut self.observers[rep], &self.scratch);
        }
    }
}

impl<O: StepObserver> StepObserver for EnsembleObserver<'_, O> {
    fn begin(&mut self, t0: f64, y0: &[f64]) {
        self.fan_out(y0, |obs, y| obs.begin(t0, y));
    }

    fn observe_step(&mut self, t: f64, y: &[f64]) {
        self.fan_out(y, |obs, y| obs.observe_step(t, y));
    }

    fn finish(&mut self, t_end: f64, y_end: &[f64]) {
        self.fan_out(y_end, |obs, y| obs.finish(t_end, y));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{FixedStepSolver, Rk4};
    use crate::observe::CollectObserver;
    use crate::workspace::Workspace;
    use crate::FnSystem;

    fn decay(k: f64) -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, move |_t, y, d| {
            d[0] = -k * y[0];
            d[1] = -k * y[1] + y[0];
        })
    }

    #[test]
    fn layout_roundtrip() {
        let l = EnsembleLayout::new(3, 2);
        assert_eq!(l.dim(), 6);
        assert_eq!(l.index(2, 1), 5);
        let members = vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]];
        let packed = l.pack(&members);
        assert_eq!(packed, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        assert_eq!(l.extract(&packed, 0), members[0]);
        assert_eq!(l.extract(&packed, 1), members[1]);
    }

    #[test]
    fn batched_integration_is_bitwise_identical_to_independent_runs() {
        let ks = [0.5, 1.0, 2.0];
        let inits: Vec<Vec<f64>> = ks.iter().map(|&k| vec![1.0 + k, -k]).collect();
        let solver = FixedStepSolver::new(Rk4, 0.01).unwrap();

        // Independent reference runs.
        let mut reference = Vec::new();
        for (&k, y0) in ks.iter().zip(&inits) {
            let traj = solver.integrate(&decay(k), 0.0, y0, 2.0).unwrap();
            reference.push(traj.last().unwrap().to_vec());
        }

        // One batched run.
        let ens = EnsembleSystem::new(ks.iter().map(|&k| decay(k)).collect());
        let layout = ens.layout();
        let y0 = layout.pack(&inits);
        let traj = solver.integrate(&ens, 0.0, &y0, 2.0).unwrap();
        let y_end = traj.last().unwrap();

        for (rep, want) in reference.iter().enumerate() {
            let got = layout.extract(y_end, rep);
            assert_eq!(&got, want, "replica {rep} must match bitwise");
        }
    }

    #[test]
    fn observer_fan_out_matches_independent_observation() {
        let ks = [1.0, 3.0];
        let inits = vec![vec![1.0, 0.0], vec![0.5, 0.25]];
        let solver = FixedStepSolver::new(Rk4, 0.1).unwrap();
        let mut ws = Workspace::new();

        let mut reference = Vec::new();
        for (&k, y0) in ks.iter().zip(&inits) {
            let mut obs = CollectObserver::default();
            solver
                .integrate_observed(&decay(k), 0.0, y0, 1.0, &mut ws, &mut obs)
                .unwrap();
            reference.push(obs);
        }

        let ens = EnsembleSystem::new(ks.iter().map(|&k| decay(k)).collect());
        let layout = ens.layout();
        let y0 = layout.pack(&inits);
        let mut observers = vec![CollectObserver::default(), CollectObserver::default()];
        let mut fan = EnsembleObserver::new(&mut observers, layout);
        solver
            .integrate_observed(&ens, 0.0, &y0, 1.0, &mut ws, &mut fan)
            .unwrap();

        for (rep, want) in reference.iter().enumerate() {
            assert_eq!(observers[rep].samples, want.samples, "replica {rep}");
            assert_eq!(observers[rep].initial, want.initial);
            assert!(observers[rep].finished);
        }
    }
}
