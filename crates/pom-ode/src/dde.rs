//! Delay differential equations (DDEs) for the interaction-noise term.
//!
//! Paper Eq. (2) couples oscillator `i` to the *past* phase of oscillator
//! `j`: `V(θ_j(t − τ_ij(t)) − θ_i(t))`. With any nonzero delay the model is
//! a DDE, solved here by the classical *method of steps*: a fixed-step RK4
//! integrator whose stage evaluations look up past states in a
//! cubic-Hermite-interpolated [`HistoryBuffer`].
//!
//! Accuracy notes:
//! * For delays `τ ≥ h` every history lookup falls inside completed steps
//!   and the scheme retains its full order (the Hermite interpolant is
//!   O(h⁴), matching RK4).
//! * For delays `0 < τ < h` stage lookups may land in the *current*,
//!   not-yet-completed step; the buffer then extrapolates linearly from the
//!   last knot. This is the standard explicit treatment for small delays
//!   and is exact in the limit `τ → 0` (where the DDE degenerates to an
//!   ODE — covered by a regression test).

use crate::error::OdeError;
use crate::observe::{ObservedSummary, StepObserver};
use crate::trajectory::Trajectory;
use crate::workspace::Workspace;

/// Read access to the (interpolated) past of a solution.
///
/// The `Sync` bound lets a right-hand side fan its per-component work out
/// across threads (the model's chunked RHS executor reads history from
/// every worker); all history sources here are immutable-once-written, so
/// the bound costs implementations nothing.
pub trait PhaseHistory: Sync {
    /// Value of component `i` at time `t` (may precede the start of the
    /// integration, in which case the initial history applies).
    fn sample(&self, t: f64, i: usize) -> f64;

    /// Sample the contiguous component run `base..base + out.len()` at one
    /// time. Each `out[q]` is bitwise equal to `sample(t, base + q)`; the
    /// point of the method is that implementations can pay the knot search
    /// and interpolation-coefficient setup once for the whole run. The
    /// batched ensemble RHS leans on this: with the replica-interleaved
    /// layout, "all R replicas of partner `j`" is exactly such a run.
    fn sample_run(&self, t: f64, base: usize, out: &mut [f64]) {
        for (q, o) in out.iter_mut().enumerate() {
            *o = self.sample(t, base + q);
        }
    }

    /// Sample every component at time `t` into `out`.
    fn sample_all(&self, t: f64, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.sample(t, i);
        }
    }
}

/// Right-hand side of a delay system `ẏ = f(t, y, y(·))`.
pub trait DdeSystem {
    /// State dimension.
    fn dim(&self) -> usize;

    /// Evaluate the derivative given the current state and history access.
    ///
    /// As with [`crate::OdeSystem::eval`], `dydt` is not zeroed on entry
    /// (the driver reuses [`crate::Workspace`] scratch): implementations
    /// must assign every component and must not read `dydt`.
    fn eval(&self, t: f64, y: &[f64], hist: &dyn PhaseHistory, dydt: &mut [f64]);
}

/// Initial history `y(t)` for `t ≤ t0`.
pub enum InitialHistory {
    /// History frozen at a constant vector (the common case: processes sat
    /// idle in a well-defined state before the program started).
    Constant(Vec<f64>),
    /// Arbitrary function `(t, component) → value`.
    Func(Box<dyn Fn(f64, usize) -> f64 + Send + Sync>),
}

impl InitialHistory {
    fn dim(&self) -> Option<usize> {
        match self {
            InitialHistory::Constant(v) => Some(v.len()),
            InitialHistory::Func(_) => None,
        }
    }

    fn sample(&self, t: f64, i: usize) -> f64 {
        match self {
            InitialHistory::Constant(v) => v[i],
            InitialHistory::Func(f) => f(t, i),
        }
    }
}

/// Growing record of the computed solution with cubic-Hermite interpolation
/// between knots, linear extrapolation beyond the newest knot, and the
/// user-supplied [`InitialHistory`] before `t0`.
pub struct HistoryBuffer {
    dim: usize,
    t0: f64,
    initial: InitialHistory,
    times: Vec<f64>,
    /// Row-major knot states, `times.len() × dim`.
    states: Vec<f64>,
    /// Row-major knot derivatives, same layout.
    derivs: Vec<f64>,
}

impl HistoryBuffer {
    /// Start a buffer at `t0` with the first knot `(t0, y0, f0)`.
    pub fn new(t0: f64, y0: &[f64], f0: &[f64], initial: InitialHistory) -> Self {
        let dim = y0.len();
        debug_assert_eq!(f0.len(), dim);
        Self {
            dim,
            t0,
            initial,
            times: vec![t0],
            states: y0.to_vec(),
            derivs: f0.to_vec(),
        }
    }

    /// Reserve room for `additional` future knots (one per step), so the
    /// integration loop never reallocates the history storage.
    pub fn reserve(&mut self, additional: usize) {
        self.times.reserve(additional);
        self.states.reserve(additional * self.dim);
        self.derivs.reserve(additional * self.dim);
    }

    /// Drop knots no lookup can reach anymore: everything strictly before
    /// the last knot at or before `t_keep` (one knot at or before the
    /// horizon is retained so interpolation at `t_keep` itself still
    /// brackets). Used by the observed fast path to hold history memory
    /// at O(delay window) instead of O(whole run).
    ///
    /// The drain is batched (only fires once ≥ 64 prunable knots have
    /// accumulated), so the amortized per-step cost is O(1) and peak
    /// memory is the window plus a constant.
    pub fn prune_before(&mut self, t_keep: f64) {
        // First knot strictly after the horizon; knots [0, p) are ≤ t_keep.
        let p = self.times.partition_point(|&tk| tk <= t_keep);
        let drop = p.saturating_sub(1);
        if drop >= 64 {
            self.times.drain(..drop);
            self.states.drain(..drop * self.dim);
            self.derivs.drain(..drop * self.dim);
        }
    }

    /// Oldest retained knot time (`t0` unless pruned).
    pub fn t_oldest(&self) -> f64 {
        self.times[0]
    }

    /// Append a knot; `t` must be strictly after the last knot.
    pub fn push(&mut self, t: f64, y: &[f64], f: &[f64]) {
        debug_assert!(t > *self.times.last().unwrap());
        debug_assert_eq!(y.len(), self.dim);
        self.times.push(t);
        self.states.extend_from_slice(y);
        self.derivs.extend_from_slice(f);
    }

    /// Newest recorded time.
    pub fn t_latest(&self) -> f64 {
        *self.times.last().unwrap()
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the buffer holds only the initial knot.
    pub fn is_empty(&self) -> bool {
        self.times.len() <= 1
    }

    fn knot_state(&self, k: usize, i: usize) -> f64 {
        self.states[k * self.dim + i]
    }

    fn knot_deriv(&self, k: usize, i: usize) -> f64 {
        self.derivs[k * self.dim + i]
    }

    /// Cubic Hermite interpolation of component `i` between knots `k` and
    /// `k+1`.
    fn hermite(&self, k: usize, t: f64, i: usize) -> f64 {
        let t0 = self.times[k];
        let t1 = self.times[k + 1];
        let h = t1 - t0;
        let s = (t - t0) / h;
        let (y0, y1) = (self.knot_state(k, i), self.knot_state(k + 1, i));
        let (f0, f1) = (self.knot_deriv(k, i), self.knot_deriv(k + 1, i));
        let s2 = s * s;
        let s3 = s2 * s;
        let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
        let h10 = s3 - 2.0 * s2 + s;
        let h01 = -2.0 * s3 + 3.0 * s2;
        let h11 = s3 - s2;
        h00 * y0 + h * h10 * f0 + h01 * y1 + h * h11 * f1
    }
}

impl PhaseHistory for HistoryBuffer {
    fn sample(&self, t: f64, i: usize) -> f64 {
        if t <= self.t0 {
            // After pruning the first retained knot may postdate t0; the
            // (unpruned) t0 knot state then lives only in the initial
            // history, which integrate_observed keeps consistent.
            if t == self.t0 && self.times[0] == self.t0 {
                return self.knot_state(0, i);
            }
            return self.initial.sample(t, i);
        }
        let latest = self.t_latest();
        if t >= latest {
            // Linear extrapolation from the newest knot (used by stage
            // evaluations when the delay is smaller than the step).
            let k = self.times.len() - 1;
            return self.knot_state(k, i) + (t - latest) * self.knot_deriv(k, i);
        }
        if t < self.times[0] {
            // Below the retained window: only reachable when a pruned
            // buffer is queried deeper than the window it was promised
            // (`integrate_observed`'s history_window contract).
            debug_assert!(
                false,
                "history lookup at t = {t} below pruned horizon {}",
                self.times[0]
            );
            return self.knot_state(0, i);
        }
        // Find the knot interval [t_k, t_{k+1}] containing t.
        let hi = self.times.partition_point(|&tk| tk <= t);
        let k = hi - 1;
        if self.times[k] == t {
            return self.knot_state(k, i);
        }
        self.hermite(k, t, i)
    }

    // Mirrors `sample` branch for branch, but pays the knot search and the
    // Hermite coefficients once for the whole run. Per component the
    // arithmetic is identical to `hermite` — `h·h10·f0` associates as
    // `(h·h10)·f0`, so hoisting the products keeps every value bitwise
    // equal to `sample(t, base + q)`.
    fn sample_run(&self, t: f64, base: usize, out: &mut [f64]) {
        let end = base + out.len();
        if t <= self.t0 {
            if t == self.t0 && self.times[0] == self.t0 {
                out.copy_from_slice(&self.states[base..end]);
                return;
            }
            for (q, o) in out.iter_mut().enumerate() {
                *o = self.initial.sample(t, base + q);
            }
            return;
        }
        let latest = self.t_latest();
        if t >= latest {
            let k = self.times.len() - 1;
            let dt = t - latest;
            let y = &self.states[k * self.dim + base..k * self.dim + end];
            let f = &self.derivs[k * self.dim + base..k * self.dim + end];
            for ((o, &y0), &f0) in out.iter_mut().zip(y).zip(f) {
                *o = y0 + dt * f0;
            }
            return;
        }
        if t < self.times[0] {
            debug_assert!(
                false,
                "history lookup at t = {t} below pruned horizon {}",
                self.times[0]
            );
            out.copy_from_slice(&self.states[base..end]);
            return;
        }
        let hi = self.times.partition_point(|&tk| tk <= t);
        let k = hi - 1;
        if self.times[k] == t {
            out.copy_from_slice(&self.states[k * self.dim + base..k * self.dim + end]);
            return;
        }
        let t0 = self.times[k];
        let t1 = self.times[k + 1];
        let h = t1 - t0;
        let s = (t - t0) / h;
        let s2 = s * s;
        let s3 = s2 * s;
        let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
        let b10 = h * (s3 - 2.0 * s2 + s);
        let h01 = -2.0 * s3 + 3.0 * s2;
        let b11 = h * (s3 - s2);
        let y0 = &self.states[k * self.dim + base..k * self.dim + end];
        let y1 = &self.states[(k + 1) * self.dim + base..(k + 1) * self.dim + end];
        let f0 = &self.derivs[k * self.dim + base..k * self.dim + end];
        let f1 = &self.derivs[(k + 1) * self.dim + base..(k + 1) * self.dim + end];
        for q in 0..out.len() {
            out[q] = h00 * y0[q] + b10 * f0[q] + h01 * y1[q] + b11 * f1[q];
        }
    }
}

/// Fixed-step RK4 integrator for delay systems (method of steps).
#[derive(Debug, Clone)]
pub struct DdeRk4 {
    h: f64,
    record_every: usize,
}

impl DdeRk4 {
    /// Create an integrator with step size `h`.
    pub fn new(h: f64) -> Result<Self, OdeError> {
        if !(h.is_finite() && h > 0.0) {
            return Err(OdeError::InvalidParameter {
                name: "h",
                value: h,
            });
        }
        Ok(Self { h, record_every: 1 })
    }

    /// Record only every `k`-th step (the final state is always recorded).
    pub fn record_every(mut self, k: usize) -> Self {
        self.record_every = k.max(1);
        self
    }

    /// Integrate from `t0` to `t_end`.
    ///
    /// The initial state is the initial history evaluated at `t0` (for
    /// [`InitialHistory::Constant`] simply the stored vector). Returns the
    /// recorded trajectory together with the full history buffer (usable
    /// for post-hoc interpolation at arbitrary times).
    ///
    /// Thin wrapper over [`DdeRk4::integrate_with`] that allocates a fresh
    /// [`Workspace`] per call.
    pub fn integrate(
        &self,
        sys: &dyn DdeSystem,
        t0: f64,
        initial: InitialHistory,
        t_end: f64,
    ) -> Result<(Trajectory, HistoryBuffer), OdeError> {
        self.integrate_with(sys, t0, initial, t_end, &mut Workspace::new())
    }

    /// Integrate with caller-provided scratch memory and a monomorphized
    /// right-hand side.
    ///
    /// The stage buffers come from the workspace and the history buffer /
    /// trajectory reserve their full capacity up front, so the step loop
    /// performs no allocation beyond the returned solution data. Bitwise
    /// identical to [`DdeRk4::integrate`] regardless of workspace reuse.
    pub fn integrate_with<S: DdeSystem + ?Sized>(
        &self,
        sys: &S,
        t0: f64,
        initial: InitialHistory,
        t_end: f64,
        ws: &mut Workspace,
    ) -> Result<(Trajectory, HistoryBuffer), OdeError> {
        let n = sys.dim();
        if let Some(d) = initial.dim() {
            if d != n {
                return Err(OdeError::DimensionMismatch {
                    expected: n,
                    got: d,
                });
            }
        }
        // Deliberate negation: also rejects NaN endpoints.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t_end > t0) {
            return Err(OdeError::EmptySpan { t0, t_end });
        }

        let span = t_end - t0;
        let n_steps = (span / self.h).ceil().max(1.0) as usize;

        let (stage, drive) = ws.split();
        let [k2, k3, k4, ytmp] = stage.slices::<4>(n);
        let [mut y, mut y_new, mut k1, mut f_new] = drive.slices::<4>(n);

        for (i, yi) in y.iter_mut().enumerate() {
            *yi = initial.sample(t0, i);
        }

        // Bootstrap: f0 uses the (pre-t0) history only.
        let boot = BootstrapHistory {
            initial: &initial,
            t0,
            y0: &*y,
        };
        sys.eval(t0, y, &boot, k1);
        check_finite(t0, k1)?;

        let mut buffer = HistoryBuffer::new(t0, y, k1, initial);
        buffer.reserve(n_steps);

        let mut traj = Trajectory::with_capacity(n, n_steps / self.record_every + 2);
        traj.push(t0, y)?;

        let mut t = t0;

        for step_idx in 1..=n_steps {
            let t_target = if step_idx == n_steps {
                t_end
            } else {
                t0 + span * (step_idx as f64 / n_steps as f64)
            };
            let h = t_target - t;

            // k1 = f(t, y) is carried over from the previous step's f_new
            // (both evaluate the RHS at the newest knot).
            for i in 0..n {
                ytmp[i] = y[i] + 0.5 * h * k1[i];
            }
            sys.eval(t + 0.5 * h, ytmp, &buffer, k2);
            for i in 0..n {
                ytmp[i] = y[i] + 0.5 * h * k2[i];
            }
            sys.eval(t + 0.5 * h, ytmp, &buffer, k3);
            for i in 0..n {
                ytmp[i] = y[i] + h * k3[i];
            }
            sys.eval(t + h, ytmp, &buffer, k4);
            for i in 0..n {
                y_new[i] = y[i] + (h / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
            check_finite(t, y_new)?;

            t = t_target;
            // Knot derivative for the Hermite interpolant.
            sys.eval(t, y_new, &buffer, f_new);
            check_finite(t, f_new)?;
            buffer.push(t, y_new, f_new);

            std::mem::swap(&mut y, &mut y_new);
            std::mem::swap(&mut k1, &mut f_new);

            if step_idx % self.record_every == 0 || step_idx == n_steps {
                traj.push_trusted(t, y);
            }
        }

        // 4 evals per step (k2, k3, k4, f_new) plus the initial k1.
        crate::obs::flush_integration(n_steps as u64, 0, 4 * n_steps as u64 + 1, 0);
        Ok((traj, buffer))
    }

    /// Integrate without recording a trajectory and with the history
    /// buffer pruned to a sliding window, streaming every step to `obs` —
    /// the O(N · window/h)-memory fast path for long-horizon delay runs.
    ///
    /// `history_window` must be at least the largest delay the system
    /// ever looks back (`τ_max`); lookups reach `t − τ_max` while the
    /// buffer retains `[t − history_window, t]` (plus one bracketing
    /// knot). Too small a window is caught by a debug assertion and
    /// silently clamps to the oldest retained knot in release builds.
    ///
    /// The step arithmetic is identical to [`DdeRk4::integrate_with`], so
    /// states are bitwise identical to that path whenever the window
    /// covers every lookup (asserted by the property suite).
    #[allow(clippy::too_many_arguments)]
    pub fn integrate_observed<S: DdeSystem + ?Sized, O: StepObserver>(
        &self,
        sys: &S,
        t0: f64,
        initial: InitialHistory,
        t_end: f64,
        history_window: f64,
        ws: &mut Workspace,
        obs: &mut O,
    ) -> Result<ObservedSummary, OdeError> {
        let n = sys.dim();
        if let Some(d) = initial.dim() {
            if d != n {
                return Err(OdeError::DimensionMismatch {
                    expected: n,
                    got: d,
                });
            }
        }
        if !(history_window.is_finite() && history_window >= 0.0) {
            return Err(OdeError::InvalidParameter {
                name: "history_window",
                value: history_window,
            });
        }
        // Deliberate negation: also rejects NaN endpoints.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t_end > t0) {
            return Err(OdeError::EmptySpan { t0, t_end });
        }

        let span = t_end - t0;
        let n_steps = (span / self.h).ceil().max(1.0) as usize;

        let (stage, drive) = ws.split();
        let [k2, k3, k4, ytmp] = stage.slices::<4>(n);
        let [mut y, mut y_new, mut k1, mut f_new] = drive.slices::<4>(n);

        for (i, yi) in y.iter_mut().enumerate() {
            *yi = initial.sample(t0, i);
        }

        let boot = BootstrapHistory {
            initial: &initial,
            t0,
            y0: &*y,
        };
        sys.eval(t0, y, &boot, k1);
        check_finite(t0, k1)?;
        let mut n_eval = 1;

        let mut buffer = HistoryBuffer::new(t0, y, k1, initial);
        // Reserve the window's worth of knots, not the whole run's.
        buffer.reserve(((history_window / self.h).ceil() as usize + 66).min(n_steps + 1));

        let mut t = t0;
        obs.begin(t0, y);

        for step_idx in 1..=n_steps {
            let t_target = if step_idx == n_steps {
                t_end
            } else {
                t0 + span * (step_idx as f64 / n_steps as f64)
            };
            let h = t_target - t;

            // k1 = f(t, y) carried from the previous step's f_new.
            for i in 0..n {
                ytmp[i] = y[i] + 0.5 * h * k1[i];
            }
            sys.eval(t + 0.5 * h, ytmp, &buffer, k2);
            for i in 0..n {
                ytmp[i] = y[i] + 0.5 * h * k2[i];
            }
            sys.eval(t + 0.5 * h, ytmp, &buffer, k3);
            for i in 0..n {
                ytmp[i] = y[i] + h * k3[i];
            }
            sys.eval(t + h, ytmp, &buffer, k4);
            for i in 0..n {
                y_new[i] = y[i] + (h / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
            check_finite(t, y_new)?;

            t = t_target;
            sys.eval(t, y_new, &buffer, f_new);
            n_eval += 4; // k2, k3, k4, f_new (k1 is carried over)
            check_finite(t, f_new)?;
            buffer.push(t, y_new, f_new);
            // All future lookups reach back at most `history_window` from
            // the current front; older knots can go.
            buffer.prune_before(t - history_window);

            std::mem::swap(&mut y, &mut y_new);
            std::mem::swap(&mut k1, &mut f_new);
            obs.observe_step(t, y);
        }
        obs.finish(t, y);

        // begin + every step + finish observer callbacks.
        crate::obs::flush_integration(n_steps as u64, 0, n_eval as u64, n_steps as u64 + 2);
        Ok(ObservedSummary {
            t_end: t,
            n_steps,
            n_eval,
            y_end: y.to_vec(),
        })
    }
}

/// History view available before the first step: initial history for
/// `t < t0`, the initial state at `t ≥ t0` (constant extrapolation).
struct BootstrapHistory<'a> {
    initial: &'a InitialHistory,
    t0: f64,
    y0: &'a [f64],
}

impl PhaseHistory for BootstrapHistory<'_> {
    fn sample(&self, t: f64, i: usize) -> f64 {
        if t < self.t0 {
            self.initial.sample(t, i)
        } else {
            self.y0[i]
        }
    }
}

fn check_finite(t: f64, v: &[f64]) -> Result<(), OdeError> {
    if let Some(bad) = v.iter().position(|x| !x.is_finite()) {
        return Err(OdeError::NonFiniteDerivative { t, component: bad });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ẏ(t) = −y(t − 1), constant history y ≡ 1.
    ///
    /// Piecewise-analytic solution:
    /// * t ∈ [0, 1]: y = 1 − t
    /// * t ∈ [1, 2]: y = t²/2 − 2t + 3/2
    struct LagDecay;

    impl DdeSystem for LagDecay {
        fn dim(&self) -> usize {
            1
        }
        fn eval(&self, t: f64, _y: &[f64], hist: &dyn PhaseHistory, dydt: &mut [f64]) {
            dydt[0] = -hist.sample(t - 1.0, 0);
        }
    }

    #[test]
    fn lag_decay_matches_method_of_steps_analytic() {
        let solver = DdeRk4::new(0.01).unwrap();
        let (traj, _) = solver
            .integrate(&LagDecay, 0.0, InitialHistory::Constant(vec![1.0]), 2.0)
            .unwrap();
        for (t, s) in traj.iter() {
            let exact = if t <= 1.0 {
                1.0 - t
            } else {
                0.5 * t * t - 2.0 * t + 1.5
            };
            assert!(
                (s[0] - exact).abs() < 1e-8,
                "t = {t}: got {}, want {exact}",
                s[0]
            );
        }
    }

    /// Zero-delay DDE must agree with the plain ODE solution.
    struct ZeroDelayDecay;

    impl DdeSystem for ZeroDelayDecay {
        fn dim(&self) -> usize {
            1
        }
        fn eval(&self, t: f64, _y: &[f64], hist: &dyn PhaseHistory, dydt: &mut [f64]) {
            dydt[0] = -hist.sample(t, 0);
        }
    }

    #[test]
    fn zero_delay_reduces_to_ode() {
        let solver = DdeRk4::new(0.01).unwrap();
        let (traj, _) = solver
            .integrate(
                &ZeroDelayDecay,
                0.0,
                InitialHistory::Constant(vec![1.0]),
                3.0,
            )
            .unwrap();
        let exact = (-3.0f64).exp();
        // Extrapolated self-lookup costs some accuracy vs pure RK4 but must
        // converge to the right solution.
        assert!((traj.last().unwrap()[0] - exact).abs() < 1e-4);
    }

    #[test]
    fn zero_delay_converges_under_refinement() {
        let err_for = |h: f64| {
            let solver = DdeRk4::new(h).unwrap();
            let (traj, _) = solver
                .integrate(
                    &ZeroDelayDecay,
                    0.0,
                    InitialHistory::Constant(vec![1.0]),
                    1.0,
                )
                .unwrap();
            (traj.last().unwrap()[0] - (-1.0f64).exp()).abs()
        };
        let e1 = err_for(0.05);
        let e2 = err_for(0.025);
        assert!(e2 < e1 / 1.8, "refinement must reduce error: {e1} vs {e2}");
    }

    #[test]
    fn history_buffer_interpolation_is_exact_for_cubics() {
        // y(t) = t³ with derivative 3t²; Hermite reproduces cubics exactly.
        let y = |t: f64| t * t * t;
        let f = |t: f64| 3.0 * t * t;
        let mut buf = HistoryBuffer::new(
            0.0,
            &[y(0.0)],
            &[f(0.0)],
            InitialHistory::Constant(vec![0.0]),
        );
        buf.push(1.0, &[y(1.0)], &[f(1.0)]);
        buf.push(2.5, &[y(2.5)], &[f(2.5)]);
        for &t in &[0.25, 0.5, 0.99, 1.0, 1.7, 2.49] {
            assert!((buf.sample(t, 0) - y(t)).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn history_buffer_initial_and_extrapolation() {
        let buf = HistoryBuffer::new(
            0.0,
            &[5.0],
            &[2.0],
            InitialHistory::Func(Box::new(|t, _| 10.0 * t)),
        );
        // Before t0: the initial history function.
        assert_eq!(buf.sample(-2.0, 0), -20.0);
        // At t0: the first knot.
        assert_eq!(buf.sample(0.0, 0), 5.0);
        // After the newest knot: linear extrapolation with slope f = 2.
        assert!((buf.sample(0.5, 0) - 6.0).abs() < 1e-12);
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn sample_run_is_bitwise_sample_on_every_branch() {
        // A 6-component buffer with irregular knots; probe times hit every
        // branch of `sample`: initial history, the t0 knot, an exact
        // interior knot, Hermite interior points, and extrapolation.
        let dim = 6;
        let state =
            |t: f64| -> Vec<f64> { (0..dim).map(|i| (t + i as f64 * 0.7).sin() * 2.0).collect() };
        let deriv = |t: f64| -> Vec<f64> { (0..dim).map(|i| (t * 1.3 - i as f64).cos()).collect() };
        let mut buf = HistoryBuffer::new(
            0.0,
            &state(0.0),
            &deriv(0.0),
            InitialHistory::Func(Box::new(|t, i| t * 0.5 - i as f64)),
        );
        for &t in &[0.31, 0.9, 1.47, 2.0] {
            buf.push(t, &state(t), &deriv(t));
        }
        for &t in &[-1.2, 0.0, 0.17, 0.31, 0.5, 1.2, 1.99, 2.0, 2.6] {
            for base in 0..dim {
                for len in 1..=dim - base {
                    let mut run = vec![0.0; len];
                    buf.sample_run(t, base, &mut run);
                    for (q, &got) in run.iter().enumerate() {
                        let want = buf.sample(t, base + q);
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "t = {t}, base = {base}, q = {q}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn constant_history_dimension_checked() {
        let solver = DdeRk4::new(0.1).unwrap();
        let res = solver.integrate(
            &LagDecay,
            0.0,
            InitialHistory::Constant(vec![1.0, 2.0]),
            1.0,
        );
        assert!(matches!(res, Err(OdeError::DimensionMismatch { .. })));
    }

    #[test]
    fn empty_span_rejected() {
        let solver = DdeRk4::new(0.1).unwrap();
        let res = solver.integrate(&LagDecay, 1.0, InitialHistory::Constant(vec![1.0]), 1.0);
        assert!(matches!(res, Err(OdeError::EmptySpan { .. })));
    }

    #[test]
    fn record_every_keeps_final_sample() {
        let solver = DdeRk4::new(0.1).unwrap().record_every(7);
        let (traj, _) = solver
            .integrate(&LagDecay, 0.0, InitialHistory::Constant(vec![1.0]), 1.0)
            .unwrap();
        assert!((traj.times().last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prune_drops_old_knots_and_keeps_a_bracket() {
        let mut buf = HistoryBuffer::new(0.0, &[0.0], &[1.0], InitialHistory::Constant(vec![0.0]));
        // y(t) = t with ẏ = 1: Hermite reproduces it exactly everywhere.
        for k in 1..=300 {
            let t = k as f64 * 0.1;
            buf.push(t, &[t], &[1.0]);
        }
        assert_eq!(buf.t_oldest(), 0.0);
        buf.prune_before(20.0);
        // The batched drain fired (well past the 64-knot hysteresis):
        // old knots are gone, one bracketing knot at or before the
        // horizon survives.
        assert!(buf.t_oldest() > 0.0);
        assert!(buf.t_oldest() <= 20.0);
        assert!(buf.len() < 301);
        // Samples inside the retained window are untouched.
        for &t in &[20.0, 20.05, 25.3, 29.99] {
            assert!((buf.sample(t, 0) - t).abs() < 1e-12, "t = {t}");
        }
        // Before t0 the initial history still answers (knot 0 is gone).
        assert_eq!(buf.sample(-1.0, 0), 0.0);
        // Pruning below the hysteresis threshold is a no-op.
        let len = buf.len();
        buf.prune_before(20.5);
        assert_eq!(buf.len(), len);
    }

    #[test]
    fn buffer_usable_for_posthoc_sampling() {
        let solver = DdeRk4::new(0.05).unwrap();
        let (_, buf) = solver
            .integrate(&LagDecay, 0.0, InitialHistory::Constant(vec![1.0]), 2.0)
            .unwrap();
        // Off-grid sample in the first analytic piece.
        let t = 0.333;
        assert!((buf.sample(t, 0) - (1.0 - t)).abs() < 1e-8);
    }
}
