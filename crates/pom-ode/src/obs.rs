//! Solver metrics, flushed once per integration.
//!
//! The step loops are the hottest code in the workspace, so they are
//! never instrumented directly: each integration entry point counts
//! locally (or reuses the stats it already tracks) and calls
//! [`flush_integration`] once at the end — one `enabled()` check and a
//! handful of atomic adds per whole integration, nothing per step.

use std::sync::{Arc, OnceLock};

use pom_obs::Counter;

struct OdeMetrics {
    integrations: Arc<Counter>,
    steps: Arc<Counter>,
    steps_rejected: Arc<Counter>,
    rhs_evals: Arc<Counter>,
    observer_callbacks: Arc<Counter>,
}

fn metrics() -> &'static OdeMetrics {
    static M: OnceLock<OdeMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = pom_obs::registry();
        OdeMetrics {
            integrations: r.counter(
                "pom_ode_integrations_total",
                "Completed integrations (any solver, any entry point).",
            ),
            steps: r.counter("pom_ode_steps_total", "Accepted integration steps."),
            steps_rejected: r.counter(
                "pom_ode_steps_rejected_total",
                "Steps rejected by adaptive error control.",
            ),
            rhs_evals: r.counter(
                "pom_ode_rhs_evals_total",
                "Right-hand-side evaluations across all solvers.",
            ),
            observer_callbacks: r.counter(
                "pom_ode_observer_callbacks_total",
                "StepObserver callbacks delivered by integrate_observed.",
            ),
        }
    })
}

/// Record one finished integration's totals; no-op when instrumentation
/// is off.
pub(crate) fn flush_integration(steps: u64, rejected: u64, rhs_evals: u64, observer_calls: u64) {
    if !pom_obs::enabled() {
        return;
    }
    let m = metrics();
    m.integrations.inc();
    m.steps.add(steps);
    m.steps_rejected.add(rejected);
    m.rhs_evals.add(rhs_evals);
    m.observer_callbacks.add(observer_calls);
}
