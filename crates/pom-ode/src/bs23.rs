//! Bogacki–Shampine 3(2) adaptive integrator (MATLAB's `ode23`).
//!
//! The cheaper sibling of [`crate::dopri5::Dopri5`]: three fresh RHS
//! evaluations per step (FSAL) instead of six, an embedded 2nd-order
//! error estimate and an elementary I-controller. The higher-order
//! Dopri5 usually wins on *total* evaluations for smooth problems (its
//! steps are much larger), so this solver earns its keep on short spans,
//! very loose tolerances, and as an independent cross-check; the solver
//! bench quantifies the trade-off.

use crate::error::OdeError;
use crate::observe::{ObservedSummary, StepObserver};
use crate::trajectory::Trajectory;
use crate::workspace::Workspace;
use crate::OdeSystem;

// Butcher tableau (Bogacki & Shampine 1989).
const C2: f64 = 0.5;
const C3: f64 = 0.75;
const A21: f64 = 0.5;
const A32: f64 = 0.75;
// 3rd-order weights.
const B1: f64 = 2.0 / 9.0;
const B2: f64 = 1.0 / 3.0;
const B3: f64 = 4.0 / 9.0;
// Error coefficients e_i = b_i − b̂_i (3rd minus embedded 2nd order).
const E1: f64 = B1 - 7.0 / 24.0;
const E2: f64 = B2 - 1.0 / 4.0;
const E3: f64 = B3 - 1.0 / 3.0;
const E4: f64 = -1.0 / 8.0;

const SAFETY: f64 = 0.9;
const FAC_MIN: f64 = 0.2;
const FAC_MAX: f64 = 5.0;

/// Adaptive Bogacki–Shampine 3(2) integrator.
///
/// ```
/// use pom_ode::{FnSystem, bs23::Bs23};
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
/// let (traj, _) = Bs23::new().rtol(1e-8).atol(1e-10)
///     .integrate(&sys, 0.0, &[1.0], 3.0).unwrap();
/// assert!((traj.last().unwrap()[0] - (-3.0f64).exp()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Bs23 {
    rtol: f64,
    atol: f64,
    h_max: Option<f64>,
    max_steps: usize,
}

impl Default for Bs23 {
    fn default() -> Self {
        Self::new()
    }
}

/// Work counters for a [`Bs23`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bs23Stats {
    /// RHS evaluations.
    pub n_eval: usize,
    /// Accepted steps.
    pub n_accepted: usize,
    /// Rejected steps.
    pub n_rejected: usize,
}

impl Bs23 {
    /// Integrator with default tolerances `rtol = atol = 1e-6`.
    pub fn new() -> Self {
        Self {
            rtol: 1e-6,
            atol: 1e-6,
            h_max: None,
            max_steps: 1_000_000,
        }
    }

    /// Relative tolerance.
    pub fn rtol(mut self, rtol: f64) -> Self {
        self.rtol = rtol;
        self
    }

    /// Absolute tolerance.
    pub fn atol(mut self, atol: f64) -> Self {
        self.atol = atol;
        self
    }

    /// Upper bound on the step size.
    pub fn h_max(mut self, h_max: f64) -> Self {
        self.h_max = Some(h_max);
        self
    }

    /// Integrate and record every accepted step into a [`Trajectory`].
    ///
    /// Thin wrapper over [`Bs23::integrate_with`] that allocates a fresh
    /// [`Workspace`] per call.
    pub fn integrate(
        &self,
        sys: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<(Trajectory, Bs23Stats), OdeError> {
        self.integrate_with(sys, t0, y0, t_end, &mut Workspace::new())
    }

    /// Integrate with caller-provided scratch memory and a monomorphized
    /// right-hand side; the step loop is allocation-free (the recorded
    /// trajectory grows amortized). Bitwise identical to
    /// [`Bs23::integrate`] regardless of workspace reuse.
    pub fn integrate_with<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        t_end: f64,
        ws: &mut Workspace,
    ) -> Result<(Trajectory, Bs23Stats), OdeError> {
        for (name, v) in [("rtol", self.rtol), ("atol", self.atol)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(OdeError::InvalidParameter { name, value: v });
            }
        }
        let n = sys.dim();
        if y0.len() != n {
            return Err(OdeError::DimensionMismatch {
                expected: n,
                got: y0.len(),
            });
        }
        // Deliberate negation: also rejects NaN endpoints.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t_end > t0) {
            return Err(OdeError::EmptySpan { t0, t_end });
        }

        let span = t_end - t0;
        let h_max = self.h_max.unwrap_or(span).min(span);
        let mut stats = Bs23Stats::default();
        let mut traj = Trajectory::new(n);
        traj.push(t0, y0)?;

        let (stage, drive) = ws.split();
        let [mut k1, k2, k3, mut k4, y_stage, mut y_new] = stage.slices::<6>(n);
        let [mut y] = drive.slices::<1>(n);

        let mut t = t0;
        y.copy_from_slice(y0);

        sys.eval(t, y, k1);
        stats.n_eval += 1;
        check_finite(t, k1)?;

        // Crude but effective initial step from the first derivative.
        let y_scale = y.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        let f_scale = k1.iter().map(|v| v.abs()).fold(1e-8f64, f64::max);
        let mut h = (0.01 * y_scale / f_scale).min(h_max);

        loop {
            if t >= t_end {
                break;
            }
            if stats.n_accepted + stats.n_rejected >= self.max_steps {
                return Err(OdeError::TooManySteps {
                    t_reached: t,
                    max_steps: self.max_steps,
                });
            }
            if t + 1.01 * h >= t_end {
                h = t_end - t;
            }
            if h <= f64::EPSILON * t.abs().max(1.0) {
                return Err(OdeError::StepSizeUnderflow { t, h });
            }

            for i in 0..n {
                y_stage[i] = y[i] + h * A21 * k1[i];
            }
            sys.eval(t + C2 * h, y_stage, k2);
            for i in 0..n {
                y_stage[i] = y[i] + h * A32 * k2[i];
            }
            sys.eval(t + C3 * h, y_stage, k3);
            for i in 0..n {
                y_new[i] = y[i] + h * (B1 * k1[i] + B2 * k2[i] + B3 * k3[i]);
            }
            sys.eval(t + h, y_new, k4);
            stats.n_eval += 3;
            check_finite(t, k4)?;

            let mut err_sq = 0.0;
            for i in 0..n {
                let e = h * (E1 * k1[i] + E2 * k2[i] + E3 * k3[i] + E4 * k4[i]);
                let sc = self.atol + self.rtol * y[i].abs().max(y_new[i].abs());
                err_sq += (e / sc) * (e / sc);
            }
            let err = (err_sq / n as f64).sqrt();

            if err <= 1.0 {
                t += h;
                std::mem::swap(&mut y, &mut y_new);
                std::mem::swap(&mut k1, &mut k4); // FSAL: swap the slice handles
                traj.push_trusted(t, y);
                stats.n_accepted += 1;
            } else {
                stats.n_rejected += 1;
            }
            // I-controller on the 3rd-order error (exponent 1/3).
            let fac = (SAFETY * err.powf(-1.0 / 3.0)).clamp(FAC_MIN, FAC_MAX);
            h = (h * fac).min(h_max);
        }
        crate::obs::flush_integration(
            stats.n_accepted as u64,
            stats.n_rejected as u64,
            stats.n_eval as u64,
            0,
        );
        Ok((traj, stats))
    }

    /// Integrate without recording, streaming every accepted step to
    /// `obs` — the O(N)-memory twin of [`Bs23::integrate_with`].
    ///
    /// Runs the identical step-control arithmetic (same stages, error
    /// norm and I-controller), so the accepted step sequence and the
    /// final state are bitwise identical to the recording path; only the
    /// trajectory storage is gone. Rejected attempts are invisible to the
    /// observer.
    pub fn integrate_observed<S: OdeSystem + ?Sized, O: StepObserver>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        t_end: f64,
        ws: &mut Workspace,
        obs: &mut O,
    ) -> Result<(ObservedSummary, Bs23Stats), OdeError> {
        for (name, v) in [("rtol", self.rtol), ("atol", self.atol)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(OdeError::InvalidParameter { name, value: v });
            }
        }
        let n = sys.dim();
        if y0.len() != n {
            return Err(OdeError::DimensionMismatch {
                expected: n,
                got: y0.len(),
            });
        }
        // Deliberate negation: also rejects NaN endpoints.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t_end > t0) {
            return Err(OdeError::EmptySpan { t0, t_end });
        }

        let span = t_end - t0;
        let h_max = self.h_max.unwrap_or(span).min(span);
        let mut stats = Bs23Stats::default();

        let (stage, drive) = ws.split();
        let [mut k1, k2, k3, mut k4, y_stage, mut y_new] = stage.slices::<6>(n);
        let [mut y] = drive.slices::<1>(n);

        let mut t = t0;
        y.copy_from_slice(y0);

        sys.eval(t, y, k1);
        stats.n_eval += 1;
        check_finite(t, k1)?;

        // Crude but effective initial step from the first derivative.
        let y_scale = y.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        let f_scale = k1.iter().map(|v| v.abs()).fold(1e-8f64, f64::max);
        let mut h = (0.01 * y_scale / f_scale).min(h_max);

        obs.begin(t0, y);
        loop {
            if t >= t_end {
                break;
            }
            if stats.n_accepted + stats.n_rejected >= self.max_steps {
                return Err(OdeError::TooManySteps {
                    t_reached: t,
                    max_steps: self.max_steps,
                });
            }
            if t + 1.01 * h >= t_end {
                h = t_end - t;
            }
            if h <= f64::EPSILON * t.abs().max(1.0) {
                return Err(OdeError::StepSizeUnderflow { t, h });
            }

            for i in 0..n {
                y_stage[i] = y[i] + h * A21 * k1[i];
            }
            sys.eval(t + C2 * h, y_stage, k2);
            for i in 0..n {
                y_stage[i] = y[i] + h * A32 * k2[i];
            }
            sys.eval(t + C3 * h, y_stage, k3);
            for i in 0..n {
                y_new[i] = y[i] + h * (B1 * k1[i] + B2 * k2[i] + B3 * k3[i]);
            }
            sys.eval(t + h, y_new, k4);
            stats.n_eval += 3;
            check_finite(t, k4)?;

            let mut err_sq = 0.0;
            for i in 0..n {
                let e = h * (E1 * k1[i] + E2 * k2[i] + E3 * k3[i] + E4 * k4[i]);
                let sc = self.atol + self.rtol * y[i].abs().max(y_new[i].abs());
                err_sq += (e / sc) * (e / sc);
            }
            let err = (err_sq / n as f64).sqrt();

            if err <= 1.0 {
                t += h;
                std::mem::swap(&mut y, &mut y_new);
                std::mem::swap(&mut k1, &mut k4); // FSAL: swap the slice handles
                stats.n_accepted += 1;
                obs.observe_step(t, y);
            } else {
                stats.n_rejected += 1;
            }
            // I-controller on the 3rd-order error (exponent 1/3).
            let fac = (SAFETY * err.powf(-1.0 / 3.0)).clamp(FAC_MIN, FAC_MAX);
            h = (h * fac).min(h_max);
        }
        obs.finish(t, y);
        // begin + every accepted step + finish observer callbacks.
        crate::obs::flush_integration(
            stats.n_accepted as u64,
            stats.n_rejected as u64,
            stats.n_eval as u64,
            stats.n_accepted as u64 + 2,
        );
        Ok((
            ObservedSummary {
                t_end: t,
                n_steps: stats.n_accepted,
                n_eval: stats.n_eval,
                y_end: y.to_vec(),
            },
            stats,
        ))
    }
}

fn check_finite(t: f64, v: &[f64]) -> Result<(), OdeError> {
    if let Some(bad) = v.iter().position(|x| !x.is_finite()) {
        return Err(OdeError::NonFiniteDerivative { t, component: bad });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;
    use std::f64::consts::TAU;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y, d| d[0] = -y[0])
    }

    #[test]
    fn decay_accuracy() {
        let (traj, stats) = Bs23::new()
            .rtol(1e-9)
            .atol(1e-11)
            .integrate(&decay(), 0.0, &[1.0], 5.0)
            .unwrap();
        assert!((traj.last().unwrap()[0] - (-5.0f64).exp()).abs() < 1e-7);
        assert!(stats.n_accepted > 0);
        // FSAL accounting: 3 per attempt + initial eval.
        assert!(stats.n_eval <= 3 * (stats.n_accepted + stats.n_rejected) + 1);
    }

    #[test]
    fn harmonic_period() {
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let (traj, _) = Bs23::new()
            .rtol(1e-8)
            .atol(1e-8)
            .integrate(&sys, 0.0, &[1.0, 0.0], TAU)
            .unwrap();
        let last = traj.last().unwrap();
        assert!((last[0] - 1.0).abs() < 1e-5, "{}", last[0]);
        assert!(last[1].abs() < 1e-5);
    }

    #[test]
    fn third_order_convergence() {
        // Fixed-tolerance runs aren't order tests; instead drive the
        // tolerance down and verify the error follows ~rtol.
        let err_at = |tol: f64| {
            let (traj, _) = Bs23::new()
                .rtol(tol)
                .atol(tol * 1e-2)
                .integrate(&decay(), 0.0, &[1.0], 2.0)
                .unwrap();
            (traj.last().unwrap()[0] - (-2.0f64).exp()).abs()
        };
        let e4 = err_at(1e-4);
        let e8 = err_at(1e-8);
        assert!(e8 < e4 / 100.0, "e4 {e4:e} vs e8 {e8:e}");
    }

    #[test]
    fn per_step_cost_is_half_of_dopri5() {
        // The trade-off this solver offers: 3 fresh evaluations per step
        // vs Dopri5's 6 — the higher-order method takes (much) larger
        // steps, so totals usually favor Dopri5 on smooth problems, but
        // the per-step cost ratio is the fixed quantity worth pinning.
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let (_, bs) = Bs23::new()
            .rtol(1e-3)
            .atol(1e-5)
            .integrate(&sys, 0.0, &[1.0, 0.0], 50.0)
            .unwrap();
        let (_, dp) = crate::Dopri5::new()
            .rtol(1e-3)
            .atol(1e-5)
            .integrate_with_stats(&sys, 0.0, &[1.0, 0.0], 50.0)
            .unwrap();
        let bs_per_step = bs.n_eval as f64 / (bs.n_accepted + bs.n_rejected) as f64;
        let dp_per_step = dp.n_eval as f64 / (dp.n_accepted + dp.n_rejected) as f64;
        assert!(bs_per_step < 3.5, "bs23 {bs_per_step} evals/step");
        assert!(dp_per_step > 5.5, "dopri5 {dp_per_step} evals/step");
        // And the low-order method needs more steps at the same tolerance.
        assert!(bs.n_accepted > dp.n_accepted);
    }

    #[test]
    fn input_validation() {
        assert!(Bs23::new()
            .rtol(0.0)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .is_err());
        assert!(Bs23::new()
            .integrate(&decay(), 0.0, &[1.0, 2.0], 1.0)
            .is_err());
        assert!(Bs23::new().integrate(&decay(), 1.0, &[1.0], 1.0).is_err());
    }

    #[test]
    fn blowup_detected() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = y[0] * y[0]);
        assert!(Bs23::new().integrate(&sys, 0.0, &[1.0], 2.0).is_err());
    }
}
