//! Streaming step observers: online observables without a stored trajectory.
//!
//! Every solver in this crate can *record* its solution into a
//! [`crate::Trajectory`] — but a recorded run of `N` oscillators over `S`
//! steps owns `S × N` doubles, which makes long-horizon large-`N` runs
//! (the idle-wave and desynchronization measurements at `n = 65536`)
//! memory-bound on storage the analysis layer immediately reduces to a
//! handful of scalars. A [`StepObserver`] inverts that: the solver hands
//! each accepted step to the observer *as it happens*, the observer folds
//! it into O(N) (usually O(1)) state, and nothing per-step is kept.
//!
//! The observed entry points (`integrate_observed` on
//! [`crate::FixedStepSolver`], [`crate::Dopri5`], [`crate::Bs23`] and
//! [`crate::DdeRk4`]) are separate functions from the recording paths: the
//! classic `integrate`/`integrate_with` loops are untouched, so the
//! no-observer paths remain bitwise identical to previous releases (the
//! property suite asserts the observed paths against them). Observers are
//! monomorphized (`O: StepObserver`), so a [`NoObserver`] compiles to the
//! bare step loop.
//!
//! ## Call protocol
//!
//! For one integration the solver calls, in order:
//!
//! 1. [`StepObserver::begin`] once, with the initial state `(t0, y0)`;
//! 2. [`StepObserver::observe_step`] after every *accepted* step, with the
//!    post-step time and state (fixed-step solvers: every step; adaptive
//!    solvers: every accepted step — rejected attempts are invisible);
//! 3. [`StepObserver::finish`] once, with the final state at `t_end`. The
//!    final state has always also been delivered through `observe_step`
//!    (it is an accepted step), so `finish` marks completion rather than
//!    delivering new data.
//!
//! Decimation composes via [`ObserveEvery`], which forwards every `k`-th
//! step plus the final one under the same no-duplicate convention as the
//! solvers' `record_every` trajectory knob.

/// Receives accepted solver steps as they happen.
///
/// State lives in the observer (`&mut self`); implementations should keep
/// it O(N) or smaller — storing every sample would defeat the purpose
/// (use the recording `integrate` paths for that).
pub trait StepObserver {
    /// Called once before the first step with the initial state.
    fn begin(&mut self, _t0: f64, _y0: &[f64]) {}

    /// Called after every accepted step with the new time and state.
    fn observe_step(&mut self, t: f64, y: &[f64]);

    /// Called once after the last step. `(t_end, y_end)` repeats the final
    /// `observe_step` sample; override to flush/seal derived state.
    fn finish(&mut self, _t_end: f64, _y_end: &[f64]) {}

    /// `false` promises the observer ignores every callback, letting
    /// adapters skip work done purely to feed it (the ensemble fan-out
    /// de-interleaves a state copy per replica per step — wasted on
    /// [`NoObserver`]). Must be constant for the observer's lifetime.
    fn wants_samples(&self) -> bool {
        true
    }
}

/// The do-nothing observer: monomorphizes the observed step loops down to
/// the bare integration.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl StepObserver for NoObserver {
    #[inline(always)]
    fn observe_step(&mut self, _t: f64, _y: &[f64]) {}
    fn wants_samples(&self) -> bool {
        false
    }
}

impl<O: StepObserver + ?Sized> StepObserver for &mut O {
    fn begin(&mut self, t0: f64, y0: &[f64]) {
        (**self).begin(t0, y0)
    }
    fn observe_step(&mut self, t: f64, y: &[f64]) {
        (**self).observe_step(t, y)
    }
    fn wants_samples(&self) -> bool {
        (**self).wants_samples()
    }
    fn finish(&mut self, t_end: f64, y_end: &[f64]) {
        (**self).finish(t_end, y_end)
    }
}

/// Decimating adapter: forwards `begin`, every `k`-th accepted step, and
/// the final state.
///
/// Follows the solvers' `record_every` convention exactly: steps
/// `k, 2k, 3k, …` are forwarded as they arrive, and the final step is
/// forwarded from `finish` *only if* it was not already forwarded (so a
/// span of `n` steps with `n % k == 0` delivers no duplicate final
/// sample).
#[derive(Debug)]
pub struct ObserveEvery<O> {
    inner: O,
    every: usize,
    seen: usize,
    last_forwarded: bool,
}

impl<O: StepObserver> ObserveEvery<O> {
    /// Forward every `k`-th step to `inner` (`k = 0` is treated as 1).
    pub fn new(inner: O, k: usize) -> Self {
        Self {
            inner,
            every: k.max(1),
            seen: 0,
            last_forwarded: false,
        }
    }

    /// Recover the wrapped observer.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Access the wrapped observer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Number of accepted steps seen (forwarded or not).
    pub fn steps_seen(&self) -> usize {
        self.seen
    }
}

impl<O: StepObserver> StepObserver for ObserveEvery<O> {
    fn begin(&mut self, t0: f64, y0: &[f64]) {
        self.seen = 0;
        self.last_forwarded = false;
        self.inner.begin(t0, y0);
    }

    fn observe_step(&mut self, t: f64, y: &[f64]) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            self.inner.observe_step(t, y);
            self.last_forwarded = true;
        } else {
            self.last_forwarded = false;
        }
    }

    fn finish(&mut self, t_end: f64, y_end: &[f64]) {
        if !self.last_forwarded && self.seen > 0 {
            self.inner.observe_step(t_end, y_end);
            self.last_forwarded = true;
        }
        self.inner.finish(t_end, y_end);
    }
}

/// Test/debug observer that *does* store every forwarded sample — the
/// ground truth the decimation and identity tests compare against.
#[derive(Debug, Default, Clone)]
pub struct CollectObserver {
    /// Forwarded `(t, y)` samples, in arrival order (excludes `begin`).
    pub samples: Vec<(f64, Vec<f64>)>,
    /// The `begin` sample, if seen.
    pub initial: Option<(f64, Vec<f64>)>,
    /// Whether `finish` has been called.
    pub finished: bool,
}

impl StepObserver for CollectObserver {
    fn begin(&mut self, t0: f64, y0: &[f64]) {
        self.initial = Some((t0, y0.to_vec()));
    }
    fn observe_step(&mut self, t: f64, y: &[f64]) {
        self.samples.push((t, y.to_vec()));
    }
    fn finish(&mut self, _t_end: f64, _y_end: &[f64]) {
        self.finished = true;
    }
}

/// Outcome of an observed (non-recording) integration: the final state and
/// step counters, O(N) total — the only per-run memory the observed fast
/// paths allocate.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedSummary {
    /// Time actually reached (== requested `t_end` on success).
    pub t_end: f64,
    /// Accepted steps taken.
    pub n_steps: usize,
    /// Right-hand-side evaluations performed.
    pub n_eval: usize,
    /// Final state `y(t_end)`.
    pub y_end: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(obs: &mut impl StepObserver, n_steps: usize) {
        obs.begin(0.0, &[0.0]);
        for k in 1..=n_steps {
            obs.observe_step(k as f64, &[k as f64]);
        }
        obs.finish(n_steps as f64, &[n_steps as f64]);
    }

    #[test]
    fn observe_every_forwards_strided_plus_final() {
        let mut obs = ObserveEvery::new(CollectObserver::default(), 4);
        feed(&mut obs, 10);
        let inner = obs.into_inner();
        let times: Vec<f64> = inner.samples.iter().map(|s| s.0).collect();
        assert_eq!(times, vec![4.0, 8.0, 10.0]);
        assert!(inner.finished);
    }

    #[test]
    fn observe_every_does_not_duplicate_exact_multiple() {
        let mut obs = ObserveEvery::new(CollectObserver::default(), 5);
        feed(&mut obs, 10);
        let times: Vec<f64> = obs.into_inner().samples.iter().map(|s| s.0).collect();
        assert_eq!(times, vec![5.0, 10.0], "10 % 5 == 0: no duplicate final");
    }

    #[test]
    fn observe_every_zero_behaves_as_one() {
        let mut obs = ObserveEvery::new(CollectObserver::default(), 0);
        feed(&mut obs, 3);
        assert_eq!(obs.steps_seen(), 3);
        assert_eq!(obs.inner().samples.len(), 3);
    }

    #[test]
    fn no_observer_is_inert() {
        let mut obs = NoObserver;
        feed(&mut obs, 5); // must simply not panic
    }

    #[test]
    fn mut_ref_forwards() {
        let mut inner = CollectObserver::default();
        feed(&mut &mut inner, 2);
        assert_eq!(inner.samples.len(), 2);
        assert!(inner.finished);
    }
}
