//! Fixed-step explicit Runge–Kutta steppers and their driver.
//!
//! These methods complement the adaptive [`crate::dopri5::Dopri5`]
//! integrator: they are what the ablation benches compare against, they
//! drive the delay-equation solver (where classical adaptive dense output
//! does not directly apply), and their textbook convergence orders give the
//! test suite hard numerical ground truth.

use crate::error::OdeError;
use crate::observe::{ObservedSummary, StepObserver};
use crate::trajectory::Trajectory;
use crate::workspace::{ScratchPool, Workspace};
use crate::OdeSystem;

/// A single-step method advancing `y(t) → y(t + h)`.
///
/// The method is generic over the system (`S: OdeSystem + ?Sized`), so a
/// concrete system monomorphizes the stage loop (no virtual dispatch on
/// the hot path) while `&dyn OdeSystem` still works where type erasure is
/// convenient. Stage buffers come from the caller's [`ScratchPool`]; a
/// step performs no heap allocation.
pub trait Stepper {
    /// Advance the state by one step of size `h`.
    ///
    /// Writes the new state into `y_out` (which must not alias `y`) and
    /// returns the number of RHS evaluations performed. Stage scratch is
    /// borrowed from `scratch`.
    fn step<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        y: &[f64],
        h: f64,
        y_out: &mut [f64],
        scratch: &mut ScratchPool,
    ) -> usize;

    /// Classical convergence order of the method.
    fn order(&self) -> usize;

    /// Short human-readable name.
    fn name(&self) -> &'static str;
}

/// First-order explicit Euler method.
#[derive(Debug, Clone, Copy, Default)]
pub struct Euler;

impl Stepper for Euler {
    fn step<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        y: &[f64],
        h: f64,
        y_out: &mut [f64],
        scratch: &mut ScratchPool,
    ) -> usize {
        let n = y.len();
        let [k] = scratch.slices::<1>(n);
        sys.eval(t, y, k);
        for i in 0..n {
            y_out[i] = y[i] + h * k[i];
        }
        1
    }

    fn order(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "euler"
    }
}

/// Second-order Heun (explicit trapezoidal) method.
#[derive(Debug, Clone, Copy, Default)]
pub struct Heun;

impl Stepper for Heun {
    fn step<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        y: &[f64],
        h: f64,
        y_out: &mut [f64],
        scratch: &mut ScratchPool,
    ) -> usize {
        let n = y.len();
        let [k1, k2, ytmp] = scratch.slices::<3>(n);
        sys.eval(t, y, k1);
        for i in 0..n {
            ytmp[i] = y[i] + h * k1[i];
        }
        sys.eval(t + h, ytmp, k2);
        for i in 0..n {
            y_out[i] = y[i] + 0.5 * h * (k1[i] + k2[i]);
        }
        2
    }

    fn order(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "heun"
    }
}

/// Classical fourth-order Runge–Kutta method.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rk4;

impl Stepper for Rk4 {
    fn step<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        y: &[f64],
        h: f64,
        y_out: &mut [f64],
        scratch: &mut ScratchPool,
    ) -> usize {
        let n = y.len();
        let [k1, k2, k3, k4, ytmp] = scratch.slices::<5>(n);

        sys.eval(t, y, k1);
        for i in 0..n {
            ytmp[i] = y[i] + 0.5 * h * k1[i];
        }
        sys.eval(t + 0.5 * h, ytmp, k2);
        for i in 0..n {
            ytmp[i] = y[i] + 0.5 * h * k2[i];
        }
        sys.eval(t + 0.5 * h, ytmp, k3);
        for i in 0..n {
            ytmp[i] = y[i] + h * k3[i];
        }
        sys.eval(t + h, ytmp, k4);
        for i in 0..n {
            y_out[i] = y[i] + (h / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        4
    }

    fn order(&self) -> usize {
        4
    }

    fn name(&self) -> &'static str {
        "rk4"
    }
}

/// Drives a [`Stepper`] across a time span with a constant step size,
/// recording every `record_every`-th sample into a [`Trajectory`].
#[derive(Debug, Clone)]
pub struct FixedStepSolver<S> {
    stepper: S,
    h: f64,
    record_every: usize,
}

impl<S: Stepper> FixedStepSolver<S> {
    /// Create a solver with step size `h` (must be positive and finite).
    pub fn new(stepper: S, h: f64) -> Result<Self, OdeError> {
        if !(h.is_finite() && h > 0.0) {
            return Err(OdeError::InvalidParameter {
                name: "h",
                value: h,
            });
        }
        Ok(Self {
            stepper,
            h,
            record_every: 1,
        })
    }

    /// Record only every `k`-th step into the trajectory (the final state is
    /// always recorded). `k = 0` is treated as 1.
    pub fn record_every(mut self, k: usize) -> Self {
        self.record_every = k.max(1);
        self
    }

    /// Step size.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Integrate from `t0` to `t_end` (the last step is shortened to land
    /// exactly on `t_end`). Returns the recorded trajectory, whose first
    /// sample is `(t0, y0)` and last sample is `(t_end, y(t_end))`.
    ///
    /// Thin wrapper over [`FixedStepSolver::integrate_with`] that allocates
    /// a fresh [`Workspace`]; hot loops (sweeps, ensembles) should hold one
    /// workspace and call the `_with` variant directly.
    pub fn integrate(
        &self,
        sys: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<Trajectory, OdeError> {
        self.integrate_with(sys, t0, y0, t_end, &mut Workspace::new())
    }

    /// Integrate with caller-provided scratch memory and a monomorphized
    /// right-hand side — the allocation-free fast path.
    ///
    /// After the workspace warms up (first step at this dimension), the
    /// step loop performs no heap allocation; only the recorded
    /// [`Trajectory`] owns memory, and its capacity is reserved up front.
    /// Results are bitwise identical to [`FixedStepSolver::integrate`]
    /// regardless of workspace reuse.
    pub fn integrate_with<Sys: OdeSystem + ?Sized>(
        &self,
        sys: &Sys,
        t0: f64,
        y0: &[f64],
        t_end: f64,
        ws: &mut Workspace,
    ) -> Result<Trajectory, OdeError> {
        if y0.len() != sys.dim() {
            return Err(OdeError::DimensionMismatch {
                expected: sys.dim(),
                got: y0.len(),
            });
        }
        // Deliberate negation: also rejects NaN endpoints.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t_end > t0) {
            return Err(OdeError::EmptySpan { t0, t_end });
        }

        let n = sys.dim();
        let span = t_end - t0;
        let n_steps = (span / self.h).ceil().max(1.0) as usize;

        let mut traj = Trajectory::with_capacity(n, n_steps / self.record_every + 2);
        traj.push(t0, y0)?;

        let (stage, drive) = ws.split();
        let [mut y, mut y_next] = drive.slices::<2>(n);
        y.copy_from_slice(y0);
        let mut t = t0;
        let mut n_eval = 0usize;

        for step_idx in 1..=n_steps {
            // Recompute the target time from the index so that rounding
            // error does not accumulate across millions of steps.
            let t_target = if step_idx == n_steps {
                t_end
            } else {
                t0 + span * (step_idx as f64 / n_steps as f64)
            };
            let h = t_target - t;
            n_eval += self.stepper.step(sys, t, y, h, y_next, stage);
            std::mem::swap(&mut y, &mut y_next);
            t = t_target;
            if step_idx % self.record_every == 0 || step_idx == n_steps {
                // Non-finite states are detected at record points only:
                // once a component goes NaN/∞ it stays non-finite under
                // the RK update `y' = y + h·Σb_i k_i`, so deferring the
                // scan to the (always recorded) next sample loses no
                // errors and keeps the per-step loop branch-light.
                if let Some(bad) = y.iter().position(|v| !v.is_finite()) {
                    return Err(OdeError::NonFiniteDerivative { t, component: bad });
                }
                traj.push_trusted(t, y);
            }
        }
        crate::obs::flush_integration(n_steps as u64, 0, n_eval as u64, 0);
        Ok(traj)
    }

    /// Integrate without recording a trajectory, streaming every step to
    /// `obs` instead — the O(N)-memory fast path for long-horizon runs.
    ///
    /// The step loop is the same index-recomputed driver as
    /// [`FixedStepSolver::integrate_with`] (same step sequence, same
    /// arithmetic), so the final state is bitwise identical to that
    /// path's last recorded sample; only the per-sample storage is gone.
    /// The observer sees *every* step regardless of
    /// [`FixedStepSolver::record_every`] (decimate with
    /// [`crate::ObserveEvery`]). Non-finite states are detected at every
    /// observed step, since the observer reads the state anyway.
    pub fn integrate_observed<Sys: OdeSystem + ?Sized, O: StepObserver>(
        &self,
        sys: &Sys,
        t0: f64,
        y0: &[f64],
        t_end: f64,
        ws: &mut Workspace,
        obs: &mut O,
    ) -> Result<ObservedSummary, OdeError> {
        if y0.len() != sys.dim() {
            return Err(OdeError::DimensionMismatch {
                expected: sys.dim(),
                got: y0.len(),
            });
        }
        // Deliberate negation: also rejects NaN endpoints.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t_end > t0) {
            return Err(OdeError::EmptySpan { t0, t_end });
        }

        let n = sys.dim();
        let span = t_end - t0;
        let n_steps = (span / self.h).ceil().max(1.0) as usize;

        let (stage, drive) = ws.split();
        let [mut y, mut y_next] = drive.slices::<2>(n);
        y.copy_from_slice(y0);
        let mut t = t0;
        let mut n_eval = 0;

        obs.begin(t0, y);
        for step_idx in 1..=n_steps {
            // Same rounding-stable target-time recomputation as the
            // recording driver: identical step sequence by construction.
            let t_target = if step_idx == n_steps {
                t_end
            } else {
                t0 + span * (step_idx as f64 / n_steps as f64)
            };
            let h = t_target - t;
            n_eval += self.stepper.step(sys, t, y, h, y_next, stage);
            std::mem::swap(&mut y, &mut y_next);
            t = t_target;
            if let Some(bad) = y.iter().position(|v| !v.is_finite()) {
                return Err(OdeError::NonFiniteDerivative { t, component: bad });
            }
            obs.observe_step(t, y);
        }
        obs.finish(t, y);
        // begin + every step + finish = n_steps + 2 observer callbacks.
        crate::obs::flush_integration(n_steps as u64, 0, n_eval as u64, n_steps as u64 + 2);
        Ok(ObservedSummary {
            t_end: t,
            n_steps,
            n_eval,
            y_end: y.to_vec(),
        })
    }

    /// Integrate an ensemble of initial conditions over the same span,
    /// reusing one workspace across all members.
    ///
    /// Returns one trajectory per initial condition, in input order;
    /// each is bitwise identical to the corresponding sequential
    /// [`FixedStepSolver::integrate`] call. The first error aborts the
    /// batch.
    pub fn integrate_many<Sys: OdeSystem + ?Sized>(
        &self,
        sys: &Sys,
        t0: f64,
        inits: &[Vec<f64>],
        t_end: f64,
        ws: &mut Workspace,
    ) -> Result<Vec<Trajectory>, OdeError> {
        inits
            .iter()
            .map(|y0| self.integrate_with(sys, t0, y0, t_end, ws))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    /// ẏ = −y ⇒ y(t) = y₀ e^{−t}.
    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y, d| d[0] = -y[0])
    }

    /// Harmonic oscillator ÿ = −y as a 2-D first-order system.
    fn harmonic() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        })
    }

    fn global_error<S: Stepper>(stepper: S, h: f64) -> f64 {
        let solver = FixedStepSolver::new(stepper, h).unwrap();
        let traj = solver.integrate(&decay(), 0.0, &[1.0], 2.0).unwrap();
        (traj.last().unwrap()[0] - (-2.0f64).exp()).abs()
    }

    /// Measured convergence slope log2(err(h)/err(h/2)) must be close to the
    /// theoretical order.
    fn check_order<S: Stepper + Copy>(stepper: S, expect: f64, tol: f64) {
        let e1 = global_error(stepper, 0.02);
        let e2 = global_error(stepper, 0.01);
        let slope = (e1 / e2).log2();
        assert!(
            (slope - expect).abs() < tol,
            "{}: slope {slope:.3}, expected ≈ {expect}",
            stepper.name()
        );
    }

    #[test]
    fn euler_is_first_order() {
        check_order(Euler, 1.0, 0.15);
    }

    #[test]
    fn heun_is_second_order() {
        check_order(Heun, 2.0, 0.15);
    }

    #[test]
    fn rk4_is_fourth_order() {
        check_order(Rk4, 4.0, 0.2);
    }

    #[test]
    fn rk4_decay_accuracy() {
        let solver = FixedStepSolver::new(Rk4, 0.01).unwrap();
        let traj = solver.integrate(&decay(), 0.0, &[1.0], 5.0).unwrap();
        let exact = (-5.0f64).exp();
        assert!((traj.last().unwrap()[0] - exact).abs() < 1e-9);
    }

    #[test]
    fn rk4_harmonic_phase_and_energy() {
        let solver = FixedStepSolver::new(Rk4, 0.005).unwrap();
        let t_end = 4.0 * std::f64::consts::PI; // two full periods
        let traj = solver
            .integrate(&harmonic(), 0.0, &[1.0, 0.0], t_end)
            .unwrap();
        let last = traj.last().unwrap();
        assert!(
            (last[0] - 1.0).abs() < 1e-8,
            "cos returned to 1, got {}",
            last[0]
        );
        assert!(last[1].abs() < 1e-8);
        // Energy conservation along the whole run.
        for (_, s) in traj.iter() {
            let energy = s[0] * s[0] + s[1] * s[1];
            assert!((energy - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rk4_exact_for_cubic_quadrature() {
        // For ẏ = f(t) (no state dependence) RK4 reduces to Simpson's rule,
        // which integrates cubics exactly.
        let sys = FnSystem::new(1, |t, _y, d| d[0] = 3.0 * t * t - 4.0 * t + 2.0);
        let solver = FixedStepSolver::new(Rk4, 0.25).unwrap();
        let traj = solver.integrate(&sys, 0.0, &[0.0], 2.0).unwrap();
        let exact = 8.0 - 8.0 + 4.0; // t³ − 2t² + 2t at t = 2
        assert!((traj.last().unwrap()[0] - exact).abs() < 1e-12);
    }

    #[test]
    fn last_sample_lands_exactly_on_t_end() {
        // Span not divisible by h: final step is shortened.
        let solver = FixedStepSolver::new(Rk4, 0.3).unwrap();
        let traj = solver.integrate(&decay(), 0.0, &[1.0], 1.0).unwrap();
        assert_eq!(*traj.times().last().unwrap(), 1.0);
    }

    #[test]
    fn record_every_thins_output_but_keeps_final() {
        let solver = FixedStepSolver::new(Euler, 0.1).unwrap().record_every(4);
        let traj = solver.integrate(&decay(), 0.0, &[1.0], 1.0).unwrap();
        // 10 steps: records t0, steps 4, 8 and the final step 10.
        assert_eq!(traj.len(), 4);
        assert_eq!(*traj.times().last().unwrap(), 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(FixedStepSolver::new(Rk4, 0.0).is_err());
        assert!(FixedStepSolver::new(Rk4, f64::NAN).is_err());
        let solver = FixedStepSolver::new(Rk4, 0.1).unwrap();
        assert!(solver.integrate(&decay(), 0.0, &[1.0, 2.0], 1.0).is_err());
        assert!(solver.integrate(&decay(), 1.0, &[1.0], 1.0).is_err());
        assert!(solver.integrate(&decay(), 2.0, &[1.0], 1.0).is_err());
    }

    #[test]
    fn non_finite_state_is_reported() {
        // ẏ = y² blows up in finite time (y₀ = 1 ⇒ pole at t = 1).
        let sys = FnSystem::new(1, |_t, y, d| d[0] = y[0] * y[0]);
        let solver = FixedStepSolver::new(Euler, 0.01).unwrap();
        let res = solver.integrate(&sys, 0.0, &[1.0], 5.0);
        assert!(matches!(res, Err(OdeError::NonFiniteDerivative { .. })));
    }

    #[test]
    fn stepper_metadata() {
        assert_eq!(Euler.order(), 1);
        assert_eq!(Heun.order(), 2);
        assert_eq!(Rk4.order(), 4);
        assert_eq!(Rk4.name(), "rk4");
    }
}
