//! Sampled trajectories with flat (cache-friendly) storage.
//!
//! All solvers in this crate can record the evolution of the state vector as
//! a [`Trajectory`]: a strictly increasing time grid plus a row-major
//! `n_samples × dim` matrix of states. Flat storage keeps one run of `N`
//! oscillators in a single allocation, which matters when the analysis layer
//! scans thousands of snapshots (idle-wave front extraction walks every
//! sample once per rank).

use crate::error::OdeError;

/// A time-sampled solution of an ODE/DDE system.
///
/// Invariants (maintained by [`Trajectory::push`]):
/// * `times` is strictly increasing,
/// * `data.len() == times.len() * dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    dim: usize,
    times: Vec<f64>,
    data: Vec<f64>,
}

impl Trajectory {
    /// Create an empty trajectory for states of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            times: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Create an empty trajectory and reserve room for `n` samples.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        Self {
            dim,
            times: Vec::with_capacity(n),
            data: Vec::with_capacity(n * dim),
        }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The sampled time grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// State at sample index `k` (row of the sample matrix).
    ///
    /// # Panics
    /// Panics if `k >= self.len()`.
    pub fn state(&self, k: usize) -> &[f64] {
        &self.data[k * self.dim..(k + 1) * self.dim]
    }

    /// Time of sample `k`.
    pub fn time(&self, k: usize) -> f64 {
        self.times[k]
    }

    /// First stored state, if any.
    pub fn first(&self) -> Option<&[f64]> {
        (!self.is_empty()).then(|| self.state(0))
    }

    /// Last stored state, if any.
    pub fn last(&self) -> Option<&[f64]> {
        (!self.is_empty()).then(|| self.state(self.len() - 1))
    }

    /// Append a sample. `t` must exceed the last stored time and `y` must
    /// have length `dim`.
    pub fn push(&mut self, t: f64, y: &[f64]) -> Result<(), OdeError> {
        if y.len() != self.dim {
            return Err(OdeError::DimensionMismatch {
                expected: self.dim,
                got: y.len(),
            });
        }
        if let Some(&last) = self.times.last() {
            if t <= last {
                return Err(OdeError::EmptySpan { t0: last, t_end: t });
            }
        }
        self.times.push(t);
        self.data.extend_from_slice(y);
        Ok(())
    }

    /// Append a sample whose invariants the caller upholds (`y.len() ==
    /// dim`, `t` strictly increasing) — used by the solver hot loops,
    /// which maintain both by construction. Checked in debug builds.
    pub(crate) fn push_trusted(&mut self, t: f64, y: &[f64]) {
        debug_assert_eq!(y.len(), self.dim);
        debug_assert!(self.times.last().is_none_or(|&last| t > last));
        self.times.push(t);
        self.data.extend_from_slice(y);
    }

    /// Iterate over `(t, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> + '_ {
        self.times
            .iter()
            .copied()
            .zip(self.data.chunks_exact(self.dim))
    }

    /// Extract the time series of a single component.
    pub fn component(&self, i: usize) -> Vec<f64> {
        assert!(
            i < self.dim,
            "component {i} out of range (dim = {})",
            self.dim
        );
        self.data
            .iter()
            .skip(i)
            .step_by(self.dim)
            .copied()
            .collect()
    }

    /// Linearly interpolate the state at time `t`.
    ///
    /// `t` is clamped to the stored time span; an empty trajectory returns
    /// `None`.
    pub fn sample_linear(&self, t: f64) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        if self.len() == 1 || t <= self.times[0] {
            return Some(self.state(0).to_vec());
        }
        let n = self.len();
        if t >= self.times[n - 1] {
            return Some(self.state(n - 1).to_vec());
        }
        // Index of the first grid point strictly greater than t.
        let hi = self.times.partition_point(|&tk| tk <= t);
        let lo = hi - 1;
        let (t0, t1) = (self.times[lo], self.times[hi]);
        let w = (t - t0) / (t1 - t0);
        let a = self.state(lo);
        let b = self.state(hi);
        Some(
            a.iter()
                .zip(b)
                .map(|(&x0, &x1)| x0 + w * (x1 - x0))
                .collect(),
        )
    }

    /// Index of the last sample with time ≤ `t`, or `None` if `t` precedes
    /// the first sample.
    pub fn index_at(&self, t: f64) -> Option<usize> {
        let p = self.times.partition_point(|&tk| tk <= t);
        p.checked_sub(1)
    }

    /// Total time span covered, 0 if fewer than two samples.
    pub fn span(&self) -> f64 {
        if self.len() < 2 {
            0.0
        } else {
            self.times[self.len() - 1] - self.times[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        let mut tr = Trajectory::new(2);
        tr.push(0.0, &[0.0, 10.0]).unwrap();
        tr.push(1.0, &[1.0, 20.0]).unwrap();
        tr.push(3.0, &[3.0, 40.0]).unwrap();
        tr
    }

    #[test]
    fn push_and_access() {
        let tr = traj();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dim(), 2);
        assert_eq!(tr.state(1), &[1.0, 20.0]);
        assert_eq!(tr.time(2), 3.0);
        assert_eq!(tr.first().unwrap(), &[0.0, 10.0]);
        assert_eq!(tr.last().unwrap(), &[3.0, 40.0]);
        assert_eq!(tr.span(), 3.0);
    }

    #[test]
    fn push_rejects_wrong_dim() {
        let mut tr = Trajectory::new(2);
        assert!(matches!(
            tr.push(0.0, &[1.0]),
            Err(OdeError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn push_rejects_non_increasing_time() {
        let mut tr = traj();
        assert!(tr.push(3.0, &[0.0, 0.0]).is_err());
        assert!(tr.push(2.5, &[0.0, 0.0]).is_err());
        assert!(tr.push(3.5, &[0.0, 0.0]).is_ok());
    }

    #[test]
    fn component_extraction() {
        let tr = traj();
        assert_eq!(tr.component(0), vec![0.0, 1.0, 3.0]);
        assert_eq!(tr.component(1), vec![10.0, 20.0, 40.0]);
    }

    #[test]
    fn linear_interpolation_between_and_beyond() {
        let tr = traj();
        // Midpoint of [1, 3].
        let s = tr.sample_linear(2.0).unwrap();
        assert!((s[0] - 2.0).abs() < 1e-12);
        assert!((s[1] - 30.0).abs() < 1e-12);
        // Clamped ends.
        assert_eq!(tr.sample_linear(-1.0).unwrap(), vec![0.0, 10.0]);
        assert_eq!(tr.sample_linear(9.0).unwrap(), vec![3.0, 40.0]);
        // Exactly on a knot.
        assert_eq!(tr.sample_linear(1.0).unwrap(), vec![1.0, 20.0]);
    }

    #[test]
    fn empty_trajectory_behaviour() {
        let tr = Trajectory::new(3);
        assert!(tr.is_empty());
        assert_eq!(tr.sample_linear(0.0), None);
        assert_eq!(tr.first(), None);
        assert_eq!(tr.span(), 0.0);
        assert_eq!(tr.index_at(0.0), None);
    }

    #[test]
    fn index_at_finds_enclosing_sample() {
        let tr = traj();
        assert_eq!(tr.index_at(-0.1), None);
        assert_eq!(tr.index_at(0.0), Some(0));
        assert_eq!(tr.index_at(0.5), Some(0));
        assert_eq!(tr.index_at(1.0), Some(1));
        assert_eq!(tr.index_at(2.9), Some(1));
        assert_eq!(tr.index_at(3.0), Some(2));
        assert_eq!(tr.index_at(100.0), Some(2));
    }

    #[test]
    fn iter_yields_all_samples() {
        let tr = traj();
        let collected: Vec<(f64, Vec<f64>)> = tr.iter().map(|(t, s)| (t, s.to_vec())).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], (3.0, vec![3.0, 40.0]));
    }
}
