//! Dense output: continuous extensions of discrete solver steps.
//!
//! The Dormand–Prince pair carries a fourth-order-accurate interpolating
//! polynomial for every accepted step ("dense output" in Hairer, Nørsett &
//! Wanner). A [`DenseSolution`] is the piecewise collection of those
//! polynomials: it can be sampled at *any* time in the integration span,
//! which the analysis layer uses to evaluate observables on uniform grids
//! regardless of the adaptive step sequence.

use crate::error::OdeError;
use crate::trajectory::Trajectory;

/// The quintic Hermite-style interpolant of one accepted Dormand–Prince
/// step over `[t0, t0 + h]`.
///
/// Evaluation uses the nested form from Hairer's `contd5`:
/// with `θ = (t − t0)/h` and `θ̄ = 1 − θ`,
///
/// ```text
/// y(t) = c1 + θ·(c2 + θ̄·(c3 + θ·(c4 + θ̄·c5)))
/// ```
#[derive(Debug, Clone)]
pub struct DenseSegment {
    t0: f64,
    h: f64,
    dim: usize,
    /// The five interpolation coefficient vectors `c1..c5`, stored
    /// coefficient-major in one flat allocation of length `5 * dim`
    /// (`c_k[i]` lives at `k * dim + i`). One allocation per accepted
    /// step instead of five, and contiguous for evaluation.
    rcont: Vec<f64>,
}

impl DenseSegment {
    /// Build a segment from precomputed interpolation coefficients.
    pub fn new(t0: f64, h: f64, rcont: [Vec<f64>; 5]) -> Self {
        debug_assert!(rcont.iter().all(|c| c.len() == rcont[0].len()));
        let dim = rcont[0].len();
        let mut flat = Vec::with_capacity(5 * dim);
        for c in &rcont {
            flat.extend_from_slice(c);
        }
        Self::from_flat(t0, h, dim, flat)
    }

    /// Build a segment from coefficient-major flat storage (`c_k[i]` at
    /// `k * dim + i`, `k = 0..5`) — the allocation-lean constructor the
    /// solver hot path uses.
    ///
    /// # Panics
    /// Panics if `rcont.len() != 5 * dim`.
    pub fn from_flat(t0: f64, h: f64, dim: usize, rcont: Vec<f64>) -> Self {
        assert_eq!(rcont.len(), 5 * dim, "need 5 coefficient rows of {dim}");
        debug_assert!(h > 0.0);
        Self { t0, h, dim, rcont }
    }

    /// Start of the covered interval.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// End of the covered interval.
    pub fn t1(&self) -> f64 {
        self.t0 + self.h
    }

    /// Step size of the underlying solver step.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Evaluate the interpolant at `t`, writing into `out`.
    ///
    /// `t` may lie slightly outside `[t0, t1]`; the polynomial extrapolates
    /// smoothly, which the DDE layer exploits for sub-step history lookups.
    pub fn eval_into(&self, t: f64, out: &mut [f64]) {
        let theta = (t - self.t0) / self.h;
        let theta1 = 1.0 - theta;
        let n = self.dim;
        let c = &self.rcont;
        for (i, o) in out.iter_mut().enumerate().take(n) {
            *o = c[i]
                + theta
                    * (c[n + i]
                        + theta1 * (c[2 * n + i] + theta * (c[3 * n + i] + theta1 * c[4 * n + i])));
        }
    }

    /// Evaluate the interpolant at `t` into a fresh vector.
    pub fn eval(&self, t: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.eval_into(t, &mut out);
        out
    }

    /// Evaluate a single component at `t`.
    pub fn eval_component(&self, t: f64, i: usize) -> f64 {
        let theta = (t - self.t0) / self.h;
        let theta1 = 1.0 - theta;
        let n = self.dim;
        let c = &self.rcont;
        c[i] + theta
            * (c[n + i] + theta1 * (c[2 * n + i] + theta * (c[3 * n + i] + theta1 * c[4 * n + i])))
    }
}

/// A piecewise-polynomial solution assembled from per-step
/// [`DenseSegment`]s; the output of [`crate::dopri5::Dopri5::integrate`].
#[derive(Debug, Clone)]
pub struct DenseSolution {
    dim: usize,
    t0: f64,
    t_end: f64,
    y0: Vec<f64>,
    y_end: Vec<f64>,
    segments: Vec<DenseSegment>,
}

impl DenseSolution {
    /// Assemble a solution. Segments must be contiguous and ordered; this is
    /// checked in debug builds.
    pub fn new(
        dim: usize,
        t0: f64,
        t_end: f64,
        y0: Vec<f64>,
        y_end: Vec<f64>,
        segments: Vec<DenseSegment>,
    ) -> Self {
        debug_assert!(segments
            .windows(2)
            .all(|w| (w[0].t1() - w[1].t0()).abs() < 1e-9));
        Self {
            dim,
            t0,
            t_end,
            y0,
            y_end,
            segments,
        }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Start of the integration span.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// End of the integration span.
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// Initial state.
    pub fn y0(&self) -> &[f64] {
        &self.y0
    }

    /// Final state.
    pub fn y_end(&self) -> &[f64] {
        &self.y_end
    }

    /// Number of accepted steps (= number of segments).
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// The per-step segments.
    pub fn segments(&self) -> &[DenseSegment] {
        &self.segments
    }

    /// Find the segment covering time `t` (clamped to the span).
    fn segment_for(&self, t: f64) -> &DenseSegment {
        debug_assert!(!self.segments.is_empty());
        let idx = self.segments.partition_point(|s| s.t1() < t);
        &self.segments[idx.min(self.segments.len() - 1)]
    }

    /// Sample the solution at `t` (clamped to `[t0, t_end]`).
    pub fn sample(&self, t: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.sample_into(t, &mut out);
        out
    }

    /// Sample the solution at `t` into a caller-provided buffer.
    pub fn sample_into(&self, t: f64, out: &mut [f64]) {
        let t = t.clamp(self.t0, self.t_end);
        if self.segments.is_empty() {
            out.copy_from_slice(&self.y0);
            return;
        }
        self.segment_for(t).eval_into(t, out);
    }

    /// Sample one component at `t` (clamped).
    pub fn sample_component(&self, t: f64, i: usize) -> f64 {
        let t = t.clamp(self.t0, self.t_end);
        if self.segments.is_empty() {
            return self.y0[i];
        }
        self.segment_for(t).eval_component(t, i)
    }

    /// Resample onto a uniform grid of `n` points (inclusive of both ends),
    /// producing a [`Trajectory`].
    pub fn resample(&self, n: usize) -> Result<Trajectory, OdeError> {
        if n < 2 {
            return Err(OdeError::InvalidParameter {
                name: "n",
                value: n as f64,
            });
        }
        let mut traj = Trajectory::with_capacity(self.dim, n);
        let mut buf = vec![0.0; self.dim];
        for k in 0..n {
            let t = self.t0 + (self.t_end - self.t0) * (k as f64) / ((n - 1) as f64);
            self.sample_into(t, &mut buf);
            traj.push(t, &buf)?;
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A segment representing y(t) = t on [0, 1]:
    /// c1 = y0 = 0, c2 = Δy = 1, others 0.
    fn linear_segment() -> DenseSegment {
        DenseSegment::new(
            0.0,
            1.0,
            [vec![0.0], vec![1.0], vec![0.0], vec![0.0], vec![0.0]],
        )
    }

    #[test]
    fn segment_eval_linear() {
        let seg = linear_segment();
        assert_eq!(seg.eval(0.0)[0], 0.0);
        assert_eq!(seg.eval(0.5)[0], 0.5);
        assert_eq!(seg.eval(1.0)[0], 1.0);
        assert_eq!(seg.eval_component(0.25, 0), 0.25);
        assert_eq!(seg.t0(), 0.0);
        assert_eq!(seg.t1(), 1.0);
        assert_eq!(seg.dim(), 1);
    }

    #[test]
    fn segment_extrapolates() {
        let seg = linear_segment();
        assert!((seg.eval(1.1)[0] - 1.1).abs() < 1e-12);
        assert!((seg.eval(-0.1)[0] + 0.1).abs() < 1e-12);
    }

    fn two_segment_solution() -> DenseSolution {
        // y = t on [0,1], then y = 1 + 2(t−1) on [1,2].
        let s1 = linear_segment();
        let s2 = DenseSegment::new(
            1.0,
            1.0,
            [vec![1.0], vec![2.0], vec![0.0], vec![0.0], vec![0.0]],
        );
        DenseSolution::new(1, 0.0, 2.0, vec![0.0], vec![3.0], vec![s1, s2])
    }

    #[test]
    fn solution_sampling_picks_right_segment() {
        let sol = two_segment_solution();
        assert!((sol.sample(0.5)[0] - 0.5).abs() < 1e-12);
        assert!((sol.sample(1.5)[0] - 2.0).abs() < 1e-12);
        // Knot belongs to the first segment whose t1 >= t.
        assert!((sol.sample(1.0)[0] - 1.0).abs() < 1e-12);
        assert_eq!(sol.n_segments(), 2);
    }

    #[test]
    fn solution_clamps_out_of_range() {
        let sol = two_segment_solution();
        assert_eq!(sol.sample(-5.0)[0], 0.0);
        assert!((sol.sample(99.0)[0] - 3.0).abs() < 1e-12);
        assert_eq!(sol.sample_component(-5.0, 0), 0.0);
    }

    #[test]
    fn resample_uniform_grid() {
        let sol = two_segment_solution();
        let tr = sol.resample(5).unwrap();
        assert_eq!(tr.len(), 5);
        assert_eq!(tr.times(), &[0.0, 0.5, 1.0, 1.5, 2.0]);
        assert!((tr.state(3)[0] - 2.0).abs() < 1e-12);
        assert!(sol.resample(1).is_err());
    }

    #[test]
    fn empty_solution_returns_initial_state() {
        let sol = DenseSolution::new(2, 0.0, 0.0, vec![7.0, 8.0], vec![7.0, 8.0], vec![]);
        assert_eq!(sol.sample(0.0), vec![7.0, 8.0]);
        assert_eq!(sol.sample_component(1.0, 1), 8.0);
    }
}
