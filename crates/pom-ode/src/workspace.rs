//! Reusable scratch memory for the integration hot paths.
//!
//! Every explicit Runge–Kutta step needs a handful of length-`n` stage
//! buffers (`k1..k4`, intermediate states, …). Allocating them per step —
//! as the first version of this crate did — puts the allocator on the
//! hottest path in the repository: a σ-sweep campaign integrates millions
//! of steps, and `pom-sweep` multiplies that by the grid size. A
//! [`Workspace`] owns that scratch memory once and lends it out per step,
//! so the steady-state step loop performs **zero** heap allocations.
//!
//! The workspace is split into two independent [`ScratchPool`]s:
//!
//! * the **stage** pool, consumed inside a single
//!   [`crate::fixed::Stepper::step`] call (stage derivatives `k_i` and
//!   intermediate states), and
//! * the **drive** pool, holding buffers that live across steps of one
//!   integration (the current/next state, FSAL derivative carries).
//!
//! Two pools are needed because the driver loop holds its state slices
//! *while* calling into the stepper — a single pool could not be borrowed
//! by both at once.
//!
//! A workspace may be reused freely across integrations, solvers, systems
//! and dimensions; pools grow to the high-water mark and stay there.
//! Reuse never changes results: the property suite asserts bitwise
//! identical trajectories between fresh and reused workspaces.
//!
//! The workspace covers the *stepper's* scratch only. Scratch that is
//! private to a right-hand side (for example the sin/cos arrays of
//! `pom-core`'s split RHS kernel) lives with the system, because
//! [`crate::OdeSystem::eval`] runs through `&self` — the stepper neither
//! knows nor cares how the RHS organizes its own memory.
//!
//! ```
//! use pom_ode::{FixedStepSolver, FnSystem, Rk4, Workspace};
//!
//! let solver = FixedStepSolver::new(Rk4, 0.01).unwrap();
//! let mut ws = Workspace::new();
//! // One workspace serves a whole ensemble of initial conditions.
//! for y0 in [0.5, 1.0, 2.0] {
//!     let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
//!     let traj = solver.integrate_with(&sys, 0.0, &[y0], 1.0, &mut ws).unwrap();
//!     let exact = y0 * (-1.0f64).exp();
//!     assert!((traj.last().unwrap()[0] - exact).abs() < 1e-8);
//! }
//! ```

/// A growable pool of equally sized `f64` scratch slices.
///
/// [`ScratchPool::slices`] hands out `K` non-overlapping `&mut [f64]` of
/// length `n`, growing the backing allocation on first use (or on a
/// dimension increase) and reusing it afterwards.
#[derive(Debug, Clone, Default)]
pub struct ScratchPool {
    buf: Vec<f64>,
}

impl ScratchPool {
    /// An empty pool; backing memory is acquired on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow `K` disjoint zero-initialized-on-growth slices of length `n`.
    ///
    /// The contents of previously used slices are unspecified (solvers
    /// fully overwrite their scratch before reading it).
    pub fn slices<const K: usize>(&mut self, n: usize) -> [&mut [f64]; K] {
        if n == 0 {
            return std::array::from_fn(|_| Default::default());
        }
        let need = K * n;
        if self.buf.len() < need {
            self.buf.resize(need, 0.0);
        }
        let mut chunks = self.buf.chunks_exact_mut(n);
        std::array::from_fn(|_| chunks.next().expect("pool resized above"))
    }

    /// Current backing capacity in `f64` elements (high-water mark).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

/// Reusable scratch memory for one integration at a time.
///
/// Create once (per worker thread, per ensemble, …) and pass to the
/// `*_with` entry points: [`crate::fixed::FixedStepSolver::integrate_with`],
/// [`crate::dopri5::Dopri5::integrate_with`],
/// [`crate::bs23::Bs23::integrate_with`] and
/// [`crate::dde::DdeRk4::integrate_with`]. The convenience wrappers without
/// a workspace argument allocate a fresh one internally.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    stage: ScratchPool,
    drive: ScratchPool,
}

impl Workspace {
    /// An empty workspace; buffers are acquired lazily.
    pub fn new() -> Self {
        Self::default()
    }

    /// Split into the per-step stage pool and the per-integration drive
    /// pool (disjoint borrows, usable simultaneously).
    pub fn split(&mut self) -> (&mut ScratchPool, &mut ScratchPool) {
        (&mut self.stage, &mut self.drive)
    }

    /// Total backing capacity in `f64` elements.
    pub fn capacity(&self) -> usize {
        self.stage.capacity() + self.drive.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_are_disjoint_and_sized() {
        let mut pool = ScratchPool::new();
        let [a, b, c] = pool.slices::<3>(4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_eq!(c.len(), 4);
        a[0] = 1.0;
        b[0] = 2.0;
        c[3] = 3.0;
        assert_eq!((a[0], b[0], c[3]), (1.0, 2.0, 3.0));
    }

    #[test]
    fn pool_grows_to_high_water_mark_and_reuses() {
        let mut pool = ScratchPool::new();
        let _ = pool.slices::<2>(8);
        assert_eq!(pool.capacity(), 16);
        let _ = pool.slices::<4>(2);
        assert_eq!(pool.capacity(), 16, "smaller request must not shrink");
        let _ = pool.slices::<4>(8);
        assert_eq!(pool.capacity(), 32);
    }

    #[test]
    fn zero_dimension_is_handled() {
        let mut pool = ScratchPool::new();
        let [a, b] = pool.slices::<2>(0);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn workspace_split_borrows_both_pools() {
        let mut ws = Workspace::new();
        let (stage, drive) = ws.split();
        let [s] = stage.slices::<1>(3);
        let [d] = drive.slices::<1>(3);
        s[0] = 1.0;
        d[0] = 2.0;
        assert_eq!(s[0] + d[0], 3.0);
        assert_eq!(ws.capacity(), 6);
    }
}
