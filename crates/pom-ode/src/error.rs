//! Error type shared by all solvers in this crate.

use std::fmt;

/// Errors produced by the ODE/DDE solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum OdeError {
    /// Initial state length does not match the system dimension.
    DimensionMismatch {
        /// Dimension reported by the system.
        expected: usize,
        /// Length of the state vector supplied by the caller.
        got: usize,
    },
    /// Integration span is empty or reversed (`t_end <= t0`).
    EmptySpan {
        /// Requested start time.
        t0: f64,
        /// Requested end time.
        t_end: f64,
    },
    /// A step size, tolerance or other numeric parameter is not positive
    /// and finite.
    InvalidParameter {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The adaptive controller shrank the step below the smallest
    /// representable increment of `t` — the problem is too stiff (or the
    /// RHS is discontinuous) for an explicit method at this tolerance.
    StepSizeUnderflow {
        /// Time at which the underflow occurred.
        t: f64,
        /// The step size that was rejected.
        h: f64,
    },
    /// The solver exceeded its step budget before reaching `t_end`.
    TooManySteps {
        /// Time reached when the budget ran out.
        t_reached: f64,
        /// The configured maximum number of steps.
        max_steps: usize,
    },
    /// The RHS produced a non-finite derivative (NaN or ±∞).
    NonFiniteDerivative {
        /// Time of the offending evaluation.
        t: f64,
        /// Index of the first non-finite component.
        component: usize,
    },
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::DimensionMismatch { expected, got } => write!(
                f,
                "state vector has length {got} but the system dimension is {expected}"
            ),
            OdeError::EmptySpan { t0, t_end } => {
                write!(f, "integration span [{t0}, {t_end}] is empty or reversed")
            }
            OdeError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` = {value} must be positive and finite")
            }
            OdeError::StepSizeUnderflow { t, h } => write!(
                f,
                "step size underflow at t = {t} (h = {h:e}); problem too stiff for an explicit method at this tolerance"
            ),
            OdeError::TooManySteps { t_reached, max_steps } => write!(
                f,
                "exceeded {max_steps} steps (reached t = {t_reached}); increase max_steps or loosen tolerances"
            ),
            OdeError::NonFiniteDerivative { t, component } => write!(
                f,
                "right-hand side returned a non-finite value at t = {t}, component {component}"
            ),
        }
    }
}

impl std::error::Error for OdeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_values() {
        let e = OdeError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));

        let e = OdeError::StepSizeUnderflow { t: 1.5, h: 1e-18 };
        assert!(e.to_string().contains("1.5"));

        let e = OdeError::TooManySteps {
            t_reached: 0.25,
            max_steps: 10,
        };
        assert!(e.to_string().contains("10"));

        let e = OdeError::NonFiniteDerivative {
            t: 2.0,
            component: 4,
        };
        assert!(e.to_string().contains("component 4"));

        let e = OdeError::InvalidParameter {
            name: "rtol",
            value: -1.0,
        };
        assert!(e.to_string().contains("rtol"));

        let e = OdeError::EmptySpan {
            t0: 1.0,
            t_end: 1.0,
        };
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&OdeError::EmptySpan {
            t0: 0.0,
            t_end: 0.0,
        });
    }
}
