//! Golden test for the Prometheus text exposition format.
//!
//! Uses a private `Registry` (not the process-global one) so the exact
//! output is hermetic under parallel tests.

use pom_obs::metrics::Registry;

/// Build a registry exercising every render path: counter with labeled
/// series and escaping, gauge, histogram with unlabeled and labeled
/// series (the latter checks `le` splicing into an existing label set).
fn golden_registry() -> Registry {
    let reg = Registry::new();

    let jobs = reg.counter_with(
        "app_requests_total",
        "Requests by route.\nSecond \\ line",
        &[("route", "/jobs")],
    );
    jobs.add(3);
    let weird = reg.counter_with(
        "app_requests_total",
        "Requests by route.\nSecond \\ line",
        &[("route", "we\"ird\\pa\nth")],
    );
    weird.inc();

    let depth = reg.gauge("app_queue_depth", "Jobs waiting.");
    depth.set(-2);

    let lat = reg.histogram("app_latency_us", "Latency.");
    for v in [0u64, 1, 4, 5] {
        lat.observe(v);
    }
    let lat_jobs = reg.histogram_with("app_latency_us", "Latency.", &[("route", "/jobs")]);
    lat_jobs.observe(3);

    reg
}

#[test]
fn exposition_golden_text() {
    // Families sort lexicographically; within a family, the unlabeled
    // series ("" key) sorts before labeled ones. Histograms emit a
    // cumulative `_bucket` series — interior buckets whose cumulative
    // count is unchanged are skipped; bucket 0 and +Inf always appear.
    let expected = "\
# HELP app_latency_us Latency.
# TYPE app_latency_us histogram
app_latency_us_bucket{le=\"1\"} 2
app_latency_us_bucket{le=\"4\"} 3
app_latency_us_bucket{le=\"8\"} 4
app_latency_us_bucket{le=\"+Inf\"} 4
app_latency_us_sum 10
app_latency_us_count 4
app_latency_us_bucket{route=\"/jobs\",le=\"1\"} 0
app_latency_us_bucket{route=\"/jobs\",le=\"4\"} 1
app_latency_us_bucket{route=\"/jobs\",le=\"+Inf\"} 1
app_latency_us_sum{route=\"/jobs\"} 3
app_latency_us_count{route=\"/jobs\"} 1
# HELP app_queue_depth Jobs waiting.
# TYPE app_queue_depth gauge
app_queue_depth -2
# HELP app_requests_total Requests by route.\\nSecond \\\\ line
# TYPE app_requests_total counter
app_requests_total{route=\"/jobs\"} 3
app_requests_total{route=\"we\\\"ird\\\\pa\\nth\"} 1
";
    assert_eq!(golden_registry().render(), expected);
}

#[test]
fn exposition_is_parseable() {
    // Every non-comment line must be `name{labels}? <integer>`, and each
    // histogram's cumulative bucket series must be monotone and end at
    // `_count`.
    let text = golden_registry().render();
    let mut bucket_cum: Option<(String, u64)> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "bad comment: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("line has a value");
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        let v: i64 = value.parse().expect("integer sample value");

        if let Some(base) = name.strip_suffix("_bucket") {
            let cum = v as u64;
            if let Some((prev_base, prev)) = &bucket_cum {
                if prev_base == base {
                    assert!(cum >= *prev, "non-monotone buckets: {line}");
                }
            }
            bucket_cum = Some((base.to_string(), cum));
        } else if let Some(base) = name.strip_suffix("_count") {
            if let Some((prev_base, prev)) = bucket_cum.take() {
                assert_eq!(prev_base, base);
                assert_eq!(v as u64, prev, "+Inf bucket must equal _count");
            }
        }
    }
}
