//! Monotonic-clock span timers.

use std::time::Instant;

use crate::metrics::Histogram;

/// Times a scope against the monotonic clock and records the elapsed
/// microseconds into a [`Histogram`] when dropped (or explicitly via
/// [`Span::finish`]).
///
/// When instrumentation is disabled ([`crate::enabled`] is false) the
/// constructor skips the clock read entirely and drop is a no-op — the
/// whole span costs one relaxed atomic load.
///
/// ```
/// use pom_obs::{Histogram, Span};
/// let h = Histogram::new();
/// pom_obs::set_enabled(true);
/// {
///     let _span = Span::start(&h);
///     // … timed work …
/// }
/// assert_eq!(h.count(), 1);
/// # pom_obs::set_enabled(false);
/// ```
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'h> {
    hist: &'h Histogram,
    start: Option<Instant>,
}

impl<'h> Span<'h> {
    /// Start timing into `hist`; inert when instrumentation is off.
    #[inline]
    pub fn start(hist: &'h Histogram) -> Self {
        Self {
            hist,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// Elapsed microseconds so far (`None` when the span is inert).
    pub fn elapsed_us(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_micros() as u64)
    }

    /// Stop now and return the recorded microseconds (`None` if inert).
    pub fn finish(mut self) -> Option<u64> {
        let us = self.elapsed_us();
        if let Some(us) = us {
            self.hist.observe(us);
        }
        self.start = None; // drop must not double-record
        us
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.start {
            self.hist.observe(s.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: it toggles the process-global enabled flag,
    // and cargo runs tests on parallel threads.
    #[test]
    fn span_lifecycle() {
        let h = Histogram::new();

        crate::set_enabled(false);
        let s = Span::start(&h);
        assert_eq!(s.elapsed_us(), None);
        assert_eq!(s.finish(), None);
        assert_eq!(h.count(), 0, "disabled span must be inert");

        crate::set_enabled(true);
        {
            let _s = Span::start(&h);
        }
        assert_eq!(h.count(), 1, "enabled span records on drop");
        let s = Span::start(&h);
        assert!(s.finish().is_some());
        assert_eq!(h.count(), 2, "finish must not double-record via drop");
        crate::set_enabled(false);
    }
}
