//! Atomic metric primitives and the Prometheus-rendering registry.
//!
//! Three metric kinds, all lock-free on the update path:
//!
//! * [`Counter`] — monotonically increasing `u64`.
//! * [`Gauge`] — signed instantaneous value (queue depths, stream counts).
//! * [`Histogram`] — log2-bucketed distribution of `u64` samples
//!   (microsecond latencies by convention, `_us` name suffix) with
//!   p50/p90/p99 extraction and exact count/sum/min/max.
//!
//! Metrics live in a [`Registry`]: register once (idempotent per
//! `(name, labels)`), hold the returned `Arc`, update forever. The
//! process-global registry behind [`registry`] is what `GET /metrics`
//! renders; tests build private `Registry::new()` instances so golden
//! output is hermetic.
//!
//! ## Naming conventions
//!
//! `pom_<crate>_<what>[_<unit>][_total]`: counters end in `_total`,
//! microsecond histograms in `_us`. Labels are for low-cardinality
//! dimensions only (route, method) — never per-job or per-point ids.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets. Bucket `i < N_BUCKETS − 1` holds samples
/// in `(2^(i−1), 2^i]` (bucket 0: `[0, 1]`); the last bucket is the
/// `+Inf` overflow. 2^38 µs ≈ 76 h, far past any latency this stack can
/// produce.
pub const N_BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A fresh, unregistered counter (registries hand out shared ones).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.v.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram of `u64` samples.
///
/// Updates are three relaxed atomic RMWs plus two min/max RMWs — cheap
/// enough for per-request and per-point paths (per-step inner loops
/// should still aggregate locally and flush totals once per run).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index for sample `v`: 0 for `v ≤ 1`, else
/// `ceil(log2 v)`, capped at the overflow bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(N_BUCKETS - 1)
    }
}

/// The inclusive upper bound of finite bucket `i` (`2^i`); the last
/// bucket has no finite bound.
pub fn bucket_upper(i: usize) -> Option<u64> {
    (i < N_BUCKETS - 1).then(|| 1u64 << i)
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let c = self.count();
        (c > 0).then(|| self.sum() as f64 / c as f64)
    }

    /// Approximate quantile `q ∈ [0, 1]` (0.5 = p50), linearly
    /// interpolated inside the owning log2 bucket and clamped to the
    /// observed min/max. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0);
        let mut cum = 0u64;
        for i in 0..N_BUCKETS {
            let c = self.buckets[i].load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= rank {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                // The overflow bucket has no finite bound; its samples are
                // all ≤ the tracked max.
                let upper = bucket_upper(i).unwrap_or_else(|| self.max.load(Ordering::Relaxed));
                let within = (rank - cum as f64) / c as f64;
                let est = lower as f64 + (upper.saturating_sub(lower)) as f64 * within;
                let (lo, hi) = (
                    self.min.load(Ordering::Relaxed) as f64,
                    self.max.load(Ordering::Relaxed) as f64,
                );
                return Some(est.clamp(lo, hi));
            }
            cum += c;
        }
        Some(self.max.load(Ordering::Relaxed) as f64)
    }

    /// Cumulative count of samples ≤ the upper bound of bucket `i`.
    fn cumulative(&self, i: usize) -> u64 {
        (0..=i)
            .map(|k| self.buckets[k].load(Ordering::Relaxed))
            .sum()
    }

    /// Render the standard latency summary as a JSON object fragment
    /// (`"count":…,"p50_us":…`), for per-job stats endpoints.
    pub fn summary_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let q = |p: f64| self.quantile(p).unwrap_or(0.0);
        let _ = write!(
            out,
            "\"count\":{},\"sum_us\":{},\"min_us\":{},\"max_us\":{},\"mean_us\":{:.1},\
             \"p50_us\":{:.1},\"p90_us\":{:.1},\"p99_us\":{:.1}",
            self.count(),
            self.sum(),
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            self.mean().unwrap_or(0.0),
            q(0.50),
            q(0.90),
            q(0.99),
        );
        out
    }
}

/// Metric kind, for `# TYPE` lines and registration consistency checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: Kind,
    /// Series keyed by their canonical (sorted) label rendering.
    series: BTreeMap<String, Handle>,
}

/// A collection of metric families rendered together.
///
/// Most code uses the process-global [`registry`]; tests construct their
/// own for hermetic golden output.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Escape a `# HELP` string: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Canonical label rendering: sorted by key, escaped, `{k="v",…}`; empty
/// label sets render as the empty string.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Splice `extra` (e.g. `le="4"`) into a rendered label set.
fn with_extra_label(rendered: &str, extra: &str) -> String {
    if rendered.is_empty() {
        format!("{{{extra}}}")
    } else {
        // "...}" → "...,extra}"
        format!("{},{extra}}}", &rendered[..rendered.len() - 1])
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], kind: Kind) -> Handle {
        let mut families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` re-registered as {} (was {})",
            kind.as_str(),
            family.kind.as_str()
        );
        family
            .series
            .entry(label_key(labels))
            .or_insert_with(|| match kind {
                Kind::Counter => Handle::Counter(Arc::new(Counter::new())),
                Kind::Gauge => Handle::Gauge(Arc::new(Gauge::new())),
                Kind::Histogram => Handle::Histogram(Arc::new(Histogram::new())),
            })
            .clone()
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter with a static label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, Kind::Counter) {
            Handle::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge with a static label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, Kind::Gauge) {
            Handle::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a histogram with a static label set.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, labels, Kind::Histogram) {
            Handle::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Current value of a counter series, `None` when the family or the
    /// exact label set was never registered (or is not a counter).
    /// Lookup-only — it never creates the series, so asserting on an
    /// untouched counter reads as "no such series", not `Some(0)`.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        match families.get(name)?.series.get(&label_key(labels))? {
            Handle::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Render every family in Prometheus text exposition format
    /// (families and series in lexicographic order, so output is stable).
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::with_capacity(4096);
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, handle) in &family.series {
                match handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", g.get());
                    }
                    Handle::Histogram(h) => {
                        // Skip interior all-zero buckets but keep the
                        // first, any occupied, and +Inf so the cumulative
                        // series stays parseable and compact.
                        let mut last_emitted = None::<u64>;
                        for i in 0..N_BUCKETS - 1 {
                            let cum = h.cumulative(i);
                            if i > 0 && Some(cum) == last_emitted {
                                continue;
                            }
                            let le = format!("le=\"{}\"", bucket_upper(i).unwrap());
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                with_extra_label(labels, &le)
                            );
                            last_emitted = Some(cum);
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            with_extra_label(labels, "le=\"+Inf\""),
                            h.count()
                        );
                        let _ = writeln!(out, "{name}_sum{labels} {}", h.sum());
                        let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                    }
                }
            }
        }
        out
    }
}

/// The process-global registry — what `GET /metrics` serves.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_value_looks_up_without_creating() {
        let r = Registry::new();
        let c = r.counter_with("requests_total", "Requests.", &[("route", "/jobs")]);
        c.add(3);
        assert_eq!(
            r.counter_value("requests_total", &[("route", "/jobs")]),
            Some(3)
        );
        // Label order is canonicalized, so lookup order doesn't matter.
        let c2 = r.counter_with("multi", "m", &[("a", "1"), ("b", "2")]);
        c2.inc();
        assert_eq!(r.counter_value("multi", &[("b", "2"), ("a", "1")]), Some(1));
        // Unknown family / label set reads as absent, not zero — and the
        // probe must not have created the series.
        assert_eq!(
            r.counter_value("requests_total", &[("route", "/none")]),
            None
        );
        assert_eq!(r.counter_value("nope_total", &[]), None);
        assert!(!r.render().contains("/none"));
        // Kind mismatch reads as absent too.
        r.gauge("a_gauge", "g").add(5);
        assert_eq!(r.counter_value("a_gauge", &[]), None);
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        // Bucket 0 is [0, 1]; bucket i > 0 covers (2^(i−1), 2^i].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(9), 4);
        for i in 1..N_BUCKETS - 1 {
            let upper = 1u64 << i;
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(upper + 1), i + 1, "first past bucket {i}");
        }
        // Everything past the last finite bound lands in the overflow.
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper(N_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_counts_sum_min_max() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [3u64, 100, 7, 1, 250_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 250_111);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(250_000));
        assert!((h.mean().unwrap() - 50_022.2).abs() < 0.01);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = Histogram::new();
        // 90 fast samples at 10 µs, 10 slow ones at 10 ms.
        for _ in 0..90 {
            h.observe(10);
        }
        for _ in 0..10 {
            h.observe(10_000);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // p50 must sit in the 10 µs bucket (8, 16], p99 in (8192, 16384].
        assert!((8.0..=16.0).contains(&p50), "p50 = {p50}");
        assert!((8192.0..=16384.0).contains(&p99), "p99 = {p99}");
        // Quantiles never escape the observed range.
        assert!(h.quantile(0.0).unwrap() >= 10.0);
        assert!(h.quantile(1.0).unwrap() <= 10_000.0);
    }

    #[test]
    fn quantile_of_uniform_stream_is_monotone() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let qs: Vec<f64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
            .iter()
            .map(|&q| h.quantile(q).unwrap())
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        // Log2 buckets bound the relative error by 2×: p50 of 1..=1000
        // (exact 500) must land in (256, 512].
        assert!((256.0..=512.0).contains(&qs[2]), "p50 = {}", qs[2]);
    }

    #[test]
    fn overflow_bucket_quantile_uses_observed_max() {
        let h = Histogram::new();
        let big = 1u64 << 50; // far past the last finite bound
        h.observe(big);
        h.observe(big);
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 <= big as f64 && p99 >= (1u64 << (N_BUCKETS - 2)) as f64);
    }

    #[test]
    fn concurrent_counter_increments_do_not_lose_updates() {
        let reg = Registry::new();
        let c = reg.counter("test_concurrent_total", "Concurrency test.");
        let h = reg.histogram("test_concurrent_us", "Concurrency test.");
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = &c;
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe(t * 1000 + i % 7);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        // Sum is exact under concurrency: per-thread sums are known.
        let expect: u64 = (0..8u64)
            .map(|t| (0..10_000u64).map(|i| t * 1000 + i % 7).sum::<u64>())
            .sum();
        assert_eq!(h.sum(), expect);
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let reg = Registry::new();
        let a = reg.counter("dup_total", "First.");
        let b = reg.counter("dup_total", "Second (help ignored).");
        a.add(3);
        assert_eq!(b.get(), 3, "same series must share one cell");
        let with = reg.counter_with("lab_total", "Labeled.", &[("route", "/jobs")]);
        let with2 = reg.counter_with("lab_total", "Labeled.", &[("route", "/jobs")]);
        with.inc();
        assert_eq!(with2.get(), 1);
        let other = reg.counter_with("lab_total", "Labeled.", &[("route", "/healthz")]);
        assert_eq!(other.get(), 0, "distinct labels are distinct series");
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("kind_clash", "As counter.");
        let _ = reg.gauge("kind_clash", "As gauge.");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(
            label_key(&[("path", "a\\b\"c\nd")]),
            "{path=\"a\\\\b\\\"c\\nd\"}"
        );
        // Keys sort canonically regardless of registration order.
        assert_eq!(label_key(&[("b", "2"), ("a", "1")]), "{a=\"1\",b=\"2\"}");
    }
}
