//! Leveled structured events, one JSONL record per call.
//!
//! Events are filtered by a process-global level (default [`Level::Warn`])
//! that is independent of the metrics switch, so operational warnings —
//! e.g. a corrupt spool entry being skipped — surface even when metrics
//! are off. Records go to stderr as single-line JSON:
//!
//! ```text
//! {"ts_us":123456789,"level":"warn","event":"spool_skip","job":"j-3","error":"bad header"}
//! ```

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity. Ordered so that `level >= threshold` means "emit".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Verbose diagnostics (per-job scheduling decisions, stream progress).
    Debug = 0,
    /// Normal lifecycle events (job submitted, job done).
    Info = 1,
    /// Something was skipped or degraded but the process carries on.
    Warn = 2,
    /// An operation failed.
    Error = 3,
    /// Suppress all events.
    Off = 4,
}

impl Level {
    /// Parse a level name as used by `pom serve log-level=<name>`.
    pub fn from_name(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            "off" => Some(Level::Off),
            _ => None,
        }
    }

    /// The name rendered into the JSON record.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
            Level::Off => "off",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            3 => Level::Error,
            _ => Level::Off,
        }
    }
}

/// Minimum severity that gets emitted; independent of the metrics switch.
static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Set the minimum severity to emit.
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current minimum severity.
pub fn log_level() -> Level {
    Level::from_u8(LOG_LEVEL.load(Ordering::Relaxed))
}

/// Emit a structured event at `level` with string `fields`, if `level`
/// clears the threshold. The below-threshold path is one relaxed atomic
/// load and a compare.
#[inline]
pub fn event(level: Level, name: &str, fields: &[(&str, &str)]) {
    if level < log_level() || level == Level::Off {
        return;
    }
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let line = render_event(ts_us, level, name, fields);
    // One write_all of a complete line keeps concurrent events from
    // interleaving mid-record on POSIX pipes.
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(line.as_bytes());
}

/// Render an event record (including trailing newline) without emitting
/// it — the pure core of [`event`], used directly by tests.
pub fn render_event(ts_us: u64, level: Level, name: &str, fields: &[(&str, &str)]) -> String {
    let mut s = String::with_capacity(64 + fields.len() * 24);
    s.push_str("{\"ts_us\":");
    s.push_str(&ts_us.to_string());
    s.push_str(",\"level\":\"");
    s.push_str(level.as_str());
    s.push_str("\",\"event\":");
    push_json_str(&mut s, name);
    for (k, v) in fields {
        s.push(',');
        push_json_str(&mut s, k);
        s.push(':');
        push_json_str(&mut s, v);
    }
    s.push_str("}\n");
    s
}

/// Append `v` as a JSON string literal (quoted, escaped).
fn push_json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names_round_trip() {
        for l in [
            Level::Debug,
            Level::Info,
            Level::Warn,
            Level::Error,
            Level::Off,
        ] {
            assert_eq!(Level::from_name(l.as_str()), Some(l));
        }
        assert_eq!(Level::from_name("verbose"), None);
    }

    #[test]
    fn render_is_one_json_line() {
        let line = render_event(
            42,
            Level::Warn,
            "spool_skip",
            &[("job", "j-3"), ("error", "bad \"header\"\nline 2")],
        );
        assert_eq!(
            line,
            "{\"ts_us\":42,\"level\":\"warn\",\"event\":\"spool_skip\",\
             \"job\":\"j-3\",\"error\":\"bad \\\"header\\\"\\nline 2\"}\n"
        );
        // Exactly one newline, at the end: a JSONL record.
        assert_eq!(line.matches('\n').count(), 1);
    }

    #[test]
    fn control_chars_are_escaped() {
        let line = render_event(0, Level::Error, "e", &[("k", "a\u{1}b\tc")]);
        assert!(line.contains("\\u0001"));
        assert!(line.contains("\\t"));
    }

    #[test]
    fn default_level_is_warn_and_orders() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert!(Level::Error < Level::Off);
        // Don't assert the live global here (parallel tests may set it);
        // just check the setter/getter round-trips.
        set_log_level(Level::Info);
        assert_eq!(log_level(), Level::Info);
        set_log_level(Level::Warn);
        assert_eq!(log_level(), Level::Warn);
    }
}
