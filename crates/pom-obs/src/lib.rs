//! # pom-obs — workspace-wide observability
//!
//! The source paper models how performance dynamics (desync waves,
//! bottleneck evolution) propagate through a machine that can only be
//! *seen* through tracing and metrics; this crate gives the reproduction
//! stack the same kind of runtime introspection. It is deliberately
//! dependency-free (the build environment has no registry access): a
//! process-global metrics registry over `std::sync::atomic`, monotonic
//! span timers, and a leveled structured-event logger emitting JSONL.
//!
//! ## Shape
//!
//! * [`metrics`] — [`Counter`], [`Gauge`], log2-bucketed [`Histogram`]
//!   (p50/p90/p99 extraction), and the [`Registry`] that renders them in
//!   Prometheus text exposition format for `GET /metrics`.
//! * [`span`] — [`Span`], a monotonic-clock timer that records its
//!   elapsed microseconds into a histogram on drop.
//! * [`log`] — leveled structured events ([`event`]) written as one JSONL
//!   record per call, with `key=value` fields.
//!
//! ## The overhead contract
//!
//! Instrumentation is behind a runtime switch ([`set_enabled`], default
//! **off**). Hot paths check [`enabled`] — one relaxed atomic load — and
//! skip all clock reads and metric updates when it is off; per-step inner
//! loops are never instrumented directly (solvers count locally and flush
//! whole-integration totals once). `bench_steps` gates the disabled-mode
//! RK4 and sweep throughput at ≤ 2% of an uninstrumented replica
//! (`BENCH_obs.json`).
//!
//! Event logging is filtered by an independent level switch
//! ([`set_log_level`], default [`Level::Warn`]) so warnings surface even
//! when metrics are off.
//!
//! ## Quick use
//!
//! ```
//! use pom_obs::{metrics::Registry, Span};
//!
//! let reg = Registry::new(); // or pom_obs::registry() for the global one
//! let requests = reg.counter("myapp_requests_total", "Requests served.");
//! let latency = reg.histogram("myapp_request_duration_us", "Request latency.");
//!
//! pom_obs::set_enabled(true);
//! {
//!     let _span = Span::start(&latency); // records µs into `latency` on drop
//!     requests.inc();
//! }
//! assert_eq!(requests.get(), 1);
//! assert_eq!(latency.count(), 1);
//! let text = reg.render(); // Prometheus text exposition format
//! assert!(text.contains("# TYPE myapp_requests_total counter"));
//! # pom_obs::set_enabled(false);
//! ```

pub mod log;
pub mod metrics;
pub mod span;

pub use crate::log::{event, render_event, set_log_level, Level};
pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};

/// Global instrumentation switch (default off). Call sites that would do
/// measurable work (clock reads, per-item updates) check [`enabled`]
/// first, so a disabled process pays a few relaxed loads and nothing
/// else.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn instrumentation on or off at runtime.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is on — one relaxed atomic load, the entire
/// disabled-path cost at a call site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
