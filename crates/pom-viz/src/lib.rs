//! Renderers for POM results — the paper tool's three views plus the
//! ITAC-style trace Gantt, in ASCII, SVG and CSV backends.
//!
//! The paper's MATLAB application offers (§3.2): "(i) the circle diagram,
//! where colors represent the different frequencies, (ii) the timeline of
//! phase differences for oscillators, and (iii) the timeline of
//! potentials", with a standard view of `θ_i − ωt` normalized to the
//! lagger. Fig. 2 additionally juxtaposes MPI traces (compute vs.
//! communication per rank over time).
//!
//! Everything here is dependency-free: ASCII renderings for terminals and
//! tests, a tiny hand-rolled SVG writer for files, and CSV for
//! downstream plotting.

pub mod circle;
pub mod csv;
pub mod gantt;
pub mod heatmap;
pub mod svg;
pub mod timeline;

pub use circle::{circle_ascii, circle_svg};
pub use csv::{write_series, write_table};
pub use gantt::{gantt_ascii, gantt_svg};
pub use heatmap::{phase_heatmap_ascii, phase_heatmap_svg};
pub use svg::SvgCanvas;
pub use timeline::{ascii_chart, phase_timeline_csv, potential_timeline_csv};
