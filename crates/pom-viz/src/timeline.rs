//! Timelines — views (ii) and (iii) of the paper's tool, plus a generic
//! ASCII line chart for terminal output.

use pom_core::PomRun;

use crate::csv::write_table;

/// ASCII chart of one series in a `width × height` character frame, with
/// min/max labels. Designed for quick terminal inspection of order
/// parameters, spreads and potentials.
pub fn ascii_chart(title: &str, series: &[(f64, f64)], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 2, "chart too small");
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if series.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let ymin = series.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let ymax = series.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span = if (ymax - ymin).abs() < 1e-300 {
        1.0
    } else {
        ymax - ymin
    };
    let xmin = series[0].0;
    let xmax = series[series.len() - 1].0;
    let xspan = if (xmax - xmin).abs() < 1e-300 {
        1.0
    } else {
        xmax - xmin
    };

    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in series {
        let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
        let row = (((y - ymin) / span) * (height - 1) as f64).round() as usize;
        let row = height - 1 - row.min(height - 1);
        grid[row][col.min(width - 1)] = '*';
    }
    for (k, row) in grid.into_iter().enumerate() {
        let label = if k == 0 {
            format!("{ymax:>10.3e} |")
        } else if k == height - 1 {
            format!("{ymin:>10.3e} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str(&format!("{:>12}t: {xmin:.3} … {xmax:.3}\n", ""));
    out
}

/// View (ii): the timeline of adjacent phase differences
/// `θ_{i+1} − θ_i` as CSV (`t, d0, d1, …`).
pub fn phase_timeline_csv(run: &PomRun) -> String {
    let tr = run.trajectory();
    let n = tr.dim();
    let mut headers: Vec<String> = vec!["t".into()];
    headers.extend((0..n.saturating_sub(1)).map(|i| format!("d{i}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<f64>> = (0..tr.len())
        .map(|k| {
            let mut row = Vec::with_capacity(n);
            row.push(tr.time(k));
            let s = tr.state(k);
            row.extend(s.windows(2).map(|w| w[1] - w[0]));
            row
        })
        .collect();
    write_table(&header_refs, &rows)
}

/// View (iii): the timeline of potential values per oscillator — the
/// total interaction drive `Σ_j T_ij V(θ_j − θ_i)` evaluated along the
/// run — as CSV (`t, v0, v1, …`).
pub fn potential_timeline_csv(run: &PomRun, model: &pom_core::Pom) -> String {
    let tr = run.trajectory();
    let n = tr.dim();
    let mut headers: Vec<String> = vec!["t".into()];
    headers.extend((0..n).map(|i| format!("v{i}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let pot = model.potential();
    let topo = model.topology();
    let rows: Vec<Vec<f64>> = (0..tr.len())
        .map(|k| {
            let s = tr.state(k);
            let mut row = Vec::with_capacity(n + 1);
            row.push(tr.time(k));
            for i in 0..n {
                let v: f64 = topo
                    .neighbors(i)
                    .iter()
                    .map(|&j| pot.value(s[j as usize] - s[i]))
                    .sum();
                row.push(v);
            }
            row
        })
        .collect();
    write_table(&header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_core::{InitialCondition, PomBuilder, Potential};
    use pom_topology::Topology;

    fn small_run() -> (pom_core::Pom, PomRun) {
        let model = PomBuilder::new(4)
            .topology(Topology::ring(4, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(1.0)
            .comm_time(0.0)
            .coupling(4.0)
            .build()
            .unwrap();
        let run = model
            .simulate_with(
                InitialCondition::RandomSpread {
                    amplitude: 0.5,
                    seed: 1,
                },
                &pom_core::SimOptions::new(10.0).samples(20),
            )
            .unwrap();
        (model, run)
    }

    #[test]
    fn chart_renders_trend() {
        let series: Vec<(f64, f64)> = (0..50).map(|k| (k as f64, (k as f64).sqrt())).collect();
        let art = ascii_chart("sqrt", &series, 40, 10);
        assert!(art.starts_with("sqrt\n"));
        assert!(art.contains('*'));
        assert_eq!(art.lines().count(), 12); // title + 10 rows + x label
                                             // Max label appears on the first data row.
        assert!(art.lines().nth(1).unwrap().contains("7.000e0"));
    }

    #[test]
    fn chart_handles_flat_and_empty() {
        let art = ascii_chart("flat", &[(0.0, 2.0), (1.0, 2.0)], 20, 5);
        assert!(art.contains('*'));
        let art = ascii_chart("empty", &[], 20, 5);
        assert!(art.contains("no data"));
    }

    #[test]
    fn phase_timeline_has_n_minus_1_columns() {
        let (_, run) = small_run();
        let csv = phase_timeline_csv(&run);
        let header = csv.lines().next().unwrap();
        assert_eq!(header, "t,d0,d1,d2");
        assert_eq!(csv.lines().count(), 1 + 20);
    }

    #[test]
    fn potential_timeline_reflects_sync() {
        let (model, run) = small_run();
        let csv = potential_timeline_csv(&run, &model);
        assert_eq!(csv.lines().next().unwrap(), "t,v0,v1,v2,v3");
        // At the end the system is nearly synchronized ⇒ potentials ≈ 0.
        let last = csv.lines().last().unwrap();
        let vals: Vec<f64> = last
            .split(',')
            .skip(1)
            .map(|v| v.parse().unwrap())
            .collect();
        for v in vals {
            assert!(v.abs() < 0.05, "potential should vanish near sync: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_rejected() {
        ascii_chart("x", &[(0.0, 1.0)], 4, 1);
    }
}
