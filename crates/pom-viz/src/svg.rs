//! Minimal SVG document builder (no dependencies).
//!
//! Supports exactly what the POM figures need: lines, polylines, circles,
//! rectangles and text, with a y-up data coordinate system mapped onto
//! the SVG's y-down pixel space.

use std::fmt::Write as _;

/// A fixed-size SVG canvas with a data-space viewport.
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    x_range: (f64, f64),
    y_range: (f64, f64),
    body: String,
}

impl SvgCanvas {
    /// Create a canvas of `width × height` pixels whose drawing commands
    /// use data coordinates: `x ∈ x_range`, `y ∈ y_range` (y grows
    /// upward, as on paper).
    pub fn new(width: f64, height: f64, x_range: (f64, f64), y_range: (f64, f64)) -> Self {
        assert!(width > 0.0 && height > 0.0);
        assert!(x_range.1 > x_range.0 && y_range.1 > y_range.0);
        Self {
            width,
            height,
            x_range,
            y_range,
            body: String::new(),
        }
    }

    fn px(&self, x: f64) -> f64 {
        (x - self.x_range.0) / (self.x_range.1 - self.x_range.0) * self.width
    }

    fn py(&self, y: f64) -> f64 {
        self.height - (y - self.y_range.0) / (self.y_range.1 - self.y_range.0) * self.height
    }

    /// Straight line between two data points.
    pub fn line(&mut self, a: (f64, f64), b: (f64, f64), stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="{stroke}" stroke-width="{width}"/>"#,
            self.px(a.0),
            self.py(a.1),
            self.px(b.0),
            self.py(b.1),
        );
    }

    /// Polyline through data points.
    pub fn polyline(&mut self, pts: &[(f64, f64)], stroke: &str, width: f64) {
        if pts.len() < 2 {
            return;
        }
        let coords: Vec<String> = pts
            .iter()
            .map(|p| format!("{:.2},{:.2}", self.px(p.0), self.py(p.1)))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}"/>"#,
            coords.join(" "),
        );
    }

    /// Filled circle at a data point (radius in pixels).
    pub fn circle(&mut self, center: (f64, f64), r_px: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{:.2}" cy="{:.2}" r="{r_px:.2}" fill="{fill}"/>"#,
            self.px(center.0),
            self.py(center.1),
        );
    }

    /// Axis-aligned rectangle between two data corners.
    pub fn rect(&mut self, lo: (f64, f64), hi: (f64, f64), fill: &str) {
        let (x0, x1) = (self.px(lo.0), self.px(hi.0));
        let (y0, y1) = (self.py(hi.1), self.py(lo.1)); // y flips
        let _ = writeln!(
            self.body,
            r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{fill}"/>"#,
            x0.min(x1),
            y0.min(y1),
            (x1 - x0).abs(),
            (y1 - y0).abs(),
        );
    }

    /// Text label anchored at a data point.
    pub fn text(&mut self, at: (f64, f64), size_px: f64, content: &str) {
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"<text x="{:.2}" y="{:.2}" font-size="{size_px}" font-family="monospace">{escaped}</text>"#,
            self.px(at.0),
            self.py(at.1),
        );
    }

    /// Finish the document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n{body}</svg>\n",
            w = self.width,
            h = self.height,
            body = self.body,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canvas_maps_corners() {
        let mut c = SvgCanvas::new(100.0, 50.0, (0.0, 10.0), (0.0, 1.0));
        c.circle((0.0, 0.0), 2.0, "red"); // bottom-left → (0, 50)
        c.circle((10.0, 1.0), 2.0, "blue"); // top-right → (100, 0)
        let s = c.render();
        assert!(s.contains(r#"cx="0.00" cy="50.00""#), "{s}");
        assert!(s.contains(r#"cx="100.00" cy="0.00""#), "{s}");
    }

    #[test]
    fn render_is_wellformed() {
        let mut c = SvgCanvas::new(10.0, 10.0, (0.0, 1.0), (0.0, 1.0));
        c.line((0.0, 0.0), (1.0, 1.0), "black", 1.0);
        c.polyline(&[(0.0, 0.0), (0.5, 1.0), (1.0, 0.0)], "green", 0.5);
        c.rect((0.1, 0.1), (0.9, 0.9), "#eee");
        c.text((0.5, 0.5), 8.0, "a<b & c");
        let s = c.render();
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert!(s.contains("&lt;b &amp; c"));
        assert_eq!(s.matches("<line").count(), 1);
        assert_eq!(s.matches("<polyline").count(), 1);
    }

    #[test]
    fn short_polyline_is_skipped() {
        let mut c = SvgCanvas::new(10.0, 10.0, (0.0, 1.0), (0.0, 1.0));
        c.polyline(&[(0.5, 0.5)], "red", 1.0);
        assert!(!c.render().contains("polyline"));
    }

    #[test]
    #[should_panic]
    fn rejects_empty_ranges() {
        SvgCanvas::new(10.0, 10.0, (1.0, 1.0), (0.0, 1.0));
    }
}
