//! ITAC-style trace Gantt charts (the inner images of paper Fig. 2).
//!
//! Ranks are rows, time runs left to right; compute is dark, waiting is
//! light — idle waves appear as diagonal light bands, computational
//! wavefronts as persistent stair-steps.

use pom_mpisim::{SegmentKind, SimTrace};

use crate::svg::SvgCanvas;

/// ASCII Gantt: one row per rank, `width` characters across the full
/// makespan. `█` = computing, `·` = waiting, ` ` = finished/not started.
/// Returns a string of `n_ranks` lines plus a time axis.
pub fn gantt_ascii(trace: &SimTrace, width: usize) -> String {
    assert!(width >= 10, "gantt needs at least 10 columns");
    let makespan = trace.makespan();
    let mut out = String::new();
    let col_time = |c: usize| (c as f64 + 0.5) / width as f64 * makespan;

    for r in 0..trace.n_ranks() {
        let rank = trace.rank(r);
        let mut row = vec![' '; width];
        let mut seg_idx = 0;
        let segs = rank.segments();
        for (c, cell) in row.iter_mut().enumerate() {
            let t = col_time(c);
            while seg_idx < segs.len() && segs[seg_idx].t1 < t {
                seg_idx += 1;
            }
            if seg_idx < segs.len() && segs[seg_idx].t0 <= t {
                *cell = match segs[seg_idx].kind {
                    SegmentKind::Compute => '█',
                    SegmentKind::Wait => '·',
                };
            }
        }
        let line: String = row.into_iter().collect();
        out.push_str(&format!("{r:>4} |{}|\n", line));
    }
    out.push_str(&format!(
        "{:>5} 0{:>width$}\n",
        "t:",
        format!("{makespan:.4}s"),
        width = width
    ));
    out
}

/// SVG Gantt with per-segment rectangles (compute = steel blue, wait =
/// light red, mirroring ITAC's white/red convention on a visible palette).
pub fn gantt_svg(trace: &SimTrace, width_px: f64, row_px: f64) -> String {
    let makespan = trace.makespan().max(f64::MIN_POSITIVE);
    let n = trace.n_ranks() as f64;
    let mut canvas = SvgCanvas::new(width_px, row_px * n, (0.0, makespan), (0.0, n));
    for r in 0..trace.n_ranks() {
        // Rank 0 at the top (screen convention).
        let y_lo = n - (r as f64) - 1.0;
        for seg in trace.rank(r).segments() {
            let fill = match seg.kind {
                SegmentKind::Compute => "#4682b4",
                SegmentKind::Wait => "#f4a9a0",
            };
            canvas.rect((seg.t0, y_lo + 0.05), (seg.t1, y_lo + 0.95), fill);
        }
    }
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_kernels::Kernel;
    use pom_mpisim::{idle_wave_run, lockstep_run, IdleWaveConfig};

    #[test]
    fn lockstep_gantt_is_mostly_compute() {
        let tr = lockstep_run(6, 8, Kernel::pisolver(), 1e-3).unwrap();
        let art = gantt_ascii(&tr, 60);
        let compute = art.matches('█').count();
        let wait = art.matches('·').count();
        assert!(
            compute > 10 * wait.max(1),
            "compute {compute} wait {wait}:\n{art}"
        );
        assert_eq!(art.lines().count(), 7); // 6 ranks + axis
    }

    #[test]
    fn idle_wave_shows_wait_band() {
        let cfg = IdleWaveConfig {
            n_ranks: 16,
            iterations: 20,
            ..IdleWaveConfig::default()
        };
        let (pert, base) = idle_wave_run(&cfg).unwrap();
        let art_p = gantt_ascii(&pert, 80);
        let art_b = gantt_ascii(&base, 80);
        // The perturbed run has visibly more waiting.
        assert!(art_p.matches('·').count() > art_b.matches('·').count() + 10);
    }

    #[test]
    fn svg_has_one_rect_per_segment_plus_background() {
        let tr = lockstep_run(3, 2, Kernel::pisolver(), 1e-3).unwrap();
        let total_segments: usize = (0..3).map(|r| tr.rank(r).segments().len()).sum();
        let svg = gantt_svg(&tr, 400.0, 12.0);
        assert_eq!(svg.matches("<rect").count(), total_segments + 1);
        assert!(svg.contains("#4682b4"));
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn narrow_gantt_rejected() {
        let tr = lockstep_run(2, 2, Kernel::pisolver(), 1e-3).unwrap();
        gantt_ascii(&tr, 5);
    }
}
