//! CSV writers (hand-rolled; the format is trivial and the data is all
//! numeric).

use std::fmt::Write as _;

/// Render a two-column series as CSV with the given header names.
pub fn write_series(header: (&str, &str), series: &[(f64, f64)]) -> String {
    let mut out = String::with_capacity(series.len() * 24 + 32);
    let _ = writeln!(out, "{},{}", sanitize(header.0), sanitize(header.1));
    for (x, y) in series {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Render a multi-column table: one header per column, rows of equal
/// length.
///
/// # Panics
/// Panics if a row's length differs from the header count.
pub fn write_table(headers: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    let cols: Vec<String> = headers.iter().map(|h| sanitize(h)).collect();
    let _ = writeln!(out, "{}", cols.join(","));
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), headers.len(), "row {i} has wrong arity");
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Replace commas/newlines in headers so the CSV stays rectangular.
fn sanitize(s: &str) -> String {
    s.replace([',', '\n', '\r'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_roundtrip() {
        let csv = write_series(("t", "r"), &[(0.0, 1.0), (0.5, 0.25)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["t,r", "0,1", "0.5,0.25"]);
    }

    #[test]
    fn table_layout() {
        let csv = write_table(
            &["a", "b", "c"],
            &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b,c");
        assert_eq!(lines[2], "4,5,6");
    }

    #[test]
    fn headers_sanitized() {
        let csv = write_series(("time,s", "x"), &[]);
        assert!(csv.starts_with("time_s,x"));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn ragged_rows_rejected() {
        write_table(&["a", "b"], &[vec![1.0]]);
    }
}
