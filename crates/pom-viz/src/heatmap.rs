//! Rank × time heatmaps of model runs — the model-side analog of the
//! trace Gantt: an idle wave appears as a diagonal ridge of phase lag,
//! a computational wavefront as a persistent vertical gradient.

use pom_core::PomRun;

use crate::svg::SvgCanvas;

/// Shade characters from low to high.
const SHADES: [char; 7] = [' ', '.', ':', '-', '=', '#', '@'];

/// ASCII heatmap of the lagger-normalized phases `θ_i − ωt − min`:
/// one row per oscillator, `width` time columns, darker = further ahead
/// of the lagger.
pub fn phase_heatmap_ascii(run: &PomRun, width: usize) -> String {
    assert!(width >= 10, "heatmap needs at least 10 columns");
    let tr = run.trajectory();
    let n = tr.dim();
    let samples = tr.len();
    if samples == 0 {
        return String::from("(empty run)\n");
    }

    // Collect the normalized field and its maximum for scaling.
    let mut field = vec![vec![0.0; width]; n];
    let mut v_max: f64 = 0.0;
    for (c, col) in (0..width).map(|c| {
        let k = c * (samples - 1) / width.max(1);
        (c, run.normalized_snapshot(k.min(samples - 1)))
    }) {
        for i in 0..n {
            field[i][c] = col[i];
            v_max = v_max.max(col[i]);
        }
    }
    let scale = if v_max <= 0.0 { 1.0 } else { v_max };

    let mut out = String::new();
    for (i, row) in field.iter().enumerate() {
        let line: String = row
            .iter()
            .map(|&v| {
                let idx = ((v / scale) * (SHADES.len() - 1) as f64).round() as usize;
                SHADES[idx.min(SHADES.len() - 1)]
            })
            .collect();
        out.push_str(&format!("{i:>4} |{}|\n", line));
    }
    out.push_str(&format!(
        "{:>5} t: {:.2} … {:.2}   (darkest = {v_max:.3} rad ahead of lagger)\n",
        "",
        tr.time(0),
        tr.time(samples - 1)
    ));
    out
}

/// SVG heatmap with a blue→red colormap.
pub fn phase_heatmap_svg(run: &PomRun, width_px: f64, row_px: f64) -> String {
    let tr = run.trajectory();
    let n = tr.dim();
    let samples = tr.len();
    let cols = samples.clamp(1, 400);
    let mut canvas = SvgCanvas::new(
        width_px,
        row_px * n as f64,
        (tr.time(0), tr.time(samples - 1).max(tr.time(0) + 1e-9)),
        (0.0, n as f64),
    );
    // Precompute normalization.
    let mut v_max: f64 = 1e-300;
    let snaps: Vec<Vec<f64>> = (0..cols)
        .map(|c| {
            let k = c * (samples - 1) / cols.max(1);
            let s = run.normalized_snapshot(k);
            for &v in &s {
                v_max = v_max.max(v);
            }
            s
        })
        .collect();
    for (c, snap) in snaps.iter().enumerate() {
        let t0 = tr.time(c * (samples - 1) / cols.max(1));
        let t1 = tr.time(((c + 1) * (samples - 1) / cols.max(1)).min(samples - 1));
        if t1 <= t0 {
            continue;
        }
        for (i, &v) in snap.iter().enumerate() {
            let w = (v / v_max).clamp(0.0, 1.0);
            let r = (60.0 + 180.0 * w) as u8;
            let b = (200.0 - 160.0 * w) as u8;
            let y_lo = (n - i - 1) as f64;
            canvas.rect((t0, y_lo), (t1, y_lo + 1.0), &format!("rgb({r},80,{b})"));
        }
    }
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_core::{InitialCondition, Normalization, PomBuilder, Potential, SimOptions};
    use pom_noise::{DelayEvent, OneOffDelays};
    use pom_topology::Topology;

    fn wave_run() -> PomRun {
        PomBuilder::new(12)
            .topology(Topology::ring(12, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(2.0)
            .normalization(Normalization::ByDegree)
            .local_noise(OneOffDelays::new(vec![DelayEvent {
                rank: 5,
                t_start: 2.0,
                duration: 2.0,
                extra: 1.0,
            }]))
            .build()
            .unwrap()
            .simulate_with(
                InitialCondition::Synchronized,
                &SimOptions::new(30.0).samples(120),
            )
            .unwrap()
    }

    #[test]
    fn heatmap_rows_match_oscillators() {
        let run = wave_run();
        let art = phase_heatmap_ascii(&run, 60);
        assert_eq!(art.lines().count(), 13); // 12 rows + scale line
                                             // The wave leaves visible shading.
        assert!(art.contains('@') || art.contains('#'), "{art}");
    }

    #[test]
    fn synchronized_run_is_blank() {
        let run = PomBuilder::new(6)
            .topology(Topology::ring(6, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(1.0)
            .comm_time(0.0)
            .coupling(2.0)
            .build()
            .unwrap()
            .simulate(InitialCondition::Synchronized, 10.0)
            .unwrap();
        let art = phase_heatmap_ascii(&run, 40);
        // No deviations: only the lightest shade appears.
        assert!(!art.contains('@'));
        assert!(!art.contains('#'));
    }

    #[test]
    fn svg_heatmap_renders_rects() {
        let run = wave_run();
        let svg = phase_heatmap_svg(&run, 400.0, 6.0);
        assert!(svg.matches("<rect").count() > 100);
        assert!(svg.contains("rgb("));
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn narrow_heatmap_rejected() {
        phase_heatmap_ascii(&wave_run(), 4);
    }
}
