//! The circle diagram — view (i) of the paper's tool.
//!
//! Oscillator phases are drawn modulo 2π as dots on a circle. A
//! synchronized system collapses to one dot; a computational wavefront
//! spreads the dots around the rim (paper Fig. 2's circular insets show
//! exactly this asymptotic state).

use std::f64::consts::TAU;

use crate::svg::SvgCanvas;

/// ASCII circle diagram of size `size × size` characters (odd sizes look
/// best). Dots are `o`; overlapping oscillators (a synchronized cluster)
/// are shown as `@`; the center is `+`.
pub fn circle_ascii(phases: &[f64], size: usize) -> String {
    assert!(size >= 5, "circle needs at least 5×5 cells");
    let mut grid = vec![vec![' '; size]; size];
    let c = (size as f64 - 1.0) / 2.0;
    let r = c - 0.5;

    // Rim.
    for k in 0..360 {
        let a = k as f64 * TAU / 360.0;
        let x = (c + r * a.cos()).round() as usize;
        let y = (c - r * a.sin()).round() as usize;
        if x < size && y < size {
            grid[y][x] = '.';
        }
    }
    grid[c.round() as usize][c.round() as usize] = '+';

    for &p in phases {
        let a = p.rem_euclid(TAU);
        let x = (c + r * a.cos()).round() as usize;
        let y = (c - r * a.sin()).round() as usize;
        if x < size && y < size {
            grid[y][x] = if grid[y][x] == 'o' || grid[y][x] == '@' {
                '@'
            } else {
                'o'
            };
        }
    }

    let mut out = String::with_capacity(size * (size + 1));
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// SVG circle diagram; dot shading encodes the instantaneous frequency
/// deviation when `freqs` is supplied (blue fast, gold slow — the paper's
/// convention), uniform steel-blue otherwise.
pub fn circle_svg(phases: &[f64], freqs: Option<&[f64]>, size_px: f64) -> String {
    let mut canvas = SvgCanvas::new(size_px, size_px, (-1.3, 1.3), (-1.3, 1.3));
    // Rim.
    let rim: Vec<(f64, f64)> = (0..=128)
        .map(|k| {
            let a = k as f64 * TAU / 128.0;
            (a.cos(), a.sin())
        })
        .collect();
    canvas.polyline(&rim, "#999", 1.0);

    let (fmin, fmax) = match freqs {
        Some(f) if !f.is_empty() => {
            let lo = f.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = f.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (lo, hi)
        }
        _ => (0.0, 0.0),
    };

    for (i, &p) in phases.iter().enumerate() {
        let a = p.rem_euclid(TAU);
        let fill = match freqs {
            Some(f) if fmax > fmin => {
                // Normalize: 1 = fastest (blue), 0 = slowest (gold).
                let w = (f[i] - fmin) / (fmax - fmin);
                let r = (218.0 + (70.0 - 218.0) * w) as u8;
                let g = (165.0 + (130.0 - 165.0) * w) as u8;
                let b = (32.0 + (180.0 - 32.0) * w) as u8;
                format!("rgb({r},{g},{b})")
            }
            _ => "steelblue".to_string(),
        };
        canvas.circle((a.cos(), a.sin()), 4.0, &fill);
    }
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_cluster_is_one_overlap_dot() {
        let art = circle_ascii(&[0.3; 10], 21);
        assert_eq!(art.matches('@').count() + art.matches('o').count(), 1);
        // All ten landed on the same cell.
        assert_eq!(art.matches('@').count(), 1);
    }

    #[test]
    fn spread_phases_make_many_dots() {
        let phases: Vec<f64> = (0..8).map(|k| k as f64 * TAU / 8.0).collect();
        let art = circle_ascii(&phases, 21);
        let dots = art.matches('o').count() + art.matches('@').count();
        assert!(dots >= 7, "want ≥7 distinct dots, got {dots}:\n{art}");
    }

    #[test]
    fn phase_wrapping() {
        // θ and θ + 2π land on the same cell.
        let a = circle_ascii(&[1.0], 15);
        let b = circle_ascii(&[1.0 + TAU], 15);
        assert_eq!(a, b);
    }

    #[test]
    fn ascii_has_rim_and_center() {
        let art = circle_ascii(&[], 11);
        assert!(art.contains('+'));
        assert!(art.matches('.').count() > 10);
    }

    #[test]
    fn svg_contains_dots_and_rim() {
        let phases = [0.0, 1.0, 2.0];
        let svg = circle_svg(&phases, None, 200.0);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("polyline"));
        assert!(svg.contains("steelblue"));
    }

    #[test]
    fn svg_frequency_coloring() {
        let phases = [0.0, 1.0];
        let freqs = [1.0, 2.0];
        let svg = circle_svg(&phases, Some(&freqs), 200.0);
        // Two distinct rgb fills.
        assert_eq!(svg.matches("rgb(").count(), 2);
        assert!(svg.contains("rgb(218,165,32)")); // slowest = gold
        assert!(svg.contains("rgb(70,130,180)")); // fastest = blue
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn tiny_circle_rejected() {
        circle_ascii(&[0.0], 3);
    }
}
