//! Property-based tests for the model core: potentials, observables and
//! short integration runs.

use pom_core::{
    adjacent_differences, lagger_normalized, order_parameter, phase_spread, stability,
    transport_coefficients, winding_number, InitialCondition, Normalization, PomBuilder, Potential,
    RhsKernel, SimOptions,
};
use pom_ode::OdeSystem;
use pom_topology::Topology;
use proptest::prelude::*;

fn potential_strategy() -> impl Strategy<Value = Potential> {
    prop_oneof![
        Just(Potential::Tanh),
        (0.5f64..6.0).prop_map(Potential::desync),
        Just(Potential::KuramotoSin),
    ]
}

proptest! {
    /// Every potential is odd and bounded by 1.
    #[test]
    fn potentials_odd_and_bounded(pot in potential_strategy(), x in -20.0f64..20.0) {
        prop_assert!((pot.value(x) + pot.value(-x)).abs() < 1e-12);
        prop_assert!(pot.value(x).abs() <= 1.0 + 1e-12);
    }

    /// The derivative matches a central finite difference away from the
    /// desync potential's kink at |x| = σ.
    #[test]
    fn potential_derivative_consistent(pot in potential_strategy(), x in -8.0f64..8.0) {
        if let Potential::Desync { sigma } = pot {
            prop_assume!((x.abs() - sigma).abs() > 1e-3);
        }
        let h = 1e-6;
        let fd = (pot.value(x + h) - pot.value(x - h)) / (2.0 * h);
        prop_assert!((fd - pot.derivative(x)).abs() < 1e-4,
            "{}: x={x}, fd={fd}, d={}", pot.name(), pot.derivative(x));
    }

    /// Order parameter is in [0, 1] and invariant under global rotation.
    #[test]
    fn order_parameter_invariances(
        phases in prop::collection::vec(-10.0f64..10.0, 1..40),
        shift in -10.0f64..10.0,
    ) {
        let (r, _) = order_parameter(&phases);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
        let shifted: Vec<f64> = phases.iter().map(|p| p + shift).collect();
        let (r2, _) = order_parameter(&shifted);
        prop_assert!((r - r2).abs() < 1e-9);
    }

    /// Lagger normalization: non-negative, exactly one zero (up to fp),
    /// and differences between oscillators are preserved.
    #[test]
    fn lagger_normalization_preserves_differences(
        phases in prop::collection::vec(-5.0f64..5.0, 2..30),
        omega in 0.1f64..10.0,
        t in 0.0f64..100.0,
    ) {
        let norm = lagger_normalized(&phases, omega, t);
        prop_assert!(norm.iter().all(|&v| v >= -1e-12));
        prop_assert!(norm.iter().any(|&v| v.abs() < 1e-9));
        for i in 1..phases.len() {
            prop_assert!(((norm[i] - norm[0]) - (phases[i] - phases[0])).abs() < 1e-9);
        }
    }

    /// Phase spread bounds the mean adjacent difference.
    #[test]
    fn spread_bounds_gaps(phases in prop::collection::vec(-5.0f64..5.0, 2..30)) {
        let spread = phase_spread(&phases);
        for d in adjacent_differences(&phases) {
            prop_assert!(d.abs() <= spread + 1e-12);
        }
    }

    /// Winding numbers add under concatenation of uniform ramps (steps of
    /// exactly ±π are ambiguous, so require more than 2 samples per turn).
    #[test]
    fn winding_of_uniform_ramp(n in 4usize..40, turns in -3i64..=3) {
        prop_assume!(n as i64 > 2 * turns.abs());
        let phases: Vec<f64> = (0..n)
            .map(|i| std::f64::consts::TAU * turns as f64 * i as f64 / n as f64)
            .collect();
        prop_assert_eq!(winding_number(&phases), turns);
    }

    /// Short integration runs stay finite and keep phases ordered in time
    /// (every oscillator's phase strictly increases — frequencies are
    /// positive and coupling is bounded).
    #[test]
    fn short_runs_are_sane(
        pot in potential_strategy(),
        n in 3usize..16,
        vp in 0.0f64..6.0,
        seed in 0u64..1000,
    ) {
        let model = PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(pot)
            .compute_time(0.9)
            .comm_time(0.1)
            .coupling(vp)
            .normalization(Normalization::ByDegree)
            .build()
            .unwrap();
        let run = model
            .simulate_with(
                InitialCondition::RandomSpread { amplitude: 0.5, seed },
                &SimOptions::new(5.0).samples(20),
            )
            .unwrap();
        let tr = run.trajectory();
        for i in 0..n {
            let series = tr.component(i);
            prop_assert!(series.iter().all(|v| v.is_finite()));
            // vp ≤ 6 with degree normalization: coupling ≤ 6 < ω = 2π ⇒
            // monotone phases.
            for w in series.windows(2) {
                prop_assert!(w[1] > w[0], "phase went backwards");
            }
        }
    }

    /// The Goldstone mode is neutral for every potential, slope and
    /// stencil — symmetry, not fine-tuning.
    #[test]
    fn goldstone_always_neutral(
        pot in potential_strategy(),
        delta in -2.0f64..2.0,
        d1 in 1i32..4,
        d2 in -4i32..-1,
    ) {
        let rates = stability::growth_rates(pot, 0.7, &[d2, d1], 16, delta);
        prop_assert!(rates[0].abs() < 1e-12);
    }

    /// Continuum coefficients are linear in the coupling scale.
    #[test]
    fn transport_linear_in_scale(pot in potential_strategy(), s in 0.1f64..3.0, delta in -1.0f64..1.0) {
        let c1 = transport_coefficients(pot, s, &[-2, -1, 1], delta);
        let c2 = transport_coefficients(pot, 2.0 * s, &[-2, -1, 1], delta);
        prop_assert!((c2.drift - 2.0 * c1.drift).abs() < 1e-9);
        prop_assert!((c2.diffusion - 2.0 * c1.diffusion).abs() < 1e-9);
    }

    /// `SinCosSplit` matches `Exact` within 1e-12 max-abs on the raw RHS,
    /// over random phase states, potentials and topology families — both
    /// the ring-stencil fast path and the CSR fallback.
    #[test]
    fn split_kernel_matches_exact_within_policy(
        pot in potential_strategy(),
        n in 4usize..48,
        ring in any::<bool>(),
        vp in 0.5f64..4.0,
        seed in any::<u64>(),
    ) {
        let topology = if ring {
            Topology::ring(n, &[-2, -1, 1])
        } else {
            Topology::chain(n, &[-2, -1, 1, 3])
        };
        let build = |kernel: RhsKernel| {
            PomBuilder::new(n)
                .topology(topology.clone())
                .potential(pot)
                .compute_time(0.9)
                .comm_time(0.1)
                .coupling(vp)
                .normalization(Normalization::ByDegree)
                .kernel(kernel)
                .build()
                .unwrap()
        };
        let exact = build(RhsKernel::Exact);
        let split = build(RhsKernel::SinCosSplit);
        // Random phases covering several revolutions (hits both the sine
        // branch and the saturated |x| ≥ σ branch of the desync potential).
        let mut rng = seed;
        let theta: Vec<f64> = (0..n)
            .map(|_| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((rng >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 40.0
            })
            .collect();
        let mut d_exact = vec![0.0; n];
        let mut d_split = vec![0.0; n];
        OdeSystem::eval(&exact, 0.0, &theta, &mut d_exact);
        OdeSystem::eval(&split, 0.0, &theta, &mut d_split);
        let max_err = d_exact
            .iter()
            .zip(&d_split)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(max_err < 1e-12, "max |exact − split| = {max_err:e}");
    }
}

/// Evaluate the RHS of `model` once on a deterministic pseudo-random state.
fn eval_once(model: &pom_core::Pom, n: usize) -> Vec<f64> {
    let theta: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7137).sin() * 3.0).collect();
    let mut dtheta = vec![0.0; n];
    OdeSystem::eval(model, 0.0, &theta, &mut dtheta);
    dtheta
}

/// Intra-run parallelism must be invisible: chunked rows perform the same
/// per-row arithmetic, so `rhs_threads` never changes a single bit — for
/// the exact kernel *and* the split kernel. (n = 4096 exceeds the
/// pool's minimum row count, so the threaded path really runs.)
#[test]
fn rhs_threads_bitwise_invariant() {
    let n = 4096;
    for kernel in [RhsKernel::Exact, RhsKernel::SinCosSplit] {
        let build = |threads: usize| {
            PomBuilder::new(n)
                .topology(Topology::ring(n, &[-1, 1]))
                .potential(Potential::desync(3.0))
                .compute_time(0.9)
                .comm_time(0.1)
                .coupling(4.0)
                .normalization(Normalization::ByDegree)
                .kernel(kernel)
                .rhs_threads(threads)
                .build()
                .unwrap()
        };
        let serial = eval_once(&build(1), n);
        for threads in [2, 3, 5] {
            let par = eval_once(&build(threads), n);
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{kernel:?} diverged at rhs_threads = {threads}"
            );
        }
    }
}

/// The DDE path fans rows across the pool too; delays must not change
/// under intra-run parallelism.
#[test]
fn dde_rhs_threads_bitwise_invariant() {
    use pom_core::SolverChoice;
    let n = 3000;
    let run = |threads: usize| {
        let model = PomBuilder::new(n)
            .topology(Topology::ring(n, &[-1, 1]))
            .potential(Potential::Tanh)
            .compute_time(1.0)
            .comm_time(0.0)
            .coupling(4.0)
            .interaction_noise(pom_noise::ConstantDelay::new(0.05))
            .rhs_threads(threads)
            .build()
            .unwrap();
        assert!(model.has_delays());
        model
            .simulate_with(
                InitialCondition::RandomSpread {
                    amplitude: 0.4,
                    seed: 11,
                },
                &SimOptions::new(0.5)
                    .samples(5)
                    .solver(SolverChoice::FixedRk4 { h: 0.05 }),
            )
            .unwrap()
    };
    let a = run(1);
    let b = run(4);
    let (ta, tb) = (a.trajectory(), b.trajectory());
    for k in 0..ta.len() {
        let (sa, sb) = (ta.state(k), tb.state(k));
        assert!(
            sa.iter().zip(sb).all(|(x, y)| x.to_bits() == y.to_bits()),
            "DDE trajectories diverged at sample {k}"
        );
    }
}
