//! Differential tests for [`PomEnsemble`]: the natively batched
//! R-replica integration — interleaved state, one sin/cos pass, row-outer
//! stencil/CSR accumulation — must be **bitwise** identical to R
//! independent [`Pom`] runs, per kernel, per solver path, per RHS thread
//! count.
//!
//! This is the correctness contract that lets ensemble sweep columns
//! (`<obs>_mean`/`<obs>_ci95`/…) claim the same determinism as the plain
//! columns: replica 0 of a batch IS the single run, bit for bit.

use pom_core::{
    InitialCondition, Pom, PomBuilder, PomEnsemble, Potential, RhsKernel, SimOptions, SolverChoice,
};
use pom_noise::{RandomCommDelay, WhiteJitter};
use pom_ode::observe::CollectObserver;
use pom_topology::Topology;
use proptest::prelude::*;

/// The kernel/potential/topology variants with distinct batched code
/// paths: exact CSR walk, split-kernel stencil walk, split-kernel CSR
/// walk, each for the potentials it dispatches on.
#[derive(Clone, Copy, Debug)]
enum Variant {
    ExactTanhRing,
    ExactDesyncChain,
    SplitSinRing,
    SplitSinChain,
    SplitDesyncRing,
}

const VARIANTS: [Variant; 5] = [
    Variant::ExactTanhRing,
    Variant::ExactDesyncChain,
    Variant::SplitSinRing,
    Variant::SplitSinChain,
    Variant::SplitDesyncRing,
];

fn build_member(
    variant: Variant,
    n: usize,
    coupling: f64,
    rhs_threads: usize,
    noise_seed: Option<u64>,
) -> Pom {
    let (potential, kernel, topology) = match variant {
        Variant::ExactTanhRing => (
            Potential::Tanh,
            RhsKernel::Exact,
            Topology::ring(n, &[-1, 1]),
        ),
        Variant::ExactDesyncChain => (
            Potential::desync(2.0),
            RhsKernel::Exact,
            Topology::chain(n, &[-1, 1]),
        ),
        Variant::SplitSinRing => (
            Potential::KuramotoSin,
            RhsKernel::SinCosSplit,
            Topology::ring(n, &[-2, -1, 1, 2]),
        ),
        Variant::SplitSinChain => (
            Potential::KuramotoSin,
            RhsKernel::SinCosSplit,
            Topology::chain(n, &[-1, 1]),
        ),
        Variant::SplitDesyncRing => (
            Potential::desync(2.5),
            RhsKernel::SinCosSplit,
            Topology::ring(n, &[-1, 1]),
        ),
    };
    let mut b = PomBuilder::new(n)
        .topology(topology)
        .potential(potential)
        .kernel(kernel)
        .compute_time(0.9)
        .comm_time(0.1)
        .coupling(coupling)
        .rhs_threads(rhs_threads);
    if let Some(seed) = noise_seed {
        b = b.local_noise(WhiteJitter::new(seed, 0.04, 0.5));
    }
    b.build().unwrap()
}

fn replica_init(seed: u64) -> InitialCondition {
    InitialCondition::RandomSpread {
        amplitude: 0.8,
        seed,
    }
}

/// Batched vs independent, asserting final states and the full observer
/// stream bitwise.
fn assert_batched_matches_independent(members: impl Fn(usize) -> Pom, r: usize, opts: &SimOptions) {
    let inits: Vec<InitialCondition> = (0..r).map(|rep| replica_init(1000 + rep as u64)).collect();

    let mut want_final = Vec::new();
    let mut want_obs = Vec::new();
    for (rep, init) in inits.iter().enumerate() {
        let mut obs = CollectObserver::default();
        let sum = members(rep)
            .simulate_observed(init.clone(), opts, &mut obs)
            .unwrap();
        want_final.push(sum.final_state().to_vec());
        want_obs.push(obs);
    }

    let ensemble = PomEnsemble::new((0..r).map(&members).collect());
    let mut observers: Vec<CollectObserver> = (0..r).map(|_| CollectObserver::default()).collect();
    let got = ensemble
        .simulate_observed(&inits, opts, &mut observers)
        .unwrap();

    for rep in 0..r {
        assert_eq!(
            got[rep].final_state(),
            &want_final[rep][..],
            "replica {rep}: final state"
        );
        assert_eq!(
            observers[rep].initial, want_obs[rep].initial,
            "replica {rep}: initial observation"
        );
        assert_eq!(
            observers[rep].samples.len(),
            want_obs[rep].samples.len(),
            "replica {rep}: step count"
        );
        for (got_s, want_s) in observers[rep].samples.iter().zip(&want_obs[rep].samples) {
            assert_eq!(got_s, want_s, "replica {rep}: observed step");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Lockstep fixed-step batching: every kernel/potential/topology
    /// variant, noisy and noise-free members, R ∈ {1, 2, 5} — bitwise.
    #[test]
    fn fixed_rk4_batched_is_bitwise_identical(
        vidx in 0usize..5,
        ridx in 0usize..3,
        coupling in 1.0f64..6.0,
        noisy in proptest::arbitrary::any::<bool>(),
        n in 8usize..24,
    ) {
        let variant = VARIANTS[vidx];
        let r = [1usize, 2, 5][ridx];
        let opts = SimOptions::new(4.0).solver(SolverChoice::FixedRk4 { h: 0.02 });
        assert_batched_matches_independent(
            |rep| build_member(variant, n, coupling, 1, noisy.then(|| 77 + rep as u64)),
            r,
            &opts,
        );
    }

    /// The adaptive fallback: `Auto` resolves to Dopri5 for no-delay
    /// models, where the driver runs replicas sequentially — results must
    /// equal the independent path exactly there too.
    #[test]
    fn adaptive_fallback_is_bitwise_identical(
        vidx in 0usize..5,
        coupling in 1.0f64..6.0,
    ) {
        let variant = VARIANTS[vidx];
        let opts = SimOptions::new(3.0);
        assert_batched_matches_independent(
            |rep| build_member(variant, 12, coupling, 1, Some(33 + rep as u64)),
            2,
            &opts,
        );
    }

    /// The delay path: per-replica interaction noise drives each replica's
    /// own `θ_j(t − τ_ij(t))` history lookups through the interleaved
    /// buffer — batched DDE integration stays bitwise identical.
    #[test]
    fn dde_batched_is_bitwise_identical(
        coupling in 1.0f64..5.0,
        mean in 0.05f64..0.2,
        ridx in 0usize..3,
    ) {
        let r = [1usize, 2, 5][ridx];
        let n = 10;
        let member = |rep: usize| {
            PomBuilder::new(n)
                .topology(Topology::ring(n, &[-1, 1]))
                .potential(Potential::Tanh)
                .compute_time(0.9)
                .comm_time(0.1)
                .coupling(coupling)
                .interaction_noise(RandomCommDelay::new(500 + rep as u64, n, mean, mean / 4.0, 0.5))
                .build()
                .unwrap()
        };
        // Auto resolves to the fixed-step DDE integrator here: the
        // batched lockstep path.
        assert_batched_matches_independent(member, r, &SimOptions::new(3.0));
    }

    /// The delay path with a replica-shared field — all members model the
    /// same machine (equal delay fingerprints), so the batched RHS takes
    /// the amortized route: one τ evaluation and one `sample_run` history
    /// lookup per pair. Replicas differ through local noise; results stay
    /// bitwise identical to independent runs.
    #[test]
    fn dde_shared_delay_batched_is_bitwise_identical(
        coupling in 1.0f64..5.0,
        mean in 0.05f64..0.2,
        ridx in 0usize..3,
        constant in proptest::arbitrary::any::<bool>(),
    ) {
        let r = [1usize, 2, 5][ridx];
        let n = 10;
        let member = |rep: usize| {
            let mut b = PomBuilder::new(n)
                .topology(Topology::ring(n, &[-1, 1]))
                .potential(Potential::Tanh)
                .compute_time(0.9)
                .comm_time(0.1)
                .coupling(coupling)
                .local_noise(WhiteJitter::new(40 + rep as u64, 0.04, 0.5));
            if constant {
                b = b.interaction_noise(pom_noise::ConstantDelay::new(mean));
            } else {
                b = b.interaction_noise(RandomCommDelay::new(911, n, mean, mean / 4.0, 0.5));
            }
            b.build().unwrap()
        };
        assert_batched_matches_independent(member, r, &SimOptions::new(3.0));
    }
}

/// Chunk-pool coverage: at `n ≥ 2048` the batched RHS runs through
/// `ChunkPool` row chunks. Results must be bitwise identical to the
/// serial inline walk AND to independent runs at every thread count.
#[test]
fn threaded_batched_rhs_is_bitwise_identical() {
    let n = 2048;
    let r = 2;
    let opts = SimOptions::new(0.2).solver(SolverChoice::FixedRk4 { h: 0.05 });

    let run_ensemble = |rhs_threads: usize| {
        let inits: Vec<InitialCondition> =
            (0..r).map(|rep| replica_init(2000 + rep as u64)).collect();
        let ensemble = PomEnsemble::new(
            (0..r)
                .map(|rep| {
                    build_member(
                        Variant::SplitSinRing,
                        n,
                        3.0,
                        rhs_threads,
                        Some(9 + rep as u64),
                    )
                })
                .collect(),
        );
        let mut observers = vec![pom_core::NoObserver; r];
        ensemble
            .simulate_observed(&inits, &opts, &mut observers)
            .unwrap()
            .into_iter()
            .map(|s| s.final_state().to_vec())
            .collect::<Vec<_>>()
    };

    let serial = run_ensemble(1);
    for threads in [3usize, 8] {
        assert_eq!(
            serial,
            run_ensemble(threads),
            "rhs_threads = {threads} must not change batched results"
        );
    }

    // And the serial batch equals independent runs.
    for (rep, batched) in serial.iter().enumerate() {
        let sum = build_member(Variant::SplitSinRing, n, 3.0, 1, Some(9 + rep as u64))
            .simulate_observed(
                replica_init(2000 + rep as u64),
                &opts,
                &mut pom_core::NoObserver,
            )
            .unwrap();
        assert_eq!(sum.final_state(), &batched[..], "replica {rep}");
    }
}

/// Mismatched members are a caller bug, caught loudly.
#[test]
#[should_panic(expected = "oscillator count differs")]
fn mismatched_sizes_are_rejected() {
    PomEnsemble::new(vec![
        build_member(Variant::ExactTanhRing, 8, 2.0, 1, None),
        build_member(Variant::ExactTanhRing, 12, 2.0, 1, None),
    ]);
}
