//! The Physical Oscillator Model (POM) — the paper's core contribution.
//!
//! An MPI-parallel bulk-synchronous program of `N` processes is modeled as
//! `N` coupled oscillators (paper Eq. 2):
//!
//! ```text
//! θ̇_i(t) = 2π / (t_comp + t_comm + ζ_i(t))
//!         + (v_p / N) · Σ_j T_ij · V( θ_j(t − τ_ij(t)) − θ_i(t) )
//! ```
//!
//! One phase revolution corresponds to one compute–communicate cycle. The
//! ingredients:
//!
//! * [`potential::Potential`] — the interaction potential `V`. The paper
//!   introduces two: `tanh` for *resource-scalable* programs (Eq. 3,
//!   attractive everywhere ⇒ resynchronization) and a piecewise
//!   `−sin`/`sgn` potential with interaction horizon `σ` for
//!   *resource-bottlenecked* programs (Eq. 4, short-range repulsive ⇒
//!   desynchronization with stable pair separation `2σ/3`).
//! * `pom_topology::Topology` — the sparse dependency matrix `T_ij`.
//! * [`params::PomParams`] — durations, protocol factor `β` (eager = 1,
//!   rendezvous = 2) and distance weight `κ`, giving the coupling
//!   `v_p = β·κ/(t_comp + t_comm)`.
//! * `pom_noise` — the frozen noise terms `ζ_i(t)` and `τ_ij(t)`.
//!
//! The model implements both `pom_ode::OdeSystem` (no interaction delays)
//! and `pom_ode::dde::DdeSystem` (with delays); [`model::Pom`]`::simulate`
//! picks the right integrator automatically and returns a [`simulate::PomRun`]
//! with the paper's observables: Kuramoto order parameter, phase spread,
//! lagger-normalized phases (§3.2's "standard view").
//!
//! ## Example
//!
//! A resource-scalable program (tanh potential) pulls itself back into
//! lockstep from a perturbed start:
//!
//! ```
//! use pom_core::{InitialCondition, PomBuilder, Potential, SimOptions, SimWorkspace};
//! use pom_topology::Topology;
//!
//! let model = PomBuilder::new(16)
//!     .topology(Topology::ring(16, &[-1, 1]))
//!     .potential(Potential::Tanh)
//!     .compute_time(1.0)
//!     .comm_time(0.1)
//!     .coupling(8.0)
//!     .build()
//!     .unwrap();
//!
//! // One workspace serves many runs (per-thread scratch reuse).
//! let mut ws = SimWorkspace::new();
//! let init = InitialCondition::RandomSpread { amplitude: 1.0, seed: 3 };
//! let run = model
//!     .simulate_with_ws(init, &SimOptions::new(120.0), &mut ws)
//!     .unwrap();
//! assert!(run.final_order_parameter() > 0.999); // resynchronized
//! ```

pub mod builder;
pub mod continuum;
pub mod ensemble;
pub mod initial;
pub mod kernel;
pub mod model;
pub mod observables;
pub mod params;
pub mod potential;
pub mod presets;
pub mod simulate;
pub mod stability;

pub use builder::{PomBuilder, PomError};
pub use continuum::{front_speed_estimate, transport_coefficients, TransportCoefficients};
pub use ensemble::PomEnsemble;
pub use initial::InitialCondition;
pub use kernel::RhsKernel;
pub use model::{Normalization, Pom};
pub use observables::{
    adjacent_differences, lagger_normalized, order_parameter, phase_spread, winding_number,
};
pub use params::{PomParams, Protocol};
pub use potential::Potential;
pub use presets::{fig2_model, fig2_params, Fig2Panel};
pub use simulate::{PomRun, SimOptions, SimSummary, SimWorkspace, SolverChoice};
// The observer vocabulary of `Pom::simulate_observed`, re-exported so
// model-level callers need not name `pom_ode` directly.
pub use pom_ode::{NoObserver, ObserveEvery, StepObserver};
